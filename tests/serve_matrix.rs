//! The multi-tenant serving matrix: {1, 4, 16 tenants} × {3 QoS mixes} ×
//! {1, 2, 4 pools} × {Poisson, bursty} arrival schedules.
//!
//! Every cell drives the open-loop serving plane over real pushdown
//! workloads and checks the invariants the QoS design promises:
//!
//! 1. **Correctness under multiplexing** — every completed session's value
//!    is bit-identical to the host oracle, regardless of tenant count,
//!    pool count, or interleaving.
//! 2. **Ledger balance** — arrived == completed + shed + failed at drain,
//!    per tenant.
//! 3. **Shed ordering** — under contention, best-effort sheds first (and
//!    most), guaranteed last (here: never), and guaranteed-class p99 stays
//!    bounded while the rack is saturated.
//! 4. **Determinism** — the acceptance run (16 mixed tenants over 4
//!    pools) reproduces the identical trace digest across two runs of the
//!    same seed, and survives a mid-run pool death with only best-effort
//!    sessions shed.

use ddc_sim::{
    ArrivalProcess, DdcConfig, FaultPlan, PlacementPolicy, QosClass, ReplicationMode, SimDuration,
    SimTime,
};
use kvapp::{KvData, KvStore};
use teleport::{AdmissionPolicy, Mem, Runtime, ServeConfig, ServePlane, SessionOutcome};

const TENANT_COUNTS: [usize; 3] = [1, 4, 16];
const POOLS: [usize; 3] = [1, 2, 4];

/// The three QoS mixes of the matrix: how tenant `t` of `n` is classed.
#[derive(Debug, Clone, Copy)]
enum Mix {
    AllGuaranteed,
    AllBestEffort,
    /// Round-robin guaranteed / burstable / best-effort by tenant index.
    Striped,
}

const MIXES: [Mix; 3] = [Mix::AllGuaranteed, Mix::AllBestEffort, Mix::Striped];

impl Mix {
    fn class(self, t: usize) -> QosClass {
        match self {
            Mix::AllGuaranteed => QosClass::Guaranteed,
            Mix::AllBestEffort => QosClass::BestEffort,
            Mix::Striped => match t % 3 {
                0 => QosClass::Guaranteed,
                1 => QosClass::Burstable,
                _ => QosClass::BestEffort,
            },
        }
    }
}

fn rack(ws: usize, pools: usize) -> Runtime {
    let mut cfg = DdcConfig::with_cache_ratio(ws, 0.05);
    cfg.pools = pools;
    if pools > 1 {
        cfg.placement = PlacementPolicy::LoadBalance;
    }
    cfg.validate().expect("matrix config validates");
    Runtime::teleport(cfg)
}

/// The full sweep over KV point-lookup tenants: cheap enough to run 54
/// cells, yet every session is a real cold-cache pushdown.
#[test]
fn serve_matrix_cells_drain_and_match_the_oracle() {
    let data = KvData::generate(16 * 1024, 99);
    let arrivals = [
        (
            "poisson",
            ArrivalProcess::poisson(SimDuration::from_micros(30)),
        ),
        (
            "bursty",
            ArrivalProcess::bursty(
                SimDuration::from_micros(240),
                8,
                SimDuration::from_nanos(200),
            ),
        ),
    ];

    for (arr_name, arrival) in arrivals {
        for mix in MIXES {
            for tenants in TENANT_COUNTS {
                for pools in POOLS {
                    let cell = format!("[{arr_name}/{mix:?}/{tenants}t/{pools}p]");
                    let sessions = 12usize;
                    let mut rt = rack(data.working_set_bytes(), pools);
                    let store = KvStore::load(&mut rt, &data);
                    rt.drop_cache();
                    rt.begin_timing();

                    let mut plane = ServePlane::new(ServeConfig::with_seed(0xA11CE));
                    let mut keys: Vec<Vec<u64>> = Vec::new();
                    for t in 0..tenants {
                        let ks = kvapp::keys(1_000 + t as u64, sessions, data.len());
                        keys.push(ks.clone());
                        plane.tenant(
                            format!("kv{t}"),
                            mix.class(t),
                            arrival,
                            sessions,
                            move |rt, s| kvapp::get(rt, &store, ks[s as usize]),
                        );
                    }
                    let rep = plane.run(&mut rt);

                    assert!(rep.ledger_balances(), "{cell}: shed ledger out of balance");
                    assert_eq!(
                        rep.arrived(),
                        (tenants * sessions) as u64,
                        "{cell}: open-loop arrivals are unconditional"
                    );
                    assert!(
                        rep.completed() > 0,
                        "{cell}: a drained plane completed nothing"
                    );
                    for (t, trep) in rep.tenants.iter().enumerate() {
                        assert_eq!(trep.in_flight(), 0, "{cell}: tenant {t} did not drain");
                        for (s, out) in trep.outcomes.iter().enumerate() {
                            match out {
                                SessionOutcome::Completed { value, .. } => assert_eq!(
                                    *value,
                                    kvapp::oracle::get(&data, keys[t][s]),
                                    "{cell}: tenant {t} session {s} wrong value"
                                ),
                                SessionOutcome::Shed => {}
                                SessionOutcome::Failed(e) => {
                                    panic!("{cell}: tenant {t} session {s} failed: {e:?}")
                                }
                            }
                        }
                        // Per-tenant percentiles exist whenever anything
                        // completed.
                        if trep.completed > 0 {
                            assert!(rep.latency.p50(t).is_some(), "{cell}: t{t} missing p50");
                            assert!(
                                rep.latency.p999(t) >= rep.latency.p50(t),
                                "{cell}: t{t} percentiles out of order"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Saturate one TELEPORT context with three lock-step tenants (identical
/// uniform arrival schedules, one per class) behind a tight admission
/// policy: the nested class limits must shed best-effort first and most,
/// never guaranteed, and guaranteed p99 must stay within the bound its
/// headroom implies rather than growing with the overload.
#[test]
fn under_contention_best_effort_sheds_first_and_guaranteed_p99_stays_bounded() {
    let data = KvData::generate(8 * 1024, 7);
    let sessions = 36usize;
    let mut rt = rack(data.working_set_bytes(), 1);
    let store = KvStore::load(&mut rt, &data);
    rt.drop_cache();
    rt.begin_timing();

    let admission = AdmissionPolicy {
        max_queue_depth: 3,
        max_backlog: SimDuration::from_micros(40),
    };
    let mut plane = ServePlane::new(ServeConfig {
        seed: 0xBEEF,
        admission,
        contexts: Some(1),
    });
    // Combined arrivals outpace service (3 per 50µs vs one ~38µs
    // cold-cache lookup), but the guaranteed class alone stays under the
    // service rate — so the nested limits can protect it completely.
    // Identical schedules per tenant (uniform ignores the seed), so only
    // the QoS class differentiates their fate.
    let arrival = ArrivalProcess::uniform(SimDuration::from_micros(50));
    for (name, class) in [
        ("guar", QosClass::Guaranteed),
        ("burst", QosClass::Burstable),
        ("best", QosClass::BestEffort),
    ] {
        let ks = kvapp::keys(0x5EED ^ class as u64, sessions, data.len());
        plane.tenant(name, class, arrival, sessions, move |rt, s| {
            kvapp::get(rt, &store, ks[s as usize])
        });
    }
    let rep = plane.run(&mut rt);

    assert!(rep.ledger_balances());
    let g = rep.class_shed(QosClass::Guaranteed);
    let b = rep.class_shed(QosClass::Burstable);
    let e = rep.class_shed(QosClass::BestEffort);
    assert_eq!(g, 0, "guaranteed traffic must never shed here (got {g})");
    assert!(e > 0, "saturation must shed best-effort traffic");
    assert!(
        e >= b && b >= g,
        "shed counts must respect class order: best-effort {e} >= burstable {b} >= guaranteed {g}"
    );
    assert!(
        rep.class_completed(QosClass::Guaranteed) == sessions as u64,
        "every guaranteed session completes"
    );

    // Bounded p99: an admitted guaranteed session waits at most its
    // class's backlog headroom plus the sessions admitted at the same
    // instant ahead of it; the DRR weight keeps that from compounding.
    // 10× the class backlog cap is a loose ceiling that a fairness or
    // admission regression (shed accounting drift, queue hoarding) blows
    // straight through.
    let p99 = rep
        .latency
        .p99(0)
        .expect("guaranteed tenant completed sessions");
    let (_, backlog_cap) = admission.class_limits(QosClass::Guaranteed);
    assert!(
        p99 <= backlog_cap * 10,
        "guaranteed p99 {p99:?} exceeds 10x its admission backlog cap {backlog_cap:?}"
    );
}

/// The acceptance run: 16 tenants mixing all four applications (memdb +
/// graph + mapred + kv) over a 4-pool rack — per-tenant percentiles and
/// per-class shed counts reported, digest identical across two same-seed
/// runs, and a mid-run pool death survived with only best-effort sheds.
#[test]
fn acceptance_sixteen_mixed_tenants_over_four_pools() {
    use graphproc::{algos::cc, social_graph};
    use memdb::{oracle as memdb_oracle, Database, QueryParams, TpchData};

    let kv_data = KvData::generate(8 * 1024, 21);
    let tpch = TpchData::generate(0.0005, 42);
    let params = QueryParams::default();
    let q_expected = memdb_oracle::q_filter(&tpch, &params);
    let bound = params.qfilter_date.raw();
    let g = social_graph(120, 3, 9);
    let cc_expected: u64 = cc::oracle(&g)
        .iter()
        .fold(ddc_sim::FNV_OFFSET, |h, &l| ddc_sim::fnv_fold(h, l as u64));

    let run = |seed: u64, kill_pool: bool| {
        let ws = kv_data.working_set_bytes() + tpch.working_set_bytes() + g.bytes() * 2;
        let mut cfg = DdcConfig::with_cache_ratio(ws, 0.05);
        cfg.pools = 4;
        cfg.placement = PlacementPolicy::LoadBalance;
        cfg.replication = ReplicationMode::Synchronous;
        cfg.memory_contexts = 4;
        cfg.validate().expect("acceptance config validates");
        let mut rt = Runtime::teleport(cfg);
        rt.enable_tracing();

        let store = KvStore::load(&mut rt, &kv_data);
        let db = Database::load(&mut rt, &tpch);
        let offsets: teleport::Region<u32> = rt.alloc_region(g.offsets.len());
        rt.write_range(&offsets, 0, &g.offsets);
        let edges: teleport::Region<u32> = rt.alloc_region(g.edges.len().max(1));
        rt.write_range(&edges, 0, &g.edges);
        let n = g.n();

        rt.drop_cache();
        rt.begin_timing();
        if kill_pool {
            // Pool 2 dies 300µs into the serve run; synchronous
            // replication makes the failover transparent to retries.
            rt.install_fault_plan(FaultPlan::new(seed).pool_death(2, SimTime(300_000)));
        }

        let mut plane = ServePlane::new(ServeConfig {
            seed,
            admission: AdmissionPolicy {
                max_queue_depth: 3,
                max_backlog: SimDuration::from_micros(400),
            },
            contexts: None,
        });
        let retry = teleport::ResiliencePolicy::retry_only();

        // Tenants 0..8: guaranteed/burstable kv + memdb front-ends on
        // gentle Poisson arrivals.
        for t in 0..8usize {
            let class = if t % 2 == 0 {
                QosClass::Guaranteed
            } else {
                QosClass::Burstable
            };
            let arrival = ArrivalProcess::poisson(SimDuration::from_micros(400));
            if t % 4 < 3 {
                let ks = kvapp::keys(900 + t as u64, 10, kv_data.len());
                plane.tenant(format!("kv{t}"), class, arrival, 10, move |rt, s| {
                    let key = ks[s as usize];
                    let vals = store.vals;
                    rt.pushdown_resilient(teleport::PushdownOpts::new(), &retry, |m| {
                        m.charge_cycles(64);
                        let mut buf = Vec::new();
                        m.read_range(&vals, key as usize, 1, &mut buf);
                        buf[0]
                    })
                    .map(|out| out.value)
                });
            } else {
                let shipdate = db.li.shipdate;
                let quantity = db.li.quantity;
                let rows = db.li.n;
                let arrival = ArrivalProcess::poisson(SimDuration::from_micros(800));
                plane.tenant(format!("memdb{t}"), class, arrival, 4, move |rt, _| {
                    rt.pushdown_resilient(teleport::PushdownOpts::new(), &retry, |m| {
                        let mut dates = Vec::new();
                        m.read_range(&shipdate, 0, rows, &mut dates);
                        let mut quants = Vec::new();
                        m.read_range(&quantity, 0, rows, &mut quants);
                        let mut sum = 0.0f64;
                        for i in 0..rows {
                            if dates[i] < bound {
                                sum += quants[i];
                            }
                        }
                        m.charge_cycles(2 * rows as u64);
                        sum.to_bits()
                    })
                    .map(|out| out.value)
                });
            }
        }
        // Tenants 8..12: burstable graph analytics.
        for t in 8..12usize {
            plane.tenant(
                format!("graph{t}"),
                QosClass::Burstable,
                ArrivalProcess::poisson(SimDuration::from_micros(800)),
                3,
                move |rt, _| {
                    rt.pushdown_resilient(teleport::PushdownOpts::new(), &retry, |m| {
                        let mut off = Vec::new();
                        m.read_range(&offsets, 0, n + 1, &mut off);
                        let mut adj = Vec::new();
                        m.read_range(&edges, 0, off[n] as usize, &mut adj);
                        let mut label: Vec<u64> = (0..n as u64).collect();
                        loop {
                            let mut changed = false;
                            for v in 0..n {
                                for &u in &adj[off[v] as usize..off[v + 1] as usize] {
                                    if label[u as usize] < label[v] {
                                        label[v] = label[u as usize];
                                        changed = true;
                                    }
                                }
                            }
                            if !changed {
                                break;
                            }
                            m.charge_cycles(adj.len() as u64);
                        }
                        label
                            .iter()
                            .fold(ddc_sim::FNV_OFFSET, |h, &l| ddc_sim::fnv_fold(h, l))
                    })
                    .map(|out| out.value)
                },
            );
        }
        // Tenants 12..16: best-effort scavenger kv floods (bursty) — the
        // traffic the admission plane is allowed to shed.
        for t in 12..16usize {
            let ks = kvapp::keys(1_200 + t as u64, 24, kv_data.len());
            plane.tenant(
                format!("scav{t}"),
                QosClass::BestEffort,
                ArrivalProcess::bursty(
                    SimDuration::from_micros(150),
                    12,
                    SimDuration::from_nanos(100),
                ),
                24,
                move |rt, s| {
                    let key = ks[s as usize];
                    let vals = store.vals;
                    rt.pushdown_resilient(teleport::PushdownOpts::new(), &retry, |m| {
                        m.charge_cycles(64);
                        let mut buf = Vec::new();
                        m.read_range(&vals, key as usize, 1, &mut buf);
                        buf[0]
                    })
                    .map(|out| out.value)
                },
            );
        }

        let rep = plane.run(&mut rt);
        (
            rep,
            rt.trace().digest(),
            rt.metrics().get("failover.promotions").unwrap_or(0),
        )
    };

    // Same seed twice: identical digest, identical ledgers.
    let (rep_a, digest_a, _) = run(0xFEED, false);
    let (rep_b, digest_b, _) = run(0xFEED, false);
    assert_eq!(digest_a, digest_b, "same seed must replay the same digest");
    assert_eq!(rep_a.arrived(), rep_b.arrived());
    assert_eq!(rep_a.shed(), rep_b.shed());
    assert_eq!(rep_a.completed(), rep_b.completed());

    assert!(rep_a.ledger_balances());
    assert_eq!(rep_a.tenants.len(), 16);
    assert_eq!(rep_a.failed(), 0, "no faults: nothing fails");

    // Every tenant that completed reports percentiles; per-class shed
    // counts surface in the serve.* registry.
    let m = rep_a.metrics();
    assert_eq!(m.get("serve.tenants"), Some(16));
    for (t, trep) in rep_a.tenants.iter().enumerate() {
        if trep.completed > 0 {
            for q in ["p50", "p99", "p999"] {
                assert!(
                    m.get(&format!("serve.tenant{t}.{q}_ns")).is_some(),
                    "tenant {t} missing {q}"
                );
            }
        }
    }
    assert!(m.get("serve.guaranteed.shed").is_some());
    assert!(m.get("serve.best_effort.shed").is_some());

    // Correctness of the non-kv applications across the whole run.
    for trep in &rep_a.tenants {
        for out in &trep.outcomes {
            if let SessionOutcome::Completed { value, .. } = out {
                if trep.name.starts_with("memdb") {
                    assert_eq!(*value, q_expected.to_bits(), "memdb tenant wrong answer");
                } else if trep.name.starts_with("graph") {
                    assert_eq!(*value, cc_expected, "graph tenant wrong answer");
                }
            }
        }
    }

    // Chaos leg: pool 2 dies mid-serve. The rack fails over, every tenant
    // drains, and only best-effort traffic is shed.
    let (rep_c, _, promotions) = run(0xFEED, true);
    assert!(promotions >= 1, "pool death must promote the replica");
    assert!(rep_c.ledger_balances());
    assert_eq!(
        rep_c.failed(),
        0,
        "retries absorb the failover; no session surfaces an error"
    );
    for trep in &rep_c.tenants {
        assert_eq!(trep.in_flight(), 0, "tenant {} did not drain", trep.name);
    }
    assert_eq!(
        rep_c.class_shed(QosClass::Guaranteed),
        0,
        "guaranteed traffic must ride out the pool death unshed"
    );
    assert_eq!(
        rep_c.class_shed(QosClass::Burstable),
        0,
        "burstable traffic must ride out the pool death unshed"
    );
    assert!(
        rep_c.class_shed(QosClass::BestEffort) > 0,
        "the overloaded scavenger class is the one that sheds"
    );
    for trep in &rep_c.tenants {
        for out in &trep.outcomes {
            if let SessionOutcome::Completed { value, .. } = out {
                if trep.name.starts_with("memdb") {
                    assert_eq!(*value, q_expected.to_bits(), "post-failover memdb answer");
                } else if trep.name.starts_with("graph") {
                    assert_eq!(*value, cc_expected, "post-failover graph answer");
                }
            }
        }
    }
}
