//! End-to-end tests for the trace-level syncmem race detector.
//!
//! The detector replays the happens-before log a runtime records (host
//! and pushdown page accesses, plus ordering edges for session start/end,
//! `syncmem`, and coherence round trips) with per-page vector clocks.
//! Three properties matter:
//!
//! 1. **Silence on correct runs** — every existing workload, on every
//!    platform and coherence mode, reports zero races.
//! 2. **No observer effect** — enabling detection leaves the event-trace
//!    digest bit-identical on race-free runs (the log is a side channel,
//!    not a trace participant).
//! 3. **A constructed race is caught** — an unsynchronized conflicting
//!    access pair yields exactly one typed `RaceDetected` event, and a
//!    syncmem edge between the same two accesses silences it.

use ddc_os::Pattern;
use ddc_sim::{DdcConfig, TraceEvent, PAGE_SIZE};
use teleport::{Actor, CoherenceMode, Mem, PushdownOpts, Runtime, SyncOp};

fn small_ddc() -> DdcConfig {
    DdcConfig {
        compute_cache_bytes: 64 * PAGE_SIZE,
        memory_pool_bytes: 4096 * PAGE_SIZE,
        ..Default::default()
    }
}

/// A workload exercising both sides of the coherence fence: host writes,
/// a pushdown that reads and writes the same region, then host reads the
/// pushdown's output. Returns (result, trace digest, trace length).
fn mixed_workload(rt: &mut Runtime, mode: CoherenceMode) -> (u64, u64, u64) {
    let n = 4 * PAGE_SIZE / 8;
    let col = rt.alloc_region::<u64>(n);
    let vals: Vec<u64> = (0..n as u64).collect();
    rt.write_range(&col, 0, &vals);
    rt.begin_timing();
    let sum = rt
        .pushdown(PushdownOpts::new().coherence(mode), move |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, n, &mut buf);
            m.set(&col, 0, 99u64, Pattern::Rand);
            buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        })
        .unwrap();
    let back: u64 = rt.get(&col, 0, Pattern::Rand);
    (
        sum.wrapping_add(back),
        rt.trace().digest(),
        rt.trace().len(),
    )
}

#[test]
fn every_coherence_mode_runs_race_free() {
    for mode in [
        CoherenceMode::WriteInvalidate,
        CoherenceMode::Pso,
        CoherenceMode::WeakOrdering,
        CoherenceMode::Disabled,
    ] {
        let mut rt = Runtime::teleport(small_ddc());
        rt.enable_tracing();
        rt.enable_race_detection();
        let _ = mixed_workload(&mut rt, mode);
        assert!(!rt.race_log().is_empty(), "{mode:?}: log recorded nothing");
        let races = rt.check_races();
        assert!(races.is_empty(), "{mode:?}: spurious races {races:?}");
    }
}

#[test]
fn detection_does_not_perturb_the_trace_digest() {
    let run = |detect: bool| {
        let mut rt = Runtime::teleport(small_ddc());
        rt.enable_tracing();
        if detect {
            rt.enable_race_detection();
        }
        let out = mixed_workload(&mut rt, CoherenceMode::WriteInvalidate);
        assert!(rt.check_races().is_empty());
        out
    };
    let plain = run(false);
    let detected = run(true);
    assert_eq!(plain, detected, "race detection is not a trace participant");
}

#[test]
fn base_ddc_and_local_paths_run_race_free() {
    use ddc_sim::MonolithicConfig;
    let mut base = Runtime::base_ddc(small_ddc());
    base.enable_race_detection();
    let _ = mixed_workload(&mut base, CoherenceMode::WriteInvalidate);
    assert!(base.check_races().is_empty());

    let mut local = Runtime::local(MonolithicConfig::default());
    local.enable_race_detection();
    let _ = mixed_workload(&mut local, CoherenceMode::WriteInvalidate);
    assert!(local.check_races().is_empty());
}

#[test]
fn constructed_race_is_detected_and_emitted_as_typed_event() {
    let mut rt = Runtime::teleport(small_ddc());
    rt.enable_tracing();
    rt.enable_race_detection();
    // A real (race-free) session first, so the constructed violation sits
    // on top of genuine session-start/end edges rather than an empty log.
    let _ = mixed_workload(&mut rt, CoherenceMode::WriteInvalidate);
    let digest_before = rt.trace().digest();

    // The protocol bug under construction: the pushdown side touches a
    // page after its session ended, with no syncmem edge before the host
    // reads it back. The detector must flag exactly that page.
    rt.race_log().record(SyncOp::Access {
        actor: Actor::Pushdown,
        page: 7,
        write: true,
    });
    rt.race_log().record(SyncOp::Access {
        actor: Actor::Host,
        page: 7,
        write: false,
    });

    let races = rt.check_races();
    assert_eq!(races.len(), 1, "{races:?}");
    assert_eq!(races[0].page, 7);
    assert!(!races[0].write_write, "read/write, not write/write");
    assert_eq!(races[0].second, Actor::Host);

    // Emission is observable three ways: the typed trace event, the
    // digest (the event participates), and the derived metric.
    let emitted: Vec<TraceEvent> = rt
        .trace()
        .events()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::RaceDetected { .. }))
        .map(|r| r.event)
        .collect();
    assert_eq!(
        emitted,
        vec![TraceEvent::RaceDetected {
            page: 7,
            write_write: false
        }]
    );
    assert_ne!(rt.trace().digest(), digest_before);
    assert_eq!(rt.metrics().get("trace.races_detected"), Some(1));
}

#[test]
fn write_write_conflict_is_labelled_as_such() {
    let rt = Runtime::teleport(small_ddc());
    rt.enable_race_detection();
    for actor in [Actor::Pushdown, Actor::Host] {
        rt.race_log().record(SyncOp::Access {
            actor,
            page: 3,
            write: true,
        });
    }
    let races = rt.check_races();
    assert_eq!(races.len(), 1);
    assert!(races[0].write_write);
}

#[test]
fn syncmem_edge_between_the_same_accesses_silences_the_race() {
    let rt = Runtime::teleport(small_ddc());
    rt.enable_race_detection();
    rt.race_log().record(SyncOp::Access {
        actor: Actor::Pushdown,
        page: 7,
        write: true,
    });
    rt.race_log().record(SyncOp::Syncmem);
    rt.race_log().record(SyncOp::Access {
        actor: Actor::Host,
        page: 7,
        write: false,
    });
    assert!(rt.check_races().is_empty());
}

#[test]
fn detection_off_records_nothing_and_reports_nothing() {
    let mut rt = Runtime::teleport(small_ddc());
    let _ = mixed_workload(&mut rt, CoherenceMode::WriteInvalidate);
    assert!(rt.race_log().is_empty(), "disabled log must stay empty");
    assert!(rt.check_races().is_empty());
}
