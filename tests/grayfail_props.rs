//! Property tests for the gray-failure plane: seed-determinism of the
//! health story, the at-most-once hedge invariant, whole-call deadline
//! budgets that shrink monotonically across retries, and the
//! never-strand-the-last-shard quarantine rule.

use ddc_os::{HealthConfig, HealthMonitor};
use ddc_sim::{
    Clock, DdcConfig, FaultPlan, PoolHealthState, SimDuration, SimTime, Tracer, FOREVER,
};
use proptest::prelude::*;
use teleport::{
    HedgeOutcome, HedgePolicy, Mem, PushdownError, PushdownOpts, Region, ResiliencePolicy,
    RetryPolicy, Runtime,
};

/// A 2-pool Teleport rack with tracing on and a loaded column: the
/// smallest rig on which pool-level health verdicts are interesting
/// (one shard can be quarantined while the other carries placement).
fn grayfail_rt(plan: FaultPlan) -> (Runtime, Region<u64>) {
    let cfg = DdcConfig {
        pools: 2,
        ..DdcConfig::default()
    };
    cfg.validate().expect("2-pool default config validates");
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();
    let col = rt.alloc_region::<u64>(1024);
    let vals: Vec<u64> = (0..1024u64).collect();
    rt.write_range(&col, 0, &vals);
    rt.begin_timing();
    rt.install_fault_plan(plan);
    (rt, col)
}

fn scan(rt: &mut Runtime, col: &Region<u64>) -> Result<u64, PushdownError> {
    let col = *col;
    rt.pushdown(PushdownOpts::new(), move |m| {
        let mut buf = Vec::new();
        m.read_range(&col, 0, col.len(), &mut buf);
        buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same fail-slow plan ⇒ the identical health story: every
    /// state transition, quarantine, probe, and the trace digest replay
    /// bit-for-bit. The detector draws no randomness of its own, so the
    /// whole gray-failure narrative is a pure function of the plan.
    #[test]
    fn same_seed_replays_the_same_health_story(
        seed in any::<u64>(),
        factor in 2u32..64,
        until_us in 200u64..2_000,
    ) {
        let run = || {
            let plan = FaultPlan::new(seed).degraded_pool(
                0,
                SimTime(0),
                SimTime(until_us * 1_000),
                factor,
            );
            let (mut rt, col) = grayfail_rt(plan);
            for _ in 0..24 {
                scan(&mut rt, &col).expect("fail-slow is benign to correctness");
            }
            let m = rt.metrics();
            (
                rt.trace().len(),
                rt.trace().digest(),
                m.get("health.transitions").unwrap_or(0),
                m.get("health.quarantines").unwrap_or(0),
                m.get("health.reintegrations").unwrap_or(0),
                m.get("health.probes").unwrap_or(0),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "gray-failure runs must be seed-deterministic");
    }

    /// A hedged call fires its clone at most once, wins at most what it
    /// fires, reports an outcome consistent with the ledger, and never
    /// claims a caller-observed latency longer than the wall time the
    /// call actually charged.
    #[test]
    fn hedge_fires_at_most_once_per_call(
        factor in 1u32..80,
        delay_us in 10u64..200,
        jitter_us in 0u64..50,
    ) {
        let plan = FaultPlan::new(7).degraded_pool(0, SimTime(0), FOREVER, factor);
        let (mut rt, col) = grayfail_rt(plan);
        let policy = HedgePolicy {
            delay: SimDuration::from_micros(delay_us),
            jitter: SimDuration::from_micros(jitter_us),
        };
        let expected = (0..1024u64).sum::<u64>();
        for _ in 0..12 {
            let fired0 = rt.hedges_fired();
            let won0 = rt.hedges_won();
            let t0 = rt.dos().clock().now();
            let col2 = col;
            let h = rt
                .pushdown_hedged(PushdownOpts::new(), &policy, move |m| {
                    let mut buf = Vec::new();
                    m.read_range(&col2, 0, col2.len(), &mut buf);
                    buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
                })
                .expect("fail-slow is benign to correctness");
            let wall = rt.dos().clock().now().since(t0);
            let fired = rt.hedges_fired() - fired0;
            let won = rt.hedges_won() - won0;
            prop_assert!(fired <= 1, "a call may hedge at most once, fired {fired}");
            prop_assert!(won <= fired, "a hedge cannot win without firing");
            match h.outcome {
                HedgeOutcome::NotFired => prop_assert_eq!((fired, won), (0, 0)),
                HedgeOutcome::PrimaryWon => prop_assert_eq!((fired, won), (1, 0)),
                HedgeOutcome::HedgeWon => prop_assert_eq!((fired, won), (1, 1)),
            }
            prop_assert_eq!(h.value, expected);
            prop_assert!(
                h.latency <= wall,
                "observed race latency {} cannot exceed charged wall time {}",
                h.latency, wall
            );
        }
    }

    /// The deadline is a budget for the *whole* resilient call: each
    /// retry sees only what earlier attempts left unspent, so a call
    /// that completes is judged against total time since entry — `Ok`
    /// means the entire chain fit the budget, and a miss reports the
    /// overshoot of the chain, not of the final attempt alone.
    #[test]
    fn deadline_budget_covers_the_whole_retry_chain(
        deadline_us in 30u64..400,
        p_pct in 10u64..90,
        base_us in 1u64..20,
    ) {
        let plan = FaultPlan::new(11).pushdown_exceptions_prob(
            SimTime(0),
            FOREVER,
            p_pct as f64 / 100.0,
        );
        let (mut rt, col) = grayfail_rt(plan);
        let deadline = SimDuration::from_micros(deadline_us);
        let policy = ResiliencePolicy {
            retry: Some(RetryPolicy {
                max_retries: 24,
                base: SimDuration::from_micros(base_us),
                cap: SimDuration::from_millis(1),
                budget: None,
                retry_killed: false,
                retry_failed_over: true,
                retry_rejected: true,
            }),
            fallback: None,
        };
        let mut misses = 0u64;
        for _ in 0..6 {
            let retries0 = rt.resilience_retries();
            let t0 = rt.dos().clock().now();
            let col2 = col;
            let r = rt.pushdown_resilient(PushdownOpts::new().deadline(deadline), &policy, move |m| {
                let mut buf = Vec::new();
                m.read_range(&col2, 0, col2.len(), &mut buf);
                buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
            });
            let wall = rt.dos().clock().now().since(t0);
            match r {
                Ok(out) => {
                    prop_assert!(
                        wall <= deadline,
                        "Ok must mean the whole chain ({} attempts, {wall}) fit {deadline}",
                        out.attempts
                    );
                }
                Err(PushdownError::DeadlineExceeded { over }) => {
                    misses += 1;
                    prop_assert!(
                        wall > deadline,
                        "a miss must mean the chain ({wall}) overran {deadline}"
                    );
                    // Exactly `wall - deadline` while budget remains;
                    // `saturating_sub` flattens deep overruns, so the
                    // reported overshoot never exceeds the true one.
                    prop_assert!(over.as_nanos() > 0);
                    prop_assert!(
                        over <= wall.saturating_sub(deadline),
                        "over {over} exceeds true overshoot {} - {deadline}",
                        wall
                    );
                }
                Err(PushdownError::Exception(_)) => {
                    // Every attempt faulted: the full retry budget went
                    // first, and the deadline never got a completed
                    // attempt to judge.
                    prop_assert_eq!(rt.resilience_retries() - retries0, 24);
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert_eq!(rt.deadline_misses(), misses);
        prop_assert!(rt.is_alive());
    }

    /// Whatever evidence the detector is fed — degraded service windows,
    /// inflated heartbeat RTTs, failing probes, in any interleaving
    /// across any rack size — at least one shard always remains
    /// placeable: quarantine is a placement optimization, never an
    /// outage.
    #[test]
    fn quarantine_never_strands_placement(
        pools in 1usize..5,
        ops in prop::collection::vec((0usize..16, 0u8..5), 1..200),
    ) {
        let tracer = Tracer::new(Clock::new());
        tracer.enable();
        let mut m = HealthMonitor::new(pools, HealthConfig::default(), tracer);
        let ns = SimDuration::from_nanos;
        for (i, &(raw, op)) in ops.iter().enumerate() {
            let pool = raw % pools;
            let now = SimTime(i as u64 * 1_000);
            match op {
                0 => m.observe_service(pool, ns(100)),
                1 => m.observe_service(pool, ns(50_000)),
                2 => m.observe_rtt(pool, ns(40_000)),
                3 => {
                    m.record_probe(pool, now, ns(100), ns(100));
                }
                _ => {
                    m.record_probe(pool, now, ns(50_000), ns(100));
                }
            }
            prop_assert!(
                (0..pools).any(|p| m.is_placeable(p)),
                "op {i} left every shard unplaceable: {:?}",
                (0..pools).map(|p| m.state(p)).collect::<Vec<_>>()
            );
        }
        // The ledger stays internally consistent under any interleaving.
        prop_assert!(m.reintegrations() <= m.quarantines());
        let quarantined = (0..pools)
            .filter(|&p| m.state(p) == PoolHealthState::Quarantined)
            .count();
        prop_assert!(quarantined < pools, "some shard must remain unquarantined");
    }
}
