//! Property tests for the rack-scale topology layer: placement is a pure
//! function of the config (same seed ⇒ same shard map, same routing, same
//! trace digest), ownership is exclusive (every registered page lives in
//! exactly one shard), each policy honors its contract, and the fan-out
//! merge does not depend on the order in which a pushdown touches shards.

use ddc_os::Pattern;
use ddc_sim::{DdcConfig, PlacementPolicy, TraceEvent, PAGE_SIZE};
use teleport::{Mem, PushdownOpts, Runtime};

const ELEMS: usize = PAGE_SIZE / 8;
const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::FirstFit,
    PlacementPolicy::Locality,
    PlacementPolicy::LoadBalance,
];

fn cfg(pools: usize, placement: PlacementPolicy, ws_pages: usize) -> DdcConfig {
    let mut c = DdcConfig::with_cache_ratio(ws_pages * PAGE_SIZE, 0.25);
    c.pools = pools;
    c.placement = placement;
    c.validate().expect("topology config validates");
    c
}

/// Page ids of a whole-page `u64` region, in address order.
fn pages_of(r: &teleport::Region<u64>, pages: usize) -> Vec<ddc_os::PageId> {
    (0..pages).map(|p| r.at(p * ELEMS).page()).collect()
}

#[test]
fn same_seed_produces_identical_shards_routing_and_digest() {
    for policy in POLICIES {
        for pools in [2usize, 4] {
            let run = || {
                let mut rt = Runtime::teleport(cfg(pools, policy, 12));
                rt.enable_tracing();
                let a = rt.alloc_region::<u64>(6 * ELEMS);
                let b = rt.alloc_region::<u64>(6 * ELEMS);
                rt.drop_cache();
                rt.begin_timing();
                for p in 0..6 {
                    rt.set(&a, p * ELEMS, p as u64 + 1, Pattern::Rand);
                    rt.set(&b, p * ELEMS, 100 + p as u64, Pattern::Rand);
                }
                let n = a.len();
                let sum = rt
                    .pushdown(PushdownOpts::new(), move |m| {
                        let mut buf = Vec::new();
                        m.read_range(&a, 0, n, &mut buf);
                        let mut buf2 = Vec::new();
                        m.read_range(&b, 0, n, &mut buf2);
                        buf.iter().chain(buf2.iter()).sum::<u64>()
                    })
                    .unwrap();
                let owners: Vec<Option<usize>> = pages_of(&a, 6)
                    .into_iter()
                    .chain(pages_of(&b, 6))
                    .map(|pid| rt.dos().pool_owner(pid))
                    .collect();
                (
                    sum,
                    owners,
                    rt.trace().digest(),
                    rt.trace().len(),
                    rt.metrics().get("topology.routed_pushdowns"),
                    rt.metrics().get("topology.fanout_pushdowns"),
                )
            };
            assert_eq!(
                run(),
                run(),
                "pools={pools} {policy:?}: rerun drifted (shard map, routing, or trace)"
            );
        }
    }
}

#[test]
fn every_registered_page_is_owned_by_exactly_one_shard() {
    for policy in POLICIES {
        for pools in [1usize, 2, 4] {
            let mut rt = Runtime::teleport(cfg(pools, policy, 24));
            // Mixed allocation sizes so FirstFit has real choices to make.
            let sizes = [5usize, 3, 9, 1, 4];
            let regions: Vec<_> = sizes
                .iter()
                .map(|&p| rt.alloc_region::<u64>(p * ELEMS))
                .collect();
            for (r, &p) in regions.iter().zip(&sizes) {
                for pid in pages_of(r, p) {
                    let owner = rt
                        .dos()
                        .pool_owner(pid)
                        .expect("registered page has an owner");
                    let holders = (0..pools)
                        .filter(|&q| rt.dos().pool_at(q).is_mapped(pid))
                        .count();
                    assert_eq!(
                        holders, 1,
                        "pools={pools} {policy:?}: page {pid} mapped by {holders} shards"
                    );
                    assert!(
                        rt.dos().pool_at(owner).is_mapped(pid),
                        "pools={pools} {policy:?}: owner {owner} does not hold {pid}"
                    );
                }
            }
        }
    }
}

#[test]
fn placement_policies_honor_their_contracts() {
    let pools = 4usize;

    // LoadBalance stripes by page number.
    let mut rt = Runtime::teleport(cfg(pools, PlacementPolicy::LoadBalance, 16));
    let r = rt.alloc_region::<u64>(8 * ELEMS);
    for pid in pages_of(&r, 8) {
        assert_eq!(
            rt.dos().pool_owner(pid),
            Some(pid.0 as usize % pools),
            "LoadBalance must stripe page {pid} by page number"
        );
    }

    // Locality keeps each allocation whole and rotates across allocations.
    let mut rt = Runtime::teleport(cfg(pools, PlacementPolicy::Locality, 24));
    let mut first_owners = Vec::new();
    for _ in 0..4 {
        let r = rt.alloc_region::<u64>(3 * ELEMS);
        let owners: Vec<_> = pages_of(&r, 3)
            .into_iter()
            .map(|pid| rt.dos().pool_owner(pid).unwrap())
            .collect();
        assert!(
            owners.windows(2).all(|w| w[0] == w[1]),
            "Locality split an allocation across shards: {owners:?}"
        );
        first_owners.push(owners[0]);
    }
    first_owners.sort_unstable();
    assert_eq!(
        first_owners,
        vec![0, 1, 2, 3],
        "Locality should rotate allocations round-robin over all shards"
    );

    // FirstFit keeps an allocation whole and never splits it either.
    let mut rt = Runtime::teleport(cfg(pools, PlacementPolicy::FirstFit, 24));
    for _ in 0..4 {
        let r = rt.alloc_region::<u64>(2 * ELEMS);
        let owners: Vec<_> = pages_of(&r, 2)
            .into_iter()
            .map(|pid| rt.dos().pool_owner(pid).unwrap())
            .collect();
        assert!(
            owners.windows(2).all(|w| w[0] == w[1]),
            "FirstFit split an allocation across shards: {owners:?}"
        );
    }
}

/// Only the routing payloads, in emission order: the merge protocol's
/// observable surface.
fn routing_events(rt: &Runtime) -> Vec<String> {
    rt.trace()
        .events()
        .iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::PoolRouted { pool, pages } => Some(format!("routed p{pool} {pages}")),
            TraceEvent::PushdownFanout { pools, pages } => Some(format!("fanout {pools} {pages}")),
            TraceEvent::FanoutMerge { pools } => Some(format!("merge {pools}")),
            _ => None,
        })
        .collect()
}

#[test]
fn fanout_merge_is_independent_of_shard_touch_order() {
    let pages = 8usize;
    let run = |reverse: bool| {
        let mut rt = Runtime::teleport(cfg(4, PlacementPolicy::LoadBalance, pages));
        rt.enable_tracing();
        let region = rt.alloc_region::<u64>(pages * ELEMS);
        rt.drop_cache();
        rt.begin_timing();
        for p in 0..pages {
            rt.set(&region, p * ELEMS, p as u64 + 1, Pattern::Rand);
        }
        let order: Vec<usize> = if reverse {
            (0..pages).rev().collect()
        } else {
            (0..pages).collect()
        };
        let sum = rt
            .pushdown(PushdownOpts::new(), move |m| {
                order
                    .iter()
                    .map(|&p| m.get(&region, p * ELEMS, Pattern::Rand))
                    .sum::<u64>()
            })
            .unwrap();
        assert_eq!(sum, (1..=pages as u64).sum::<u64>());
        routing_events(&rt)
    };

    let forward = run(false);
    let backward = run(true);
    assert!(
        forward.iter().any(|e| e.starts_with("merge")),
        "striped range pushdown must fan out and merge: {forward:?}"
    );
    assert_eq!(
        forward, backward,
        "fan-out merge must not depend on shard completion order"
    );
}
