//! Property tests for the end-to-end data-integrity plane.
//!
//! Three invariants, each quantified over fault seeds (and, where it
//! matters, corruption probabilities):
//!
//! 1. **Determinism** — the same seed produces the same corruption sites
//!    (page, offset pairs, in order) and a byte-identical trace digest,
//!    even with two corruption kinds layered on the same run.
//! 2. **Scrub freshness** — after a scrubber pass, compute-side reads
//!    never observe a stale checksum: every value is oracle-exact and no
//!    page is ever declared lost, because latent storage rot strikes clean
//!    pages whose intact image is re-readable.
//! 3. **Exactly-once repair** — every corrupted page is detected once and
//!    repaired once; re-reading the same data detects nothing new and
//!    repairs nothing twice.

use ddc_sim::{
    DdcConfig, EventKind, FaultPlan, ReplicationMode, SimTime, TraceEvent, FOREVER, PAGE_SIZE,
};
use proptest::prelude::*;
use teleport::{Mem, PushdownOpts, Region, Runtime};

const ELEMS: usize = 4096; // 8 pages of u64

/// Deterministic pseudo-random column content.
fn column_vals() -> Vec<u64> {
    (0..ELEMS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(21))
        .collect()
}

/// The shared corruption scenario: a replicated Teleport runtime loads a
/// column, the flush to the pool is exposed to scribbles, and the read
/// back crosses the fabric under bit flips. Everything is repairable
/// (synchronous replica), so the sum must match the oracle. Returns the
/// runtime and the corruption sites in emission order.
fn corruption_run(seed: u64) -> (Runtime, Vec<(u64, u64)>, u64) {
    let cfg = DdcConfig {
        replication: ReplicationMode::Synchronous,
        ..Default::default()
    };
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();
    let vals = column_vals();
    let col: Region<u64> = rt.alloc_region(ELEMS);
    rt.write_range(&col, 0, &vals);
    // Timing starts before the plan so the trace keeps the injection
    // events the drop-cache flush produces (begin_timing resets the
    // trace).
    rt.begin_timing();
    rt.install_fault_plan(
        FaultPlan::new(seed)
            .pool_scribbles(SimTime(0), FOREVER, 0.7)
            .fabric_bit_flips(SimTime(0), FOREVER, 0.5),
    );
    rt.drop_cache();
    let expected: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    let sum = rt
        .pushdown(PushdownOpts::new(), move |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        })
        .expect("a synchronous replica repairs every corruption");
    assert_eq!(sum, expected, "repaired sum must match the oracle");
    let sites: Vec<(u64, u64)> = rt
        .trace()
        .events()
        .iter()
        .filter_map(|rec| match rec.event {
            TraceEvent::CorruptionInjected { page, offset } => Some((page, offset)),
            _ => None,
        })
        .collect();
    let digest = rt.trace().digest();
    (rt, sites, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed ⇒ identical corruption sites and a byte-identical trace
    /// digest, across two independent runs.
    #[test]
    fn same_seed_means_identical_corruption_and_digest(seed in any::<u64>()) {
        let (rt_a, sites_a, digest_a) = corruption_run(seed);
        let (rt_b, sites_b, digest_b) = corruption_run(seed);
        prop_assert!(!sites_a.is_empty(), "the plan must corrupt something");
        prop_assert_eq!(&sites_a, &sites_b, "corruption sites differ");
        prop_assert_eq!(digest_a, digest_b, "trace digests differ");
        prop_assert_eq!(rt_a.trace().len(), rt_b.trace().len(), "event counts differ");
        prop_assert_eq!(rt_a.elapsed(), rt_b.elapsed(), "virtual time differs");
    }

    /// Scrub-then-read freshness: a pool squeezed to 16 pages spills the
    /// column to storage, latent sectors rot with probability `p`, one
    /// scrubber pass repairs whatever it finds, and every subsequent read
    /// is oracle-exact with zero data loss — clean spilled pages always
    /// have an intact storage image to re-read.
    #[test]
    fn scrub_then_read_never_observes_a_stale_checksum(
        seed in any::<u64>(),
        p_pct in 10u32..=100,
    ) {
        let p = f64::from(p_pct) / 100.0;
        let cfg = DdcConfig {
            memory_pool_bytes: 16 * PAGE_SIZE,
            ..Default::default()
        };
        let mut rt = Runtime::teleport(cfg);
        rt.enable_tracing();
        let vals = column_vals();
        let col: Region<u64> = rt.alloc_region(ELEMS);
        rt.write_range(&col, 0, &vals);
        rt.install_fault_plan(
            FaultPlan::new(seed).ssd_latent_sectors(SimTime(0), FOREVER, p),
        );
        rt.drop_cache();
        rt.begin_timing();
        let (scanned, _detected) = rt.scrub_now();
        prop_assert!(scanned > 0, "the scrub must walk the mapped pages");
        let mut back = Vec::new();
        rt.read_range(&col, 0, ELEMS, &mut back);
        prop_assert_eq!(&back, &vals, "post-scrub reads must be oracle-exact");
        prop_assert_eq!(rt.data_loss(), 0, "latent rot on clean pages never loses data");
        let m = rt.metrics();
        prop_assert_eq!(
            m.get("integrity.detected"),
            m.get("integrity.repaired"),
            "every detection must resolve to a repair"
        );
    }

    /// Exactly-once repair: under a p=1.0 scribble plan with a synchronous
    /// replica, every corrupted page is detected once and repaired once,
    /// and a second full read detects and repairs nothing further.
    #[test]
    fn repair_happens_exactly_once_per_corrupted_page(seed in any::<u64>()) {
        let cfg = DdcConfig {
            replication: ReplicationMode::Synchronous,
            ..Default::default()
        };
        let mut rt = Runtime::teleport(cfg);
        rt.enable_tracing();
        let vals = column_vals();
        let col: Region<u64> = rt.alloc_region(ELEMS);
        rt.write_range(&col, 0, &vals);
        rt.begin_timing(); // before the plan: keep the injection events
        rt.install_fault_plan(
            FaultPlan::new(seed).pool_scribbles(SimTime(0), FOREVER, 1.0),
        );
        rt.drop_cache();
        let mut back = Vec::new();
        rt.read_range(&col, 0, ELEMS, &mut back);
        prop_assert_eq!(&back, &vals, "repaired reads must be oracle-exact");
        let injected = rt.trace().count(EventKind::CorruptionInjected);
        let detected = rt.trace().count(EventKind::ChecksumMismatch);
        let repaired = rt.trace().count(EventKind::PageRepaired);
        prop_assert!(injected > 0, "the p=1.0 plan must corrupt every flushed page");
        prop_assert_eq!(detected, injected, "every corruption is detected exactly once");
        prop_assert_eq!(repaired, injected, "every corruption is repaired exactly once");
        // A second full read: nothing left to detect or repair.
        let mut again = Vec::new();
        rt.read_range(&col, 0, ELEMS, &mut again);
        prop_assert_eq!(&again, &vals);
        prop_assert_eq!(rt.trace().count(EventKind::ChecksumMismatch), detected);
        prop_assert_eq!(rt.trace().count(EventKind::PageRepaired), repaired);
        prop_assert_eq!(rt.data_loss(), 0);
    }
}

/// The detection ledger balances on a mixed, partially-unrepairable run:
/// scribbles without a replica lose dirty pages, yet
/// `integrity.detected == integrity.repaired + integrity.data_loss` holds
/// and the loss surfaces as the typed error — never a wrong answer.
#[test]
fn detection_ledger_balances_even_through_data_loss() {
    let mut rt = Runtime::teleport(DdcConfig::default());
    rt.enable_tracing();
    let vals = column_vals();
    let col: Region<u64> = rt.alloc_region(ELEMS);
    rt.write_range(&col, 0, &vals);
    rt.install_fault_plan(FaultPlan::new(ddc_sim::env_seed(0xDEAD)).pool_scribbles(
        SimTime(0),
        FOREVER,
        1.0,
    ));
    rt.drop_cache();
    rt.begin_timing();
    let r = rt.pushdown(PushdownOpts::new(), move |m| {
        let mut buf = Vec::new();
        m.read_range(&col, 0, col.len(), &mut buf);
        buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
    });
    match r {
        Err(teleport::PushdownError::DataLoss { .. }) => {}
        other => panic!("expected typed DataLoss, got {other:?}"),
    }
    let m = rt.metrics();
    let detected = m.get("integrity.detected").unwrap();
    let repaired = m.get("integrity.repaired").unwrap();
    let lost = m.get("integrity.data_loss").unwrap();
    assert!(detected > 0);
    assert_eq!(detected, repaired + lost, "the ledger must balance");
    assert!(lost > 0, "unrepairable scribbles must be counted as losses");
    assert_eq!(m.get("trace.data_losses"), Some(lost));
    assert!(rt.is_alive(), "data loss is an error, not a crash");
}
