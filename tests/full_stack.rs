//! Cross-crate integration: the paper's Fig 13 shape at test scale — all
//! eight workloads (Q9/Q3/Q6, SSSP/RE/CC, WC/Grep) on all three platforms,
//! results validated against oracles, TELEPORT beating the base DDC.

use ddc_sim::{DdcConfig, MonolithicConfig, SimDuration};
use teleport::{PlatformKind, Runtime};

fn make_rt(kind: PlatformKind, ws: usize) -> Runtime {
    let ddc = DdcConfig::with_cache_ratio(ws, 0.02);
    match kind {
        PlatformKind::Local => Runtime::local(MonolithicConfig {
            dram_bytes: ws * 4 + (32 << 20),
            ..Default::default()
        }),
        PlatformKind::BaseDdc => Runtime::base_ddc(ddc),
        PlatformKind::Teleport => Runtime::teleport(ddc),
    }
}

/// Run one workload on all three platforms; returns (local, base, tele)
/// times after asserting result correctness inside the closure.
fn three_way(ws: usize, mut work: impl FnMut(&mut Runtime) -> SimDuration) -> [SimDuration; 3] {
    let mut out = [SimDuration::ZERO; 3];
    for (i, kind) in [
        PlatformKind::Local,
        PlatformKind::BaseDdc,
        PlatformKind::Teleport,
    ]
    .into_iter()
    .enumerate()
    {
        let mut rt = make_rt(kind, ws);
        out[i] = work(&mut rt);
    }
    out
}

fn prepare(rt: &mut Runtime) {
    if rt.kind() != PlatformKind::Local {
        rt.drop_cache();
    }
    rt.begin_timing();
}

#[test]
fn fig13_shape_database() {
    use memdb::queries::ops;
    use memdb::{oracle, q6, q9, Database, PushdownPlan, QueryParams, TpchData};

    let data = TpchData::generate(0.002, 5);
    let params = QueryParams::default();
    let ws = data.working_set_bytes();
    let expected_q6 = oracle::q6(&data, &params);
    let expected_q9 = oracle::q9(&data, &params);

    for (name, runner) in [
        (
            "Q6",
            Box::new(|rt: &mut Runtime| {
                let db = Database::load(rt, &data);
                prepare(rt);
                let plan = if rt.kind() == PlatformKind::Teleport {
                    PushdownPlan::of(ops::Q6)
                } else {
                    PushdownPlan::none()
                };
                let (r, rep) = q6(rt, &db, &plan, &params);
                assert!((r - expected_q6).abs() < 1e-6 * expected_q6.abs());
                rep.total()
            }) as Box<dyn FnMut(&mut Runtime) -> SimDuration>,
        ),
        (
            "Q9",
            Box::new(|rt: &mut Runtime| {
                let db = Database::load(rt, &data);
                prepare(rt);
                let plan = if rt.kind() == PlatformKind::Teleport {
                    PushdownPlan::top_k(ops::Q9, 4)
                } else {
                    PushdownPlan::none()
                };
                let (r, rep) = q9(rt, &db, &plan, &params);
                assert_eq!(r.len(), expected_q9.len());
                rep.total()
            }),
        ),
    ] {
        let [local, base, tele] = three_way(ws, runner);
        assert!(base > local, "{name}: disaggregation costs something");
        assert!(
            tele < base,
            "{name}: TELEPORT must beat base DDC ({tele} vs {base})"
        );
    }
}

#[test]
fn fig13_shape_graph() {
    use graphproc::algos::{cc, sssp};
    use graphproc::{social_graph, ConnectedComponents, GasEngine, GasPlan, Sssp};

    let g = social_graph(1_500, 4, 11);
    let ws = g.bytes() + g.n() * 16;
    let expected_sssp = sssp::oracle(&g, 0);
    let expected_cc = cc::oracle(&g);

    let [_, base, tele] = three_way(ws, |rt| {
        let eng = GasEngine::load(rt, &g);
        prepare(rt);
        let plan = if rt.kind() == PlatformKind::Teleport {
            GasPlan::paper()
        } else {
            GasPlan::none()
        };
        let (d, rep) = eng.run(rt, &Sssp { source: 0 }, &plan);
        assert_eq!(d, expected_sssp);
        let (c, rep2) = eng.run(rt, &ConnectedComponents, &plan);
        assert_eq!(c, expected_cc);
        rep.total() + rep2.total()
    });
    assert!(tele < base, "graph workloads: {tele} vs {base}");
}

#[test]
fn fig13_shape_mapreduce() {
    use mapred::{
        grep_oracle, run, wordcount_oracle, Corpus, Grep, LoadedCorpus, MrPlan, WordCount,
    };

    let corpus = Corpus::generate(800, 2_000, 3);
    let ws = corpus.bytes() * 3;
    let expected_wc = wordcount_oracle(&corpus);
    let expected_grep = grep_oracle(&corpus, 7);

    let [_, base, tele] = three_way(ws, |rt| {
        let input = LoadedCorpus::load(rt, &corpus);
        prepare(rt);
        let plan = if rt.kind() == PlatformKind::Teleport {
            MrPlan::paper()
        } else {
            MrPlan::none()
        };
        let (wc, rep) = run(rt, &input, &WordCount, 4, 2, &plan);
        assert_eq!(wc, expected_wc);
        let (gr, rep2) = run(rt, &input, &Grep { pattern: 7 }, 4, 2, &plan);
        assert_eq!(gr.iter().map(|&(_, v)| v).sum::<u64>(), expected_grep);
        rep.total() + rep2.total()
    });
    assert!(tele < base, "mapreduce workloads: {tele} vs {base}");
}

#[test]
fn memory_pool_failure_kills_every_system() {
    // A DDC losing its memory pool is fatal no matter the application.
    use teleport::{PushdownError, PushdownOpts};
    let mut rt = make_rt(PlatformKind::Teleport, 1 << 20);
    rt.inject_memory_pool_failure();
    let r = rt.pushdown(PushdownOpts::new(), |_| 0u64);
    assert_eq!(r.unwrap_err(), PushdownError::KernelPanic);
    assert!(!rt.is_alive());
}

#[test]
fn the_same_binary_runs_on_all_platforms() {
    // The paper's backward-compatibility story: identical application code
    // (here: a closure using only the `Mem` trait) runs unmodified on all
    // three platforms.
    use teleport::{Mem, PushdownOpts};
    fn workload(rt: &mut Runtime) -> u64 {
        let col = rt.alloc_region::<u64>(10_000);
        let vals: Vec<u64> = (0..10_000u64).collect();
        rt.write_range(&col, 0, &vals);
        rt.pushdown(PushdownOpts::new(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().copied().max().unwrap_or(0)
        })
        .expect("runs everywhere")
    }
    for kind in [
        PlatformKind::Local,
        PlatformKind::BaseDdc,
        PlatformKind::Teleport,
    ] {
        let mut rt = make_rt(kind, 1 << 20);
        assert_eq!(workload(&mut rt), 9_999, "{kind:?}");
    }
}
