//! The exhaustive crash-point sweep (the recovery plane's headline test).
//!
//! One fixed, seeded op script runs against a Teleport rack. Then, for
//! *every* boundary between two ops, a fresh same-seed run is interrupted
//! there: the shard's volatile state is wiped (`crash_pool`) and rebuilt
//! (`restart_pool`) from the SSD-authoritative base plus a checksummed
//! journal replay. After every crash point:
//!
//! - the surviving state is **bit-identical** to a host-memory shadow
//!   oracle that never crashed;
//! - every pushdown issued after the restart still matches the oracle;
//! - the run is **seed-deterministic**: repeating the same crash point
//!   with the same seed reproduces the trace digest bit-for-bit.
//!
//! Three sweeps cover the three recovery lives: primary recovery
//! (journal replay), torn-tail recovery (the un-synced suffix is
//! discarded, loss bounded by the sync batch), and the zombie path
//! (crash → failover → fenced rejoin as a re-silvered standby).

use ddc_os::recovery::JOURNAL_SYNC_BATCH;
use ddc_sim::{DdcConfig, ReplicationMode, PAGE_SIZE};
use teleport::{Mem, PushdownOpts, Runtime};

const PAGES: usize = 8;
const ELEMS: usize = PAGES * PAGE_SIZE / 8;
const OPS: usize = 24;

/// A tiny deterministic generator (no external RNG — the script must be
/// identical on every run and every platform).
fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// One step of the fixed workload script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Overwrite `len` elements at `at` with a value stream seeded `tag`.
    Write { at: usize, len: usize, tag: u64 },
    /// Pushdown a full-region wrapping sum and check it against the shadow.
    Sum,
    /// Flush dirty compute pages to the pool (`syncmem`), moving journal
    /// and write-back state so crash points land in varied cache states.
    Flush,
}

/// The fixed script: seeded, so every run (and every crash point's run)
/// replays the same op sequence.
fn script(seed: u64) -> Vec<Op> {
    let mut s = seed;
    (0..OPS)
        .map(|_| match lcg(&mut s) % 4 {
            0 | 1 => {
                let at = (lcg(&mut s) as usize) % (ELEMS - 64);
                let len = 1 + (lcg(&mut s) as usize) % 64;
                Op::Write {
                    at,
                    len,
                    tag: lcg(&mut s),
                }
            }
            2 => Op::Sum,
            _ => Op::Flush,
        })
        .collect()
}

fn apply(rt: &mut Runtime, region: &teleport::Region<u64>, shadow: &mut [u64], op: Op) {
    match op {
        Op::Write { at, len, tag } => {
            let vals: Vec<u64> = (0..len as u64).map(|j| tag ^ (j << 7)).collect();
            rt.write_range(region, at, &vals);
            shadow[at..at + len].copy_from_slice(&vals);
        }
        Op::Sum => {
            let n = region.len();
            let r = *region;
            let got = rt
                .pushdown(PushdownOpts::new(), move |m| {
                    let mut buf = Vec::new();
                    m.read_range(&r, 0, n, &mut buf);
                    buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
                })
                .expect("the scripted pushdown never faults");
            let want = shadow.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            assert_eq!(got, want, "mid-script pushdown sum diverged from shadow");
        }
        Op::Flush => {
            rt.syncmem();
        }
    }
}

/// Which recovery life the sweep exercises at the crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Life {
    /// No failover while down: rebuild by journal replay.
    Primary,
    /// Primary, but the crash caught a journal write in flight: the
    /// un-synced tail is corrupt and must be discarded on replay.
    Torn,
    /// A standing replica is promoted while the shard is down; the woken
    /// zombie is fenced and rejoins as a re-silvered standby.
    Zombie,
}

/// Run the script, crashing shard 0 just before op `crash_at` (`None` =
/// crash-free baseline). Returns the trace digest after asserting the
/// final state is bit-identical to the shadow oracle.
fn run(seed: u64, crash_at: Option<usize>, life: Life) -> u64 {
    let mut ddc = DdcConfig::with_cache_ratio(PAGES * PAGE_SIZE, 0.25);
    ddc.replication = match life {
        Life::Zombie => ReplicationMode::Synchronous,
        _ => ReplicationMode::Off,
    };
    let mut rt = Runtime::teleport(ddc);
    rt.enable_tracing();
    let region = rt.alloc_region::<u64>(ELEMS);
    let mut shadow = vec![0u64; ELEMS];
    // Seed the region so every page exists before the journal snapshots
    // its base; writes after this point ride the journal.
    let init: Vec<u64> = (0..ELEMS as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
    rt.write_range(&region, 0, &init);
    shadow.copy_from_slice(&init);
    rt.dos_mut().enable_recovery_journal();
    rt.begin_timing();

    for (i, op) in script(seed).into_iter().enumerate() {
        if crash_at == Some(i) {
            crash_and_restart(&mut rt, life);
        }
        apply(&mut rt, &region, &mut shadow, op);
    }
    if crash_at == Some(OPS) {
        crash_and_restart(&mut rt, life);
    }

    // The recovered state must equal the never-crashed shadow oracle
    // bit-for-bit — both via the compute-side read path...
    let mut buf = Vec::new();
    rt.read_range(&region, 0, ELEMS, &mut buf);
    assert_eq!(buf, shadow, "recovered bytes diverged from the host oracle");
    // ...and via a fresh pushdown against the recovered shard.
    let n = region.len();
    let got = rt
        .pushdown(PushdownOpts::new(), move |m| {
            let mut b = Vec::new();
            m.read_range(&region, 0, n, &mut b);
            b.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        })
        .expect("post-recovery pushdown");
    assert_eq!(
        got,
        shadow.iter().fold(0u64, |a, &b| a.wrapping_add(b)),
        "post-recovery pushdown sum diverged from the host oracle"
    );
    assert!(rt.is_alive(), "a crash-restart never kills the rack");
    rt.trace().digest()
}

fn crash_and_restart(rt: &mut Runtime, life: Life) {
    let dos = rt.dos_mut();
    if life == Life::Torn {
        // Model the crash catching a journal write in flight: the first
        // un-synced entry's checksum is corrupted before the wipe.
        dos.tear_journal_tail(0);
    }
    let stale = dos.crash_pool(0);
    if life == Life::Zombie {
        let fo = dos
            .failover_to_replica_for(0)
            .expect("the zombie sweep runs with a synchronous replica");
        assert!(fo.new_epoch > stale, "promotion must advance the epoch");
    }
    let report = dos.restart_pool(0);
    match life {
        Life::Primary | Life::Torn => {
            assert!(
                !report.rejoined_as_standby,
                "no failover happened, so the shard recovers as primary"
            );
            assert!(
                report.replay.applied_entries > 0,
                "the journal base snapshot always replays"
            );
            if life == Life::Primary {
                assert_eq!(
                    report.replay.discarded_entries, 0,
                    "an intact journal discards nothing"
                );
            } else {
                assert!(
                    report.replay.discarded_entries <= JOURNAL_SYNC_BATCH as u64,
                    "torn-tail loss is bounded by the un-synced batch"
                );
            }
        }
        Life::Zombie => {
            assert!(
                report.rejoined_as_standby,
                "a fenced zombie rejoins as standby"
            );
            assert_eq!(
                report.fenced_stale_epoch,
                Some(report.epoch - 1),
                "the fence names the epoch the zombie died holding"
            );
            assert!(
                dos.has_replica_for(0),
                "the rejoined standby backs the promoted primary"
            );
        }
    }
}

/// Primary recovery at every op boundary, each point run twice: the
/// recovered state matches the oracle and the digest is seed-stable.
#[test]
fn primary_recovery_at_every_crash_point() {
    let seed = 0x5EED_C4A5;
    let baseline = run(seed, None, Life::Primary);
    for k in 0..=OPS {
        let d1 = run(seed, Some(k), Life::Primary);
        let d2 = run(seed, Some(k), Life::Primary);
        assert_eq!(d1, d2, "crash point {k}: same seed must replay the digest");
        assert_ne!(
            d1, baseline,
            "crash point {k}: the crash must be visible in the trace"
        );
    }
}

/// Torn-tail recovery at every op boundary: the corrupt suffix is
/// discarded (bounded loss), and the surviving state still equals the
/// oracle because the SSD base is authoritative.
#[test]
fn torn_tail_recovery_at_every_crash_point() {
    let seed = 0x5EED_7042;
    for k in 0..=OPS {
        let d1 = run(seed, Some(k), Life::Torn);
        let d2 = run(seed, Some(k), Life::Torn);
        assert_eq!(d1, d2, "torn point {k}: same seed must replay the digest");
    }
}

/// The zombie path at every op boundary: crash, failover, fenced rejoin
/// as a re-silvered standby — while the script keeps running against the
/// promoted primary.
#[test]
fn zombie_rejoin_at_every_crash_point() {
    let seed = 0x5EED_F33D;
    for k in 0..=OPS {
        let d1 = run(seed, Some(k), Life::Zombie);
        let d2 = run(seed, Some(k), Life::Zombie);
        assert_eq!(d1, d2, "zombie point {k}: same seed must replay the digest");
    }
}
