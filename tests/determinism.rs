//! Full-stack determinism: running the same experiment twice — data
//! generation, loading, querying, graph processing, MapReduce, and the
//! pushdown microbenchmarks — must produce *bit-identical* virtual times
//! and statistics. This is what makes every number in EXPERIMENTS.md
//! reproducible on any machine.

use ddc_sim::DdcConfig;
use teleport::Runtime;

fn db_run() -> (u64, u64, u64) {
    use memdb::{q9, Database, PushdownPlan, QueryParams, TpchData};
    let data = TpchData::generate(0.002, 99);
    let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.02));
    let db = Database::load(&mut rt, &data);
    rt.drop_cache();
    rt.begin_timing();
    let plan = PushdownPlan::top_k(memdb::queries::ops::Q9, 4);
    let (_, rep) = q9(&mut rt, &db, &plan, &QueryParams::default());
    let ledger = rt.net_ledger();
    (
        rep.total().as_nanos(),
        ledger.total_messages(),
        rt.paging_stats().cache_misses,
    )
}

#[test]
fn database_runs_are_bit_identical() {
    assert_eq!(db_run(), db_run());
}

#[test]
fn graph_runs_are_bit_identical() {
    use graphproc::{social_graph, GasPlan, Sssp};
    let run = || {
        let g = social_graph(2_000, 4, 5);
        let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(g.bytes() * 2, 0.02));
        let eng = graphproc::GasEngine::load(&mut rt, &g);
        rt.drop_cache();
        rt.begin_timing();
        let (dist, rep) = eng.run(&mut rt, &Sssp { source: 0 }, &GasPlan::paper());
        (
            rep.total().as_nanos(),
            rep.iterations,
            dist.iter().filter(|d| d.is_finite()).count(),
            rt.net_ledger().coherence.messages,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mapreduce_runs_are_bit_identical() {
    use mapred::{run, Corpus, LoadedCorpus, MrPlan, WordCount};
    let go = || {
        let c = Corpus::generate(500, 1_000, 3);
        let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(c.bytes() * 3, 0.02));
        let input = LoadedCorpus::load(&mut rt, &c);
        rt.drop_cache();
        rt.begin_timing();
        let (out, rep) = run(&mut rt, &input, &WordCount, 4, 2, &MrPlan::paper());
        (rep.total().as_nanos(), rep.pairs_shuffled, out.len())
    };
    assert_eq!(go(), go());
}

/// One traced workload, any platform: compute-side writes, a pushdown
/// (local fallback off-Teleport), and the digest + length of the event
/// stream it leaves behind.
fn traced_digest(kind: teleport::PlatformKind) -> (u64, u64) {
    use ddc_os::Pattern;
    use ddc_sim::{MonolithicConfig, PAGE_SIZE};
    use teleport::{Mem, PlatformKind, PushdownOpts};

    let pages = 8usize;
    let ws = pages * PAGE_SIZE;
    let mut rt = match kind {
        PlatformKind::Local => Runtime::local(MonolithicConfig {
            dram_bytes: ws * 4 + (32 << 20),
            ..Default::default()
        }),
        PlatformKind::BaseDdc => Runtime::base_ddc(DdcConfig::with_cache_ratio(ws, 0.25)),
        PlatformKind::Teleport => Runtime::teleport(DdcConfig::with_cache_ratio(ws, 0.25)),
    };
    rt.enable_tracing();
    let region = rt.alloc_region::<u64>(pages * PAGE_SIZE / 8);
    if kind != teleport::PlatformKind::Local {
        rt.drop_cache();
    }
    rt.begin_timing();
    for p in 0..pages {
        rt.set(&region, p * PAGE_SIZE / 8, p as u64 + 1, Pattern::Rand);
    }
    let n = region.len();
    let sum = rt
        .pushdown(PushdownOpts::new(), move |m| {
            let mut buf = Vec::new();
            m.read_range(&region, 0, n, &mut buf);
            buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
        })
        .unwrap();
    assert_eq!(sum, (1..=pages as u64).sum::<u64>());
    (rt.trace().digest(), rt.trace().len())
}

#[test]
fn trace_digests_are_bit_identical_across_reruns() {
    use teleport::PlatformKind;
    let mut digests = Vec::new();
    for kind in [
        PlatformKind::Local,
        PlatformKind::BaseDdc,
        PlatformKind::Teleport,
    ] {
        let first = traced_digest(kind);
        assert_eq!(first, traced_digest(kind), "{kind:?} trace stream drifted");
        digests.push(first.0);
    }
    // The three platforms take genuinely different paths (no faults vs
    // paging vs pushdown), so their streams must not collide either.
    assert_ne!(digests[0], digests[1]);
    assert_ne!(digests[1], digests[2]);
    assert_ne!(digests[0], digests[2]);
}

#[test]
fn disabled_coherence_is_silent_and_syncmem_traces_one_span() {
    use ddc_os::Pattern;
    use ddc_sim::{EventKind, PAGE_SIZE};
    use teleport::{CoherenceMode, Mem, PushdownOpts};

    let run = |mode: CoherenceMode| {
        let mut rt = Runtime::teleport(DdcConfig {
            compute_cache_bytes: 8 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            ..Default::default()
        });
        rt.enable_tracing();
        let region = rt.alloc_region::<u64>(4 * PAGE_SIZE / 8);
        rt.begin_timing();
        // Cache all four pages writable so a coherent pushdown would have
        // to message for every one of its writes.
        for p in 0..4usize {
            rt.set(&region, p * PAGE_SIZE / 8, 1, Pattern::Rand);
        }
        rt.pushdown(PushdownOpts::new().coherence(mode), move |m| {
            for p in 0..4usize {
                m.set(&region, p * PAGE_SIZE / 8 + 1, 2, Pattern::Rand);
            }
        })
        .unwrap();
        rt
    };

    // Regression: fully disabled coherence must leave *zero* coherence
    // events in the trace, and the catch-up `syncmem` is exactly one span.
    let mut rt = run(CoherenceMode::Disabled);
    assert_eq!(rt.trace().count(EventKind::CoherenceMsg), 0);
    assert_eq!(rt.trace().count(EventKind::Syncmem), 0);
    rt.syncmem();
    assert_eq!(
        rt.trace().count(EventKind::Syncmem),
        1,
        "syncmem is one traced span"
    );
    assert_eq!(rt.trace().count(EventKind::CoherenceMsg), 0);

    // Counterpart: the default coherent mode messages for those same pages.
    let rt = run(CoherenceMode::WriteInvalidate);
    assert!(rt.trace().count(EventKind::CoherenceMsg) > 0);
}

#[test]
fn microbenchmarks_are_bit_identical() {
    use teleport::microbench::{run_contention, ContentionPlatform, ContentionSpec};
    use teleport::CoherenceMode;
    let spec = ContentionSpec {
        region_pages: 512,
        ops: 2_000,
        contention_rate: 0.01,
        ..Default::default()
    };
    let run = || {
        let r = run_contention(
            &spec,
            ContentionPlatform::Teleport(CoherenceMode::WriteInvalidate),
        );
        (r.makespan.as_nanos(), r.coherence_msgs, r.backoffs)
    };
    assert_eq!(run(), run());
}
