//! Full-stack determinism: running the same experiment twice — data
//! generation, loading, querying, graph processing, MapReduce, and the
//! pushdown microbenchmarks — must produce *bit-identical* virtual times
//! and statistics. This is what makes every number in EXPERIMENTS.md
//! reproducible on any machine.

use ddc_sim::DdcConfig;
use teleport::Runtime;

fn db_run() -> (u64, u64, u64) {
    use memdb::{q9, Database, PushdownPlan, QueryParams, TpchData};
    let data = TpchData::generate(0.002, 99);
    let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.02));
    let db = Database::load(&mut rt, &data);
    rt.drop_cache();
    rt.begin_timing();
    let plan = PushdownPlan::top_k(memdb::queries::ops::Q9, 4);
    let (_, rep) = q9(&mut rt, &db, &plan, &QueryParams::default());
    let ledger = rt.net_ledger();
    (
        rep.total().as_nanos(),
        ledger.total_messages(),
        rt.paging_stats().cache_misses,
    )
}

#[test]
fn database_runs_are_bit_identical() {
    assert_eq!(db_run(), db_run());
}

#[test]
fn graph_runs_are_bit_identical() {
    use graphproc::{social_graph, GasPlan, Sssp};
    let run = || {
        let g = social_graph(2_000, 4, 5);
        let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(g.bytes() * 2, 0.02));
        let eng = graphproc::GasEngine::load(&mut rt, &g);
        rt.drop_cache();
        rt.begin_timing();
        let (dist, rep) = eng.run(&mut rt, &Sssp { source: 0 }, &GasPlan::paper());
        (
            rep.total().as_nanos(),
            rep.iterations,
            dist.iter().filter(|d| d.is_finite()).count(),
            rt.net_ledger().coherence.messages,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mapreduce_runs_are_bit_identical() {
    use mapred::{run, Corpus, LoadedCorpus, MrPlan, WordCount};
    let go = || {
        let c = Corpus::generate(500, 1_000, 3);
        let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(c.bytes() * 3, 0.02));
        let input = LoadedCorpus::load(&mut rt, &c);
        rt.drop_cache();
        rt.begin_timing();
        let (out, rep) = run(&mut rt, &input, &WordCount, 4, 2, &MrPlan::paper());
        (rep.total().as_nanos(), rep.pairs_shuffled, out.len())
    };
    assert_eq!(go(), go());
}

#[test]
fn microbenchmarks_are_bit_identical() {
    use teleport::microbench::{run_contention, ContentionPlatform, ContentionSpec};
    use teleport::CoherenceMode;
    let spec = ContentionSpec {
        region_pages: 512,
        ops: 2_000,
        contention_rate: 0.01,
        ..Default::default()
    };
    let run = || {
        let r = run_contention(
            &spec,
            ContentionPlatform::Teleport(CoherenceMode::WriteInvalidate),
        );
        (r.makespan.as_nanos(), r.coherence_msgs, r.backoffs)
    };
    assert_eq!(run(), run());
}
