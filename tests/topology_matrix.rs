//! Rack-scale topology matrix: {1, 2, 4 pools} × {FirstFit, Locality,
//! LoadBalance} × {memdb Q9, graphproc SSSP, mapred WordCount}.
//!
//! Sharding the memory pool may change *when* things happen (routing and
//! fan-out RPCs add virtual time) but never *what* the workload computes:
//! every cell must agree with the host-memory oracle and with the
//! single-pool baseline bit-for-bit. On top of that, `pools = 1` must
//! reproduce the pre-topology golden trace digests exactly — the refactor
//! is invisible until a second pool actually exists.

use ddc_sim::{DdcConfig, PlacementPolicy};
use teleport::Runtime;

const POOLS: [usize; 3] = [1, 2, 4];
const POLICIES: [PlacementPolicy; 3] = [
    PlacementPolicy::FirstFit,
    PlacementPolicy::Locality,
    PlacementPolicy::LoadBalance,
];

/// Pre-topology goldens: (trace digest, trace len, total virtual ns) of the
/// exact workload recipes below on the single-pool kernel at the commit
/// before the pool-set refactor. Any drift here is a determinism break.
const GOLDEN_MEMDB: (u64, u64, u64) = (0xeb2e_d53a_24a0_922b, 525, 4_486_740);
const GOLDEN_GRAPH: (u64, u64, u64) = (0x1514_598e_1c41_69ad, 245, 5_657_725);
const GOLDEN_MAPRED: (u64, u64, u64) = (0x3cb4_f9ec_a606_c4e3, 200, 3_056_139);

fn topo(mut cfg: DdcConfig, pools: usize, placement: PlacementPolicy) -> DdcConfig {
    cfg.pools = pools;
    cfg.placement = placement;
    cfg.validate().expect("matrix config validates");
    cfg
}

#[test]
fn memdb_q9_matrix_agrees_with_oracle_and_single_pool_baseline() {
    use memdb::{oracle, q9, Database, PushdownPlan, Q9Row, QueryParams, TpchData};

    let data = TpchData::generate(0.002, 99);
    let params = QueryParams::default();
    let expected = oracle::q9(&data, &params);
    let mut baseline: Option<Vec<Q9Row>> = None;

    for policy in POLICIES {
        for pools in POOLS {
            let cfg = topo(
                DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.02),
                pools,
                policy,
            );
            let mut rt = Runtime::teleport(cfg);
            rt.enable_tracing();
            let db = Database::load(&mut rt, &data);
            rt.drop_cache();
            rt.begin_timing();
            let plan = PushdownPlan::top_k(memdb::queries::ops::Q9, 4);
            let (rows, rep) = q9(&mut rt, &db, &plan, &params);

            assert_eq!(
                rows.len(),
                expected.len(),
                "pools={pools} {policy:?}: Q9 row count disagrees with oracle"
            );
            match &baseline {
                None => baseline = Some(rows),
                Some(b) => assert_eq!(
                    &rows, b,
                    "pools={pools} {policy:?}: Q9 result drifted from single-pool baseline"
                ),
            }
            if pools == 1 {
                assert_eq!(
                    (
                        rt.trace().digest(),
                        rt.trace().len(),
                        rep.total().as_nanos()
                    ),
                    GOLDEN_MEMDB,
                    "{policy:?}: single-pool Q9 no longer reproduces the pre-topology golden"
                );
            } else {
                assert!(
                    rt.metrics().get("topology.pools") == Some(pools as u64),
                    "pools={pools}: runtime does not report its topology"
                );
            }
        }
    }
}

#[test]
fn graph_sssp_matrix_agrees_with_oracle_and_single_pool_baseline() {
    use graphproc::algos::sssp;
    use graphproc::{social_graph, GasEngine, GasPlan, Sssp};

    let g = social_graph(2_000, 4, 5);
    let expected = sssp::oracle(&g, 0);
    let mut baseline: Option<Vec<f64>> = None;

    for policy in POLICIES {
        for pools in POOLS {
            let cfg = topo(
                DdcConfig::with_cache_ratio(g.bytes() * 2, 0.02),
                pools,
                policy,
            );
            let mut rt = Runtime::teleport(cfg);
            rt.enable_tracing();
            let eng = GasEngine::load(&mut rt, &g);
            rt.drop_cache();
            rt.begin_timing();
            let (dist, rep) = eng.run(&mut rt, &Sssp { source: 0 }, &GasPlan::paper());

            assert_eq!(
                dist, expected,
                "pools={pools} {policy:?}: SSSP distances disagree with BFS oracle"
            );
            match &baseline {
                None => baseline = Some(dist),
                Some(b) => assert_eq!(
                    &dist, b,
                    "pools={pools} {policy:?}: SSSP drifted from single-pool baseline"
                ),
            }
            if pools == 1 {
                assert_eq!(
                    (
                        rt.trace().digest(),
                        rt.trace().len(),
                        rep.total().as_nanos()
                    ),
                    GOLDEN_GRAPH,
                    "{policy:?}: single-pool SSSP no longer reproduces the pre-topology golden"
                );
            }
        }
    }
}

#[test]
fn mapred_wordcount_matrix_agrees_with_oracle_and_single_pool_baseline() {
    use mapred::{apps::wordcount_oracle, run, Corpus, LoadedCorpus, MrPlan, WordCount};

    let c = Corpus::generate(500, 1_000, 3);
    let expected = wordcount_oracle(&c);
    let mut baseline: Option<Vec<(u32, u64)>> = None;

    for policy in POLICIES {
        for pools in POOLS {
            let cfg = topo(
                DdcConfig::with_cache_ratio(c.bytes() * 3, 0.02),
                pools,
                policy,
            );
            let mut rt = Runtime::teleport(cfg);
            rt.enable_tracing();
            let input = LoadedCorpus::load(&mut rt, &c);
            rt.drop_cache();
            rt.begin_timing();
            let (out, rep) = run(&mut rt, &input, &WordCount, 4, 2, &MrPlan::paper());

            assert_eq!(
                out, expected,
                "pools={pools} {policy:?}: WordCount output disagrees with oracle"
            );
            match &baseline {
                None => baseline = Some(out),
                Some(b) => assert_eq!(
                    &out, b,
                    "pools={pools} {policy:?}: WordCount drifted from single-pool baseline"
                ),
            }
            if pools == 1 {
                assert_eq!(
                    (rt.trace().digest(), rt.trace().len(), rep.total().as_nanos()),
                    GOLDEN_MAPRED,
                    "{policy:?}: single-pool WordCount no longer reproduces the pre-topology golden"
                );
            }
        }
    }
}

/// The scripted micro-workload from `tests/determinism.rs` pinned to its
/// pre-topology golden, plus the multi-pool claim that matters most for a
/// range pushdown: LoadBalance striping makes it touch every shard and the
/// fan-out still returns the right answer.
#[test]
fn micro_pushdown_matrix_and_single_pool_golden() {
    use ddc_os::Pattern;
    use ddc_sim::PAGE_SIZE;
    use teleport::{Mem, PushdownOpts};

    const GOLDEN_MICRO: (u64, u64) = (0x30ce_a5e0_7628_8958, 46);
    let pages = 8usize;
    let ws = pages * PAGE_SIZE;

    let run = |pools: usize, policy: PlacementPolicy| {
        let mut rt = Runtime::teleport(topo(DdcConfig::with_cache_ratio(ws, 0.25), pools, policy));
        rt.enable_tracing();
        let region = rt.alloc_region::<u64>(pages * PAGE_SIZE / 8);
        rt.drop_cache();
        rt.begin_timing();
        for p in 0..pages {
            rt.set(&region, p * PAGE_SIZE / 8, p as u64 + 1, Pattern::Rand);
        }
        let n = region.len();
        let sum = rt
            .pushdown(PushdownOpts::new(), move |m| {
                let mut buf = Vec::new();
                m.read_range(&region, 0, n, &mut buf);
                buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
            })
            .unwrap();
        assert_eq!(
            sum,
            (1..=pages as u64).sum::<u64>(),
            "pools={pools} {policy:?}"
        );
        (
            rt.trace().digest(),
            rt.trace().len(),
            rt.metrics().get("topology.fanout_pushdowns").unwrap_or(0),
        )
    };

    for policy in POLICIES {
        let (digest, len, _) = run(1, policy);
        assert_eq!(
            (digest, len),
            GOLDEN_MICRO,
            "{policy:?}: single-pool micro trace no longer reproduces the pre-topology golden"
        );
    }
    // Striped across 4 shards, an 8-page read_range must fan out.
    let (_, _, fanouts) = run(4, PlacementPolicy::LoadBalance);
    assert!(
        fanouts >= 1,
        "LoadBalance over 4 pools: range pushdown should have fanned out"
    );
}
