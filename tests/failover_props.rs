//! Property and scenario tests for memory-pool replication,
//! crash-consistent failover, and admission control.
//!
//! The invariants, in the order the tentpole demands them:
//!
//! 1. **Oracle equality** — after a failover, every allocated region reads
//!    back bit-identical to the host oracle, whether the value was produced
//!    by a retried pushdown against the promoted pool or by compute-side
//!    reads afterwards.
//! 2. **Determinism** — same fault seed + config ⇒ identical failover
//!    epoch sequence and byte-identical trace digest across two runs, even
//!    with probabilistic chaos layered on top of the pool death.
//! 3. **Admission soundness** — admission control never rejects a request
//!    whose backlog is under the configured threshold, and always sheds
//!    (with the typed error) past it.

use ddc_sim::{
    env_seed, DdcConfig, EventKind, FaultPlan, ReplicationMode, SimDuration, SimTime, FOREVER,
};
use proptest::prelude::*;
use teleport::{
    AdmissionPolicy, ExecutionVia, Mem, PushdownError, PushdownOpts, Region, ResiliencePolicy,
    Runtime,
};

const ELEMS: usize = 4096; // 8 pages of u64

/// Deterministic pseudo-random column content.
fn column_vals() -> Vec<u64> {
    (0..ELEMS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect()
}

/// The shared failover scenario: load a column, start timing, run one
/// pushdown that *writes* half the column memory-side (so dirty pages
/// replicate inside the measured window), kill the pool permanently, then
/// recover the full sum through a retry against the promoted backup.
/// Returns the runtime and the host oracle of the final column state.
fn run_failover_scenario(mode: ReplicationMode, seed: u64, chaos: bool) -> (Runtime, Vec<u64>) {
    let cfg = DdcConfig {
        replication: mode,
        ..Default::default()
    };
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();

    let mut oracle = column_vals();
    let col = rt.alloc_region::<u64>(ELEMS);
    rt.write_range(&col, 0, &oracle);
    rt.begin_timing();

    // Timed phase, pool still healthy: rewrite the first half memory-side.
    rt.pushdown(PushdownOpts::new(), |m| {
        for i in 0..ELEMS / 2 {
            let v = m.get(&col, i, ddc_os::Pattern::Seq) ^ 0x5555_5555;
            m.set(&col, i, v, ddc_os::Pattern::Seq);
        }
        m.charge_cycles(ELEMS as u64);
    })
    .expect("healthy pushdown");
    for v in oracle.iter_mut().take(ELEMS / 2) {
        *v ^= 0x5555_5555;
    }

    // Permanent pool death (plus, optionally, probabilistic chaos that the
    // seed must keep deterministic).
    let mut plan = FaultPlan::new(seed).memory_pool_death(SimTime(0));
    if chaos {
        plan = plan.ssd_transient_errors(SimTime(0), FOREVER, 0.3);
    }
    rt.install_fault_plan(plan);

    let expected: u64 = oracle.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    let out = rt
        .pushdown_resilient(PushdownOpts::new(), &ResiliencePolicy::retry_only(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        })
        .expect("retry reaches the promoted pool");
    assert_eq!(out.via, ExecutionVia::Pushdown);
    assert_eq!(out.attempts, 1, "one failover, one retry");
    assert_eq!(out.value, expected, "post-failover sum matches the oracle");

    // Compute-side reads of the whole region after the failover.
    let mut back = Vec::new();
    rt.read_range(&col, 0, ELEMS, &mut back);
    assert_eq!(back, oracle, "every element reads back bit-identical");
    (rt, oracle)
}

#[test]
fn synchronous_failover_loses_nothing_and_is_oracle_exact() {
    let (rt, _) = run_failover_scenario(ReplicationMode::Synchronous, env_seed(7), false);
    assert!(rt.is_alive());
    assert_eq!(rt.failovers(), 1);
    assert_eq!(rt.failover_epochs(), &[1], "epoch 0 died, epoch 1 promoted");
    assert_eq!(rt.trace().count(EventKind::PoolPromoted), 1);

    let report = rt.dos().failover_report().expect("failover happened");
    assert_eq!(report.old_epoch, 0);
    assert_eq!(report.new_epoch, 1);
    assert_eq!(
        report.lost_pages, 0,
        "synchronous shipping never loses a page"
    );

    // Replication is costed, not free: traffic shows in the fabric ledger
    // and the trace, inside the timed window.
    let ledger = rt.net_ledger();
    assert!(ledger.replication.messages > 0, "ships + acks on the wire");
    assert!(
        ledger.replication.bytes > 0,
        "replication bytes are metered"
    );
    let m = rt.metrics();
    assert!(m.get("trace.replica_ships").unwrap() > 0);
    assert_eq!(
        m.get("trace.replica_acks"),
        m.get("trace.replica_ships"),
        "every ship is acked"
    );
    assert_eq!(m.get("trace.pool_promotions"), Some(1));
    assert_eq!(m.get("failover.promotions"), Some(1));
    assert_eq!(m.get("failover.lost_pages"), Some(0));
}

#[test]
fn log_shipped_tail_is_lost_but_refetched_from_storage() {
    // A batch far larger than the workload: nothing ever ships, so *every*
    // journaled page is in the un-acked tail at promotion time. Crash
    // consistency demands those pages be re-fetched from storage, never
    // silently trusted — and reads must still match the oracle.
    let (rt, _) = run_failover_scenario(
        ReplicationMode::LogShipped { batch_pages: 4096 },
        env_seed(7),
        false,
    );
    let report = rt.dos().failover_report().expect("failover happened");
    assert!(report.lost_pages > 0, "the un-acked tail is lost");
    assert_eq!(
        report.refetched_pages, report.lost_pages,
        "every lost page comes back from storage exactly once"
    );
    assert_eq!(rt.net_ledger().replication.messages, 0, "nothing shipped");
    assert!(rt.is_alive());
}

#[test]
fn small_log_batches_ship_mid_window_and_shrink_the_lost_tail() {
    let (rt, _) = run_failover_scenario(
        ReplicationMode::LogShipped { batch_pages: 2 },
        env_seed(7),
        false,
    );
    let report = rt.dos().failover_report().expect("failover happened");
    let counters = rt
        .dos()
        .replication_counters()
        .expect("pre-promotion counters survive the failover");
    assert!(counters.ship_messages > 0, "batches shipped before death");
    assert!(
        report.lost_pages <= 2,
        "at most one un-acked batch is lost, got {}",
        report.lost_pages
    );
    assert!(rt.net_ledger().replication.bytes > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + config ⇒ byte-identical trace digest and identical
    /// failover epoch sequence, across two runs that both include a
    /// failover *and* probabilistic SSD chaos.
    #[test]
    fn same_seed_means_identical_failover_and_digest(seed in any::<u64>()) {
        let run = |s: u64| {
            let (rt, _) = run_failover_scenario(ReplicationMode::Synchronous, s, true);
            (
                rt.trace().len(),
                rt.trace().digest(),
                rt.failover_epochs().to_vec(),
                rt.elapsed(),
            )
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a.0, &b.0, "event counts differ");
        prop_assert_eq!(&a.1, &b.1, "trace digests differ");
        prop_assert_eq!(&a.2, &b.2, "failover epoch sequences differ");
        prop_assert_eq!(&a.3, &b.3, "virtual time differs");
    }

    /// Admission control never rejects a request whose backlog is under
    /// the threshold, and always sheds (with the typed error, the trace
    /// event, and the counter) past it.
    #[test]
    fn admission_rejects_exactly_past_the_threshold(
        backlog_us in 0u64..2_000,
        max_us in 1u64..2_000,
    ) {
        let mut rt = Runtime::teleport(DdcConfig::default());
        rt.enable_tracing();
        let cell: Region<u64> = rt.alloc_region(1);
        rt.set(&cell, 0, 41, ddc_os::Pattern::Rand);
        rt.begin_timing();
        rt.set_admission_policy(Some(AdmissionPolicy {
            max_queue_depth: 4,
            max_backlog: SimDuration::from_micros(max_us),
        }));
        if backlog_us > 0 {
            rt.inject_queue_backlog(SimDuration::from_micros(backlog_us));
        }
        let r = rt.pushdown(PushdownOpts::new(), |m| m.get(&cell, 0, ddc_os::Pattern::Rand) + 1);
        if backlog_us <= max_us {
            prop_assert_eq!(r.expect("under threshold: admitted"), 42);
            prop_assert_eq!(rt.admission_sheds(), 0);
            prop_assert_eq!(rt.trace().count(EventKind::AdmissionShed), 0);
        } else {
            match r {
                Err(PushdownError::Rejected { backlog }) => {
                    prop_assert_eq!(backlog, SimDuration::from_micros(backlog_us));
                }
                other => prop_assert!(false, "expected rejection, got {:?}", other),
            }
            prop_assert_eq!(rt.admission_sheds(), 1);
            prop_assert_eq!(rt.trace().count(EventKind::AdmissionShed), 1);
            prop_assert_eq!(rt.metrics().get("admission.sheds"), Some(1));
        }
        prop_assert!(rt.is_alive(), "shedding never kills the runtime");
    }
}

#[test]
fn admission_shedding_degrades_gracefully_with_fallback() {
    // The QueueBacklogBurst scenario the tentpole names: under a burst the
    // pushdown is shed before queueing, the fallback policy absorbs the
    // typed rejection, and the caller still gets the oracle-exact answer.
    let mut rt = Runtime::teleport(DdcConfig::default());
    rt.enable_tracing();
    let vals = column_vals();
    let col = rt.alloc_region::<u64>(ELEMS);
    rt.write_range(&col, 0, &vals);
    rt.begin_timing();
    rt.set_admission_policy(Some(AdmissionPolicy {
        max_queue_depth: 4,
        max_backlog: SimDuration::from_millis(1),
    }));
    rt.install_fault_plan(FaultPlan::new(11).queue_backlog_burst(
        SimTime(0),
        FOREVER,
        SimDuration::from_millis(5),
    ));
    let expected: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    let out = rt
        .pushdown_resilient(
            PushdownOpts::new(),
            &ResiliencePolicy::fallback_only(),
            |m| {
                let mut buf = Vec::new();
                m.read_range(&col, 0, col.len(), &mut buf);
                buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
            },
        )
        .expect("fallback absorbs the rejection");
    assert_eq!(out.via, ExecutionVia::LocalFallback);
    assert_eq!(out.value, expected);
    assert_eq!(rt.admission_sheds(), 1);
    assert_eq!(rt.resilience_fallbacks(), 1);
    assert!(rt.is_alive());
}
