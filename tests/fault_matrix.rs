//! The chaos test matrix: {fault kind} × {platform} × {resilience policy}.
//!
//! Every scenario runs a real workload under a seeded [`FaultPlan`] and
//! checks two invariants from the paper's §3.2 exception model:
//!
//! 1. **Correctness** — whenever the resilient call produces a value (via a
//!    clean pushdown, a retry, or a local fallback), it is bit-identical to
//!    the host-memory oracle; and whenever it surfaces an error, re-running
//!    the function locally still matches the oracle (the application is
//!    "free to run the function locally").
//! 2. **Liveness** — the runtime stays alive through every survivable
//!    fault; only a permanently dead memory pool (a kernel panic) may clear
//!    the liveness flag.
//!
//! The fault seed is taken from `TELEPORT_FAULT_SEED` when set (CI pins
//! it), so a failing cell can be reproduced exactly by exporting the seed
//! the failing run printed.

use ddc_sim::{
    env_seed, ArrivalProcess, DdcConfig, FaultPlan, MonolithicConfig, PlacementPolicy, QosClass,
    ReplicationMode, SimDuration, SimTime, FOREVER,
};
use teleport::{
    AdmissionPolicy, ExecutionVia, HedgeOutcome, HedgePolicy, Mem, PlatformKind, PushdownError,
    PushdownOpts, Region, ResiliencePolicy, Runtime, ServeConfig, ServePlane, ServeReport,
    SessionOutcome,
};

const PLATFORMS: [PlatformKind; 3] = [
    PlatformKind::Local,
    PlatformKind::BaseDdc,
    PlatformKind::Teleport,
];

fn make_rt(kind: PlatformKind, ws: usize) -> Runtime {
    make_rt_replicated(kind, ws, ReplicationMode::Off)
}

fn make_rt_replicated(kind: PlatformKind, ws: usize, replication: ReplicationMode) -> Runtime {
    let mut ddc = DdcConfig::with_cache_ratio(ws, 0.02);
    ddc.replication = replication;
    match kind {
        PlatformKind::Local => Runtime::local(MonolithicConfig {
            dram_bytes: ws * 4 + (32 << 20),
            ..Default::default()
        }),
        PlatformKind::BaseDdc => Runtime::base_ddc(ddc),
        PlatformKind::Teleport => Runtime::teleport(ddc),
    }
}

fn prepare(rt: &mut Runtime) {
    if rt.kind() != PlatformKind::Local {
        rt.drop_cache();
    }
    rt.begin_timing();
}

/// What the injected fault does to the pushdown call itself (windowed
/// faults only slow the call down; call-targeted faults abort it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disrupt {
    /// The fault perturbs timing only; the call still completes.
    Benign,
    /// The first call raises `PushdownError::Exception`.
    Exception,
    /// Every call inside the (here: unbounded) window raises an
    /// exception, so retrying is futile — only a local fallback absorbs.
    Persistent,
    /// The first call hangs and is killed (`PushdownError::Killed`).
    Hang,
}

/// One row of the fault dimension: a name, a plan builder, and how the
/// fault interacts with the call.
struct FaultCase {
    name: &'static str,
    disrupt: Disrupt,
    build: fn(u64) -> FaultPlan,
}

/// The fault kinds swept by the matrix — well above the required four, and
/// spanning every subsystem the injector can reach: fabric, SSD, memory
/// pool heartbeat, RPC queue, and the pushed function itself.
fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            name: "fabric-latency-spike",
            disrupt: Disrupt::Benign,
            build: |seed| {
                FaultPlan::new(seed).fabric_latency_spike(
                    SimTime(0),
                    FOREVER,
                    SimDuration::from_micros(2),
                )
            },
        },
        FaultCase {
            name: "fabric-partition",
            disrupt: Disrupt::Benign,
            build: |seed| {
                // Finite window: the fabric heals after 50µs of unreachability.
                FaultPlan::new(seed).fabric_partition(SimTime(0), SimTime(50_000))
            },
        },
        FaultCase {
            name: "ssd-transient-error",
            disrupt: Disrupt::Benign,
            build: |seed| FaultPlan::new(seed).ssd_transient_errors(SimTime(0), FOREVER, 0.5),
        },
        FaultCase {
            name: "ssd-latency-storm",
            disrupt: Disrupt::Benign,
            build: |seed| FaultPlan::new(seed).ssd_latency_storm(SimTime(0), FOREVER, 8),
        },
        FaultCase {
            name: "heartbeat-flap",
            disrupt: Disrupt::Benign,
            build: |seed| {
                // Down for 15ms: two missed beats at the default 10ms
                // interval, then the pool answers again — a transient flap,
                // not a death.
                FaultPlan::new(seed).heartbeat_flap(SimTime(0), SimTime(15_000_000))
            },
        },
        FaultCase {
            name: "queue-backlog-burst",
            disrupt: Disrupt::Benign,
            build: |seed| {
                FaultPlan::new(seed).queue_backlog_burst(
                    SimTime(0),
                    FOREVER,
                    SimDuration::from_millis(2),
                )
            },
        },
        FaultCase {
            name: "pushdown-exception",
            disrupt: Disrupt::Exception,
            build: |seed| FaultPlan::new(seed).pushdown_exception(0),
        },
        FaultCase {
            // The probabilistic cousin at p = 1.0: every in-window call
            // fails, which (with an unbounded window) defeats retries.
            name: "pushdown-exception-prob",
            disrupt: Disrupt::Persistent,
            build: |seed| FaultPlan::new(seed).pushdown_exceptions_prob(SimTime(0), FOREVER, 1.0),
        },
        FaultCase {
            name: "pushdown-hang",
            disrupt: Disrupt::Hang,
            build: |seed| FaultPlan::new(seed).pushdown_hang(0),
        },
        // The fail-slow (gray-failure) kinds: the call always completes,
        // just slower — a brownout is benign to correctness by design.
        // The dedicated hedging/brownout rows below exercise mitigation;
        // these rows pin that bare slowness never corrupts or kills.
        FaultCase {
            name: "degraded-pool",
            disrupt: Disrupt::Benign,
            build: |seed| FaultPlan::new(seed).degraded_pool(0, SimTime(0), FOREVER, 8),
        },
        FaultCase {
            name: "lame-fabric-link",
            disrupt: Disrupt::Benign,
            build: |seed| FaultPlan::new(seed).lame_fabric_link(SimTime(0), FOREVER, 8),
        },
        FaultCase {
            name: "grinding-ssd",
            disrupt: Disrupt::Benign,
            build: |seed| FaultPlan::new(seed).grinding_ssd(SimTime(0), FOREVER, 8),
        },
        // The crash-restart kinds: the shard dies and comes back by journal
        // replay. Without a replica (this sweep runs unreplicated) the call
        // waits out the outage in place and proceeds against the recovered
        // primary — benign to correctness, like every availability fault
        // with a recovery path. The replicated fencing path has its own
        // rows below and in tests/crashpoint_sweep.rs.
        FaultCase {
            name: "pool-crash-restart",
            disrupt: Disrupt::Benign,
            build: |seed| {
                FaultPlan::new(seed).pool_crash_restart(
                    0,
                    SimTime(0),
                    SimDuration::from_micros(100),
                )
            },
        },
        FaultCase {
            name: "torn-journal-write",
            disrupt: Disrupt::Benign,
            build: |seed| {
                // The tear corrupts the un-synced journal tail at crash
                // time; replay discards it and rebuilds from the
                // SSD-authoritative base, so the call still completes.
                FaultPlan::new(seed)
                    .pool_crash_restart(0, SimTime(0), SimDuration::from_micros(100))
                    .torn_journal_write(0, SimTime(0))
            },
        },
    ]
}

/// The policy dimension.
fn policies() -> Vec<(&'static str, ResiliencePolicy)> {
    vec![
        ("none", ResiliencePolicy::none()),
        ("retry", ResiliencePolicy::retry_only()),
        ("fallback", ResiliencePolicy::fallback_only()),
        ("full", ResiliencePolicy::full()),
    ]
}

/// What a (fault, policy) cell must produce. `Ok(via)` carries how the
/// value should have been obtained; `Err` names the expected error.
enum Expected {
    Ok(ExecutionVia),
    Exception,
    Killed,
}

fn expected(disrupt: Disrupt, policy_name: &str) -> Expected {
    match (disrupt, policy_name) {
        (Disrupt::Benign, _) => Expected::Ok(ExecutionVia::Pushdown),
        // A one-shot injected exception: retrying re-issues the call under
        // a fresh call index, so any retry policy absorbs it; a pure
        // fallback policy absorbs it locally; no policy surfaces it.
        (Disrupt::Exception, "none") => Expected::Exception,
        (Disrupt::Exception, "fallback") => Expected::Ok(ExecutionVia::LocalFallback),
        (Disrupt::Exception, _) => Expected::Ok(ExecutionVia::Pushdown),
        // p = 1.0 over an unbounded window: every retry fails too, so
        // only fallback-bearing policies produce a value.
        (Disrupt::Persistent, "none") | (Disrupt::Persistent, "retry") => Expected::Exception,
        (Disrupt::Persistent, _) => Expected::Ok(ExecutionVia::LocalFallback),
        // A killed call is not retried by default (`retry_killed: false`):
        // only fallback-bearing policies absorb it.
        (Disrupt::Hang, "none") | (Disrupt::Hang, "retry") => Expected::Killed,
        (Disrupt::Hang, _) => Expected::Ok(ExecutionVia::LocalFallback),
    }
}

/// Drives one workload through the full matrix. `run` loads the workload,
/// installs the given plan (after its load, so fault windows align with
/// the measured phase), executes its pushdown closure resiliently, and
/// checks the value against the oracle itself — both for the resilient
/// result and for the local re-execution used when an error legitimately
/// surfaces.
fn sweep_matrix<W>(workload_name: &str, mut run: W)
where
    W: FnMut(
        &mut Runtime,
        FaultPlan,
        &ResiliencePolicy,
    ) -> Result<(u32, ExecutionVia), PushdownError>,
{
    let seed = env_seed(0xC0FFEE);
    for kind in PLATFORMS {
        for case in fault_cases() {
            for (policy_name, policy) in policies() {
                let cell = format!(
                    "[{workload_name} / {kind:?} / {} / {policy_name}]",
                    case.name
                );
                let mut rt = make_rt(kind, 8 << 20);
                let outcome = run(&mut rt, (case.build)(seed), &policy);
                match (expected(case.disrupt, policy_name), outcome) {
                    (Expected::Ok(via), Ok((attempts, got_via))) => {
                        assert_eq!(got_via, via, "{cell}: wrong execution path");
                        match case.disrupt {
                            Disrupt::Benign => {
                                assert_eq!(attempts, 0, "{cell}: benign fault consumed retries")
                            }
                            Disrupt::Exception if got_via == ExecutionVia::Pushdown => {
                                assert_eq!(attempts, 1, "{cell}: one retry absorbs the one-shot")
                            }
                            _ => {}
                        }
                    }
                    (Expected::Exception, Err(PushdownError::Exception(_))) => {}
                    (Expected::Killed, Err(PushdownError::Killed { .. })) => {}
                    (_, got) => panic!("{cell}: unexpected outcome {got:?}"),
                }
                assert!(
                    rt.is_alive(),
                    "{cell}: runtime must stay alive through a survivable fault (seed {seed})"
                );
            }
        }
    }
}

/// memdb `Q_filter` under chaos: `SELECT SUM(l_quantity) WHERE l_shipdate
/// < $DATE`, summed in index order so a correct run is bit-identical to
/// the host oracle.
#[test]
fn memdb_q_filter_survives_the_fault_matrix() {
    use memdb::{oracle, Database, QueryParams, TpchData};

    let data = TpchData::generate(0.001, 42);
    let params = QueryParams::default();
    let expected = oracle::q_filter(&data, &params);
    let bound = params.qfilter_date.raw();
    assert!(expected > 0.0, "oracle must be non-trivial");

    sweep_matrix("memdb/q_filter", move |rt, plan, policy| {
        let db = Database::load(rt, &data);
        prepare(rt); // timing restarts here, so fault windows open at the query
        rt.install_fault_plan(plan);
        let shipdate = db.li.shipdate;
        let quantity = db.li.quantity;
        let n = db.li.n;
        let mut q_filter = move |m: &mut teleport::Arm<'_>| {
            let mut dates = Vec::new();
            m.read_range(&shipdate, 0, n, &mut dates);
            let mut quants = Vec::new();
            m.read_range(&quantity, 0, n, &mut quants);
            let mut sum = 0.0f64;
            for i in 0..n {
                if dates[i] < bound {
                    sum += quants[i];
                }
            }
            m.charge_cycles(2 * n as u64);
            sum
        };
        match rt.pushdown_resilient(PushdownOpts::new(), policy, &mut q_filter) {
            Ok(out) => {
                assert_eq!(
                    out.value.to_bits(),
                    expected.to_bits(),
                    "resilient Q_filter must match the oracle bit-for-bit"
                );
                Ok((out.attempts, out.via))
            }
            Err(e) => {
                // The §3.2 contract: the application is free to run the
                // function locally after a surfaced error.
                let local = rt.run_local(q_filter);
                assert_eq!(local.to_bits(), expected.to_bits(), "local re-run oracle");
                Err(e)
            }
        }
    });
}

/// graphproc connected components under chaos: min-label propagation over
/// a CSR graph held in (remote) memory, checked against the union-find
/// oracle.
#[test]
fn graph_cc_survives_the_fault_matrix() {
    use graphproc::algos::cc;
    use graphproc::social_graph;

    let g = social_graph(300, 3, 9);
    let expected = cc::oracle(&g);
    let n = g.n();

    sweep_matrix("graph/cc", move |rt, plan, policy| {
        let offsets: Region<u32> = rt.alloc_region(g.offsets.len());
        rt.write_range(&offsets, 0, &g.offsets);
        let edges: Region<u32> = rt.alloc_region(g.edges.len().max(1));
        rt.write_range(&edges, 0, &g.edges);
        prepare(rt);
        rt.install_fault_plan(plan);
        let mut cc_prog = move |m: &mut teleport::Arm<'_>| {
            let mut off = Vec::new();
            m.read_range(&offsets, 0, n + 1, &mut off);
            let mut adj = Vec::new();
            m.read_range(&edges, 0, off[n] as usize, &mut adj);
            let mut label: Vec<f64> = (0..n).map(|v| v as f64).collect();
            loop {
                let mut changed = false;
                for v in 0..n {
                    for &u in &adj[off[v] as usize..off[v + 1] as usize] {
                        if label[u as usize] < label[v] {
                            label[v] = label[u as usize];
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
                m.charge_cycles(adj.len() as u64);
            }
            label
        };
        match rt.pushdown_resilient(PushdownOpts::new(), policy, &mut cc_prog) {
            Ok(out) => {
                assert_eq!(out.value, expected, "resilient CC must match the oracle");
                Ok((out.attempts, out.via))
            }
            Err(e) => {
                assert_eq!(rt.run_local(cc_prog), expected, "local re-run oracle");
                Err(e)
            }
        }
    });
}

/// The one non-survivable fault: a permanently dead memory pool is a
/// kernel panic on every policy — never retried, never absorbed — and it
/// clears the liveness flag.
#[test]
fn permanent_pool_death_defeats_every_policy() {
    for (policy_name, policy) in policies() {
        let mut rt = make_rt(PlatformKind::Teleport, 1 << 20);
        let cell = rt.alloc_region::<u64>(1);
        rt.set(&cell, 0, 7, ddc_os::Pattern::Rand);
        prepare(&mut rt);
        rt.install_fault_plan(FaultPlan::new(env_seed(0xC0FFEE)).memory_pool_death(SimTime(0)));
        let r = rt.pushdown_resilient(PushdownOpts::new(), &policy, |m| {
            m.get(&cell, 0, ddc_os::Pattern::Rand)
        });
        assert_eq!(
            r.unwrap_err(),
            PushdownError::KernelPanic,
            "[{policy_name}] kernel panic must surface through any policy"
        );
        assert!(!rt.is_alive(), "[{policy_name}] pool death clears liveness");
        assert_eq!(rt.resilience_retries(), 0, "[{policy_name}] no retries");
        assert_eq!(rt.resilience_fallbacks(), 0, "[{policy_name}] no fallback");
    }
}

/// Pool death × {replica on/off} × {platform} × {retry/fallback}: with a
/// replica configured, the previously fatal permanent pool death becomes a
/// survivable [`PushdownError::PoolFailedOver`] on Teleport — retried
/// against the promoted backup or absorbed locally — and the recovered
/// value still matches the host oracle bit-for-bit. Without a replica the
/// kernel panic of `permanent_pool_death_defeats_every_policy` stands.
/// Local/BaseDdc have no heartbeat-driven pushdown path, so pool-death
/// specs are benign there regardless of replication.
#[test]
fn pool_death_with_replica_is_survivable_across_the_matrix() {
    use memdb::{oracle, Database, QueryParams, TpchData};

    let data = TpchData::generate(0.001, 42);
    let params = QueryParams::default();
    let expected = oracle::q_filter(&data, &params);
    let bound = params.qfilter_date.raw();
    let seed = env_seed(0xC0FFEE);

    let policies = [
        ("retry", ResiliencePolicy::retry_only()),
        ("fallback", ResiliencePolicy::fallback_only()),
    ];
    for kind in PLATFORMS {
        for replicated in [false, true] {
            for (policy_name, policy) in &policies {
                let cell =
                    format!("[pool-death / {kind:?} / replica={replicated} / {policy_name}]");
                let mode = if replicated {
                    ReplicationMode::Synchronous
                } else {
                    ReplicationMode::Off
                };
                let mut rt = make_rt_replicated(kind, 8 << 20, mode);
                let db = Database::load(&mut rt, &data);
                prepare(&mut rt);
                rt.install_fault_plan(FaultPlan::new(seed).memory_pool_death(SimTime(0)));
                let shipdate = db.li.shipdate;
                let quantity = db.li.quantity;
                let n = db.li.n;
                let q_filter = move |m: &mut teleport::Arm<'_>| {
                    let mut dates = Vec::new();
                    m.read_range(&shipdate, 0, n, &mut dates);
                    let mut quants = Vec::new();
                    m.read_range(&quantity, 0, n, &mut quants);
                    let mut sum = 0.0f64;
                    for i in 0..n {
                        if dates[i] < bound {
                            sum += quants[i];
                        }
                    }
                    m.charge_cycles(2 * n as u64);
                    sum
                };
                let r = rt.pushdown_resilient(PushdownOpts::new(), policy, q_filter);
                match (kind, replicated) {
                    // No heartbeat path: the death spec never fires.
                    (PlatformKind::Local, _) | (PlatformKind::BaseDdc, _) => {
                        let out = r.expect("pool death cannot reach a non-Teleport platform");
                        assert_eq!(out.via, ExecutionVia::Pushdown, "{cell}");
                        assert_eq!(out.value.to_bits(), expected.to_bits(), "{cell}: oracle");
                        assert!(rt.is_alive(), "{cell}");
                        assert_eq!(rt.failovers(), 0, "{cell}: nothing to fail over");
                    }
                    (PlatformKind::Teleport, false) => {
                        assert_eq!(r.unwrap_err(), PushdownError::KernelPanic, "{cell}");
                        assert!(!rt.is_alive(), "{cell}: no replica, pool death is fatal");
                        assert_eq!(rt.failovers(), 0, "{cell}");
                    }
                    (PlatformKind::Teleport, true) => {
                        let out = r.expect("a replica makes pool death survivable");
                        let want_via = match *policy_name {
                            "retry" => ExecutionVia::Pushdown,
                            _ => ExecutionVia::LocalFallback,
                        };
                        assert_eq!(out.via, want_via, "{cell}: recovery path");
                        assert_eq!(
                            out.value.to_bits(),
                            expected.to_bits(),
                            "{cell}: post-failover result must match the oracle"
                        );
                        assert!(rt.is_alive(), "{cell}: failover keeps the runtime alive");
                        assert_eq!(rt.failovers(), 1, "{cell}: exactly one promotion");
                        assert_eq!(rt.failover_epochs(), &[1], "{cell}: epoch 0 died");
                    }
                }
            }
        }
    }
}

/// Per-shard pool death on a 4-pool rack: {pool 0 dies, pool N-1 dies} ×
/// {replica on/off} × {retry/fallback}. The death spec targets one shard
/// only. Without a replica any shard death is still a kernel panic; with
/// per-shard replicas the targeted shard fails over alone — its epoch
/// bumps, every other shard stays at epoch 0 — the recovered value matches
/// the oracle, and the surviving rack keeps serving (the next pushdown
/// runs clean, with no further failovers).
#[test]
fn per_pool_death_on_a_multi_pool_rack_fails_over_one_shard() {
    use ddc_sim::{PlacementPolicy, PAGE_SIZE};

    let pools = 4usize;
    let pages = 8usize;
    let elems = PAGE_SIZE / 8;
    let seed = env_seed(0xC0FFEE);
    let expected: u64 = (1..=pages as u64).sum();

    for dead in [0usize, pools - 1] {
        for replicated in [false, true] {
            for (policy_name, policy, want_via) in [
                (
                    "retry",
                    ResiliencePolicy::retry_only(),
                    ExecutionVia::Pushdown,
                ),
                (
                    "fallback",
                    ResiliencePolicy::fallback_only(),
                    ExecutionVia::LocalFallback,
                ),
            ] {
                let cell = format!("[pool{dead}-death / replica={replicated} / {policy_name}]");
                let mut ddc = DdcConfig::with_cache_ratio(pages * PAGE_SIZE, 0.25);
                ddc.pools = pools;
                ddc.placement = PlacementPolicy::LoadBalance;
                ddc.replication = if replicated {
                    ReplicationMode::Synchronous
                } else {
                    ReplicationMode::Off
                };
                let mut rt = Runtime::teleport(ddc);
                let region = rt.alloc_region::<u64>(pages * elems);
                for p in 0..pages {
                    rt.set(&region, p * elems, p as u64 + 1, ddc_os::Pattern::Rand);
                }
                prepare(&mut rt);
                rt.install_fault_plan(FaultPlan::new(seed).pool_death(dead, SimTime(0)));
                let n = region.len();
                let sum_fn = move |m: &mut teleport::Arm<'_>| {
                    let mut buf = Vec::new();
                    m.read_range(&region, 0, n, &mut buf);
                    buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
                };

                let r = rt.pushdown_resilient(PushdownOpts::new(), &policy, sum_fn);
                if !replicated {
                    assert_eq!(
                        r.unwrap_err(),
                        PushdownError::KernelPanic,
                        "{cell}: a bare shard death is fatal"
                    );
                    assert!(!rt.is_alive(), "{cell}: shard death clears liveness");
                    assert_eq!(rt.failovers(), 0, "{cell}: nothing promotable");
                    continue;
                }
                let out = r.unwrap_or_else(|e| {
                    panic!("{cell}: a replicated shard death is survivable, got {e}")
                });
                assert_eq!(out.via, want_via, "{cell}: recovery path");
                assert_eq!(out.value, expected, "{cell}: post-failover oracle");
                assert!(rt.is_alive(), "{cell}");
                assert_eq!(rt.failovers(), 1, "{cell}: exactly one promotion");
                assert_eq!(rt.failover_epochs(), &[1], "{cell}: epoch 0 died");
                for p in 0..pools {
                    let want = u64::from(p == dead);
                    assert_eq!(
                        rt.dos().pool_epoch_for(p),
                        want,
                        "{cell}: only the dead shard may change epoch (shard {p})"
                    );
                }
                assert_eq!(
                    rt.metrics().get(&format!("failover.pool{dead}.epoch")),
                    Some(1),
                    "{cell}: per-shard failover metric"
                );

                // The surviving rack keeps serving: a clean pushdown, no
                // further promotions.
                let again = rt
                    .pushdown(PushdownOpts::new(), sum_fn)
                    .unwrap_or_else(|e| panic!("{cell}: post-failover pushdown failed: {e}"));
                assert_eq!(again, expected, "{cell}: steady state after failover");
                assert_eq!(rt.failovers(), 1, "{cell}: no repeat failover");
            }
        }
    }
}

/// The graphproc cousin of the replica matrix: connected components under
/// permanent pool death with a synchronous replica, on both recovery
/// paths, against the union-find oracle.
#[test]
fn graph_cc_survives_pool_death_with_a_replica() {
    use graphproc::algos::cc;
    use graphproc::social_graph;

    let g = social_graph(300, 3, 9);
    let expected = cc::oracle(&g);
    let n = g.n();

    for (policy_name, policy, want_via) in [
        (
            "retry",
            ResiliencePolicy::retry_only(),
            ExecutionVia::Pushdown,
        ),
        (
            "fallback",
            ResiliencePolicy::fallback_only(),
            ExecutionVia::LocalFallback,
        ),
    ] {
        let mut rt = make_rt_replicated(
            PlatformKind::Teleport,
            8 << 20,
            ReplicationMode::Synchronous,
        );
        let offsets: Region<u32> = rt.alloc_region(g.offsets.len());
        rt.write_range(&offsets, 0, &g.offsets);
        let edges: Region<u32> = rt.alloc_region(g.edges.len().max(1));
        rt.write_range(&edges, 0, &g.edges);
        prepare(&mut rt);
        rt.install_fault_plan(FaultPlan::new(env_seed(0xC0FFEE)).memory_pool_death(SimTime(0)));
        let cc_prog = move |m: &mut teleport::Arm<'_>| {
            let mut off = Vec::new();
            m.read_range(&offsets, 0, n + 1, &mut off);
            let mut adj = Vec::new();
            m.read_range(&edges, 0, off[n] as usize, &mut adj);
            let mut label: Vec<f64> = (0..n).map(|v| v as f64).collect();
            loop {
                let mut changed = false;
                for v in 0..n {
                    for &u in &adj[off[v] as usize..off[v + 1] as usize] {
                        if label[u as usize] < label[v] {
                            label[v] = label[u as usize];
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
                m.charge_cycles(adj.len() as u64);
            }
            label
        };
        let out = rt
            .pushdown_resilient(PushdownOpts::new(), &policy, cc_prog)
            .unwrap_or_else(|e| panic!("[{policy_name}] replica absorbs pool death: {e}"));
        assert_eq!(out.via, want_via, "[{policy_name}]");
        assert_eq!(
            out.value, expected,
            "[{policy_name}]: oracle after failover"
        );
        assert!(rt.is_alive(), "[{policy_name}]");
        assert_eq!(rt.failovers(), 1, "[{policy_name}]");
    }
}

/// One corruption row: which corruption point the plan exercises, which
/// platform drives detection (fabric flips fire on compute-side fetches,
/// so they run on BaseDdc where a pushdown's reads cross the fabric;
/// scribbles and latent sectors surface on Teleport's memory-side reads),
/// and whether a hit page is repairable without a replica (latent sectors
/// strike spilled pages, whose clean storage copy is re-readable).
struct CorruptionCase {
    name: &'static str,
    kind: PlatformKind,
    /// Squeeze the memory pool far below the working set so pages spill
    /// to storage, where latent-sector rot can reach them.
    tight_pool: bool,
    ssd_repairable: bool,
    build: fn(u64) -> FaultPlan,
}

fn corruption_cases() -> Vec<CorruptionCase> {
    vec![
        CorruptionCase {
            name: "fabric-bit-flip",
            kind: PlatformKind::BaseDdc,
            tight_pool: false,
            ssd_repairable: false,
            build: |seed| FaultPlan::new(seed).fabric_bit_flips(SimTime(0), FOREVER, 1.0),
        },
        CorruptionCase {
            name: "ssd-latent-sector",
            kind: PlatformKind::Teleport,
            tight_pool: true,
            ssd_repairable: true,
            build: |seed| FaultPlan::new(seed).ssd_latent_sectors(SimTime(0), FOREVER, 1.0),
        },
        CorruptionCase {
            name: "pool-scribble",
            kind: PlatformKind::Teleport,
            tight_pool: false,
            ssd_repairable: false,
            build: |seed| FaultPlan::new(seed).pool_scribbles(SimTime(0), FOREVER, 1.0),
        },
    ]
}

fn make_corruption_rt(
    kind: PlatformKind,
    ws: usize,
    mode: ReplicationMode,
    tight_pool: bool,
) -> Runtime {
    let mut ddc = DdcConfig::with_cache_ratio(ws, 0.02);
    ddc.replication = mode;
    if tight_pool {
        // 16 pages of pool: far below every workload's footprint, so the
        // pool's LRU keeps spilling to storage during the query. The
        // compute cache must stay below the pool, since cached pages pin
        // their pool slots.
        ddc.memory_pool_bytes = 16 * ddc_sim::PAGE_SIZE;
        ddc.compute_cache_bytes = 8 * ddc_sim::PAGE_SIZE;
    }
    match kind {
        PlatformKind::Local => unreachable!("corruption rows target disaggregated platforms"),
        PlatformKind::BaseDdc => Runtime::base_ddc(ddc),
        PlatformKind::Teleport => Runtime::teleport(ddc),
    }
}

/// Drives one workload through {corruption kind} × {replica on/off}. `run`
/// loads the workload, installs the plan *before* `prepare` (so the
/// drop-cache flush is already exposed to scribbles), executes one plain
/// pushdown, and asserts oracle equality itself whenever a value comes
/// back. The driver owns the ledger checks: every detection is either a
/// repair or a typed loss, repairable rows repair transparently, and a
/// dirty-page hit without a surviving copy surfaces as `DataLoss` — never
/// a wrong answer.
fn sweep_corruption<W>(workload_name: &str, mut run: W)
where
    W: FnMut(&mut Runtime, FaultPlan) -> Result<(), PushdownError>,
{
    let seed = env_seed(0xBAD5EED);
    for case in corruption_cases() {
        for replicated in [false, true] {
            let cell = format!("[{workload_name} / {} / replica={replicated}]", case.name);
            let mode = if replicated {
                ReplicationMode::Synchronous
            } else {
                ReplicationMode::Off
            };
            let mut rt = make_corruption_rt(case.kind, 8 << 20, mode, case.tight_pool);
            let outcome = run(&mut rt, (case.build)(seed));
            let m = rt.metrics();
            let detected = m.get("integrity.detected").unwrap_or(0);
            let repaired = m.get("integrity.repaired").unwrap_or(0);
            let lost = m.get("integrity.data_loss").unwrap_or(0);
            assert!(detected > 0, "{cell}: a p=1.0 plan must corrupt something");
            assert_eq!(
                detected,
                repaired + lost,
                "{cell}: every detection must resolve to a repair or a typed loss"
            );
            if replicated || case.ssd_repairable {
                if let Err(e) = outcome {
                    panic!("{cell}: corruption must repair transparently, got {e}");
                }
                assert!(repaired > 0, "{cell}: repairs must be counted");
                assert_eq!(lost, 0, "{cell}: nothing may be lost");
            } else {
                match outcome {
                    Err(PushdownError::DataLoss { .. }) => {}
                    other => panic!("{cell}: expected typed DataLoss, got {other:?}"),
                }
                assert!(lost > 0, "{cell}: the loss must be counted");
            }
            assert!(rt.is_alive(), "{cell}: corruption never kills the runtime");
        }
    }
}

/// memdb `Q_filter` under seeded corruption: with a surviving copy
/// (replica, or a clean storage image) the result is bit-identical to the
/// oracle; a dirty-page hit without one surfaces as typed `DataLoss`.
#[test]
fn corruption_matrix_memdb_repairs_or_surfaces_loss() {
    use memdb::{oracle, Database, QueryParams, TpchData};

    let data = TpchData::generate(0.001, 42);
    let params = QueryParams::default();
    let expected = oracle::q_filter(&data, &params);
    let bound = params.qfilter_date.raw();

    sweep_corruption("memdb/q_filter", move |rt, plan| {
        let db = Database::load(rt, &data);
        let shipdate = db.li.shipdate;
        let quantity = db.li.quantity;
        let n = db.li.n;
        // Re-dirty the two query columns so the drop-cache flush — the
        // window the scribble plan is aimed at — covers exactly the pages
        // the query will read back.
        let mut dates = Vec::new();
        rt.read_range(&shipdate, 0, n, &mut dates);
        rt.write_range(&shipdate, 0, &dates);
        let mut quants = Vec::new();
        rt.read_range(&quantity, 0, n, &mut quants);
        rt.write_range(&quantity, 0, &quants);
        rt.install_fault_plan(plan); // before drop_cache: the flush is exposed
        prepare(rt);
        let sum = rt.pushdown(PushdownOpts::new(), move |m| {
            let mut dates = Vec::new();
            m.read_range(&shipdate, 0, n, &mut dates);
            let mut quants = Vec::new();
            m.read_range(&quantity, 0, n, &mut quants);
            let mut sum = 0.0f64;
            for i in 0..n {
                if dates[i] < bound {
                    sum += quants[i];
                }
            }
            m.charge_cycles(2 * n as u64);
            sum
        })?;
        assert_eq!(
            sum.to_bits(),
            expected.to_bits(),
            "repaired Q_filter must match the oracle bit-for-bit"
        );
        Ok(())
    });
}

/// graphproc connected components under the same corruption sweep.
#[test]
fn corruption_matrix_graph_cc_repairs_or_surfaces_loss() {
    use graphproc::algos::cc;
    use graphproc::social_graph;

    // Large enough that the 16-page pool of the latent-sector row spills.
    let g = social_graph(3000, 8, 9);
    let expected = cc::oracle(&g);
    let n = g.n();

    sweep_corruption("graph/cc", move |rt, plan| {
        let offsets: Region<u32> = rt.alloc_region(g.offsets.len());
        rt.write_range(&offsets, 0, &g.offsets);
        let edges: Region<u32> = rt.alloc_region(g.edges.len().max(1));
        rt.write_range(&edges, 0, &g.edges);
        rt.install_fault_plan(plan);
        prepare(rt);
        let labels = rt.pushdown(PushdownOpts::new(), move |m| {
            let mut off = Vec::new();
            m.read_range(&offsets, 0, n + 1, &mut off);
            let mut adj = Vec::new();
            m.read_range(&edges, 0, off[n] as usize, &mut adj);
            let mut label: Vec<f64> = (0..n).map(|v| v as f64).collect();
            loop {
                let mut changed = false;
                for v in 0..n {
                    for &u in &adj[off[v] as usize..off[v + 1] as usize] {
                        if label[u as usize] < label[v] {
                            label[v] = label[u as usize];
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
                m.charge_cycles(adj.len() as u64);
            }
            label
        })?;
        assert_eq!(labels, expected, "repaired CC must match the oracle");
        Ok(())
    });
}

/// Timed scenario riding the matrix: a queue backlog plus a timeout makes
/// the compute side cancel while still queued; fallback absorbs the
/// cancellation and the oracle still holds.
#[test]
fn backlog_timeout_cancellation_is_absorbed_by_fallback() {
    let mut rt = make_rt(PlatformKind::Teleport, 1 << 20);
    let col = rt.alloc_region::<u64>(512);
    let vals: Vec<u64> = (0..512u64).collect();
    rt.write_range(&col, 0, &vals);
    prepare(&mut rt);
    rt.install_fault_plan(FaultPlan::new(env_seed(0xC0FFEE)).queue_backlog_burst(
        SimTime(0),
        FOREVER,
        SimDuration::from_millis(50),
    ));
    let opts = PushdownOpts::new().timeout(SimDuration::from_micros(100));
    let out = rt
        .pushdown_resilient(opts, &ResiliencePolicy::fallback_only(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().sum::<u64>()
        })
        .expect("fallback absorbs the cancelled-before-start error");
    assert_eq!(out.via, ExecutionVia::LocalFallback);
    assert_eq!(out.value, (0..512u64).sum::<u64>());
    assert!(rt.is_alive());
    assert_eq!(rt.resilience_fallbacks(), 1);
}

// ---------------------------------------------------------------------------
// Chaos under load: faults injected into a live multi-tenant serving run.
// ---------------------------------------------------------------------------

/// Everything one chaos-under-load row needs to judge: the serving report,
/// the relevant fault-plane ledgers, the per-tenant key schedules for
/// oracle checks, and whether the rack survived.
struct ChaosServeOutcome {
    rep: ServeReport,
    keys: Vec<Vec<u64>>,
    promotions: u64,
    detected: u64,
    repaired: u64,
    lost: u64,
    crashes: u64,
    restarts: u64,
    resilvered_pages: u64,
    fenced_writes: u64,
    alive: bool,
}

const CHAOS_TENANTS: usize = 4;
const CHAOS_SESSIONS: usize = 10;

/// Drive a 4-tenant KV serving run on a 2-pool Teleport rack while `plan`
/// fires mid-serve. Admission is generous (the rows test chaos, not
/// shedding), every tenant retries, and the plane always drains — the
/// assertions about *what* drained belong to each row.
fn serve_kv_under_chaos(
    data: &kvapp::KvData,
    replicated: bool,
    install_before_flush: bool,
    plan: FaultPlan,
) -> ChaosServeOutcome {
    let mut cfg = DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.05);
    cfg.pools = 2;
    cfg.placement = PlacementPolicy::LoadBalance;
    cfg.replication = if replicated {
        ReplicationMode::Synchronous
    } else {
        ReplicationMode::Off
    };
    cfg.validate().expect("chaos serve config validates");
    let mut rt = Runtime::teleport(cfg);
    let store = kvapp::KvStore::load(&mut rt, data);
    // Corruption plans must already be armed when drop_cache flushes the
    // freshly written (dirty) store pages; availability plans arm after the
    // clock starts so their windows land mid-serve.
    if install_before_flush {
        rt.install_fault_plan(plan.clone());
    }
    prepare(&mut rt);
    if !install_before_flush {
        rt.install_fault_plan(plan);
    }

    let mut plane = ServePlane::new(ServeConfig {
        seed: env_seed(0xC4A05),
        admission: AdmissionPolicy {
            max_queue_depth: 64,
            max_backlog: SimDuration::from_millis(10),
        },
        contexts: None,
    });
    let retry = ResiliencePolicy::retry_only();
    let classes = [
        QosClass::Guaranteed,
        QosClass::Guaranteed,
        QosClass::Burstable,
        QosClass::BestEffort,
    ];
    let mut keys = Vec::new();
    for (t, &class) in classes.iter().enumerate().take(CHAOS_TENANTS) {
        let ks = kvapp::keys(77 + t as u64, CHAOS_SESSIONS, data.len());
        keys.push(ks.clone());
        plane.tenant(
            format!("kv{t}"),
            class,
            ArrivalProcess::poisson(SimDuration::from_micros(60)),
            CHAOS_SESSIONS,
            move |rt, s| {
                let key = ks[s as usize];
                let vals = store.vals;
                rt.pushdown_resilient(PushdownOpts::new(), &retry, |m| {
                    m.charge_cycles(64);
                    let mut buf = Vec::new();
                    m.read_range(&vals, key as usize, 1, &mut buf);
                    buf[0]
                })
                .map(|out| out.value)
            },
        );
    }
    let rep = plane.run(&mut rt);
    let m = rt.metrics();
    ChaosServeOutcome {
        rep,
        keys,
        promotions: m.get("failover.promotions").unwrap_or(0),
        detected: m.get("integrity.detected").unwrap_or(0),
        repaired: m.get("integrity.repaired").unwrap_or(0),
        lost: m.get("integrity.data_loss").unwrap_or(0),
        crashes: m.get("recovery.crashes").unwrap_or(0),
        restarts: m.get("recovery.restarts").unwrap_or(0),
        resilvered_pages: m.get("recovery.resilvered_pages").unwrap_or(0),
        fenced_writes: m.get("recovery.fenced_writes").unwrap_or(0),
        alive: rt.is_alive(),
    }
}

/// The invariants every chaos-under-load row shares: the shed ledger
/// balances, every tenant drains, and no completed session ever returns a
/// wrong answer — chaos may slow, shed, or fail sessions, never corrupt
/// their results.
fn assert_chaos_baseline(cell: &str, data: &kvapp::KvData, out: &ChaosServeOutcome) {
    assert!(
        out.rep.ledger_balances(),
        "{cell}: shed ledger out of balance"
    );
    assert_eq!(
        out.rep.arrived(),
        (CHAOS_TENANTS * CHAOS_SESSIONS) as u64,
        "{cell}: open-loop arrivals are unconditional"
    );
    for (t, trep) in out.rep.tenants.iter().enumerate() {
        assert_eq!(
            trep.in_flight(),
            0,
            "{cell}: tenant {} did not drain",
            trep.name
        );
        for (s, outcome) in trep.outcomes.iter().enumerate() {
            if let SessionOutcome::Completed { value, .. } = outcome {
                assert_eq!(
                    *value,
                    kvapp::oracle::get(data, out.keys[t][s]),
                    "{cell}: tenant {t} session {s} completed with a wrong answer"
                );
            }
        }
    }
}

/// Pool death mid-serve: with a synchronous replica the shard fails over
/// and every session rides it out; without one the dead shard's sessions
/// surface typed errors while the ledger still accounts for every arrival.
#[test]
fn chaos_under_load_pool_death() {
    let data = kvapp::KvData::generate(16 * 1024, 5);
    let seed = env_seed(0xDEAD100D);
    for replicated in [true, false] {
        let cell = format!("[serve/pool-death replica={replicated}]");
        let plan = FaultPlan::new(seed).pool_death(1, SimTime(150_000));
        let out = serve_kv_under_chaos(&data, replicated, false, plan);
        assert_chaos_baseline(&cell, &data, &out);
        if replicated {
            assert!(
                out.promotions >= 1,
                "{cell}: death must promote the replica"
            );
            assert_eq!(
                out.rep.failed(),
                0,
                "{cell}: retries must absorb the failover"
            );
            assert_eq!(
                out.rep.completed(),
                out.rep.arrived() - out.rep.shed(),
                "{cell}: every admitted session must complete"
            );
            assert!(out.alive, "{cell}: a failed-over rack is alive");
        } else {
            assert_eq!(
                out.promotions, 0,
                "{cell}: nothing to promote without a replica"
            );
            assert!(
                out.rep.failed() > 0,
                "{cell}: sessions on the dead shard must surface errors"
            );
            assert!(!out.alive, "{cell}: an unreplicated pool death is fatal");
        }
    }
}

/// A finite fabric partition mid-serve: unreachability heals after 50µs,
/// so every session completes on both replica settings — the partition
/// costs latency, never answers.
#[test]
fn chaos_under_load_fabric_partition_heals() {
    let data = kvapp::KvData::generate(16 * 1024, 5);
    let seed = env_seed(0x9A127170);
    for replicated in [true, false] {
        let cell = format!("[serve/fabric-partition replica={replicated}]");
        let plan = FaultPlan::new(seed).fabric_partition(SimTime(100_000), SimTime(150_000));
        let out = serve_kv_under_chaos(&data, replicated, false, plan);
        assert_chaos_baseline(&cell, &data, &out);
        assert_eq!(
            out.rep.failed(),
            0,
            "{cell}: a healed partition fails nothing"
        );
        assert_eq!(
            out.rep.completed(),
            out.rep.arrived() - out.rep.shed(),
            "{cell}: every admitted session completes once the fabric heals"
        );
        assert!(out.alive, "{cell}: partitions never kill the rack");
    }
}

/// Memory-pool scribbling armed while the store's dirty pages flush, then
/// detected by mid-serve reads: with a replica every hit repairs
/// transparently; without one the hits surface as typed failures — and in
/// both cases the integrity ledger balances and no wrong answer escapes.
#[test]
fn chaos_under_load_corruption() {
    let data = kvapp::KvData::generate(16 * 1024, 5);
    let seed = env_seed(0xBAD5C81B);
    for replicated in [true, false] {
        let cell = format!("[serve/pool-scribble replica={replicated}]");
        let plan = FaultPlan::new(seed).pool_scribbles(SimTime(0), FOREVER, 1.0);
        let out = serve_kv_under_chaos(&data, replicated, true, plan);
        assert_chaos_baseline(&cell, &data, &out);
        assert!(
            out.detected > 0,
            "{cell}: a p=1.0 scribble must be detected"
        );
        assert_eq!(
            out.detected,
            out.repaired + out.lost,
            "{cell}: every detection resolves to a repair or a typed loss"
        );
        assert!(out.alive, "{cell}: corruption never kills the rack");
        if replicated {
            assert_eq!(out.lost, 0, "{cell}: the replica repairs every hit");
            assert_eq!(
                out.rep.failed(),
                0,
                "{cell}: repairs are transparent to sessions"
            );
        } else {
            assert!(out.lost > 0, "{cell}: unreplicated scribbles lose data");
            assert!(
                out.rep.failed() > 0,
                "{cell}: lost pages surface as typed session failures"
            );
        }
    }
}

/// The crash-restart acceptance row: a replicated shard crashes mid-serve,
/// the backup is promoted on the spot (the racing call is fenced and
/// retried), and the dead hardware later rejoins as a re-silvered standby —
/// all while the serve plane stays live. Zero `DataLoss`, no guaranteed-
/// class shedding, every admitted session completes, and the recovery
/// ledger shows exactly one crash, one restart, and a fenced zombie.
#[test]
fn chaos_under_load_pool_crash_restart_rejoins() {
    let data = kvapp::KvData::generate(16 * 1024, 5);
    let seed = env_seed(0xC4A54);
    let cell = "[serve/pool-crash-restart replica=true]";
    let plan =
        FaultPlan::new(seed).pool_crash_restart(1, SimTime(150_000), SimDuration::from_micros(200));
    let out = serve_kv_under_chaos(&data, true, false, plan);
    assert_chaos_baseline(cell, &data, &out);
    assert!(out.alive, "{cell}: the rack survives a crash-restart");
    assert_eq!(out.lost, 0, "{cell}: zero DataLoss across crash and rejoin");
    assert!(
        out.promotions >= 1,
        "{cell}: the crash must promote the replica"
    );
    assert_eq!(out.crashes, 1, "{cell}: exactly one crash");
    assert_eq!(
        out.restarts, 1,
        "{cell}: the dead hardware must rejoin mid-serve"
    );
    assert_eq!(
        out.fenced_writes, 1,
        "{cell}: the zombie's stale epoch is fenced exactly once"
    );
    assert!(
        out.resilvered_pages > 0,
        "{cell}: the rejoining standby must be re-silvered"
    );
    assert_eq!(
        out.rep.failed(),
        0,
        "{cell}: retries absorb the fenced call"
    );
    assert_eq!(
        out.rep.completed(),
        out.rep.arrived() - out.rep.shed(),
        "{cell}: every admitted session completes"
    );
    for trep in &out.rep.tenants {
        if trep.class != QosClass::BestEffort {
            assert_eq!(
                trep.shed, 0,
                "{cell}: only best-effort may shed during recovery ({})",
                trep.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Gray failures: fail-slow faults, hedged mitigation, and the brownout row.
// ---------------------------------------------------------------------------

/// Fail-slow kinds × {replica on/off} × {hedge on/off} on Teleport. A
/// brownout never corrupts (the value always matches the oracle), never
/// kills (no failover, liveness holds), and the hedge ledger stays sane:
/// at most one hedge per call, none when hedging is off, and a pool
/// degraded 50× reliably trips the hedge — whose modeled race then beats
/// the grinding primary.
#[test]
fn fail_slow_matrix_hedging_and_replicas() {
    use ddc_sim::PAGE_SIZE;

    type PlanFor = fn(u64) -> FaultPlan;
    let seed = env_seed(0xFA115707);
    let kinds: [(&str, PlanFor); 3] = [
        ("degraded-pool", |s| {
            FaultPlan::new(s).degraded_pool(0, SimTime(0), FOREVER, 50)
        }),
        ("lame-fabric-link", |s| {
            FaultPlan::new(s).lame_fabric_link(SimTime(0), FOREVER, 8)
        }),
        ("grinding-ssd", |s| {
            FaultPlan::new(s).grinding_ssd(SimTime(0), FOREVER, 8)
        }),
    ];
    let elems = 4 * PAGE_SIZE / 8; // a 4-page scan target
    for (name, build) in kinds {
        for replicated in [false, true] {
            for hedge in [false, true] {
                let cell = format!("[fail-slow/{name} replica={replicated} hedge={hedge}]");
                let mode = if replicated {
                    ReplicationMode::Synchronous
                } else {
                    ReplicationMode::Off
                };
                let mut rt = make_rt_replicated(PlatformKind::Teleport, 1 << 20, mode);
                let region = rt.alloc_region::<u64>(elems);
                let vals: Vec<u64> = (0..elems as u64).collect();
                rt.write_range(&region, 0, &vals);
                let expected: u64 = vals.iter().sum();
                prepare(&mut rt);
                rt.install_fault_plan(build(seed));
                let scan = |m: &mut teleport::Arm<'_>| {
                    let mut buf = Vec::new();
                    // Heavy enough that memory-side service dominates the
                    // fixed pushdown overhead, so a slow pool can't hide.
                    for _ in 0..32 {
                        buf.clear();
                        m.read_range(&region, 0, elems, &mut buf);
                    }
                    buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
                };
                let policy = HedgePolicy {
                    delay: SimDuration::from_micros(100),
                    jitter: SimDuration::ZERO,
                };
                let value = if hedge {
                    let h = rt
                        .pushdown_hedged(PushdownOpts::new(), &policy, scan)
                        .unwrap_or_else(|e| panic!("{cell}: brownout broke the call: {e}"));
                    if name == "degraded-pool" {
                        // 50× slower service is far past the 100µs delay,
                        // and the local clone wins the modeled race.
                        assert_eq!(h.outcome, HedgeOutcome::HedgeWon, "{cell}");
                        assert!(
                            h.latency < SimDuration::from_micros(200),
                            "{cell}: race latency {:?} should be near delay + clone",
                            h.latency
                        );
                    }
                    h.value
                } else {
                    rt.pushdown(PushdownOpts::new(), scan)
                        .unwrap_or_else(|e| panic!("{cell}: brownout broke the call: {e}"))
                };
                assert_eq!(value, expected, "{cell}: a slow answer is still right");
                assert!(rt.is_alive(), "{cell}: fail-slow never kills");
                assert_eq!(rt.failovers(), 0, "{cell}: a brownout is not a death");
                if hedge {
                    assert!(rt.hedges_fired() <= 1, "{cell}: at most one hedge per call");
                    assert!(rt.hedges_won() <= rt.hedges_fired(), "{cell}");
                } else {
                    assert_eq!(rt.hedges_fired(), 0, "{cell}: hedging was off");
                }
            }
        }
    }
}

/// Everything the brownout acceptance row needs to judge one serving run.
struct BrownoutOutcome {
    rep: ServeReport,
    digest: u64,
    quarantines: u64,
    reintegrations: u64,
    pool0_healthy: bool,
    data_loss: u64,
    alive: bool,
}

const BROWNOUT_SESSIONS: usize = 150;

/// One 4-tenant serving run on a 2-pool Teleport rack. With `degrade`,
/// pool 0 grinds at 50× inside a mid-serve window; every tenant hedges
/// behind a 50µs delay, so only tail calls fire the hedge and
/// browned-out calls race a local clone.
fn brownout_serve(data: &kvapp::KvData, degrade: bool) -> BrownoutOutcome {
    let mut cfg = DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.5);
    cfg.pools = 2;
    cfg.placement = PlacementPolicy::LoadBalance;
    cfg.validate().expect("brownout config validates");
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();
    let store = kvapp::KvStore::load(&mut rt, data);
    prepare(&mut rt);
    let seed = env_seed(0xB7070);
    let mut plan = FaultPlan::new(seed);
    if degrade {
        plan = plan.degraded_pool(0, SimTime(500_000), SimTime(3_000_000), 50);
    }
    rt.install_fault_plan(plan);

    let mut plane = ServePlane::new(ServeConfig {
        seed: env_seed(0xB7071),
        admission: AdmissionPolicy {
            max_queue_depth: 3,
            max_backlog: SimDuration::from_micros(150),
        },
        contexts: Some(4),
    });
    let classes = [
        QosClass::Guaranteed,
        QosClass::Guaranteed,
        QosClass::Burstable,
        QosClass::BestEffort,
    ];
    let n = data.len();
    for (t, &class) in classes.iter().enumerate() {
        let ks = kvapp::keys(31 + t as u64, BROWNOUT_SESSIONS, n);
        let vals = store.vals;
        let policy = HedgePolicy {
            delay: SimDuration::from_micros(50),
            jitter: SimDuration::ZERO,
        };
        plane.tenant(
            format!("kv{t}"),
            class,
            ArrivalProcess::poisson(SimDuration::from_micros(60)),
            BROWNOUT_SESSIONS,
            move |rt, s| {
                let k = (ks[s as usize] as usize).min(n - 64);
                rt.pushdown_hedged(PushdownOpts::new(), &policy, |m| {
                    m.charge_cycles(256);
                    let mut buf = Vec::new();
                    for _ in 0..8 {
                        buf.clear();
                        m.read_range(&vals, k, 64, &mut buf);
                    }
                    buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
                })
                .map(|h| h.value)
            },
        );
    }
    let rep = plane.run(&mut rt);
    let m = rt.metrics();
    BrownoutOutcome {
        digest: rt.trace().digest(),
        quarantines: m.get("health.quarantines").unwrap_or(0),
        reintegrations: m.get("health.reintegrations").unwrap_or(0),
        pool0_healthy: rt
            .health()
            .is_none_or(|h| h.state(0) == ddc_sim::PoolHealthState::Healthy),
        data_loss: m.get("integrity.data_loss").unwrap_or(0),
        alive: rt.is_alive(),
        rep,
    }
}

/// The ISSUE 8 acceptance row: a pool degraded 50× mid-serve under a
/// 4-tenant mix. Hedging plus quarantine keeps guaranteed-class p99
/// within 2× of the healthy-run baseline while best-effort sheds first;
/// the same seed reproduces the digest bit-for-bit; and the quarantined
/// pool reintegrates after the fault window with zero data loss.
#[test]
fn brownout_keeps_guaranteed_p99_bounded_while_best_effort_sheds() {
    let data = kvapp::KvData::generate(16 * 1024, 5);
    let healthy = brownout_serve(&data, false);
    let brown = brownout_serve(&data, true);

    // Same seed, same fault plan => bit-identical trace digest.
    let brown2 = brownout_serve(&data, true);
    assert_eq!(
        brown.digest, brown2.digest,
        "brownout digest must be seed-deterministic"
    );
    assert_ne!(
        healthy.digest, brown.digest,
        "the fault window must alter the trace"
    );

    for (label, out) in [("healthy", &healthy), ("brownout", &brown)] {
        assert!(out.alive, "{label}: rack must survive the run");
        assert_eq!(out.data_loss, 0, "{label}: zero DataLoss");
        assert!(out.pool0_healthy, "{label}: pool 0 must end Healthy");
        for (t, trep) in out.rep.tenants.iter().enumerate() {
            assert_eq!(trep.failed, 0, "{label} t{t}: no session may fail");
            assert!(
                trep.hedges_won <= trep.hedges_fired,
                "{label} t{t}: hedge ledger"
            );
            if trep.class == QosClass::Guaranteed {
                assert_eq!(trep.shed, 0, "{label} t{t}: guaranteed never sheds");
                assert_eq!(
                    trep.completed, BROWNOUT_SESSIONS as u64,
                    "{label} t{t}: guaranteed completes every session"
                );
            }
        }
    }

    // Only the degraded run trips the health plane, and the pool comes
    // back once the fault window closes.
    assert_eq!(healthy.quarantines, 0);
    assert_eq!(healthy.reintegrations, 0);
    assert_eq!(
        brown.quarantines, 1,
        "the ground pool must be quarantined once"
    );
    assert_eq!(brown.reintegrations, 1, "and reintegrated after the window");

    // Mitigation did real work: hedges fired under brownout, and the
    // best-effort tenant is the one that absorbed the admission squeeze.
    let brown_hedges: u64 = brown.rep.tenants.iter().map(|t| t.hedges_fired).sum();
    assert!(brown_hedges > 0, "brownout must fire hedges");
    assert!(
        brown.rep.class_shed(QosClass::BestEffort) > 0,
        "best-effort sheds first under brownout"
    );

    // The acceptance bar: guaranteed-class p99 under a 50x pool grind
    // stays within 2x of the healthy baseline.
    for t in 0..2 {
        let base = healthy.rep.latency.p99(t).expect("healthy p99").as_nanos();
        let hit = brown.rep.latency.p99(t).expect("brownout p99").as_nanos();
        assert!(
            hit <= 2 * base,
            "guaranteed t{t}: brownout p99 {hit}ns exceeds 2x healthy baseline {base}ns"
        );
    }
}
