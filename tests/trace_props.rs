//! Property tests for the trace layer: per-lane timestamp monotonicity,
//! digest determinism across identical runs, and the coherence-tracing
//! contract (every SWMR-violating memory-side access under a coherent
//! mode emits a `CoherenceMsg`; disabled coherence emits none).

use ddc_os::{Dos, Pattern};
use ddc_sim::{DdcConfig, EventKind, SimDuration, PAGE_SIZE};
use proptest::prelude::*;
use teleport::{CoherenceMode, Mem, Perm, PushdownOpts, PushdownSession, Runtime};

const PAGES: u64 = 6;
const ELEMS_PER_PAGE: usize = PAGE_SIZE / 8;

#[derive(Debug, Clone)]
struct Op {
    page: u64,
    slot: usize,
    write: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..PAGES, 0..ELEMS_PER_PAGE, any::<bool>()).prop_map(|(page, slot, write)| Op {
        page,
        slot,
        write,
    })
}

/// Replay `ops` on a fresh traced Teleport runtime (small cache so real
/// faults and evictions occur), finishing with a pushdown so every
/// instrumented layer appears in the stream.
fn traced_run(ops: &[Op]) -> Runtime {
    let mut rt = Runtime::teleport(DdcConfig {
        compute_cache_bytes: 3 * PAGE_SIZE,
        memory_pool_bytes: 64 * PAGE_SIZE,
        ..Default::default()
    });
    rt.enable_tracing();
    let region = rt.alloc_region::<u64>(PAGES as usize * ELEMS_PER_PAGE);
    rt.begin_timing();
    for op in ops {
        let i = op.page as usize * ELEMS_PER_PAGE + op.slot;
        if op.write {
            rt.set(&region, i, op.page + 1, Pattern::Rand);
        } else {
            let _ = rt.get(&region, i, Pattern::Rand);
        }
    }
    let n = region.len();
    rt.pushdown(PushdownOpts::new(), move |m| {
        let mut buf = Vec::new();
        m.read_range(&region, 0, n, &mut buf);
        buf.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    })
    .unwrap();
    rt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequence numbers are strictly increasing and timestamps are
    /// non-decreasing — globally and within every lane — for arbitrary
    /// workloads: virtual time never runs backwards in the trace.
    #[test]
    fn timestamps_non_decreasing_per_lane(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let rt = traced_run(&ops);
        let events = rt.trace().events();
        prop_assert!(!events.is_empty());
        for w in events.windows(2) {
            prop_assert!(w[1].seq == w[0].seq + 1, "seq gap: {} -> {}", w[0], w[1]);
            prop_assert!(w[1].at >= w[0].at, "time ran backwards: {} -> {}", w[0], w[1]);
        }
        for lane in ddc_sim::trace::LANES {
            let stamps: Vec<_> =
                events.iter().filter(|r| r.lane == lane).map(|r| r.at).collect();
            for w in stamps.windows(2) {
                prop_assert!(w[1] >= w[0], "lane {lane} time ran backwards");
            }
        }
    }

    /// Identical seed + config ⇒ identical event stream: the digest (and
    /// length) of two independent replays of the same ops are equal.
    #[test]
    fn identical_runs_have_identical_digests(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let a = traced_run(&ops);
        let b = traced_run(&ops);
        prop_assert_eq!(a.trace().len(), b.trace().len());
        prop_assert_eq!(a.trace().digest(), b.trace().digest());
        // The digest covers payloads, not just counts: it must differ from
        // a run with one extra op (same length workloads can collide in
        // count space but the streams differ).
        let mut more = ops.clone();
        more.push(Op { page: 0, slot: 0, write: true });
        let c = traced_run(&more);
        if c.trace().len() != a.trace().len() {
            prop_assert_ne!(a.trace().digest(), c.trace().digest());
        }
    }

    /// Under write-invalidate, a memory-side access that violates SWMR
    /// (the compute pool holds a conflicting copy and the temporary
    /// context lacks the permission) emits exactly one `CoherenceMsg`;
    /// a non-violating access emits none.
    #[test]
    fn swmr_violations_emit_coherence_msgs(
        schedule in prop::collection::vec(
            (any::<bool>(), 0..PAGES, any::<bool>()), 1..80
        )
    ) {
        // Cache holds every page: no natural evictions, so the only
        // coherence activity is protocol messaging.
        let mut dos = Dos::new_disaggregated(DdcConfig {
            compute_cache_bytes: 32 * PAGE_SIZE,
            memory_pool_bytes: 256 * PAGE_SIZE,
            ..Default::default()
        });
        let a = dos.alloc(PAGES as usize * PAGE_SIZE);
        for p in 0..PAGES {
            dos.write_u64(a.offset(p * PAGE_SIZE as u64), p, Pattern::Rand);
        }
        dos.begin_timing();
        dos.tracer().enable();
        let resident = dos.resident_list();
        let mut s = PushdownSession::new(
            CoherenceMode::WriteInvalidate,
            &resident,
            SimDuration::from_micros(10),
        );
        for &(mem_side, page, write) in &schedule {
            let pid = a.offset(page * PAGE_SIZE as u64).page();
            let addr = a.offset(page * PAGE_SIZE as u64 + 32);
            let before = dos.tracer().count(EventKind::CoherenceMsg);
            if mem_side {
                let need = if write { Perm::Write } else { Perm::Read };
                let probe = dos.cache_probe(pid);
                let conflicting = if write {
                    probe.is_some()
                } else {
                    probe.map(|e| e.writable).unwrap_or(false)
                };
                let violates = s.mem_perm(pid) < need && conflicting;
                s.mem_access(&mut dos, addr, 8, write, Pattern::Rand);
                let emitted = dos.tracer().count(EventKind::CoherenceMsg) - before;
                prop_assert_eq!(
                    emitted,
                    violates as u64,
                    "page {} {} (mem perm {:?}, compute copy {:?})",
                    page,
                    if write { "write" } else { "read" },
                    s.mem_perm(pid),
                    dos.cache_probe(pid).map(|e| e.writable)
                );
            } else {
                s.compute_access(&mut dos, addr, 8, write, Pattern::Rand);
            }
            // The messaging keeps SWMR intact after every step.
            let compute_writable =
                dos.cache_probe(pid).map(|e| e.writable).unwrap_or(false);
            prop_assert!(!(compute_writable && s.mem_perm(pid) == Perm::Write));
            prop_assert!(!(dos.cache_probe(pid).is_some() && s.mem_perm(pid) == Perm::Write));
        }
        let _ = s.finish(&mut dos);
    }

    /// Disabled coherence never messages: zero `CoherenceMsg` events for
    /// any schedule, while the trace still carries the rest of the run.
    #[test]
    fn disabled_mode_emits_no_coherence_msgs(
        schedule in prop::collection::vec(
            (any::<bool>(), 0..PAGES, any::<bool>()), 1..80
        )
    ) {
        let mut dos = Dos::new_disaggregated(DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 256 * PAGE_SIZE,
            ..Default::default()
        });
        let a = dos.alloc(PAGES as usize * PAGE_SIZE);
        for p in 0..PAGES {
            dos.write_u64(a.offset(p * PAGE_SIZE as u64), p, Pattern::Rand);
        }
        dos.begin_timing();
        dos.tracer().enable();
        let resident = dos.resident_list();
        let mut s = PushdownSession::new(
            CoherenceMode::Disabled,
            &resident,
            SimDuration::from_micros(10),
        );
        for &(mem_side, page, write) in &schedule {
            let addr = a.offset(page * PAGE_SIZE as u64 + 32);
            if mem_side {
                s.mem_access(&mut dos, addr, 8, write, Pattern::Rand);
            } else {
                s.compute_access(&mut dos, addr, 8, write, Pattern::Rand);
            }
        }
        let _ = s.finish(&mut dos);
        prop_assert_eq!(dos.tracer().count(EventKind::CoherenceMsg), 0);
    }
}
