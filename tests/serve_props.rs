//! Property tests for the multi-tenant serving plane: seed-determinism
//! (same seed ⇒ identical arrival schedules, admission decisions, and
//! trace digest), deficit-round-robin fairness (no tenant starves), and
//! the shed ledger invariant (arrived == completed + shed + failed +
//! in-flight, with nothing in flight once the plane drains).

use ddc_os::DrrQueue;
use ddc_sim::{env_seed, ArrivalProcess, DdcConfig, QosClass, SimDuration, QOS_CLASSES};
use proptest::prelude::*;
use teleport::{AdmissionPolicy, Runtime, ServeConfig, ServePlane, ServeReport};

const KV_KEYS: usize = 256;

/// A small mixed-class serving run: `tenants` KV tenants on Poisson
/// arrivals, classes striped across the QoS ladder. Returns the report
/// plus the trace digest — everything an identical rerun must reproduce.
fn kv_serve(
    seed: u64,
    tenants: usize,
    sessions: u64,
    mean_gap_us: u64,
    depth: usize,
    backlog_us: u64,
) -> (ServeReport, u64) {
    // Fold in the CI-pinned fault seed so the 3-seed sweep exercises
    // distinct serve schedules while staying reproducible per pin.
    let seed = seed ^ env_seed(0);
    let data = kvapp::KvData::generate(KV_KEYS, 7);
    let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.25));
    rt.enable_tracing();
    let store = kvapp::KvStore::load(&mut rt, &data);
    rt.drop_cache();
    rt.begin_timing();

    let mut plane = ServePlane::new(ServeConfig {
        seed,
        admission: AdmissionPolicy {
            max_queue_depth: depth,
            max_backlog: SimDuration::from_micros(backlog_us),
        },
        contexts: None,
    });
    for t in 0..tenants {
        let ks = kvapp::keys(seed ^ (t as u64 + 1), sessions as usize, KV_KEYS);
        plane.tenant(
            format!("t{t}"),
            QOS_CLASSES[t % QOS_CLASSES.len()],
            ArrivalProcess::poisson(SimDuration::from_micros(mean_gap_us)),
            sessions as usize,
            move |rt, s| kvapp::get(rt, &store, ks[s as usize]),
        );
    }
    let rep = plane.run(&mut rt);
    let digest = rt.trace().digest();
    (rep, digest)
}

/// The rerun-comparable surface of a report: counters, outcomes, and
/// latency samples per tenant (admission decisions are visible through
/// `shed`/`admitted`; values through `completed_values`).
type TenantFingerprint = (String, u64, u64, u64, u64, u64, Vec<u64>);

fn fingerprint(rep: &ServeReport) -> Vec<TenantFingerprint> {
    rep.tenants
        .iter()
        .enumerate()
        .map(|(t, tr)| {
            (
                tr.name.clone(),
                tr.arrived,
                tr.admitted,
                tr.completed,
                tr.shed,
                tr.failed,
                {
                    let mut vals = tr.completed_values();
                    vals.push(rep.latency.count(t) as u64);
                    vals
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ the arrival schedule is reproduced event for event,
    /// for every process shape; different seeds diverge for the random
    /// processes; and schedules are monotone non-decreasing.
    #[test]
    fn arrival_schedules_are_seed_deterministic_and_monotone(
        seed in any::<u64>(),
        mean_us in 1u64..500,
        burst in 1usize..8,
        n in 1usize..64,
    ) {
        let procs = [
            ArrivalProcess::poisson(SimDuration::from_micros(mean_us)),
            ArrivalProcess::bursty(
                SimDuration::from_micros(mean_us * 4),
                burst,
                SimDuration::from_nanos(200),
            ),
            ArrivalProcess::uniform(SimDuration::from_micros(mean_us)),
        ];
        for p in procs {
            let a = p.schedule(seed, n);
            let b = p.schedule(seed, n);
            prop_assert_eq!(&a, &b, "same seed must reproduce {:?}", p);
            prop_assert_eq!(a.len(), n);
            prop_assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "arrivals out of order for {:?}: {:?}", p, a
            );
        }
        // Poisson schedules with different seeds almost surely differ.
        if n >= 8 {
            let p = ArrivalProcess::poisson(SimDuration::from_micros(mean_us));
            prop_assert_ne!(p.schedule(seed, n), p.schedule(seed.wrapping_add(1), n));
        }
    }

    /// Same seed ⇒ identical admission decisions, outcomes, latency
    /// sample counts, and trace digest — the serving plane adds no
    /// nondeterminism of its own.
    #[test]
    fn same_seed_reproduces_admissions_outcomes_and_digest(
        seed in any::<u64>(),
        tenants in 1usize..5,
        sessions in 1u64..10,
        mean_gap_us in 5u64..120,
        depth in 0usize..4,
        backlog_us in 10u64..400,
    ) {
        let (rep_a, dig_a) = kv_serve(seed, tenants, sessions, mean_gap_us, depth, backlog_us);
        let (rep_b, dig_b) = kv_serve(seed, tenants, sessions, mean_gap_us, depth, backlog_us);
        prop_assert_eq!(dig_a, dig_b, "trace digest drifted across same-seed reruns");
        prop_assert_eq!(fingerprint(&rep_a), fingerprint(&rep_b));
    }

    /// Shed ledger invariant at drain: every arrived session is accounted
    /// for as completed, shed, or failed — and nothing is left in flight
    /// once `run` returns.
    #[test]
    fn shed_ledger_balances_at_drain(
        seed in any::<u64>(),
        tenants in 1usize..5,
        sessions in 1u64..10,
        mean_gap_us in 5u64..120,
        depth in 0usize..4,
        backlog_us in 10u64..400,
    ) {
        let (rep, _) = kv_serve(seed, tenants, sessions, mean_gap_us, depth, backlog_us);
        prop_assert!(rep.ledger_balances(), "per-tenant ledger out of balance");
        prop_assert_eq!(rep.arrived(), tenants as u64 * sessions);
        prop_assert_eq!(
            rep.completed() + rep.shed() + rep.failed(),
            rep.arrived(),
            "arrived sessions must be fully accounted at drain"
        );
        for tr in &rep.tenants {
            prop_assert_eq!(tr.in_flight(), 0, "tenant {} left sessions in flight", tr.name);
            prop_assert_eq!(tr.arrived, sessions);
        }
        // No faults installed: nothing may fail, only complete or shed.
        prop_assert_eq!(rep.failed(), 0);
        // Latency samples come only from completed sessions.
        let samples: usize = (0..rep.tenants.len()).map(|t| rep.latency.count(t)).sum();
        prop_assert_eq!(samples as u64, rep.completed());
    }

    /// DRR fairness: with lanes in cursor order, lane `i`'s first item is
    /// served within `sum(quantum[j] for j < i)` pops of the start — no
    /// tenant waits on more than one quantum round of the lanes ahead of
    /// it, and every queued item is eventually served in FIFO order.
    #[test]
    fn drr_never_starves_a_lane(
        quanta in prop::collection::vec(1u64..5, 1..6),
        lens in prop::collection::vec(1usize..8, 1..6),
    ) {
        let lanes = quanta.len().min(lens.len());
        let quanta = &quanta[..lanes];
        let lens = &lens[..lanes];
        let mut q: DrrQueue<(usize, usize)> = DrrQueue::new(quanta);
        for (t, &n) in lens.iter().enumerate() {
            for s in 0..n {
                q.push(t, (t, s));
            }
        }
        let total: usize = lens.iter().sum();
        let mut order = Vec::with_capacity(total);
        while let Some((lane, item)) = q.pop() {
            prop_assert_eq!(lane, item.0, "item served under the wrong lane");
            order.push(item);
        }
        prop_assert_eq!(order.len(), total, "DRR dropped items");
        for (t, &n) in lens.iter().enumerate() {
            // FIFO within the lane.
            let served: Vec<usize> =
                order.iter().filter(|(l, _)| *l == t).map(|&(_, s)| s).collect();
            prop_assert_eq!(&served, &(0..n).collect::<Vec<_>>());
            // Bounded first service: one quantum round of the lanes ahead.
            let first = order.iter().position(|&(l, _)| l == t).unwrap();
            let bound: u64 = quanta[..t].iter().sum();
            prop_assert!(
                first as u64 <= bound,
                "lane {t} first served at pop {first}, bound {bound}"
            );
        }
    }
}

/// Guaranteed-class admission dominates burstable dominates best-effort
/// for every load point — the nesting that makes "best-effort sheds
/// first" a structural property rather than a tuning accident.
#[test]
fn class_admission_limits_nest_across_the_ladder() {
    let policy = AdmissionPolicy {
        max_queue_depth: 3,
        max_backlog: SimDuration::from_micros(50),
    };
    for waiting in 0..40usize {
        for backlog_us in (0..400u64).step_by(25) {
            let backlog = SimDuration::from_micros(backlog_us);
            let g = policy.admits_class(QosClass::Guaranteed, waiting, backlog);
            let b = policy.admits_class(QosClass::Burstable, waiting, backlog);
            let e = policy.admits_class(QosClass::BestEffort, waiting, backlog);
            assert!(!e || b, "best-effort admitted where burstable is not");
            assert!(!b || g, "burstable admitted where guaranteed is not");
        }
    }
}
