//! Property tests for the crash-restart recovery plane.
//!
//! The invariants, in the order the tentpole demands them:
//!
//! 1. **Replay idempotency** — replaying a journal twice produces exactly
//!    the state one replay produces, both at the journal level (the
//!    replayable prefix is a pure function of the entries) and at the
//!    kernel level (a second crash+restart with no intervening writes
//!    changes nothing).
//! 2. **Fencing** — once a replica is promoted, no write from the dead
//!    epoch is ever observable: the zombie is fenced, the racing call
//!    surfaces [`PushdownError::Fenced`], and a retry lands on the new
//!    epoch with the oracle-exact value.
//! 3. **Bounded torn-tail loss** — a torn journal write loses at most the
//!    un-synced suffix, which the sync batch bounds.
//! 4. **Determinism** — same seed + same crash plan ⇒ identical trace
//!    story and byte-identical digest across two runs.

use ddc_os::recovery::JOURNAL_SYNC_BATCH;
use ddc_os::{PageId, RecoveryJournal, ReplOp};
use ddc_sim::{DdcConfig, FaultPlan, ReplicationMode, SimDuration, SimTime};
use proptest::prelude::*;
use teleport::{ExecutionVia, Mem, PushdownOpts, ResiliencePolicy, Runtime};

const ELEMS: usize = 2048; // 4 pages of u64

fn column_vals(tag: u64) -> Vec<u64> {
    (0..ELEMS as u64)
        .map(|i| {
            (i ^ tag)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(13)
        })
        .collect()
}

/// Build a journal holding `synced` synced ops plus `tail` un-synced ones,
/// with op content derived from `tag`.
fn build_journal(synced: usize, tail: usize, tag: u64) -> RecoveryJournal {
    let mut j = RecoveryJournal::new(0);
    for i in 0..synced {
        j.append_synced(ReplOp::PageWrite(PageId(tag.wrapping_add(i as u64) % 64)));
    }
    // Un-synced entries ride `append` but stop short of the next sync
    // crossing, leaving them torn-able.
    for i in 0..tail {
        j.append(ReplOp::PageWrite(PageId(
            tag.wrapping_add(1000 + i as u64) % 64,
        )));
    }
    j
}

/// The end-to-end crash scenario: one shard, seeded content, a
/// `PoolCrashRestart` plan (optionally with a torn journal write), and a
/// resilient full-column sum issued into the crash. Returns
/// (digest, trace length, value, attempts, via, recovered runtime).
fn run_crash_scenario(
    seed: u64,
    replicated: bool,
    torn: bool,
) -> (u64, u64, u64, u32, ExecutionVia, Runtime) {
    let mut cfg = DdcConfig::with_cache_ratio(ELEMS * 8, 0.25);
    cfg.replication = if replicated {
        ReplicationMode::Synchronous
    } else {
        ReplicationMode::Off
    };
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();
    let vals = column_vals(seed);
    let col = rt.alloc_region::<u64>(ELEMS);
    rt.write_range(&col, 0, &vals);
    rt.begin_timing();
    let mut plan =
        FaultPlan::new(seed).pool_crash_restart(0, SimTime(0), SimDuration::from_nanos(200));
    if torn {
        plan = plan.torn_journal_write(0, SimTime(0));
    }
    rt.install_fault_plan(plan);

    let expected: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    let out = rt
        .pushdown_resilient(PushdownOpts::new(), &ResiliencePolicy::retry_only(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        })
        .expect("retry rides out the crash");
    assert_eq!(out.value, expected, "post-crash sum matches the oracle");

    // A second pushdown: past the outage window, so a pending rejoin is
    // serviced; and a second chance to observe any stale zombie write.
    let again = rt
        .pushdown(PushdownOpts::new(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().fold(0u64, |a, &v| a.wrapping_add(v))
        })
        .expect("steady state after recovery");
    assert_eq!(again, expected, "recovered steady state matches the oracle");

    let mut back = Vec::new();
    rt.read_range(&col, 0, ELEMS, &mut back);
    assert_eq!(back, vals, "every element reads back bit-identical");
    assert!(rt.is_alive(), "a crash-restart never kills the rack");
    (
        rt.trace().digest(),
        rt.trace().len(),
        out.value,
        out.attempts,
        out.via,
        rt,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Journal-level idempotency: the replayable prefix is a pure
    /// function of the entries — computing it twice (even after a tear)
    /// yields the identical op list and ledger.
    #[test]
    fn replayable_prefix_is_idempotent(
        synced in 0usize..12,
        tail in 0usize..4,
        tag in any::<u64>(),
        tear in any::<bool>(),
    ) {
        let mut j = build_journal(synced, tail, tag);
        if tear {
            j.tear_tail();
        }
        let (ops_a, set_a) = j.replayable();
        let (ops_b, set_b) = j.replayable();
        prop_assert_eq!(&ops_a, &ops_b, "replay op list must be stable");
        prop_assert_eq!(set_a, set_b, "replay ledger must be stable");
        prop_assert_eq!(
            ops_a.len() as u64 + set_a.discarded_entries,
            j.len() as u64,
            "every entry is either replayed or discarded"
        );
    }

    /// Torn-tail loss is bounded: a tear never discards more than the
    /// un-synced suffix, and the sync batch bounds that suffix.
    #[test]
    fn torn_tail_loss_is_bounded_by_the_unsynced_batch(
        synced in 0usize..12,
        tail in 0usize..4,
        tag in any::<u64>(),
    ) {
        let mut j = build_journal(synced, tail, tag);
        let unsynced = j.unsynced_len();
        prop_assert!(unsynced < JOURNAL_SYNC_BATCH, "sync crossings drain the tail");
        j.tear_tail();
        let (_, set) = j.replayable();
        prop_assert_eq!(
            set.discarded_entries,
            unsynced as u64,
            "a tear costs exactly the un-synced suffix"
        );
        prop_assert!(
            set.discarded_entries <= JOURNAL_SYNC_BATCH as u64,
            "loss is bounded by the sync batch"
        );
    }

    /// Kernel-level idempotency: a second crash+restart with no writes in
    /// between replays to the identical state — bytes, epoch advance, and
    /// replay ledger all repeat.
    #[test]
    fn double_crash_restart_is_idempotent(seed in any::<u64>()) {
        let mut cfg = DdcConfig::with_cache_ratio(ELEMS * 8, 0.25);
        cfg.replication = ReplicationMode::Off;
        let mut rt = Runtime::teleport(cfg);
        let vals = column_vals(seed);
        let col = rt.alloc_region::<u64>(ELEMS);
        rt.write_range(&col, 0, &vals);
        rt.dos_mut().enable_recovery_journal();
        rt.begin_timing();

        rt.dos_mut().crash_pool(0);
        let first = rt.dos_mut().restart_pool(0);
        rt.dos_mut().crash_pool(0);
        let second = rt.dos_mut().restart_pool(0);
        prop_assert_eq!(
            first.replay.applied_entries,
            second.replay.applied_entries,
            "an idle shard replays the same journal twice"
        );
        prop_assert_eq!(second.epoch, first.epoch + 1, "each recovery advances the epoch");

        let mut back = Vec::new();
        rt.read_range(&col, 0, ELEMS, &mut back);
        prop_assert_eq!(back, vals, "bytes survive repeated replay unchanged");
    }

    /// The fencing property: with a promoted replica, the zombie's stale
    /// epoch never lands a write — the racing call surfaces `Fenced`, one
    /// retry reaches the new epoch, and the recovered bytes equal the
    /// oracle on every seed.
    #[test]
    fn no_stale_epoch_write_is_ever_observable(seed in any::<u64>()) {
        let (_, _, _, attempts, via, rt) = run_crash_scenario(seed, true, false);
        prop_assert_eq!(via, ExecutionVia::Pushdown, "the retry lands remotely");
        prop_assert_eq!(attempts, 1, "one fenced call, one retry");
        prop_assert_eq!(rt.failovers(), 1, "the crash promoted the replica");
        let rec = rt.dos().recovery_counters();
        prop_assert_eq!(rec.crashes, 1);
        prop_assert_eq!(rec.restarts, 1, "the zombie hardware rejoined");
        prop_assert_eq!(rec.fenced_writes, 1, "its stale epoch was fenced exactly once");
        prop_assert!(rec.resilvered_pages > 0, "the standby was re-silvered");
        prop_assert!(rt.dos().has_replica_for(0), "the shard is replicated again");
    }

    /// Same seed ⇒ identical story: the crash scenario (both lives, torn
    /// or intact) reproduces the trace length and digest bit-for-bit.
    #[test]
    fn same_seed_same_story_and_digest(
        seed in any::<u64>(),
        replicated in any::<bool>(),
        torn in any::<bool>(),
    ) {
        let (d1, n1, v1, a1, via1, _) = run_crash_scenario(seed, replicated, torn);
        let (d2, n2, v2, a2, via2, _) = run_crash_scenario(seed, replicated, torn);
        prop_assert_eq!(n1, n2, "trace lengths differ");
        prop_assert_eq!(d1, d2, "trace digests differ");
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(via1, via2);
    }
}

/// The non-property anchor of invariant 2: the unreplicated crash is
/// absorbed in place (no fencing, no failover, zero retries) and the
/// torn-tail variant still reads back oracle-exact.
#[test]
fn unreplicated_crash_recovers_in_place() {
    for torn in [false, true] {
        let (_, _, _, attempts, via, rt) = run_crash_scenario(7, false, torn);
        assert_eq!(via, ExecutionVia::Pushdown);
        assert_eq!(attempts, 0, "the outage is waited out, not retried");
        assert_eq!(rt.failovers(), 0, "nothing to promote");
        let rec = rt.dos().recovery_counters();
        assert_eq!(rec.crashes, 1);
        assert_eq!(rec.restarts, 1);
        assert_eq!(rec.fenced_writes, 0, "no zombie without a promotion");
        if torn {
            assert!(rec.torn_tails <= 1, "at most the one injected tear");
        } else {
            assert_eq!(rec.torn_tails, 0);
        }
    }
}
