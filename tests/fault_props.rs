//! Property tests for the fault-injection plane and the resilience
//! policies: backoff shape, retry budgets, and seed-determinism of chaotic
//! runs (same `FaultPlan` seed ⇒ byte-identical trace digest).

use ddc_sim::{DdcConfig, FaultPlan, SimDuration, SimTime, FOREVER};
use proptest::prelude::*;
use teleport::{
    ExecutionVia, FallbackPolicy, Mem, PushdownError, PushdownOpts, Region, ResiliencePolicy,
    RetryPolicy, Runtime,
};

fn retry_policy(max_retries: u32, base_ns: u64, cap_ns: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base: SimDuration::from_nanos(base_ns),
        cap: SimDuration::from_nanos(cap_ns),
        budget: None,
        retry_killed: false,
        retry_failed_over: true,
        retry_rejected: true,
    }
}

/// A Teleport runtime plus a loaded column, ready for chaotic pushdowns.
fn chaotic_rt(plan: FaultPlan) -> (Runtime, Region<u64>) {
    let mut rt = Runtime::teleport(DdcConfig::default());
    rt.enable_tracing();
    let col = rt.alloc_region::<u64>(1024);
    let vals: Vec<u64> = (0..1024u64).collect();
    rt.write_range(&col, 0, &vals);
    rt.begin_timing();
    rt.install_fault_plan(plan);
    (rt, col)
}

/// Sum the column under a policy; every call dodges injected exceptions
/// via retries or absorbs them via fallback.
fn churn(rt: &mut Runtime, col: &Region<u64>, policy: &ResiliencePolicy, calls: usize) {
    let expected: u64 = (0..1024u64).sum();
    for _ in 0..calls {
        let col = *col;
        let out = rt
            .pushdown_resilient(PushdownOpts::new(), policy, move |m| {
                let mut buf = Vec::new();
                m.read_range(&col, 0, col.len(), &mut buf);
                buf.iter().sum::<u64>()
            })
            .expect("full policy absorbs every injected exception");
        assert_eq!(out.value, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Backoff is monotone non-decreasing in the attempt number and never
    /// exceeds the cap, for arbitrary base/cap schedules — including
    /// degenerate ones (cap below base) and attempt numbers far past the
    /// shift-overflow point.
    #[test]
    fn backoff_is_monotone_and_capped(
        base_ns in 1u64..1_000_000,
        cap_ns in 1u64..10_000_000,
        attempts in 1u32..96,
    ) {
        let p = retry_policy(8, base_ns, cap_ns);
        let mut prev = SimDuration::ZERO;
        for a in 0..attempts {
            let d = p.backoff(a);
            prop_assert!(d >= prev, "backoff({a}) = {d} < backoff({}) = {prev}", a.wrapping_sub(1));
            prop_assert!(d <= p.cap, "backoff({a}) = {d} exceeds cap {}", p.cap);
            prev = d;
        }
    }

    /// With a fault on every call, the runtime performs exactly
    /// `max_retries` retries — never more — and then either falls back or
    /// surfaces the error, depending on the policy.
    #[test]
    fn retries_never_exceed_max_retries(
        max_retries in 0u32..6,
        with_fallback in any::<bool>(),
    ) {
        // p = 1.0 fires on every call: no retry can ever succeed.
        let plan = FaultPlan::new(1).pushdown_exceptions_prob(SimTime(0), FOREVER, 1.0);
        let (mut rt, col) = chaotic_rt(plan);
        let policy = ResiliencePolicy {
            retry: Some(retry_policy(max_retries, 1_000, 1_000_000)),
            fallback: with_fallback.then(FallbackPolicy::default),
        };
        let r = rt.pushdown_resilient(PushdownOpts::new(), &policy, move |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().sum::<u64>()
        });
        prop_assert_eq!(rt.resilience_retries(), max_retries as u64);
        match r {
            Ok(out) => {
                prop_assert!(with_fallback);
                prop_assert_eq!(out.via, ExecutionVia::LocalFallback);
                prop_assert_eq!(out.attempts, max_retries);
                prop_assert_eq!(out.value, (0..1024u64).sum::<u64>());
            }
            Err(e) => {
                prop_assert!(!with_fallback);
                prop_assert!(matches!(e, PushdownError::Exception(_)));
            }
        }
        prop_assert!(rt.is_alive());
    }

    /// A virtual-time budget bounds the backoff total: the number of
    /// retries actually performed never spends more backoff than the
    /// budget allows (the next delay must still fit when charged).
    #[test]
    fn retry_budget_bounds_total_backoff(
        budget_us in 1u64..200,
        base_us in 1u64..50,
    ) {
        let plan = FaultPlan::new(2).pushdown_exceptions_prob(SimTime(0), FOREVER, 1.0);
        let (mut rt, col) = chaotic_rt(plan);
        let policy = ResiliencePolicy {
            retry: Some(RetryPolicy {
                max_retries: 32,
                base: SimDuration::from_micros(base_us),
                cap: SimDuration::from_millis(10),
                budget: Some(SimDuration::from_micros(budget_us)),
                retry_killed: false,
                retry_failed_over: true,
                retry_rejected: true,
            }),
            fallback: None,
        };
        let r = rt.pushdown_resilient(PushdownOpts::new(), &policy, move |m| {
            m.get(&col, 0, ddc_os::Pattern::Rand)
        });
        prop_assert!(r.is_err(), "every call faults and there is no fallback");
        let retries = rt.resilience_retries() as u32;
        let p = policy.retry.unwrap();
        let spent: u64 = (0..retries).map(|a| p.backoff(a).as_nanos()).sum();
        prop_assert!(
            spent <= SimDuration::from_micros(budget_us).as_nanos(),
            "spent {spent}ns of a {budget_us}us budget over {retries} retries"
        );
        // Maximality: stopping was forced, not arbitrary — one more retry
        // would either exceed the budget or the retry cap.
        let next = spent + p.backoff(retries).as_nanos();
        prop_assert!(
            retries >= 32 || next > SimDuration::from_micros(budget_us).as_nanos(),
            "stopped early: {retries} retries, next total {next}ns still fits"
        );
    }

    /// The determinism guarantee: two runs with the same `FaultPlan` seed
    /// produce byte-identical traces (length and digest), even under
    /// probabilistic faults and retry/fallback recovery. Different seeds
    /// that produce different event counts must not collide.
    #[test]
    fn same_seed_means_identical_trace_digest(seed in any::<u64>()) {
        let run = |s: u64| {
            let plan = FaultPlan::new(s)
                .pushdown_exceptions_prob(SimTime(0), FOREVER, 0.5)
                .ssd_transient_errors(SimTime(0), FOREVER, 0.3);
            let (mut rt, col) = chaotic_rt(plan);
            churn(&mut rt, &col, &ResiliencePolicy::full(), 4);
            (rt.trace().len(), rt.trace().digest())
        };
        let (len_a, dig_a) = run(seed);
        let (len_b, dig_b) = run(seed);
        prop_assert_eq!(len_a, len_b, "same seed, different event counts");
        prop_assert_eq!(dig_a, dig_b, "same seed, different digests");
        let (len_c, dig_c) = run(seed.wrapping_add(1));
        if len_c != len_a {
            prop_assert_ne!(dig_a, dig_c);
        }
    }
}
