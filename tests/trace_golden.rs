//! Trace-golden test: a small scripted workload must produce an *exact*
//! ordered event sequence on the Teleport platform, and the pushdown
//! breakdown must equal the virtual time between the lifecycle's first
//! and last trace events. Any layer that stops emitting (kernel faults,
//! fabric messages, coherence round trips, pushdown steps) breaks the
//! golden sequence.

use ddc_sim::{
    fault_label, health_label, recovery_label, ArrivalProcess, DdcConfig, EventKind, FaultLevel,
    FaultPlan, Lane, QosClass, SimDuration, SimTime, Ssd, SsdConfig, TraceEvent, TraceRecord,
    Tracer, PAGE_SIZE,
};
use teleport::{
    AdmissionPolicy, Mem, PushdownOpts, ResiliencePolicy, Runtime, ServeConfig, ServePlane,
};

const ELEMS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Render one record as `lane/event`, with page addresses rewritten to
/// page indices relative to `base_page` so the expectation is stable.
fn label(rec: &TraceRecord, base_page: u64) -> String {
    let lane = match rec.lane {
        Lane::Compute => "compute",
        Lane::Memory => "memory",
        Lane::Storage => "storage",
        Lane::Net => "net",
    };
    let ev = match rec.event {
        TraceEvent::PageFault { vaddr, level } => {
            let pg = vaddr / PAGE_SIZE as u64 - base_page;
            let lv = match level {
                FaultLevel::Cache => "cache",
                FaultLevel::Remote => "remote",
                FaultLevel::Storage => "storage",
            };
            format!("fault p{pg} {lv}")
        }
        TraceEvent::Evict { page, dirty } => {
            format!(
                "evict p{}{}",
                page - base_page,
                if dirty { " dirty" } else { "" }
            )
        }
        // Class only: payload sizes (RLE'd resident lists etc.) are
        // asserted separately where they are stable.
        TraceEvent::NetMsg { class, .. } => format!("net {class:?}"),
        TraceEvent::SsdIo { write, .. } => {
            format!("ssd {}", if write { "write" } else { "read" })
        }
        TraceEvent::CoherenceMsg { page, transition } => {
            format!("coherence p{} {transition:?}", page - base_page)
        }
        TraceEvent::PushdownStep { step } => format!("step {step}"),
        TraceEvent::Syncmem { pages } => format!("syncmem {pages}"),
        TraceEvent::Cancel { req } => format!("cancel {req}"),
        TraceEvent::Timeout { req } => format!("timeout {req}"),
        TraceEvent::FaultInjected { fault, .. } => format!("fault {}", fault_label(fault)),
        TraceEvent::Recovery { action, attempt } => {
            format!("recovery {} a{attempt}", recovery_label(action))
        }
        TraceEvent::CancelDeclined { req } => format!("cancel-declined {req}"),
        TraceEvent::ReplicaShip { seq, pages } => format!("replica-ship s{seq} {pages}"),
        TraceEvent::ReplicaAck { seq } => format!("replica-ack s{seq}"),
        TraceEvent::PoolPromoted { epoch, lost_pages } => {
            format!("pool-promoted e{epoch} lost {lost_pages}")
        }
        TraceEvent::AdmissionShed { backlog_ns } => format!("admission-shed {backlog_ns}"),
        TraceEvent::CorruptionInjected { page, offset } => {
            format!("corrupt p{} +{offset}", page - base_page)
        }
        TraceEvent::ChecksumMismatch { page } => format!("mismatch p{}", page - base_page),
        TraceEvent::PageRepaired { page, source } => {
            format!("repaired p{} {source:?}", page - base_page)
        }
        TraceEvent::DataLoss { page } => format!("data-loss p{}", page - base_page),
        TraceEvent::ScrubPass { pages, detected } => format!("scrub {pages} {detected}"),
        TraceEvent::RaceDetected { page, write_write } => {
            format!("race p{} ww{}", page - base_page, write_write as u8)
        }
        TraceEvent::PoolRouted { pool, pages } => format!("pool-routed p{pool} {pages}"),
        TraceEvent::PushdownFanout { pools, pages } => format!("fanout {pools} {pages}"),
        TraceEvent::FanoutMerge { pools } => format!("fanout-merge {pools}"),
        TraceEvent::SessionArrive { tenant, session } => {
            format!("session-arrive t{tenant} s{session}")
        }
        TraceEvent::SessionAdmit { tenant, session } => {
            format!("session-admit t{tenant} s{session}")
        }
        // Latencies are pinned by the scenarios that assert them; the label
        // keeps only the tenant so reorderings are still visible.
        TraceEvent::SessionComplete { tenant, .. } => format!("session-complete t{tenant}"),
        TraceEvent::TenantThrottled { tenant, class } => {
            format!("tenant-throttled t{tenant} {}", class.label())
        }
        TraceEvent::FailSlowInjected { fault, factor } => {
            format!("fail-slow {} x{factor}", fault_label(fault))
        }
        TraceEvent::HealthTransition { pool, from, to } => {
            format!(
                "health p{pool} {}->{}",
                health_label(from),
                health_label(to)
            )
        }
        TraceEvent::HedgeFired { call } => format!("hedge-fired call{call}"),
        TraceEvent::HedgeWon { call } => format!("hedge-won call{call}"),
        TraceEvent::DeadlineExceeded { call, over_ns } => {
            format!("deadline-exceeded call{call} +{over_ns}")
        }
        TraceEvent::PoolReintegrated { pool } => format!("pool-reintegrated p{pool}"),
        TraceEvent::PoolCrashed { pool, epoch } => format!("pool-crashed p{pool} e{epoch}"),
        TraceEvent::JournalReplayed { entries, pages } => {
            format!("journal-replayed {entries} {pages}")
        }
        TraceEvent::TornTailDiscarded { entries, pages } => {
            format!("torn-tail {entries} {pages}")
        }
        TraceEvent::PoolRestarted { pool, epoch } => format!("pool-restarted p{pool} e{epoch}"),
        TraceEvent::FencedWrite { pool, stale_epoch } => {
            format!("fenced-write p{pool} e{stale_epoch}")
        }
        TraceEvent::ResilverComplete { pool, pages } => {
            format!("resilver-complete p{pool} {pages}")
        }
    };
    format!("{lane}/{ev}")
}

/// 2-page compute cache, roomy memory pool: three page-sized writes fill
/// the cache and force one dirty eviction, then a pushdown sums the whole
/// region, downgrading the two compute-cached pages on demand.
fn scripted_workload(rt: &mut Runtime) -> (u64, teleport::Breakdown) {
    let col = rt.alloc_region::<u64>(4 * ELEMS_PER_PAGE);
    rt.begin_timing();
    rt.set(&col, 0, 7, ddc_os::Pattern::Rand); // page 0: fault + dirty
    rt.set(&col, ELEMS_PER_PAGE, 8, ddc_os::Pattern::Rand); // page 1
    rt.set(&col, 2 * ELEMS_PER_PAGE, 9, ddc_os::Pattern::Rand); // page 2 (evicts page 0)
    let sum = rt
        .pushdown(PushdownOpts::new(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().copied().sum::<u64>()
        })
        .expect("pushdown succeeds");
    (
        sum,
        rt.last_breakdown().expect("teleport records a breakdown"),
    )
}

fn golden_config() -> DdcConfig {
    DdcConfig {
        compute_cache_bytes: 2 * PAGE_SIZE,
        memory_pool_bytes: 64 * PAGE_SIZE,
        ..Default::default()
    }
}

#[test]
fn teleport_golden_event_sequence() {
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let (sum, _) = scripted_workload(&mut rt);
    assert_eq!(sum, 7 + 8 + 9);

    let events = rt.trace().events();
    let base_page = match events
        .iter()
        .find(|r| matches!(r.event, TraceEvent::PageFault { .. }))
        .map(|r| r.event)
    {
        Some(TraceEvent::PageFault { vaddr, .. }) => vaddr / PAGE_SIZE as u64,
        _ => panic!("no page fault in trace"),
    };
    let got: Vec<String> = events.iter().map(|r| label(r, base_page)).collect();
    let expected = [
        // Three compute-side writes: two fill the cache, the third evicts
        // the (dirty) first page.
        "compute/fault p0 remote",
        "net/net PageIn",
        "compute/fault p1 remote",
        "net/net PageIn",
        "compute/fault p2 remote",
        "net/net PageIn",
        "compute/evict p0 dirty",
        "net/net PageOut",
        // Pushdown lifecycle ❶–❽ (paper Fig 5).
        "compute/step 1",
        "net/step 2",
        "net/net RpcRequest",
        "memory/step 3",
        "memory/step 4",
        "memory/step 5",
        // The memory-side scan downgrades the two compute-writable pages
        // on demand: one coherence round trip (two wire messages) and a
        // dirty flush each. Page 0 was naturally evicted — silent.
        "memory/coherence p1 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/coherence p2 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/step 6",
        "net/step 7",
        "net/net RpcResponse",
        "compute/step 8",
    ];
    assert_eq!(
        got,
        expected.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "full trace:\n{}",
        rt.trace().render()
    );

    // Stable payload sizes: every page movement is page-sized, coherence
    // messages are 64 B, the response is fixed-size.
    for rec in &events {
        if let TraceEvent::NetMsg { class, bytes } = rec.event {
            match class {
                ddc_sim::MsgClass::PageIn | ddc_sim::MsgClass::PageOut => {
                    assert_eq!(bytes, PAGE_SIZE as u64, "{rec}");
                }
                ddc_sim::MsgClass::Coherence => assert_eq!(bytes, 64, "{rec}"),
                ddc_sim::MsgClass::RpcResponse => assert_eq!(bytes, 12, "{rec}"),
                _ => {}
            }
        }
    }
}

/// The cross-pool cousin of `teleport_golden_event_sequence`: the same
/// scripted workload on a two-shard rack with LoadBalance striping. The
/// pushdown's scan now spans both shards, so between step ❻ and step ❼ the
/// rack must settle the fan-out: route the call to its primary shard,
/// declare the fan-out, pay one sub-call (request header + response) for
/// the extra shard, and merge — in exactly this order, every run.
#[test]
fn teleport_cross_pool_fanout_golden_event_sequence() {
    let mut cfg = golden_config();
    cfg.pools = 2;
    cfg.placement = ddc_sim::PlacementPolicy::LoadBalance;
    let mut rt = Runtime::teleport(cfg);
    rt.enable_tracing();
    let (sum, _) = scripted_workload(&mut rt);
    assert_eq!(sum, 7 + 8 + 9);

    let events = rt.trace().events();
    let base_page = match events
        .iter()
        .find(|r| matches!(r.event, TraceEvent::PageFault { .. }))
        .map(|r| r.event)
    {
        Some(TraceEvent::PageFault { vaddr, .. }) => vaddr / PAGE_SIZE as u64,
        _ => panic!("no page fault in trace"),
    };
    let got: Vec<String> = events.iter().map(|r| label(r, base_page)).collect();
    let expected = [
        // Identical prefix to the single-pool golden: sharding the pool
        // changes where pages live, not how the compute side behaves.
        "compute/fault p0 remote",
        "net/net PageIn",
        "compute/fault p1 remote",
        "net/net PageIn",
        "compute/fault p2 remote",
        "net/net PageIn",
        "compute/evict p0 dirty",
        "net/net PageOut",
        "compute/step 1",
        "net/step 2",
        "net/net RpcRequest",
        "memory/step 3",
        "memory/step 4",
        "memory/step 5",
        "memory/coherence p1 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/coherence p2 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/step 6",
        // Fan-out settlement: the 4-page scan striped over both shards.
        "memory/pool-routed p0 4",
        "memory/fanout 2 4",
        "net/net RpcRequest",
        "net/net RpcResponse",
        "memory/fanout-merge 2",
        "net/step 7",
        "net/net RpcResponse",
        "compute/step 8",
    ];
    assert_eq!(
        got,
        expected.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "full trace:\n{}",
        rt.trace().render()
    );

    // Rerunning the exact scenario reproduces the digest bit-for-bit: the
    // fan-out path is as deterministic as the rest of the protocol.
    let mut rt2 = Runtime::teleport({
        let mut cfg = golden_config();
        cfg.pools = 2;
        cfg.placement = ddc_sim::PlacementPolicy::LoadBalance;
        cfg
    });
    rt2.enable_tracing();
    scripted_workload(&mut rt2);
    assert_eq!(rt.trace().digest(), rt2.trace().digest());
    assert_eq!(rt.trace().len(), rt2.trace().len());
}

#[test]
fn breakdown_total_matches_trace_span() {
    // The Fig 19 breakdown must attribute *all* time between lifecycle
    // steps ❶ and ❽: total() equals the virtual-time span between the
    // step-1 and step-8 trace events.
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let (_, bd) = scripted_workload(&mut rt);

    let events = rt.trace().events();
    let at_step = |step: u8| {
        events
            .iter()
            .find(|r| r.event == TraceEvent::PushdownStep { step })
            .unwrap_or_else(|| panic!("step {step} missing"))
            .at
    };
    let span = at_step(8).since(at_step(1));
    assert_eq!(
        bd.total(),
        span,
        "breakdown {bd:?} must equal the ❶→❽ trace span {span}"
    );
    // Sanity: the per-step timestamps are in lifecycle order.
    for s in 1..8u8 {
        assert!(at_step(s) <= at_step(s + 1), "step {s} out of order");
    }
}

#[test]
fn disabled_tracing_records_nothing_and_changes_nothing() {
    // Tracing off (the default): zero events, and bit-identical virtual
    // time and results versus a traced run — observation is free both ways.
    let mut plain = Runtime::teleport(golden_config());
    let (sum_plain, bd_plain) = scripted_workload(&mut plain);
    assert_eq!(plain.trace().len(), 0, "disabled tracer stays empty");

    let mut traced = Runtime::teleport(golden_config());
    traced.enable_tracing();
    let (sum_traced, bd_traced) = scripted_workload(&mut traced);
    assert!(!traced.trace().is_empty());

    assert_eq!(sum_plain, sum_traced);
    assert_eq!(bd_plain, bd_traced, "tracing must not perturb timing");
    assert_eq!(plain.elapsed(), traced.elapsed());
}

#[test]
fn injected_exception_then_retry_golden_sequence() {
    // A scripted fault on pushdown call 0 plus a retry policy must produce
    // the exact sequence: full lifecycle with the injected fault at step
    // ❺, a retry-backoff decision, a clean second lifecycle, and the
    // closing retry-success record.
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    rt.begin_timing();
    rt.install_fault_plan(FaultPlan::new(7).pushdown_exception(0));

    let out = rt
        .pushdown_resilient(PushdownOpts::new(), &ResiliencePolicy::retry_only(), |_m| {
            42u64
        })
        .expect("retry recovers the call");
    assert_eq!(out.value, 42);
    assert_eq!(out.attempts, 1);

    let events = rt.trace().events();
    let got: Vec<String> = events.iter().map(|r| label(r, 0)).collect();
    let lifecycle = |faulted: bool| -> Vec<&'static str> {
        let mut v = vec![
            "compute/step 1",
            "net/step 2",
            "net/net RpcRequest",
            "memory/step 3",
            "memory/step 4",
            "memory/step 5",
        ];
        if faulted {
            v.push("memory/fault pushdown-exception");
        }
        v.extend([
            "memory/step 6",
            "net/step 7",
            "net/net RpcResponse",
            "compute/step 8",
        ]);
        v
    };
    let mut expected: Vec<&str> = lifecycle(true);
    expected.push("compute/recovery retry-backoff a1");
    expected.extend(lifecycle(false));
    expected.push("compute/recovery retry-success a1");
    assert_eq!(
        got,
        expected.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "full trace:\n{}",
        rt.trace().render()
    );

    let m = rt.metrics();
    assert_eq!(m.get("trace.faults_injected"), Some(1));
    assert_eq!(m.get("trace.recoveries"), Some(2));
    assert_eq!(m.get("resilience.retries"), Some(1));
    assert_eq!(m.get("faults.injected"), Some(1));
}

#[test]
fn ssd_transient_error_retries_at_the_device_golden_sequence() {
    // Scripted at the device layer: a certain transient error makes one
    // page read cost two device operations (attempt, fault, retry) and
    // exactly twice the I/O time.
    let clock = ddc_sim::Clock::new();
    let tracer = Tracer::new(clock.clone());
    tracer.enable();
    let ssd = Ssd::with_tracer(SsdConfig::default(), tracer.clone());
    let plan = FaultPlan::new(3).ssd_transient_errors(SimTime(0), ddc_sim::FOREVER, 1.0);
    ssd.set_injector(ddc_sim::FaultInjector::new(
        plan,
        clock.clone(),
        tracer.clone(),
    ));

    let t = ssd.read_page();
    assert_eq!(
        t,
        SsdConfig::default().page_io_time() * 2,
        "attempt + retry"
    );

    let got: Vec<String> = tracer.events().iter().map(|r| label(r, 0)).collect();
    assert_eq!(
        got,
        vec![
            "storage/ssd read".to_string(),
            "storage/fault ssd-transient-error".to_string(),
            "storage/ssd read".to_string(),
        ]
    );

    // Without an active window, the same device is back to one clean I/O.
    tracer.reset();
    let plan = FaultPlan::new(3).ssd_transient_errors(SimTime(0), SimTime(0), 1.0);
    ssd.set_injector(ddc_sim::FaultInjector::new(plan, clock, tracer.clone()));
    assert_eq!(ssd.read_page(), SsdConfig::default().page_io_time());
    assert_eq!(tracer.count(EventKind::SsdIo), 1);
    assert_eq!(tracer.count(EventKind::FaultInjected), 0);
}

#[test]
fn try_cancel_while_running_is_declined_and_the_call_completes() {
    // §3.2's other race, previously untested: the timeout fires while the
    // function is already executing. try_cancel is declined and the caller
    // still gets the result.
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let cell = rt.alloc_region::<u64>(1);
    rt.set(&cell, 0, 5, ddc_os::Pattern::Rand);
    rt.begin_timing();

    let v = rt
        .pushdown(
            PushdownOpts::new().timeout(SimDuration::from_nanos(1)),
            |m| {
                m.charge_cycles(1_000_000); // runs well past the timeout
                m.get(&cell, 0, ddc_os::Pattern::Rand)
            },
        )
        .expect("a running request cannot be cancelled — it completes");
    assert_eq!(v, 5);

    assert_eq!(rt.trace().count(EventKind::Timeout), 1);
    assert_eq!(rt.trace().count(EventKind::CancelDeclined), 1);
    assert_eq!(rt.trace().count(EventKind::Cancel), 0, "nothing cancelled");
    // The control message for try_cancel is on the wire ledger.
    assert_eq!(rt.net_ledger().control.messages, 1);
    let got: Vec<String> = rt.trace().events().iter().map(|r| label(r, 0)).collect();
    assert!(
        got.contains(&"compute/timeout 0".to_string())
            && got.contains(&"memory/cancel-declined 0".to_string()),
        "trace:\n{}",
        rt.trace().render()
    );
}

#[test]
fn metrics_registry_agrees_with_ledgers_and_trace() {
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let _ = scripted_workload(&mut rt);

    let m = rt.metrics();
    let stats = rt.paging_stats();
    let ledger = rt.net_ledger();
    assert_eq!(m.get("paging.cache_misses"), Some(stats.cache_misses));
    assert_eq!(m.get("paging.evictions"), Some(stats.evictions));
    assert_eq!(m.get("net.page_in.messages"), Some(ledger.page_in.messages));
    assert_eq!(
        m.get("net.coherence.messages"),
        Some(ledger.coherence.messages)
    );
    assert_eq!(m.get("pushdown.calls"), Some(1));
    // The trace's own per-kind counts are part of the registry and agree
    // with the underlying ledgers.
    assert_eq!(
        m.get("trace.net_msgs"),
        Some(ledger.total_messages()),
        "every fabric message traced"
    );
    assert_eq!(m.get("trace.pushdown_steps"), Some(8));
    assert_eq!(
        m.get("trace.coherence_msgs"),
        Some(rt.last_coherence_stats().unwrap().round_trips)
    );
    // Deterministic render: sorted, one line per counter.
    let render = m.render();
    assert_eq!(render.lines().count(), m.len());
    let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

/// The serving-plane golden: two tenants contending for one service slot
/// on a two-shard rack under a zero-backlog admission policy. The exact
/// narrative must replay every run: the guaranteed front-end arrives and
/// is admitted; its dispatch fans out across both shards; the best-effort
/// scavenger arrives behind the busy slot and is throttled — twice over,
/// then the digest reproduces bit-for-bit.
#[test]
fn serve_two_tenant_contention_golden_event_sequence() {
    let run = || {
        let mut cfg = golden_config();
        cfg.pools = 2;
        cfg.placement = ddc_sim::PlacementPolicy::LoadBalance;
        let mut rt = Runtime::teleport(cfg);
        let col = rt.alloc_region::<u64>(4 * ELEMS_PER_PAGE);
        let vals: Vec<u64> = (0..4 * ELEMS_PER_PAGE as u64).collect();
        rt.write_range(&col, 0, &vals);
        rt.drop_cache();
        rt.begin_timing();
        rt.enable_tracing();

        let make_work = || {
            move |rt: &mut Runtime, _s: u64| {
                rt.pushdown(PushdownOpts::new(), move |m| {
                    let mut buf = Vec::new();
                    m.read_range(&col, 0, col.len(), &mut buf);
                    buf.iter().copied().sum::<u64>()
                })
            }
        };
        let mut plane = ServePlane::new(ServeConfig {
            seed: 1,
            admission: AdmissionPolicy {
                max_queue_depth: 1,
                max_backlog: SimDuration::ZERO,
            },
            contexts: None,
        });
        // Uniform arrivals are seed-independent: both tenants fire at
        // t = 0 and t = 1ms, and ties resolve by tenant index.
        let gap = ArrivalProcess::uniform(SimDuration::from_millis(1));
        plane.tenant("front", QosClass::Guaranteed, gap, 2, make_work());
        plane.tenant("scav", QosClass::BestEffort, gap, 2, make_work());
        let rep = plane.run(&mut rt);

        let expected_sum = vals.iter().sum::<u64>();
        for out in rep.tenants[0].completed_values() {
            assert_eq!(out, expected_sum, "front-end session summed wrong");
        }
        assert_eq!(rep.tenants[0].completed, 2, "guaranteed completes both");
        assert_eq!(
            rep.tenants[1].shed, 2,
            "best-effort is throttled both times"
        );
        let labels: Vec<String> = rt.trace().events().iter().map(|r| label(r, 0)).collect();
        (labels, rt.trace().digest())
    };

    let (got, digest) = run();
    // One dispatch of the striped sum: lifecycle ❶–❽ with the fan-out
    // settled between ❻ and ❼ (as in the cross-pool golden above).
    let dispatch = [
        "compute/step 1",
        "net/step 2",
        "net/net RpcRequest",
        "memory/step 3",
        "memory/step 4",
        "memory/step 5",
        "memory/step 6",
        "memory/pool-routed p0 4",
        "memory/fanout 2 4",
        "net/net RpcRequest",
        "net/net RpcResponse",
        "memory/fanout-merge 2",
        "net/step 7",
        "net/net RpcResponse",
        "compute/step 8",
    ];
    let mut expected: Vec<String> = Vec::new();
    for round in 0..2 {
        // The front-end's arrival is admitted into the idle slot...
        expected.push(format!("compute/session-arrive t0 s{round}"));
        expected.push(format!("compute/session-admit t0 s{round}"));
        // ...whose dispatch logically precedes the scavenger's arrival,
        expected.extend(dispatch.iter().map(|s| s.to_string()));
        expected.push("compute/session-complete t0".to_string());
        // ...so the scavenger lands behind a busy slot: zero backlog
        // tolerance means best-effort is shed on the spot.
        expected.push(format!("compute/session-arrive t1 s{round}"));
        expected.push("compute/tenant-throttled t1 best-effort".to_string());
    }
    assert_eq!(got, expected, "serve contention golden drifted");

    // Same seed, same script: the digest must reproduce bit-for-bit.
    let (got2, digest2) = run();
    assert_eq!(got, got2);
    assert_eq!(digest, digest2, "serve golden digest drifted across reruns");
}

/// With one tenant on one pool, the serving plane must be *invisible*:
/// filtering out the four serve-event kinds leaves a (label, timestamp)
/// stream bit-identical to running the same pushdowns directly — the
/// plane adds bookkeeping, never virtual time.
#[test]
fn single_tenant_serve_plane_is_invisible_in_the_trace() {
    let setup = |rt: &mut Runtime| {
        let col = rt.alloc_region::<u64>(2 * ELEMS_PER_PAGE);
        let vals: Vec<u64> = (0..2 * ELEMS_PER_PAGE as u64).map(|v| v * 3 + 1).collect();
        rt.write_range(&col, 0, vals.as_slice());
        rt.drop_cache();
        rt.begin_timing();
        rt.enable_tracing();
        col
    };
    let stream = |rt: &Runtime, serve_events_expected: bool| -> Vec<(String, SimTime)> {
        let mut saw_serve = false;
        let out: Vec<(String, SimTime)> = rt
            .trace()
            .events()
            .iter()
            .filter(|r| {
                let serve = matches!(
                    r.event,
                    TraceEvent::SessionArrive { .. }
                        | TraceEvent::SessionAdmit { .. }
                        | TraceEvent::SessionComplete { .. }
                        | TraceEvent::TenantThrottled { .. }
                );
                saw_serve |= serve;
                !serve
            })
            .map(|r| (label(r, 0), r.at))
            .collect();
        assert_eq!(saw_serve, serve_events_expected, "serve-event presence");
        out
    };

    let direct = {
        let mut rt = Runtime::teleport(golden_config());
        let col = setup(&mut rt);
        for _ in 0..3 {
            rt.pushdown(PushdownOpts::new(), |m| {
                let mut buf = Vec::new();
                m.read_range(&col, 0, col.len(), &mut buf);
                buf.iter().copied().sum::<u64>()
            })
            .expect("direct pushdown succeeds");
        }
        stream(&rt, false)
    };

    let served = {
        let mut rt = Runtime::teleport(golden_config());
        let col = setup(&mut rt);
        let mut plane = ServePlane::new(ServeConfig::with_seed(9));
        plane.tenant(
            "solo",
            QosClass::Guaranteed,
            ArrivalProcess::uniform(SimDuration::from_micros(10)),
            3,
            move |rt, _s| {
                rt.pushdown(PushdownOpts::new(), move |m| {
                    let mut buf = Vec::new();
                    m.read_range(&col, 0, col.len(), &mut buf);
                    buf.iter().copied().sum::<u64>()
                })
            },
        );
        let rep = plane.run(&mut rt);
        assert_eq!(rep.completed(), 3, "solo tenant completes everything");
        stream(&rt, true)
    };

    assert_eq!(
        direct, served,
        "the serving plane perturbed the underlying event stream"
    );
}

/// The gray-failure plane's pinned narrative: a two-shard rack where shard
/// 0 degrades 50x mid-run. The filtered stream of gray-failure events must
/// replay exactly: the fail-slow onset, hedges firing (and winning) on the
/// slow shard, detection walking Healthy -> Suspect -> Quarantined, a blown
/// deadline budget while degraded, then — once the fault window closes —
/// the probe streak driving Quarantined -> Probation -> Healthy with the
/// closing reintegration record. Same seed, same script: the digest must
/// reproduce bit-for-bit.
#[test]
fn gray_failure_detect_hedge_quarantine_reintegrate_golden_sequence() {
    const DEGRADE_FROM: SimTime = SimTime(500_000); // 500us
    const DEGRADE_UNTIL: SimTime = SimTime(12_000_000); // 12ms

    let run = || {
        let mut cfg = golden_config();
        cfg.pools = 2;
        // Locality placement: allocation 0 lands whole on shard 0,
        // allocation 1 on shard 1 — the test needs that attribution.
        cfg.placement = ddc_sim::PlacementPolicy::Locality;
        let mut rt = Runtime::teleport(cfg);
        rt.enable_tracing();
        rt.install_fault_plan(FaultPlan::new(7).degraded_pool(0, DEGRADE_FROM, DEGRADE_UNTIL, 50));

        // One single-page region per shard: calls against `a` attribute
        // their service window to shard 0, calls against `b` to shard 1.
        let a = rt.alloc_region::<u64>(ELEMS_PER_PAGE);
        let b = rt.alloc_region::<u64>(ELEMS_PER_PAGE);
        rt.write_range(&a, 0, &vec![1u64; ELEMS_PER_PAGE]);
        rt.write_range(&b, 0, &vec![2u64; ELEMS_PER_PAGE]);
        rt.drop_cache();
        rt.begin_timing();

        let read_region = |col: teleport::Region<u64>| {
            move |m: &mut teleport::Arm<'_>| {
                let mut buf = Vec::new();
                m.read_range(&col, 0, col.len(), &mut buf);
                buf.iter().copied().sum::<u64>()
            }
        };
        // Heavier shape for the brownout phase: enough memory-side touches
        // that the 50x slowdown dominates the call's fixed overheads.
        let scan_region = |col: teleport::Region<u64>| {
            move |m: &mut teleport::Arm<'_>| {
                let mut sum = 0u64;
                for _ in 0..100 {
                    let mut buf = Vec::new();
                    m.read_range(&col, 0, col.len(), &mut buf);
                    sum = buf.iter().copied().sum::<u64>();
                }
                sum
            }
        };

        // Phase 1 — learn the baseline: healthy calls against shard 0
        // until the fault window is about to open.
        while rt.elapsed() < DEGRADE_FROM.since(SimTime::ZERO) {
            rt.pushdown(PushdownOpts::new(), read_region(a))
                .expect("healthy call");
        }

        // Phase 2 — brownout: hedged calls against the now-degraded shard.
        // Every call runs 50x slow, fires its hedge, and the local clone
        // wins the modeled race; the service windows walk the detector to
        // quarantine. One call carries a deadline budget sized for healthy
        // service — while degraded it must blow.
        let hedge = teleport::HedgePolicy {
            delay: SimDuration::from_micros(100),
            jitter: SimDuration::ZERO,
        };
        let mut deadline_blown = false;
        while rt
            .health()
            .is_some_and(|h| h.state(0) != ddc_sim::PoolHealthState::Quarantined)
        {
            let h = rt
                .pushdown_hedged(PushdownOpts::new(), &hedge, scan_region(a))
                .expect("hedged call returns");
            assert_eq!(h.value, ELEMS_PER_PAGE as u64);
            rt.drop_cache(); // return the clone's pages to the shard
            if !deadline_blown {
                deadline_blown = true;
                let err = rt
                    .pushdown(
                        PushdownOpts::new().deadline(SimDuration::from_micros(150)),
                        scan_region(a),
                    )
                    .expect_err("a healthy-sized budget blows while degraded");
                assert!(matches!(
                    err,
                    teleport::PushdownError::DeadlineExceeded { .. }
                ));
                rt.drop_cache();
            }
        }

        // Phase 3 — recovery: cheap traffic against the healthy shard
        // keeps the runtime (and its probe driver) ticking until the fault
        // window closes and the probe streak reintegrates shard 0.
        let mut guard = 0u32;
        while rt
            .health()
            .is_some_and(|h| h.state(0) != ddc_sim::PoolHealthState::Healthy)
        {
            rt.pushdown(PushdownOpts::new(), read_region(b))
                .expect("healthy-shard call");
            guard += 1;
            assert!(guard < 10_000, "shard 0 never reintegrated");
        }

        let labels: Vec<String> = rt
            .trace()
            .events()
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::FailSlowInjected { .. }
                        | TraceEvent::HealthTransition { .. }
                        | TraceEvent::HedgeFired { .. }
                        | TraceEvent::HedgeWon { .. }
                        | TraceEvent::DeadlineExceeded { .. }
                        | TraceEvent::PoolReintegrated { .. }
                )
            })
            .map(|r| label(r, 0))
            .collect();
        assert_eq!(
            rt.trace().count(EventKind::DataLoss),
            0,
            "a brownout is slow, never lossy"
        );
        let h = rt.health().expect("fail-slow plan arms the health plane");
        (
            labels,
            rt.trace().digest(),
            (h.quarantines(), h.reintegrations(), h.probes()),
        )
    };

    let (got, digest, (quarantines, reintegrations, probes)) = run();
    let expected = [
        // The onset is traced once; the slowdown itself is silent.
        "memory/fail-slow degraded-pool x50",
        // Every brownout call overruns the hedge delay; the local clone
        // wins the modeled race each time.
        "compute/hedge-fired call14",
        "compute/hedge-won call14",
        // Four degraded samples complete a window: one bad window is
        // suspicion, not a verdict.
        "memory/health p0 healthy->suspect",
        // The budgeted call completes ~1.1ms past its 150us budget.
        "compute/deadline-exceeded call15 +1137423",
        "compute/hedge-fired call16",
        "compute/hedge-won call16",
        "compute/hedge-fired call17",
        "compute/hedge-won call17",
        "compute/hedge-fired call18",
        "compute/hedge-won call18",
        // A second degraded window convicts: the shard leaves placement.
        "memory/health p0 suspect->quarantined",
        "compute/hedge-fired call19",
        "compute/hedge-won call19",
        // Synthetic probes fail silently while the fault window is open;
        // once it closes, the first pass starts probation and the streak
        // reintegrates the shard.
        "memory/health p0 quarantined->probation",
        "memory/health p0 probation->healthy",
        "memory/pool-reintegrated p0",
    ];
    assert_eq!(
        got,
        expected.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "gray-failure golden drifted"
    );
    assert_eq!(quarantines, 1);
    assert_eq!(reintegrations, 1);
    assert_eq!(probes, 12, "9 failing probes + the reintegration streak");

    // Same seed, same script: the digest must reproduce bit-for-bit.
    let (got2, digest2, _) = run();
    assert_eq!(got, got2);
    assert_eq!(digest, digest2, "gray-failure golden digest drifted");
}
