//! Trace-golden test: a small scripted workload must produce an *exact*
//! ordered event sequence on the Teleport platform, and the pushdown
//! breakdown must equal the virtual time between the lifecycle's first
//! and last trace events. Any layer that stops emitting (kernel faults,
//! fabric messages, coherence round trips, pushdown steps) breaks the
//! golden sequence.

use ddc_sim::{DdcConfig, FaultLevel, Lane, TraceEvent, TraceRecord, PAGE_SIZE};
use teleport::{Mem, PushdownOpts, Runtime};

const ELEMS_PER_PAGE: usize = PAGE_SIZE / 8;

/// Render one record as `lane/event`, with page addresses rewritten to
/// page indices relative to `base_page` so the expectation is stable.
fn label(rec: &TraceRecord, base_page: u64) -> String {
    let lane = match rec.lane {
        Lane::Compute => "compute",
        Lane::Memory => "memory",
        Lane::Storage => "storage",
        Lane::Net => "net",
    };
    let ev = match rec.event {
        TraceEvent::PageFault { vaddr, level } => {
            let pg = vaddr / PAGE_SIZE as u64 - base_page;
            let lv = match level {
                FaultLevel::Cache => "cache",
                FaultLevel::Remote => "remote",
                FaultLevel::Storage => "storage",
            };
            format!("fault p{pg} {lv}")
        }
        TraceEvent::Evict { page, dirty } => {
            format!(
                "evict p{}{}",
                page - base_page,
                if dirty { " dirty" } else { "" }
            )
        }
        // Class only: payload sizes (RLE'd resident lists etc.) are
        // asserted separately where they are stable.
        TraceEvent::NetMsg { class, .. } => format!("net {class:?}"),
        TraceEvent::SsdIo { write, .. } => {
            format!("ssd {}", if write { "write" } else { "read" })
        }
        TraceEvent::CoherenceMsg { page, transition } => {
            format!("coherence p{} {transition:?}", page - base_page)
        }
        TraceEvent::PushdownStep { step } => format!("step {step}"),
        TraceEvent::Syncmem { pages } => format!("syncmem {pages}"),
        TraceEvent::Cancel { req } => format!("cancel {req}"),
        TraceEvent::Timeout { req } => format!("timeout {req}"),
    };
    format!("{lane}/{ev}")
}

/// 2-page compute cache, roomy memory pool: three page-sized writes fill
/// the cache and force one dirty eviction, then a pushdown sums the whole
/// region, downgrading the two compute-cached pages on demand.
fn scripted_workload(rt: &mut Runtime) -> (u64, teleport::Breakdown) {
    let col = rt.alloc_region::<u64>(4 * ELEMS_PER_PAGE);
    rt.begin_timing();
    rt.set(&col, 0, 7, ddc_os::Pattern::Rand); // page 0: fault + dirty
    rt.set(&col, ELEMS_PER_PAGE, 8, ddc_os::Pattern::Rand); // page 1
    rt.set(&col, 2 * ELEMS_PER_PAGE, 9, ddc_os::Pattern::Rand); // page 2 (evicts page 0)
    let sum = rt
        .pushdown(PushdownOpts::new(), |m| {
            let mut buf = Vec::new();
            m.read_range(&col, 0, col.len(), &mut buf);
            buf.iter().copied().sum::<u64>()
        })
        .expect("pushdown succeeds");
    (
        sum,
        rt.last_breakdown().expect("teleport records a breakdown"),
    )
}

fn golden_config() -> DdcConfig {
    DdcConfig {
        compute_cache_bytes: 2 * PAGE_SIZE,
        memory_pool_bytes: 64 * PAGE_SIZE,
        ..Default::default()
    }
}

#[test]
fn teleport_golden_event_sequence() {
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let (sum, _) = scripted_workload(&mut rt);
    assert_eq!(sum, 7 + 8 + 9);

    let events = rt.trace().events();
    let base_page = match events
        .iter()
        .find(|r| matches!(r.event, TraceEvent::PageFault { .. }))
        .map(|r| r.event)
    {
        Some(TraceEvent::PageFault { vaddr, .. }) => vaddr / PAGE_SIZE as u64,
        _ => panic!("no page fault in trace"),
    };
    let got: Vec<String> = events.iter().map(|r| label(r, base_page)).collect();
    let expected = [
        // Three compute-side writes: two fill the cache, the third evicts
        // the (dirty) first page.
        "compute/fault p0 remote",
        "net/net PageIn",
        "compute/fault p1 remote",
        "net/net PageIn",
        "compute/fault p2 remote",
        "net/net PageIn",
        "compute/evict p0 dirty",
        "net/net PageOut",
        // Pushdown lifecycle ❶–❽ (paper Fig 5).
        "compute/step 1",
        "net/step 2",
        "net/net RpcRequest",
        "memory/step 3",
        "memory/step 4",
        "memory/step 5",
        // The memory-side scan downgrades the two compute-writable pages
        // on demand: one coherence round trip (two wire messages) and a
        // dirty flush each. Page 0 was naturally evicted — silent.
        "memory/coherence p1 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/coherence p2 DowngradeCompute",
        "net/net Coherence",
        "net/net Coherence",
        "net/net PageOut",
        "memory/step 6",
        "net/step 7",
        "net/net RpcResponse",
        "compute/step 8",
    ];
    assert_eq!(
        got,
        expected.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        "full trace:\n{}",
        rt.trace().render()
    );

    // Stable payload sizes: every page movement is page-sized, coherence
    // messages are 64 B, the response is fixed-size.
    for rec in &events {
        if let TraceEvent::NetMsg { class, bytes } = rec.event {
            match class {
                ddc_sim::MsgClass::PageIn | ddc_sim::MsgClass::PageOut => {
                    assert_eq!(bytes, PAGE_SIZE as u64, "{rec}");
                }
                ddc_sim::MsgClass::Coherence => assert_eq!(bytes, 64, "{rec}"),
                ddc_sim::MsgClass::RpcResponse => assert_eq!(bytes, 12, "{rec}"),
                _ => {}
            }
        }
    }
}

#[test]
fn breakdown_total_matches_trace_span() {
    // The Fig 19 breakdown must attribute *all* time between lifecycle
    // steps ❶ and ❽: total() equals the virtual-time span between the
    // step-1 and step-8 trace events.
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let (_, bd) = scripted_workload(&mut rt);

    let events = rt.trace().events();
    let at_step = |step: u8| {
        events
            .iter()
            .find(|r| r.event == TraceEvent::PushdownStep { step })
            .unwrap_or_else(|| panic!("step {step} missing"))
            .at
    };
    let span = at_step(8).since(at_step(1));
    assert_eq!(
        bd.total(),
        span,
        "breakdown {bd:?} must equal the ❶→❽ trace span {span}"
    );
    // Sanity: the per-step timestamps are in lifecycle order.
    for s in 1..8u8 {
        assert!(at_step(s) <= at_step(s + 1), "step {s} out of order");
    }
}

#[test]
fn disabled_tracing_records_nothing_and_changes_nothing() {
    // Tracing off (the default): zero events, and bit-identical virtual
    // time and results versus a traced run — observation is free both ways.
    let mut plain = Runtime::teleport(golden_config());
    let (sum_plain, bd_plain) = scripted_workload(&mut plain);
    assert_eq!(plain.trace().len(), 0, "disabled tracer stays empty");

    let mut traced = Runtime::teleport(golden_config());
    traced.enable_tracing();
    let (sum_traced, bd_traced) = scripted_workload(&mut traced);
    assert!(!traced.trace().is_empty());

    assert_eq!(sum_plain, sum_traced);
    assert_eq!(bd_plain, bd_traced, "tracing must not perturb timing");
    assert_eq!(plain.elapsed(), traced.elapsed());
}

#[test]
fn metrics_registry_agrees_with_ledgers_and_trace() {
    let mut rt = Runtime::teleport(golden_config());
    rt.enable_tracing();
    let _ = scripted_workload(&mut rt);

    let m = rt.metrics();
    let stats = rt.paging_stats();
    let ledger = rt.net_ledger();
    assert_eq!(m.get("paging.cache_misses"), Some(stats.cache_misses));
    assert_eq!(m.get("paging.evictions"), Some(stats.evictions));
    assert_eq!(m.get("net.page_in.messages"), Some(ledger.page_in.messages));
    assert_eq!(
        m.get("net.coherence.messages"),
        Some(ledger.coherence.messages)
    );
    assert_eq!(m.get("pushdown.calls"), Some(1));
    // The trace's own per-kind counts are part of the registry and agree
    // with the underlying ledgers.
    assert_eq!(
        m.get("trace.net_msgs"),
        Some(ledger.total_messages()),
        "every fabric message traced"
    );
    assert_eq!(m.get("trace.pushdown_steps"), Some(8));
    assert_eq!(
        m.get("trace.coherence_msgs"),
        Some(rt.last_coherence_stats().unwrap().round_trips)
    );
    // Deterministic render: sorted, one line per counter.
    let render = m.render();
    assert_eq!(render.lines().count(), m.len());
    let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}
