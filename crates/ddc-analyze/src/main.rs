//! CLI front-end for the determinism & protocol analysis pass.
//!
//! ```text
//! cargo run -p ddc-analyze                  # warn-only: print findings, exit 0
//! cargo run -p ddc-analyze -- --deny-all    # CI mode: exit 1 on any finding
//! cargo run -p ddc-analyze -- --root <dir>  # analyze a different tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ddc_analyze::{analyze, AnalyzeConfig};

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ddc-analyze [--deny-all] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace directory. When run via `cargo run -p`,
    // the cwd is already the workspace root; fall back to the manifest's
    // grandparent so the binary also works from inside the crate.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("workspace root")
                .to_path_buf()
        }
    });

    let cfg = AnalyzeConfig::workspace(&root);
    let findings = match analyze(&cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("ddc-analyze: 0 findings");
        ExitCode::SUCCESS
    } else {
        println!(
            "ddc-analyze: {} finding{}{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            if deny_all {
                " (denied)"
            } else {
                " (warn-only; pass --deny-all to fail)"
            }
        );
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
