//! CLI front-end for the determinism & protocol analysis pass.
//!
//! ```text
//! cargo run -p ddc-analyze                     # warn-only: print findings, exit 0
//! cargo run -p ddc-analyze -- --deny-all       # CI mode: exit 1 on any finding
//! cargo run -p ddc-analyze -- --root <dir>     # analyze a different tree
//! cargo run -p ddc-analyze -- --fixture --root crates/ddc-analyze/fixtures/bad
//!                                              # fixture-shaped config (CI gate)
//! cargo run -p ddc-analyze -- --format sarif --output analyze.sarif
//!                                              # machine-readable reports
//! ```
//!
//! `--format` takes `text` (default), `json`, `sarif`, or `ids` (one
//! stable finding ID per line — what the CI fixture regression gate
//! diffs against `fixtures/expected_ids.txt`).

use std::path::PathBuf;
use std::process::ExitCode;

use ddc_analyze::{analyze, render_ids, render_json, render_sarif, AnalyzeConfig};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
    Ids,
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut fixture = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--fixture" => fixture = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some("ids") => format = Format::Ids,
                other => {
                    eprintln!(
                        "error: --format requires one of text|json|sarif|ids (got {other:?})"
                    );
                    return ExitCode::from(2);
                }
            },
            "--output" => match args.next() {
                Some(p) => output = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --output requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ddc-analyze [--deny-all] [--fixture] [--root <dir>] \
                     [--format text|json|sarif|ids] [--output <file>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace directory. When run via `cargo run -p`,
    // the cwd is already the workspace root; fall back to the manifest's
    // grandparent so the binary also works from inside the crate.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().expect("cwd");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("workspace root")
                .to_path_buf()
        }
    });

    let cfg = if fixture {
        AnalyzeConfig::fixture(&root)
    } else {
        AnalyzeConfig::workspace(&root)
    };
    let findings = match analyze(&cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Text => None,
        Format::Json => Some(render_json(&findings)),
        Format::Sarif => Some(render_sarif(&findings)),
        Format::Ids => Some(render_ids(&findings)),
    };
    if let Some(body) = &rendered {
        match &output {
            Some(path) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => print!("{body}"),
        }
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if findings.is_empty() {
        if format == Format::Text {
            println!("ddc-analyze: 0 findings");
        }
        ExitCode::SUCCESS
    } else {
        if format == Format::Text {
            println!(
                "ddc-analyze: {} finding{}{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
                if deny_all {
                    " (denied)"
                } else {
                    " (warn-only; pass --deny-all to fail)"
                }
            );
        }
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
