//! Determinism & protocol static analysis for the TELEPORT reproduction.
//!
//! The whole workspace rests on one invariant — same seed ⇒ identical
//! event trace and digest — and on the pushdown protocol's cross-pool
//! invariants. Both are easy to break silently: a stray `Instant::now`
//! ties a result to wall time, a `HashMap` iteration makes observable
//! order hasher-dependent, a duplicated trace digest tag makes two
//! different histories fold to the same digest. This crate is a
//! line-based lint engine (no syn, no proc macros — the source
//! conventions of this repo are regular enough for lexical analysis)
//! plus cross-file registry checks, wired into `cargo run -p ddc-analyze`
//! and the CI `analyze` job.
//!
//! ## Rules
//!
//! - [`Rule::WallClock`] — no `Instant::now` / `SystemTime` / `thread_rng`
//!   outside the `bench` crate. Simulated results must depend only on the
//!   seed and the virtual clock.
//! - [`Rule::UnorderedIter`] — no iteration over `HashMap` / `HashSet`
//!   state in the sim-critical crates (`ddc-sim`, `ddc-os`, `core`,
//!   `memdb::oracle`) unless the site carries an explicit
//!   `// analyze:allow(unordered-iter) <reason>` annotation.
//! - [`Rule::DebugAssertProtocol`] — no `debug_assert!` family on
//!   protocol files: a check that guards cross-pool protocol state must
//!   hold in release builds too (promote it to a real check with a typed
//!   error), or carry `// analyze:allow(debug-assert) <reason>`.
//! - [`Rule::DigestTag`] — `trace.rs` registry check: digest tags unique
//!   and contiguous from 0, `EVENT_KINDS` equal to the variant count, and
//!   every `TraceEvent` variant matched in both `kind()` and
//!   `digest_words()`.
//! - [`Rule::MetricName`] — every metric-shaped string literal
//!   (`component.counter` with lowercase snake segments) in non-test
//!   source must appear in the central `metric_names.rs` registry.
//! - [`Rule::FaultKindCoverage`] — every fault label returned by
//!   `fault_label()`, and every `FaultSpec` variant in the injector
//!   (kebab-cased), must appear in `tests/fault_matrix.rs`. A fault kind
//!   nobody sweeps is a fault kind that silently rots.
//!
//! Lines after a `#[cfg(test)]` attribute are not scanned (the repo
//! convention keeps test modules last in a file), and string-literal
//! contents and comments are blanked before code rules match, so a
//! pattern named in a string or a doc comment never trips a rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    WallClock,
    UnorderedIter,
    DebugAssertProtocol,
    DigestTag,
    MetricName,
    FaultKindCoverage,
}

impl Rule {
    pub fn label(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::DebugAssertProtocol => "debug-assert-protocol",
            Rule::DigestTag => "digest-tag",
            Rule::MetricName => "metric-name",
            Rule::FaultKindCoverage => "fault-kind-coverage",
        }
    }
}

/// One violation: rule, location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the analysis root.
    pub file: PathBuf,
    /// 1-based line, or 0 for whole-file registry findings.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.label(),
            self.message
        )
    }
}

/// What to analyze. [`AnalyzeConfig::workspace`] builds the configuration
/// for this repository; tests point the same engine at fixture trees.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Root all other paths are relative to.
    pub root: PathBuf,
    /// Directories scanned for the wall-clock rule.
    pub scan_dirs: Vec<PathBuf>,
    /// Path prefixes exempt from the wall-clock rule (the bench crate
    /// measures real machines and may read real clocks).
    pub wallclock_exempt: Vec<PathBuf>,
    /// Directories or files where `HashMap`/`HashSet` iteration is
    /// forbidden without an allow annotation.
    pub sim_critical: Vec<PathBuf>,
    /// Files carrying cross-pool protocol state, where `debug_assert!` is
    /// forbidden without an allow annotation.
    pub protocol_files: Vec<PathBuf>,
    /// The trace-event registry (`trace.rs`) for the digest-tag check,
    /// or `None` to skip it.
    pub trace_file: Option<PathBuf>,
    /// The central metric-name registry module, or `None` to skip the
    /// metric check.
    pub metric_registry: Option<PathBuf>,
    /// Directories scanned for metric-shaped string literals.
    pub metric_scan: Vec<PathBuf>,
    /// The fault-matrix test file every fault label must appear in, or
    /// `None` to skip the coverage check.
    pub fault_matrix: Option<PathBuf>,
    /// The injector source defining `enum FaultSpec`, whose kebab-cased
    /// variant names must also appear in the fault matrix, or `None` to
    /// skip that half of the coverage check.
    pub fault_specs: Option<PathBuf>,
}

impl AnalyzeConfig {
    /// The configuration for this repository, rooted at `root` (the
    /// workspace directory containing `crates/`).
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let p = |s: &str| PathBuf::from(s);
        AnalyzeConfig {
            root,
            scan_dirs: vec![p("crates")],
            wallclock_exempt: vec![p("crates/bench")],
            sim_critical: vec![
                p("crates/ddc-sim/src"),
                p("crates/ddc-os/src"),
                p("crates/core/src"),
                p("crates/memdb/src/oracle.rs"),
                p("crates/kvapp/src"),
            ],
            protocol_files: vec![
                p("crates/core/src/runtime.rs"),
                p("crates/core/src/rpc.rs"),
                p("crates/core/src/fault.rs"),
                p("crates/core/src/coherence.rs"),
                p("crates/core/src/coherence/race.rs"),
                p("crates/core/src/rle.rs"),
                p("crates/core/src/serve.rs"),
                p("crates/ddc-os/src/kernel.rs"),
                p("crates/ddc-os/src/replica.rs"),
                p("crates/ddc-os/src/page.rs"),
                p("crates/ddc-os/src/pool.rs"),
                p("crates/ddc-os/src/fair.rs"),
                p("crates/ddc-os/src/health.rs"),
                p("crates/ddc-os/src/recovery.rs"),
            ],
            trace_file: Some(p("crates/ddc-sim/src/trace.rs")),
            metric_registry: Some(p("crates/ddc-sim/src/metric_names.rs")),
            metric_scan: vec![
                p("crates/ddc-sim/src"),
                p("crates/ddc-os/src"),
                p("crates/core/src"),
            ],
            fault_matrix: Some(p("tests/fault_matrix.rs")),
            fault_specs: Some(p("crates/ddc-sim/src/faults.rs")),
        }
    }
}

/// Run every configured rule; findings come back sorted by file, line,
/// then rule, so output (and golden expectations) are stable.
pub fn analyze(cfg: &AnalyzeConfig) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    check_wall_clock(cfg, &mut findings)?;
    check_unordered_iter(cfg, &mut findings)?;
    check_debug_asserts(cfg, &mut findings)?;
    if let Some(trace) = &cfg.trace_file {
        check_digest_tags(&cfg.root, trace, &mut findings)?;
        if let Some(matrix) = &cfg.fault_matrix {
            check_fault_coverage(&cfg.root, trace, matrix, &mut findings)?;
        }
    }
    if let (Some(specs), Some(matrix)) = (&cfg.fault_specs, &cfg.fault_matrix) {
        check_fault_spec_coverage(&cfg.root, specs, matrix, &mut findings)?;
    }
    if let Some(reg) = &cfg.metric_registry {
        check_metric_names(cfg, reg, &mut findings)?;
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

// ---------------------------------------------------------------------
// Source model: a file split into lines with code/comment separation
// ---------------------------------------------------------------------

/// One source line, pre-split for the lexical rules.
struct SrcLine {
    /// 1-based line number.
    num: usize,
    /// The raw line, comments intact (annotations live here).
    raw: String,
    /// The line with string-literal contents blanked and comments
    /// removed — what code rules match against.
    code: String,
}

/// A parsed source file. `lines` stops at the first `#[cfg(test)]`
/// (repo convention: test modules close out the file).
struct SrcFile {
    rel: PathBuf,
    lines: Vec<SrcLine>,
}

fn load_source(root: &Path, rel: &Path) -> io::Result<SrcFile> {
    let text = fs::read_to_string(root.join(rel))?;
    let mut lines = Vec::new();
    let mut in_block_comment = false;
    for (i, raw) in text.lines().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = strip_line(raw, &mut in_block_comment);
        lines.push(SrcLine {
            num: i + 1,
            raw: raw.to_string(),
            code,
        });
    }
    Ok(SrcFile {
        rel: rel.to_path_buf(),
        lines,
    })
}

/// Blank string-literal contents, drop `//` comments, and honor `/* */`
/// block comments (tracked across lines via `in_block_comment`). Quote
/// characters are kept so the result still "looks like" the code shape.
fn strip_line(raw: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    let mut in_string = false;
    while i < chars.len() {
        let c = chars[i];
        if *in_block_comment {
            if c == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if in_string {
            if c == '\\' {
                i += 2; // skip the escaped character
                continue;
            }
            if c == '"' {
                in_string = false;
                out.push('"');
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => break,
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// All `.rs` files under `root/rel` (or `rel` itself if it is a file),
/// as root-relative paths in sorted order.
fn rust_files(root: &Path, rel: &Path) -> io::Result<Vec<PathBuf>> {
    let abs = root.join(rel);
    let mut out = Vec::new();
    if abs.is_file() {
        out.push(rel.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![rel.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(root.join(&dir))?
            .filter_map(|e| e.ok())
            .map(|e| dir.join(e.file_name()))
            .collect();
        entries.sort();
        for entry in entries {
            let abs = root.join(&entry);
            if abs.is_dir() {
                // Fixture trees hold deliberately-broken sources for the
                // analyzer's own tests; build output is never source.
                let name = entry.file_name().and_then(|n| n.to_str());
                if matches!(name, Some("fixtures") | Some("target")) {
                    continue;
                }
                stack.push(entry);
            } else if entry.extension().is_some_and(|x| x == "rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Does `line` (raw, comments intact) carry a valid
/// `// analyze:allow(<key>) <reason>` annotation? The reason is
/// mandatory: an allow without a why is itself not allowed.
fn has_allow(raw: &str, key: &str) -> bool {
    let marker = format!("analyze:allow({key})");
    match raw.find(&marker) {
        Some(pos) => !raw[pos + marker.len()..].trim().is_empty(),
        None => false,
    }
}

/// An iteration site is exempt if the allow annotation sits on the same
/// line (trailing comment) or on the line directly above.
fn allowed_at(file: &SrcFile, idx: usize, key: &str) -> bool {
    if has_allow(&file.lines[idx].raw, key) {
        return true;
    }
    idx > 0 && has_allow(&file.lines[idx - 1].raw, key)
}

// ---------------------------------------------------------------------
// Rule: wall clock
// ---------------------------------------------------------------------

const WALLCLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime", "thread_rng"];

fn check_wall_clock(cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) -> io::Result<()> {
    for dir in &cfg.scan_dirs {
        for rel in rust_files(&cfg.root, dir)? {
            if cfg.wallclock_exempt.iter().any(|ex| rel.starts_with(ex)) {
                continue;
            }
            // Only library/binary source is load-bearing for determinism.
            if !rel.components().any(|c| c.as_os_str() == "src") {
                continue;
            }
            let file = load_source(&cfg.root, &rel)?;
            for line in &file.lines {
                for pat in WALLCLOCK_PATTERNS {
                    if line.code.contains(pat) {
                        findings.push(Finding {
                            rule: Rule::WallClock,
                            file: file.rel.clone(),
                            line: line.num,
                            message: format!(
                                "`{pat}` ties simulated results to wall time; use the virtual clock (or move this into crates/bench)"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Rule: unordered iteration
// ---------------------------------------------------------------------

/// Identifiers in `file` declared as `HashMap`/`HashSet` (struct fields,
/// `let` bindings, fn params — anything shaped `name: HashMap<` or
/// `name = HashMap::`).
fn hash_container_idents(file: &SrcFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        for decl in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(off) = code[from..].find(decl) {
                let pos = from + off;
                from = pos + decl.len();
                // `name: HashMap<...>` or `name = HashMap::new()`.
                let before = code[..pos].trim_end();
                let before = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                    .map(|b| b.trim_end());
                if let Some(b) = before {
                    let ident: String = b
                        .chars()
                        .rev()
                        .take_while(|&c| is_ident_char(c))
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit() {
                        idents.insert(ident);
                    }
                }
            }
        }
    }
    idents
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

/// Is there an occurrence of `ident` at a token boundary in `code`
/// followed immediately by one of the iteration methods, or consumed by a
/// `for ... in` loop?
fn iterates(code: &str, ident: &str) -> bool {
    let is_for = code.trim_start().starts_with("for ");
    let in_pos = code.find(" in ").map(|p| p + 4);
    let mut from = 0;
    while let Some(off) = code[from..].find(ident) {
        let pos = from + off;
        from = pos + ident.len();
        // Token boundary on the left; '.' is fine (field access paths like
        // `self.held` still name the container).
        let prev_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        if !prev_ok {
            continue;
        }
        let rest = &code[pos + ident.len()..];
        if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
            return true;
        }
        // `for x in [&[mut]] [path.]ident {` — the container consumed
        // whole by a for loop.
        if is_for && in_pos.is_some_and(|ip| pos >= ip) {
            let boundary = rest
                .chars()
                .next()
                .map(|c| !is_ident_char(c) && c != '.')
                .unwrap_or(true);
            if boundary {
                return true;
            }
        }
    }
    false
}

fn check_unordered_iter(cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) -> io::Result<()> {
    for target in &cfg.sim_critical {
        for rel in rust_files(&cfg.root, target)? {
            let file = load_source(&cfg.root, &rel)?;
            let idents = hash_container_idents(&file);
            if idents.is_empty() {
                continue;
            }
            for (idx, line) in file.lines.iter().enumerate() {
                for ident in &idents {
                    if iterates(&line.code, ident) && !allowed_at(&file, idx, "unordered-iter") {
                        findings.push(Finding {
                            rule: Rule::UnorderedIter,
                            file: file.rel.clone(),
                            line: line.num,
                            message: format!(
                                "iteration over hash container `{ident}` is hasher-order-dependent; use BTreeMap/sorted walk or annotate `// analyze:allow(unordered-iter) <reason>`"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Rule: debug_assert on protocol paths
// ---------------------------------------------------------------------

fn check_debug_asserts(cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) -> io::Result<()> {
    for rel in &cfg.protocol_files {
        if !cfg.root.join(rel).exists() {
            continue;
        }
        let file = load_source(&cfg.root, rel)?;
        for (idx, line) in file.lines.iter().enumerate() {
            let is_debug_assert = ["debug_assert!(", "debug_assert_eq!(", "debug_assert_ne!("]
                .iter()
                .any(|p| line.code.contains(p));
            if is_debug_assert && !allowed_at(&file, idx, "debug-assert") {
                findings.push(Finding {
                    rule: Rule::DebugAssertProtocol,
                    file: file.rel.clone(),
                    line: line.num,
                    message: "debug_assert on a protocol path vanishes in release builds; promote to a real check with a typed error or annotate `// analyze:allow(debug-assert) <reason>`".to_string(),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Rule: trace digest tags
// ---------------------------------------------------------------------

/// Everything the digest-tag check extracts from `trace.rs`.
struct TraceRegistry {
    variants: Vec<String>,
    /// variant → digest tag, in `digest_words()` arm order.
    tags: Vec<(String, u64)>,
    kind_matched: BTreeSet<String>,
    event_kinds_const: Option<usize>,
}

fn parse_trace_registry(file: &SrcFile) -> TraceRegistry {
    let mut variants = Vec::new();
    let mut tags = Vec::new();
    let mut kind_matched = BTreeSet::new();
    let mut event_kinds_const = None;

    // Enum variants: lines inside `enum TraceEvent { ... }` whose first
    // token is an uppercase identifier (fields are lowercase).
    let mut in_enum = false;
    for line in &file.lines {
        let code = line.code.trim();
        if code.starts_with("pub enum TraceEvent") || code.starts_with("enum TraceEvent") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if code == "}" {
                in_enum = false;
                continue;
            }
            let ident: String = code.chars().take_while(|&c| is_ident_char(c)).collect();
            if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                variants.push(ident);
            }
        }
    }

    // `kind()` and `digest_words()` bodies, delimited by brace depth from
    // the `fn` line.
    for fname in ["fn kind", "fn digest_words"] {
        let mut depth = 0i32;
        let mut inside = false;
        let mut pending: Option<String> = None;
        for line in &file.lines {
            let code = &line.code;
            if !inside {
                if code.contains(fname) {
                    inside = true;
                } else {
                    continue;
                }
            }
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            let mut from = 0;
            while let Some(off) = code[from..].find("TraceEvent::") {
                let pos = from + off + "TraceEvent::".len();
                from = pos;
                let ident: String = code[pos..]
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if !ident.is_empty() {
                    if fname == "fn kind" {
                        kind_matched.insert(ident);
                    } else {
                        pending = Some(ident);
                    }
                }
            }
            if fname == "fn digest_words" {
                // `... => [N, ...]` — the tag is the integer after the arm's
                // opening bracket.
                if let Some(pos) = code.find("=> [").map(|p| p + 4).or_else(|| {
                    // arm body on its own line
                    let t = code.trim_start();
                    t.starts_with('[').then(|| code.len() - t.len() + 1)
                }) {
                    let digits: String = code[pos..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    if let (Some(v), Ok(tag)) = (pending.take(), digits.parse::<u64>()) {
                        tags.push((v, tag));
                    }
                }
            }
            if inside && depth <= 0 && code.contains('}') {
                break;
            }
        }
    }

    for line in &file.lines {
        if let Some(pos) = line.code.find("EVENT_KINDS: usize =") {
            let rest = line.code[pos + "EVENT_KINDS: usize =".len()..].trim();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            event_kinds_const = digits.parse().ok();
        }
    }

    TraceRegistry {
        variants,
        tags,
        kind_matched,
        event_kinds_const,
    }
}

fn check_digest_tags(root: &Path, rel: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let file = load_source(root, rel)?;
    let reg = parse_trace_registry(&file);
    let mut push = |message: String| {
        findings.push(Finding {
            rule: Rule::DigestTag,
            file: rel.to_path_buf(),
            line: 0,
            message,
        });
    };

    if reg.variants.is_empty() {
        push("no `enum TraceEvent` variants found — trace registry unparseable".to_string());
        return Ok(());
    }

    // Tag uniqueness.
    let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (v, t) in &reg.tags {
        by_tag.entry(*t).or_default().push(v);
    }
    for (tag, vs) in &by_tag {
        if vs.len() > 1 {
            push(format!(
                "digest tag {tag} assigned to more than one event: {}",
                vs.join(", ")
            ));
        }
    }
    // Contiguity from 0.
    for (want, have) in by_tag.keys().enumerate() {
        if want as u64 != *have {
            push(format!(
                "digest tags must be contiguous from 0: expected {want}, found {have}"
            ));
            break;
        }
    }
    // Exhaustive matching.
    let tagged: BTreeSet<&str> = reg.tags.iter().map(|(v, _)| v.as_str()).collect();
    for v in &reg.variants {
        if !tagged.contains(v.as_str()) {
            push(format!("variant {v} has no digest_words() arm"));
        }
        if !reg.kind_matched.contains(v) {
            push(format!("variant {v} is not matched in kind()"));
        }
    }
    // EVENT_KINDS consistency.
    match reg.event_kinds_const {
        Some(n) if n == reg.variants.len() => {}
        Some(n) => push(format!(
            "EVENT_KINDS is {n} but TraceEvent has {} variants",
            reg.variants.len()
        )),
        None => push("EVENT_KINDS const not found".to_string()),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Rule: fault-kind coverage
// ---------------------------------------------------------------------

/// The kebab-case labels returned by `fault_label()` in `trace.rs`.
fn parse_fault_labels(file: &SrcFile) -> Vec<(usize, String)> {
    let mut labels = Vec::new();
    let mut depth = 0i32;
    let mut inside = false;
    for line in &file.lines {
        if !inside {
            if line.code.contains("fn fault_label") {
                inside = true;
            } else {
                continue;
            }
        }
        for lit in string_literals(&line.raw) {
            labels.push((line.num, lit));
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if inside && depth <= 0 && line.code.contains('}') {
            break;
        }
    }
    labels
}

fn check_fault_coverage(
    root: &Path,
    trace_rel: &Path,
    matrix_rel: &Path,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let trace = load_source(root, trace_rel)?;
    let labels = parse_fault_labels(&trace);
    if labels.is_empty() {
        return Ok(());
    }
    let matrix = fs::read_to_string(root.join(matrix_rel))?;
    for (line, label) in labels {
        if !matrix.contains(&label) {
            findings.push(Finding {
                rule: Rule::FaultKindCoverage,
                file: trace_rel.to_path_buf(),
                line,
                message: format!(
                    "fault kind \"{label}\" is never exercised in {}",
                    matrix_rel.display()
                ),
            });
        }
    }
    Ok(())
}

/// `CamelCase` → `camel-case` (each uppercase letter opens a segment).
fn kebab_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, c) in ident.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The variant identifiers of `enum FaultSpec` in the injector source —
/// top-level identifiers only (depth 1 inside the enum's braces), so
/// field names of struct variants are never mistaken for variants.
fn parse_fault_spec_variants(file: &SrcFile) -> Vec<(usize, String)> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut inside = false;
    for line in &file.lines {
        if !inside {
            if line.code.contains("enum FaultSpec") {
                inside = true;
            } else {
                continue;
            }
        }
        if depth == 1 {
            let trimmed = line.code.trim();
            let ident: String = trimmed
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if trimmed.starts_with(|c: char| c.is_ascii_uppercase()) && !ident.is_empty() {
                variants.push((line.num, ident));
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if inside && depth <= 0 && line.code.contains('}') {
            break;
        }
    }
    variants
}

/// Every `FaultSpec` variant, kebab-cased, must appear in the fault
/// matrix — the injector half of the coverage rule. `fault_label()`
/// covers *injected* (observed) kinds; this covers the specs themselves,
/// so a plan builder nobody sweeps is flagged even before it ever fires.
fn check_fault_spec_coverage(
    root: &Path,
    specs_rel: &Path,
    matrix_rel: &Path,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let specs = load_source(root, specs_rel)?;
    let variants = parse_fault_spec_variants(&specs);
    if variants.is_empty() {
        return Ok(());
    }
    let matrix = fs::read_to_string(root.join(matrix_rel))?;
    for (line, variant) in variants {
        let label = kebab_case(&variant);
        if !matrix.contains(&label) {
            findings.push(Finding {
                rule: Rule::FaultKindCoverage,
                file: specs_rel.to_path_buf(),
                line,
                message: format!(
                    "FaultSpec::{variant} (\"{label}\") is never exercised in {}",
                    matrix_rel.display()
                ),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Rule: metric names
// ---------------------------------------------------------------------

/// The double-quoted string literals of one raw line (escapes honored).
fn string_literals(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    let mut current: Option<String> = None;
    while i < chars.len() {
        let c = chars[i];
        match &mut current {
            Some(s) => {
                if c == '\\' {
                    if let Some(&n) = chars.get(i + 1) {
                        s.push(n);
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    out.push(current.take().unwrap());
                } else {
                    s.push(c);
                }
            }
            None => {
                if c == '"' {
                    current = Some(String::new());
                } else if c == '/' && chars.get(i + 1) == Some(&'/') {
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// `component.counter[.sub]`: at least two non-empty lowercase snake-case
/// segments, first character alphabetic.
fn is_metric_shaped(s: &str) -> bool {
    let segments: Vec<&str> = s.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    if !s
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() && c.is_ascii_alphabetic())
    {
        return false;
    }
    segments.iter().all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

fn check_metric_names(
    cfg: &AnalyzeConfig,
    registry_rel: &Path,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let registry_file = load_source(&cfg.root, registry_rel)?;
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for line in &registry_file.lines {
        for lit in string_literals(&line.raw) {
            if is_metric_shaped(&lit) {
                registered.insert(lit);
            }
        }
    }
    if registered.is_empty() {
        findings.push(Finding {
            rule: Rule::MetricName,
            file: registry_rel.to_path_buf(),
            line: 0,
            message: "metric registry contains no metric names".to_string(),
        });
        return Ok(());
    }
    for dir in &cfg.metric_scan {
        for rel in rust_files(&cfg.root, dir)? {
            if rel == *registry_rel {
                continue;
            }
            let file = load_source(&cfg.root, &rel)?;
            for line in &file.lines {
                // Literal extraction works on the raw line, but only for
                // lines that still are code (comments stripped out).
                if line.code.trim().is_empty() {
                    continue;
                }
                for lit in string_literals(&line.raw) {
                    if is_metric_shaped(&lit) && !registered.contains(&lit) {
                        findings.push(Finding {
                            rule: Rule::MetricName,
                            file: file.rel.clone(),
                            line: line.num,
                            message: format!(
                                "metric name \"{lit}\" is not in the central registry ({})",
                                registry_rel.display()
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_strings_and_comments() {
        let mut blk = false;
        assert_eq!(
            strip_line(r#"let x = "Instant::now"; // Instant::now"#, &mut blk),
            r#"let x = ""; "#
        );
        assert!(!blk);
        assert_eq!(strip_line("code(); /* open", &mut blk), "code(); ");
        assert!(blk);
        assert_eq!(strip_line("still */ after", &mut blk), " after");
        assert!(!blk);
    }

    #[test]
    fn kebab_case_splits_on_uppercase() {
        assert_eq!(kebab_case("DegradedPool"), "degraded-pool");
        assert_eq!(kebab_case("LameFabricLink"), "lame-fabric-link");
        assert_eq!(
            kebab_case("PushdownExceptionProb"),
            "pushdown-exception-prob"
        );
        assert_eq!(kebab_case("SsdLatencyStorm"), "ssd-latency-storm");
    }

    #[test]
    fn metric_shape_matches_names_only() {
        assert!(is_metric_shaped("paging.cache_hits"));
        assert!(is_metric_shaped("net.page_in.bytes"));
        assert!(!is_metric_shaped("no_dots"));
        assert!(!is_metric_shaped("Paging.cache"));
        assert!(!is_metric_shaped("paging."));
        assert!(!is_metric_shaped("2fast.2furious"));
        assert!(!is_metric_shaped("has space.x"));
    }

    #[test]
    fn iteration_detection_respects_boundaries() {
        assert!(iterates("for (k, v) in &self.held {", "held"));
        assert!(iterates("self.entries.iter().map(|x| x)", "entries"));
        assert!(iterates("m.drain(..)", "m"));
        assert!(!iterates("withheld.iter()", "held"));
        assert!(!iterates("m2.iter()", "m"));
        assert!(!iterates("for pid in pages_spanned(a, l) {", "pages"));
        assert!(!iterates("held.get(&k)", "held"));
    }

    #[test]
    fn allow_annotation_requires_reason() {
        assert!(has_allow(
            "// analyze:allow(unordered-iter) order documented unspecified",
            "unordered-iter"
        ));
        assert!(!has_allow(
            "// analyze:allow(unordered-iter)",
            "unordered-iter"
        ));
        assert!(!has_allow(
            "// analyze:allow(debug-assert) why",
            "unordered-iter"
        ));
    }

    #[test]
    fn string_literal_extraction() {
        assert_eq!(
            string_literals(r#"m.set("paging.cache_hits", 1); // "not.this""#),
            vec!["paging.cache_hits".to_string()]
        );
        assert_eq!(
            string_literals(r#"let s = "a\"b.c";"#),
            vec![r#"a"b.c"#.to_string()]
        );
    }
}
