//! Determinism & protocol static analysis for the TELEPORT reproduction.
//!
//! The whole workspace rests on one invariant — same seed ⇒ identical
//! event trace and digest — and on the pushdown protocol's cross-pool
//! invariants. Both are easy to break silently: a stray `Instant::now`
//! ties a result to wall time, a `HashMap` iteration makes observable
//! order hasher-dependent, a duplicated trace digest tag makes two
//! different histories fold to the same digest, an unclassified
//! `PushdownError` variant falls into a wildcard arm and silently picks
//! a retry decision nobody reviewed. This crate is a line-based lint
//! engine (no syn, no proc macros — the source conventions of this repo
//! are regular enough for lexical analysis) plus cross-file registry
//! checks, wired into `cargo run -p ddc-analyze` and the CI `analyze`
//! job, which uploads the SARIF report and gates on any finding.
//!
//! Every workspace file is read **once** into a shared [`Scan`]; all
//! rules are fed from that scan, so analysis cost is one tree walk plus
//! pure in-memory passes (see the `analyze` bench group).
//!
//! ## Rules
//!
//! Each rule has a stable ID (`DDC001`..`DDC011`) used in finding IDs,
//! JSON/SARIF output, and the fixture regression gate in CI.
//!
//! - `DDC001` [`Rule::WallClock`] — no `Instant::now` / `SystemTime` /
//!   `thread_rng` outside the `bench` crate. Simulated results must
//!   depend only on the seed and the virtual clock.
//! - `DDC002` [`Rule::UnorderedIter`] — no iteration over `HashMap` /
//!   `HashSet` state in the sim-critical crates (`ddc-sim`, `ddc-os`,
//!   `core`, `memdb::oracle`) unless the site carries an explicit
//!   `// analyze:allow(unordered-iter) <reason>` annotation.
//! - `DDC003` [`Rule::DebugAssertProtocol`] — no `debug_assert!` family
//!   on protocol files: a check that guards cross-pool protocol state
//!   must hold in release builds too (promote it to a real check with a
//!   typed error), or carry `// analyze:allow(debug-assert) <reason>`.
//! - `DDC004` [`Rule::DigestTag`] — `trace.rs` registry check: digest
//!   tags unique and contiguous from 0, `EVENT_KINDS` equal to the
//!   variant count, and every `TraceEvent` variant matched in both
//!   `kind()` and `digest_words()`.
//! - `DDC005` [`Rule::MetricName`] — every metric-shaped string literal
//!   (`component.counter` with lowercase snake segments) in non-test
//!   source must appear in the central `metric_names.rs` registry.
//! - `DDC006` [`Rule::FaultKindCoverage`] — every fault label returned
//!   by `fault_label()`, and every `FaultSpec` variant in the injector
//!   (kebab-cased), must appear in `tests/fault_matrix.rs`. A fault kind
//!   nobody sweeps is a fault kind that silently rots.
//! - `DDC007` [`Rule::ErrorClassification`] — every `PushdownError`
//!   variant must be explicitly classified in both `RetryPolicy::covers`
//!   and `FallbackPolicy::covers`; a wildcard `_ =>` arm in a
//!   classification match is itself a finding, because it decides the
//!   fate of future error variants without review.
//! - `DDC008` [`Rule::TraceTagEmission`] — every `TraceEvent` variant
//!   must be emitted from non-test source and asserted in at least one
//!   golden/matrix test; a tag that exists only in the registry protects
//!   nothing.
//! - `DDC009` [`Rule::ClockAccounting`] — no literal latency constant
//!   charged straight into the virtual clock (`.advance(SimDuration::
//!   from_nanos(500))`) outside the costed `ddc-sim` charge APIs; all
//!   simulated time must flow through cost models so device parameters
//!   stay tunable in one place.
//! - `DDC010` [`Rule::MetricDocSync`] — the `metric_names.rs` registry,
//!   the generated DESIGN.md metric table, and the actual emission sites
//!   must agree in both directions: registered ⇒ documented and emitted,
//!   documented ⇒ registered. Metric families emitted via `format!`
//!   patterns (`integrity.pool{p}.…`) count as emission sites for every
//!   registered name they can produce.
//! - `DDC011` [`Rule::FaultPollCoverage`] — every `FaultSpec` variant
//!   must be handled by a `FaultInjector` poll method that is actually
//!   called from a poll site (net/ssd/kernel/runtime); an injector arm
//!   nobody polls is dead fault logic.
//!
//! Lines after a `#[cfg(test)]` attribute are not scanned (the repo
//! convention keeps test modules last in a file), and string-literal
//! contents and comments are blanked before code rules match, so a
//! pattern named in a string or a doc comment never trips a rule.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which check produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    WallClock,
    UnorderedIter,
    DebugAssertProtocol,
    DigestTag,
    MetricName,
    FaultKindCoverage,
    ErrorClassification,
    TraceTagEmission,
    ClockAccounting,
    MetricDocSync,
    FaultPollCoverage,
}

/// Every rule, in stable-ID order. The length of this array is the
/// "rules" element count of the `analyze` bench group.
pub const RULES: [Rule; 11] = [
    Rule::WallClock,
    Rule::UnorderedIter,
    Rule::DebugAssertProtocol,
    Rule::DigestTag,
    Rule::MetricName,
    Rule::FaultKindCoverage,
    Rule::ErrorClassification,
    Rule::TraceTagEmission,
    Rule::ClockAccounting,
    Rule::MetricDocSync,
    Rule::FaultPollCoverage,
];

impl Rule {
    pub fn label(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::UnorderedIter => "unordered-iter",
            Rule::DebugAssertProtocol => "debug-assert-protocol",
            Rule::DigestTag => "digest-tag",
            Rule::MetricName => "metric-name",
            Rule::FaultKindCoverage => "fault-kind-coverage",
            Rule::ErrorClassification => "error-classification",
            Rule::TraceTagEmission => "trace-tag-emission",
            Rule::ClockAccounting => "clock-accounting",
            Rule::MetricDocSync => "metric-doc-sync",
            Rule::FaultPollCoverage => "fault-poll-coverage",
        }
    }

    /// Stable rule ID used in finding IDs, JSON, and SARIF output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "DDC001",
            Rule::UnorderedIter => "DDC002",
            Rule::DebugAssertProtocol => "DDC003",
            Rule::DigestTag => "DDC004",
            Rule::MetricName => "DDC005",
            Rule::FaultKindCoverage => "DDC006",
            Rule::ErrorClassification => "DDC007",
            Rule::TraceTagEmission => "DDC008",
            Rule::ClockAccounting => "DDC009",
            Rule::MetricDocSync => "DDC010",
            Rule::FaultPollCoverage => "DDC011",
        }
    }

    /// One-line statement of the invariant, for SARIF rule metadata and
    /// the DESIGN.md rule table.
    pub fn invariant(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "no wall-clock or OS-entropy call outside the bench crate; results depend only on seed and virtual clock"
            }
            Rule::UnorderedIter => {
                "no HashMap/HashSet iteration in sim-critical code without an allow annotation"
            }
            Rule::DebugAssertProtocol => {
                "no debug_assert on protocol files; protocol checks must hold in release builds"
            }
            Rule::DigestTag => {
                "trace digest tags unique, contiguous from 0, EVENT_KINDS exact, every variant in kind() and digest_words()"
            }
            Rule::MetricName => {
                "every metric-shaped literal in non-test source appears in the metric_names registry"
            }
            Rule::FaultKindCoverage => {
                "every fault label and kebab-cased FaultSpec variant appears in the fault matrix"
            }
            Rule::ErrorClassification => {
                "every PushdownError variant explicitly classified in RetryPolicy and FallbackPolicy; no wildcard arms"
            }
            Rule::TraceTagEmission => {
                "every TraceEvent variant emitted from non-test source and asserted in at least one test"
            }
            Rule::ClockAccounting => {
                "no literal latency constant charged into the virtual clock outside the ddc-sim cost models"
            }
            Rule::MetricDocSync => {
                "metric registry, DESIGN.md metric table, and emission sites agree in both directions"
            }
            Rule::FaultPollCoverage => {
                "every FaultSpec variant handled by an injector poll method called from a net/ssd/kernel/runtime poll site"
            }
        }
    }
}

/// One violation: rule, location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Path relative to the analysis root.
    pub file: PathBuf,
    /// 1-based line, or 0 for whole-file registry findings.
    pub line: usize,
    pub message: String,
}

impl Finding {
    /// Stable machine-readable ID: `DDCxxx:path:line`. Stable across
    /// runs and across unrelated edits (it does not embed the message),
    /// which is what the CI fixture gate diffs against.
    pub fn id(&self) -> String {
        format!("{}:{}:{}", self.rule.id(), self.file.display(), self.line)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.label(),
            self.message
        )
    }
}

/// What to analyze. [`AnalyzeConfig::workspace`] builds the configuration
/// for this repository; [`AnalyzeConfig::fixture`] points the same engine
/// at a fixture tree shaped like `crates/ddc-analyze/fixtures/bad`.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Root all other paths are relative to.
    pub root: PathBuf,
    /// Directories scanned for the wall-clock and clock-accounting rules.
    pub scan_dirs: Vec<PathBuf>,
    /// Path prefixes exempt from the wall-clock rule (the bench crate
    /// measures real machines and may read real clocks).
    pub wallclock_exempt: Vec<PathBuf>,
    /// Directories or files where `HashMap`/`HashSet` iteration is
    /// forbidden without an allow annotation.
    pub sim_critical: Vec<PathBuf>,
    /// Files carrying cross-pool protocol state, where `debug_assert!` is
    /// forbidden without an allow annotation.
    pub protocol_files: Vec<PathBuf>,
    /// The trace-event registry (`trace.rs`) for the digest-tag and
    /// tag-emission checks, or `None` to skip them.
    pub trace_file: Option<PathBuf>,
    /// The central metric-name registry module, or `None` to skip the
    /// metric checks.
    pub metric_registry: Option<PathBuf>,
    /// Directories scanned for metric-shaped string literals.
    pub metric_scan: Vec<PathBuf>,
    /// The fault-matrix test file every fault label must appear in, or
    /// `None` to skip the coverage check.
    pub fault_matrix: Option<PathBuf>,
    /// The injector source defining `enum FaultSpec` and
    /// `impl FaultInjector`, or `None` to skip the fault rules.
    pub fault_specs: Option<PathBuf>,
    /// The file defining `enum PushdownError`, or `None` to skip the
    /// error-classification rule.
    pub error_enum: Option<PathBuf>,
    /// The file holding `RetryPolicy::covers` and
    /// `FallbackPolicy::covers`, or `None` to skip the rule.
    pub resilience: Option<PathBuf>,
    /// Directories whose `src` files count as trace-event emission sites.
    pub emit_scan: Vec<PathBuf>,
    /// Directories holding tests whose raw text counts as trace-event
    /// assertion sites (any file under a `tests` component qualifies).
    pub test_scan: Vec<PathBuf>,
    /// Path prefixes exempt from the clock-accounting rule (the costed
    /// charge APIs themselves, and bench setup).
    pub clock_exempt: Vec<PathBuf>,
    /// The design document carrying the generated metric table, or
    /// `None` to skip the metric-doc-sync rule.
    pub doc_file: Option<PathBuf>,
    /// Source files that poll the fault injector (net/ssd/kernel/
    /// runtime); every `FaultSpec` variant must be reachable from one.
    pub fault_poll_files: Vec<PathBuf>,
}

impl AnalyzeConfig {
    /// The configuration for this repository, rooted at `root` (the
    /// workspace directory containing `crates/`).
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let p = |s: &str| PathBuf::from(s);
        AnalyzeConfig {
            root,
            scan_dirs: vec![p("crates")],
            wallclock_exempt: vec![p("crates/bench")],
            sim_critical: vec![
                p("crates/ddc-sim/src"),
                p("crates/ddc-os/src"),
                p("crates/core/src"),
                p("crates/memdb/src/oracle.rs"),
                p("crates/kvapp/src"),
            ],
            protocol_files: vec![
                p("crates/core/src/runtime.rs"),
                p("crates/core/src/rpc.rs"),
                p("crates/core/src/fault.rs"),
                p("crates/core/src/coherence.rs"),
                p("crates/core/src/coherence/race.rs"),
                p("crates/core/src/rle.rs"),
                p("crates/core/src/serve.rs"),
                p("crates/ddc-os/src/kernel.rs"),
                p("crates/ddc-os/src/replica.rs"),
                p("crates/ddc-os/src/page.rs"),
                p("crates/ddc-os/src/pool.rs"),
                p("crates/ddc-os/src/fair.rs"),
                p("crates/ddc-os/src/health.rs"),
                p("crates/ddc-os/src/recovery.rs"),
            ],
            trace_file: Some(p("crates/ddc-sim/src/trace.rs")),
            metric_registry: Some(p("crates/ddc-sim/src/metric_names.rs")),
            metric_scan: vec![
                p("crates/ddc-sim/src"),
                p("crates/ddc-os/src"),
                p("crates/core/src"),
            ],
            fault_matrix: Some(p("tests/fault_matrix.rs")),
            fault_specs: Some(p("crates/ddc-sim/src/faults.rs")),
            error_enum: Some(p("crates/core/src/fault.rs")),
            resilience: Some(p("crates/core/src/resilience.rs")),
            emit_scan: vec![p("crates")],
            test_scan: vec![p("tests"), p("crates")],
            clock_exempt: vec![p("crates/ddc-sim/src"), p("crates/bench")],
            doc_file: Some(p("DESIGN.md")),
            fault_poll_files: vec![
                p("crates/ddc-sim/src/net.rs"),
                p("crates/ddc-sim/src/ssd.rs"),
                p("crates/ddc-os/src/kernel.rs"),
                p("crates/core/src/runtime.rs"),
            ],
        }
    }

    /// The configuration for a fixture tree shaped like
    /// `crates/ddc-analyze/fixtures/bad` (sources under `src/`, tests
    /// under `tests/`, docs under `docs/`). Shared by the analyzer's own
    /// tests and the CLI `--fixture` flag so the CI regression gate and
    /// the test suite see identical findings.
    pub fn fixture(root: impl Into<PathBuf>) -> Self {
        let root = root.into();
        let p = |s: &str| PathBuf::from(s);
        AnalyzeConfig {
            root,
            scan_dirs: vec![p("src")],
            wallclock_exempt: vec![],
            sim_critical: vec![p("src")],
            protocol_files: vec![p("src/protocol.rs")],
            trace_file: Some(p("src/trace.rs")),
            metric_registry: Some(p("src/metric_names.rs")),
            metric_scan: vec![p("src")],
            fault_matrix: Some(p("tests/fault_matrix.rs")),
            fault_specs: Some(p("src/faults.rs")),
            error_enum: Some(p("src/errors.rs")),
            resilience: Some(p("src/resilience.rs")),
            emit_scan: vec![p("src")],
            test_scan: vec![p("tests")],
            clock_exempt: vec![],
            doc_file: Some(p("docs/DESIGN.md")),
            fault_poll_files: vec![p("src/net.rs")],
        }
    }
}

/// Sizes of the shared scan, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub struct ScanStats {
    /// Rust files loaded (each read exactly once).
    pub files: usize,
    /// Pre-`#[cfg(test)]` source lines parsed across those files.
    pub lines: usize,
}

/// Run every configured rule; findings come back sorted by file, line,
/// then rule, so output (and golden expectations) are stable.
pub fn analyze(cfg: &AnalyzeConfig) -> io::Result<Vec<Finding>> {
    analyze_with_stats(cfg).map(|(findings, _)| findings)
}

/// [`analyze`], also reporting how much source the shared scan covered.
pub fn analyze_with_stats(cfg: &AnalyzeConfig) -> io::Result<(Vec<Finding>, ScanStats)> {
    let scan = Scan::load(cfg)?;
    let stats = ScanStats {
        files: scan.files.len(),
        lines: scan.files.values().map(|f| f.lines.len()).sum(),
    };
    let mut findings = Vec::new();
    check_wall_clock(cfg, &scan, &mut findings);
    check_unordered_iter(cfg, &scan, &mut findings);
    check_debug_asserts(cfg, &scan, &mut findings);
    if let Some(trace) = &cfg.trace_file {
        check_digest_tags(trace, &scan, &mut findings);
        if let Some(matrix) = &cfg.fault_matrix {
            check_fault_coverage(trace, matrix, &scan, &mut findings);
        }
        check_trace_tag_emission(cfg, trace, &scan, &mut findings);
    }
    if let (Some(specs), Some(matrix)) = (&cfg.fault_specs, &cfg.fault_matrix) {
        check_fault_spec_coverage(specs, matrix, &scan, &mut findings);
    }
    if let Some(specs) = &cfg.fault_specs {
        check_fault_poll_coverage(cfg, specs, &scan, &mut findings);
    }
    if let Some(reg) = &cfg.metric_registry {
        check_metric_names(cfg, reg, &scan, &mut findings);
        check_metric_doc_sync(cfg, reg, &scan, &mut findings);
    }
    check_error_classification(cfg, &scan, &mut findings);
    check_clock_accounting(cfg, &scan, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((findings, stats))
}

// ---------------------------------------------------------------------
// Source model: a file split into lines with code/comment separation
// ---------------------------------------------------------------------

/// One source line, pre-split for the lexical rules.
struct SrcLine {
    /// 1-based line number.
    num: usize,
    /// The raw line, comments intact (annotations live here).
    raw: String,
    /// The line with string-literal contents blanked and comments
    /// removed — what code rules match against.
    code: String,
}

/// A parsed source file. `lines` stops at the first `#[cfg(test)]`
/// (repo convention: test modules close out the file).
struct SrcFile {
    rel: PathBuf,
    lines: Vec<SrcLine>,
}

impl SrcFile {
    fn parse(rel: &Path, text: &str) -> SrcFile {
        let mut lines = Vec::new();
        let mut in_block_comment = false;
        for (i, raw) in text.lines().enumerate() {
            if raw.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            let code = strip_line(raw, &mut in_block_comment);
            lines.push(SrcLine {
                num: i + 1,
                raw: raw.to_string(),
                code,
            });
        }
        SrcFile {
            rel: rel.to_path_buf(),
            lines,
        }
    }
}

/// The shared single-pass scan: every configured file read from disk
/// exactly once, parsed once, then served to all rules from memory.
struct Scan {
    /// Parsed Rust sources, keyed by root-relative path, in sorted
    /// (deterministic) order.
    files: BTreeMap<PathBuf, SrcFile>,
    /// Raw text of every loaded file (tests are matched on raw text so a
    /// coverage assertion inside a test module still counts), plus any
    /// non-Rust documents such as the design doc.
    raw: BTreeMap<PathBuf, String>,
}

impl Scan {
    fn load(cfg: &AnalyzeConfig) -> io::Result<Scan> {
        let mut roots: BTreeSet<PathBuf> = BTreeSet::new();
        for group in [
            &cfg.scan_dirs,
            &cfg.sim_critical,
            &cfg.protocol_files,
            &cfg.metric_scan,
            &cfg.emit_scan,
            &cfg.test_scan,
            &cfg.fault_poll_files,
        ] {
            roots.extend(group.iter().cloned());
        }
        for single in [
            &cfg.trace_file,
            &cfg.metric_registry,
            &cfg.fault_matrix,
            &cfg.fault_specs,
            &cfg.error_enum,
            &cfg.resilience,
        ]
        .into_iter()
        .flatten()
        {
            roots.insert(single.clone());
        }
        let mut scan = Scan {
            files: BTreeMap::new(),
            raw: BTreeMap::new(),
        };
        for root in roots {
            if !cfg.root.join(&root).exists() {
                continue;
            }
            for rel in rust_files(&cfg.root, &root)? {
                if scan.raw.contains_key(&rel) {
                    continue;
                }
                let text = fs::read_to_string(cfg.root.join(&rel))?;
                scan.files.insert(rel.clone(), SrcFile::parse(&rel, &text));
                scan.raw.insert(rel, text);
            }
        }
        if let Some(doc) = &cfg.doc_file {
            if let Ok(text) = fs::read_to_string(cfg.root.join(doc)) {
                scan.raw.insert(doc.clone(), text);
            }
        }
        Ok(scan)
    }

    fn file(&self, rel: &Path) -> Option<&SrcFile> {
        self.files.get(rel)
    }

    /// Parsed files whose path starts with any of `prefixes`.
    fn under<'a>(&'a self, prefixes: &'a [PathBuf]) -> impl Iterator<Item = &'a SrcFile> {
        self.files
            .values()
            .filter(move |f| prefixes.iter().any(|p| f.rel.starts_with(p)))
    }
}

/// Does `rel` live under a `tests` directory component?
fn is_test_path(rel: &Path) -> bool {
    rel.components().any(|c| c.as_os_str() == "tests")
}

/// Does `rel` live under a `src` directory component?
fn is_src_path(rel: &Path) -> bool {
    rel.components().any(|c| c.as_os_str() == "src")
}

/// Blank string-literal contents, drop `//` comments, and honor `/* */`
/// block comments (tracked across lines via `in_block_comment`). Quote
/// characters are kept so the result still "looks like" the code shape.
fn strip_line(raw: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    let mut in_string = false;
    while i < chars.len() {
        let c = chars[i];
        if *in_block_comment {
            if c == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if in_string {
            if c == '\\' {
                i += 2; // skip the escaped character
                continue;
            }
            if c == '"' {
                in_string = false;
                out.push('"');
            }
            i += 1;
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => break,
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does `code` contain `needle` at identifier boundaries on both sides?
fn contains_token(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(needle) {
        let pos = from + off;
        from = pos + needle.len();
        let left_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        let right_ok = code[pos + needle.len()..]
            .chars()
            .next()
            .map(|c| !is_ident_char(c))
            .unwrap_or(true);
        if left_ok && right_ok {
            return true;
        }
    }
    false
}

/// The identifiers following each occurrence of `prefix` (a path prefix
/// such as `FaultSpec::`) in `code`.
fn path_idents(code: &str, prefix: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(prefix) {
        let pos = from + off;
        from = pos + prefix.len();
        let left_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        if !left_ok {
            continue;
        }
        let ident: String = code[pos + prefix.len()..]
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if !ident.is_empty() {
            out.push(ident);
        }
    }
    out
}

/// All `.rs` files under `root/rel` (or `rel` itself if it is a file),
/// as root-relative paths in sorted order. Directory entries are sorted
/// before descent, so the result does not depend on readdir order.
fn rust_files(root: &Path, rel: &Path) -> io::Result<Vec<PathBuf>> {
    let abs = root.join(rel);
    let mut out = Vec::new();
    if abs.is_file() {
        out.push(rel.to_path_buf());
        return Ok(out);
    }
    let mut stack = vec![rel.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(root.join(&dir))?
            .filter_map(|e| e.ok())
            .map(|e| dir.join(e.file_name()))
            .collect();
        entries.sort();
        for entry in entries {
            let abs = root.join(&entry);
            if abs.is_dir() {
                // Fixture trees hold deliberately-broken sources for the
                // analyzer's own tests; build output is never source.
                let name = entry.file_name().and_then(|n| n.to_str());
                if matches!(name, Some("fixtures") | Some("target")) {
                    continue;
                }
                stack.push(entry);
            } else if entry.extension().is_some_and(|x| x == "rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Does `line` (raw, comments intact) carry a valid
/// `// analyze:allow(<key>) <reason>` annotation? The reason is
/// mandatory: an allow without a why is itself not allowed.
fn has_allow(raw: &str, key: &str) -> bool {
    let marker = format!("analyze:allow({key})");
    match raw.find(&marker) {
        Some(pos) => !raw[pos + marker.len()..].trim().is_empty(),
        None => false,
    }
}

/// A site is exempt if the allow annotation sits on the same line
/// (trailing comment) or on the line directly above.
fn allowed_at(file: &SrcFile, idx: usize, key: &str) -> bool {
    if has_allow(&file.lines[idx].raw, key) {
        return true;
    }
    idx > 0 && has_allow(&file.lines[idx - 1].raw, key)
}

/// The variant identifiers of `enum <name>` — top-level identifiers only
/// (depth 1 inside the enum's braces), so field names of struct variants
/// are never mistaken for variants. Returns `(line, variant)` pairs in
/// declaration order.
fn enum_variants(file: &SrcFile, enum_name: &str) -> Vec<(usize, String)> {
    let needle = format!("enum {enum_name}");
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut inside = false;
    for line in &file.lines {
        if !inside {
            if contains_token(&line.code, &needle) {
                inside = true;
            } else {
                continue;
            }
        }
        if depth == 1 {
            let trimmed = line.code.trim();
            let ident: String = trimmed.chars().take_while(|&c| is_ident_char(c)).collect();
            if trimmed.starts_with(|c: char| c.is_ascii_uppercase()) && !ident.is_empty() {
                variants.push((line.num, ident));
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if inside && depth <= 0 && line.code.contains('}') {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Rule DDC001: wall clock
// ---------------------------------------------------------------------

const WALLCLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime", "thread_rng"];

fn check_wall_clock(cfg: &AnalyzeConfig, scan: &Scan, findings: &mut Vec<Finding>) {
    for file in scan.under(&cfg.scan_dirs) {
        if cfg
            .wallclock_exempt
            .iter()
            .any(|ex| file.rel.starts_with(ex))
        {
            continue;
        }
        // Only library/binary source is load-bearing for determinism.
        if !is_src_path(&file.rel) {
            continue;
        }
        for line in &file.lines {
            for pat in WALLCLOCK_PATTERNS {
                if line.code.contains(pat) {
                    findings.push(Finding {
                        rule: Rule::WallClock,
                        file: file.rel.clone(),
                        line: line.num,
                        message: format!(
                            "`{pat}` ties simulated results to wall time; use the virtual clock (or move this into crates/bench)"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC002: unordered iteration
// ---------------------------------------------------------------------

/// Identifiers in `file` declared as `HashMap`/`HashSet` (struct fields,
/// `let` bindings, fn params — anything shaped `name: HashMap<` or
/// `name = HashMap::`).
fn hash_container_idents(file: &SrcFile) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in &file.lines {
        let code = &line.code;
        for decl in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(off) = code[from..].find(decl) {
                let pos = from + off;
                from = pos + decl.len();
                // `name: HashMap<...>` or `name = HashMap::new()`.
                let before = code[..pos].trim_end();
                let before = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                    .map(|b| b.trim_end());
                if let Some(b) = before {
                    let ident: String = b
                        .chars()
                        .rev()
                        .take_while(|&c| is_ident_char(c))
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit() {
                        idents.insert(ident);
                    }
                }
            }
        }
    }
    idents
}

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
];

/// Is there an occurrence of `ident` at a token boundary in `code`
/// followed immediately by one of the iteration methods, or consumed by a
/// `for ... in` loop?
fn iterates(code: &str, ident: &str) -> bool {
    let is_for = code.trim_start().starts_with("for ");
    let in_pos = code.find(" in ").map(|p| p + 4);
    let mut from = 0;
    while let Some(off) = code[from..].find(ident) {
        let pos = from + off;
        from = pos + ident.len();
        // Token boundary on the left; '.' is fine (field access paths like
        // `self.held` still name the container).
        let prev_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
        if !prev_ok {
            continue;
        }
        let rest = &code[pos + ident.len()..];
        if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
            return true;
        }
        // `for x in [&[mut]] [path.]ident {` — the container consumed
        // whole by a for loop.
        if is_for && in_pos.is_some_and(|ip| pos >= ip) {
            let boundary = rest
                .chars()
                .next()
                .map(|c| !is_ident_char(c) && c != '.')
                .unwrap_or(true);
            if boundary {
                return true;
            }
        }
    }
    false
}

fn check_unordered_iter(cfg: &AnalyzeConfig, scan: &Scan, findings: &mut Vec<Finding>) {
    for file in scan.under(&cfg.sim_critical) {
        let idents = hash_container_idents(file);
        if idents.is_empty() {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            for ident in &idents {
                if iterates(&line.code, ident) && !allowed_at(file, idx, "unordered-iter") {
                    findings.push(Finding {
                        rule: Rule::UnorderedIter,
                        file: file.rel.clone(),
                        line: line.num,
                        message: format!(
                            "iteration over hash container `{ident}` is hasher-order-dependent; use BTreeMap/sorted walk or annotate `// analyze:allow(unordered-iter) <reason>`"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC003: debug_assert on protocol paths
// ---------------------------------------------------------------------

fn check_debug_asserts(cfg: &AnalyzeConfig, scan: &Scan, findings: &mut Vec<Finding>) {
    for rel in &cfg.protocol_files {
        let Some(file) = scan.file(rel) else { continue };
        for (idx, line) in file.lines.iter().enumerate() {
            let is_debug_assert = ["debug_assert!(", "debug_assert_eq!(", "debug_assert_ne!("]
                .iter()
                .any(|p| line.code.contains(p));
            if is_debug_assert && !allowed_at(file, idx, "debug-assert") {
                findings.push(Finding {
                    rule: Rule::DebugAssertProtocol,
                    file: file.rel.clone(),
                    line: line.num,
                    message: "debug_assert on a protocol path vanishes in release builds; promote to a real check with a typed error or annotate `// analyze:allow(debug-assert) <reason>`".to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC004: trace digest tags
// ---------------------------------------------------------------------

/// Everything the digest-tag check extracts from `trace.rs`.
struct TraceRegistry {
    /// `(line, variant)` in declaration order.
    variants: Vec<(usize, String)>,
    /// variant → digest tag, in `digest_words()` arm order.
    tags: Vec<(String, u64)>,
    kind_matched: BTreeSet<String>,
    event_kinds_const: Option<usize>,
}

fn parse_trace_registry(file: &SrcFile) -> TraceRegistry {
    let variants = enum_variants(file, "TraceEvent");
    let mut tags = Vec::new();
    let mut kind_matched = BTreeSet::new();
    let mut event_kinds_const = None;

    // `kind()` and `digest_words()` bodies, delimited by brace depth from
    // the `fn` line.
    for fname in ["fn kind", "fn digest_words"] {
        let mut depth = 0i32;
        let mut inside = false;
        let mut pending: Option<String> = None;
        for line in &file.lines {
            let code = &line.code;
            if !inside {
                if code.contains(fname) {
                    inside = true;
                } else {
                    continue;
                }
            }
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            for ident in path_idents(code, "TraceEvent::") {
                if fname == "fn kind" {
                    kind_matched.insert(ident);
                } else {
                    pending = Some(ident);
                }
            }
            if fname == "fn digest_words" {
                // `... => [N, ...]` — the tag is the integer after the arm's
                // opening bracket.
                if let Some(pos) = code.find("=> [").map(|p| p + 4).or_else(|| {
                    // arm body on its own line
                    let t = code.trim_start();
                    t.starts_with('[').then(|| code.len() - t.len() + 1)
                }) {
                    let digits: String = code[pos..]
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    if let (Some(v), Ok(tag)) = (pending.take(), digits.parse::<u64>()) {
                        tags.push((v, tag));
                    }
                }
            }
            if inside && depth <= 0 && code.contains('}') {
                break;
            }
        }
    }

    for line in &file.lines {
        if let Some(pos) = line.code.find("EVENT_KINDS: usize =") {
            let rest = line.code[pos + "EVENT_KINDS: usize =".len()..].trim();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            event_kinds_const = digits.parse().ok();
        }
    }

    TraceRegistry {
        variants,
        tags,
        kind_matched,
        event_kinds_const,
    }
}

fn check_digest_tags(rel: &Path, scan: &Scan, findings: &mut Vec<Finding>) {
    let Some(file) = scan.file(rel) else { return };
    let reg = parse_trace_registry(file);
    let mut push = |message: String| {
        findings.push(Finding {
            rule: Rule::DigestTag,
            file: rel.to_path_buf(),
            line: 0,
            message,
        });
    };

    if reg.variants.is_empty() {
        push("no `enum TraceEvent` variants found — trace registry unparseable".to_string());
        return;
    }

    // Tag uniqueness.
    let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (v, t) in &reg.tags {
        by_tag.entry(*t).or_default().push(v);
    }
    for (tag, vs) in &by_tag {
        if vs.len() > 1 {
            push(format!(
                "digest tag {tag} assigned to more than one event: {}",
                vs.join(", ")
            ));
        }
    }
    // Contiguity from 0.
    for (want, have) in by_tag.keys().enumerate() {
        if want as u64 != *have {
            push(format!(
                "digest tags must be contiguous from 0: expected {want}, found {have}"
            ));
            break;
        }
    }
    // Exhaustive matching.
    let tagged: BTreeSet<&str> = reg.tags.iter().map(|(v, _)| v.as_str()).collect();
    for (_, v) in &reg.variants {
        if !tagged.contains(v.as_str()) {
            push(format!("variant {v} has no digest_words() arm"));
        }
        if !reg.kind_matched.contains(v) {
            push(format!("variant {v} is not matched in kind()"));
        }
    }
    // EVENT_KINDS consistency.
    match reg.event_kinds_const {
        Some(n) if n == reg.variants.len() => {}
        Some(n) => push(format!(
            "EVENT_KINDS is {n} but TraceEvent has {} variants",
            reg.variants.len()
        )),
        None => push("EVENT_KINDS const not found".to_string()),
    }
}

// ---------------------------------------------------------------------
// Rule DDC006: fault-kind coverage
// ---------------------------------------------------------------------

/// The kebab-case labels returned by `fault_label()` in `trace.rs`.
fn parse_fault_labels(file: &SrcFile) -> Vec<(usize, String)> {
    let mut labels = Vec::new();
    let mut depth = 0i32;
    let mut inside = false;
    for line in &file.lines {
        if !inside {
            if line.code.contains("fn fault_label") {
                inside = true;
            } else {
                continue;
            }
        }
        for lit in string_literals(&line.raw) {
            labels.push((line.num, lit));
        }
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if inside && depth <= 0 && line.code.contains('}') {
            break;
        }
    }
    labels
}

fn check_fault_coverage(
    trace_rel: &Path,
    matrix_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    let Some(trace) = scan.file(trace_rel) else {
        return;
    };
    let labels = parse_fault_labels(trace);
    if labels.is_empty() {
        return;
    }
    let Some(matrix) = scan.raw.get(matrix_rel) else {
        return;
    };
    for (line, label) in labels {
        if !matrix.contains(&label) {
            findings.push(Finding {
                rule: Rule::FaultKindCoverage,
                file: trace_rel.to_path_buf(),
                line,
                message: format!(
                    "fault kind \"{label}\" is never exercised in {}",
                    matrix_rel.display()
                ),
            });
        }
    }
}

/// `CamelCase` → `camel-case` (each uppercase letter opens a segment).
fn kebab_case(ident: &str) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, c) in ident.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Every `FaultSpec` variant, kebab-cased, must appear in the fault
/// matrix — the injector half of the coverage rule. `fault_label()`
/// covers *injected* (observed) kinds; this covers the specs themselves,
/// so a plan builder nobody sweeps is flagged even before it ever fires.
fn check_fault_spec_coverage(
    specs_rel: &Path,
    matrix_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    let Some(specs) = scan.file(specs_rel) else {
        return;
    };
    let variants = enum_variants(specs, "FaultSpec");
    if variants.is_empty() {
        return;
    }
    let Some(matrix) = scan.raw.get(matrix_rel) else {
        return;
    };
    for (line, variant) in variants {
        let label = kebab_case(&variant);
        if !matrix.contains(&label) {
            findings.push(Finding {
                rule: Rule::FaultKindCoverage,
                file: specs_rel.to_path_buf(),
                line,
                message: format!(
                    "FaultSpec::{variant} (\"{label}\") is never exercised in {}",
                    matrix_rel.display()
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC005: metric names
// ---------------------------------------------------------------------

/// The double-quoted string literals of one raw line (escapes honored).
fn string_literals(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    let mut current: Option<String> = None;
    while i < chars.len() {
        let c = chars[i];
        match &mut current {
            Some(s) => {
                if c == '\\' {
                    if let Some(&n) = chars.get(i + 1) {
                        s.push(n);
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    out.push(current.take().unwrap());
                } else {
                    s.push(c);
                }
            }
            None => {
                if c == '"' {
                    current = Some(String::new());
                } else if c == '/' && chars.get(i + 1) == Some(&'/') {
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// `component.counter[.sub]`: at least two non-empty lowercase snake-case
/// segments, first character alphabetic.
fn is_metric_shaped(s: &str) -> bool {
    let segments: Vec<&str> = s.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    if !s
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() && c.is_ascii_alphabetic())
    {
        return false;
    }
    segments.iter().all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// The registry's metric names, with the line each first appears on.
fn registered_metrics(registry: &SrcFile) -> BTreeMap<String, usize> {
    let mut registered = BTreeMap::new();
    for line in &registry.lines {
        for lit in string_literals(&line.raw) {
            if is_metric_shaped(&lit) {
                registered.entry(lit).or_insert(line.num);
            }
        }
    }
    registered
}

fn check_metric_names(
    cfg: &AnalyzeConfig,
    registry_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    let Some(registry_file) = scan.file(registry_rel) else {
        return;
    };
    let registered = registered_metrics(registry_file);
    if registered.is_empty() {
        findings.push(Finding {
            rule: Rule::MetricName,
            file: registry_rel.to_path_buf(),
            line: 0,
            message: "metric registry contains no metric names".to_string(),
        });
        return;
    }
    for file in scan.under(&cfg.metric_scan) {
        if file.rel == *registry_rel {
            continue;
        }
        for line in &file.lines {
            // Literal extraction works on the raw line, but only for
            // lines that still are code (comments stripped out).
            if line.code.trim().is_empty() {
                continue;
            }
            for lit in string_literals(&line.raw) {
                if is_metric_shaped(&lit) && !registered.contains_key(&lit) {
                    findings.push(Finding {
                        rule: Rule::MetricName,
                        file: file.rel.clone(),
                        line: line.num,
                        message: format!(
                            "metric name \"{lit}\" is not in the central registry ({})",
                            registry_rel.display()
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC007: error classification
// ---------------------------------------------------------------------

/// One `fn covers` body found in the resilience file, attributed to the
/// enclosing `impl` target.
struct CoversBody {
    policy: String,
    /// Line of the `fn covers` signature.
    line: usize,
    /// Error-enum variants explicitly named in the body.
    matched: BTreeSet<String>,
    /// Lines carrying a wildcard `_ =>` arm.
    wildcards: Vec<usize>,
}

/// `impl RetryPolicy {` → `RetryPolicy`; `impl Foo for Bar {` → `Bar`.
fn impl_target(trimmed: &str) -> String {
    let mut rest = trimmed.trim_start_matches("impl").trim_start();
    if rest.starts_with('<') {
        if let Some(end) = rest.find('>') {
            rest = rest[end + 1..].trim_start();
        }
    }
    if let Some(p) = rest.find(" for ") {
        rest = rest[p + 5..].trim_start();
    }
    rest.chars().take_while(|&c| is_ident_char(c)).collect()
}

/// Does `code` contain a standalone `_ =>` match arm (not a `(_)` or
/// struct-field underscore)?
fn is_wildcard_arm(code: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find("_ =>") {
        let pos = from + off;
        from = pos + 4;
        let prev = code[..pos].chars().next_back();
        if prev.is_none_or(|c| c.is_whitespace() || c == '|') {
            return true;
        }
    }
    false
}

fn parse_covers_bodies(file: &SrcFile, error_enum: &str) -> Vec<CoversBody> {
    let prefix = format!("{error_enum}::");
    let mut out = Vec::new();
    let mut current_impl = String::new();
    let mut depth = 0i32;
    let mut body: Option<(i32, CoversBody)> = None;
    for line in &file.lines {
        let code = &line.code;
        let trimmed = code.trim_start();
        if body.is_none() && trimmed.starts_with("impl ") {
            current_impl = impl_target(trimmed);
        }
        if body.is_none() && contains_token(code, "fn covers") {
            body = Some((
                depth,
                CoversBody {
                    policy: current_impl.clone(),
                    line: line.num,
                    matched: BTreeSet::new(),
                    wildcards: Vec::new(),
                },
            ));
        }
        if let Some((_, b)) = &mut body {
            for v in path_idents(code, &prefix) {
                b.matched.insert(v);
            }
            if is_wildcard_arm(code) {
                b.wildcards.push(line.num);
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((entry, _)) = &body {
            if depth <= *entry && code.contains('}') {
                out.push(body.take().unwrap().1);
            }
        }
    }
    out
}

fn check_error_classification(cfg: &AnalyzeConfig, scan: &Scan, findings: &mut Vec<Finding>) {
    let (Some(enum_rel), Some(res_rel)) = (&cfg.error_enum, &cfg.resilience) else {
        return;
    };
    let (Some(enum_file), Some(res_file)) = (scan.file(enum_rel), scan.file(res_rel)) else {
        return;
    };
    let variants = enum_variants(enum_file, "PushdownError");
    if variants.is_empty() {
        findings.push(Finding {
            rule: Rule::ErrorClassification,
            file: enum_rel.to_path_buf(),
            line: 0,
            message: "no `enum PushdownError` variants found — error taxonomy unparseable"
                .to_string(),
        });
        return;
    }
    let bodies = parse_covers_bodies(res_file, "PushdownError");
    for expected in ["RetryPolicy", "FallbackPolicy"] {
        if !bodies.iter().any(|b| b.policy == expected) {
            findings.push(Finding {
                rule: Rule::ErrorClassification,
                file: res_rel.to_path_buf(),
                line: 0,
                message: format!("no `fn covers` body found in `impl {expected}`"),
            });
        }
    }
    for body in &bodies {
        for &w in &body.wildcards {
            findings.push(Finding {
                rule: Rule::ErrorClassification,
                file: res_rel.to_path_buf(),
                line: w,
                message: format!(
                    "wildcard `_ =>` arm in {}::covers silently classifies future PushdownError variants; spell each variant out",
                    body.policy
                ),
            });
        }
        for (_, v) in &variants {
            if !body.matched.contains(v) {
                findings.push(Finding {
                    rule: Rule::ErrorClassification,
                    file: res_rel.to_path_buf(),
                    line: body.line,
                    message: format!(
                        "PushdownError::{v} is not explicitly classified in {}::covers",
                        body.policy
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC008: trace-tag emission
// ---------------------------------------------------------------------

fn check_trace_tag_emission(
    cfg: &AnalyzeConfig,
    trace_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    let Some(trace) = scan.file(trace_rel) else {
        return;
    };
    let reg = parse_trace_registry(trace);
    if reg.variants.is_empty() {
        return; // DDC004 already reports the unparseable registry.
    }
    let tags: BTreeMap<&str, u64> = reg.tags.iter().map(|(v, t)| (v.as_str(), *t)).collect();
    for (line, v) in &reg.variants {
        let event_token = format!("TraceEvent::{v}");
        let kind_token = format!("EventKind::{v}");
        let emitted = scan
            .under(&cfg.emit_scan)
            .filter(|f| is_src_path(&f.rel) && !is_test_path(&f.rel) && f.rel != *trace_rel)
            .any(|f| {
                f.lines
                    .iter()
                    .any(|l| contains_token(&l.code, &event_token))
            });
        let asserted = scan
            .raw
            .iter()
            .filter(|(rel, _)| is_test_path(rel))
            .any(|(_, text)| {
                contains_token(text, &event_token) || contains_token(text, &kind_token)
            });
        let tag = tags
            .get(v.as_str())
            .map(|t| format!(" (digest tag {t})"))
            .unwrap_or_default();
        if !emitted {
            findings.push(Finding {
                rule: Rule::TraceTagEmission,
                file: trace_rel.to_path_buf(),
                line: *line,
                message: format!(
                    "TraceEvent::{v}{tag} is never emitted from non-test source; a tag nobody emits protects nothing"
                ),
            });
        }
        if !asserted {
            findings.push(Finding {
                rule: Rule::TraceTagEmission,
                file: trace_rel.to_path_buf(),
                line: *line,
                message: format!(
                    "TraceEvent::{v}{tag} is never asserted in any golden/matrix test"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC009: clock accounting
// ---------------------------------------------------------------------

/// Does `code` charge a literal latency constant straight into the
/// virtual clock — `.advance(SimDuration::from_<unit>(<digits>` or
/// `.advance_to(SimTime(<digits>`? Computed expressions (cost-model
/// output) do not match: the character after the opening parenthesis
/// must be a digit.
fn literal_clock_charge(code: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(".advance(SimDuration::from_") {
        let pos = from + off + ".advance(SimDuration::from_".len();
        from = pos;
        if let Some(open) = code[pos..].find('(') {
            if code[pos + open + 1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
            {
                return true;
            }
        }
    }
    let mut from = 0;
    while let Some(off) = code[from..].find(".advance_to(SimTime(") {
        let pos = from + off + ".advance_to(SimTime(".len();
        from = pos;
        if code[pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    false
}

fn check_clock_accounting(cfg: &AnalyzeConfig, scan: &Scan, findings: &mut Vec<Finding>) {
    for file in scan.under(&cfg.scan_dirs) {
        if cfg.clock_exempt.iter().any(|ex| file.rel.starts_with(ex)) {
            continue;
        }
        if !is_src_path(&file.rel) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if literal_clock_charge(&line.code) && !allowed_at(file, idx, "clock-accounting") {
                findings.push(Finding {
                    rule: Rule::ClockAccounting,
                    file: file.rel.clone(),
                    line: line.num,
                    message: "literal latency charged straight into the virtual clock; route it through a ddc-sim cost model (or annotate `// analyze:allow(clock-accounting) <reason>`)".to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC010: metric-doc sync
// ---------------------------------------------------------------------

/// Markers delimiting the generated metric table in the design doc.
pub const METRIC_TABLE_BEGIN: &str = "<!-- ddc-analyze:metric-table:begin -->";
pub const METRIC_TABLE_END: &str = "<!-- ddc-analyze:metric-table:end -->";

/// Replace each `{...}` hole with `x`; `None` if braces are unbalanced.
fn flatten_pattern(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let end = rest[start..].find('}')?;
        out.push('x');
        rest = &rest[start + end + 1..];
        if rest.starts_with('{') && out.ends_with('x') {
            // adjacent holes collapse into one segment wildcard
            continue;
        }
    }
    if rest.contains('}') {
        return None;
    }
    out.push_str(rest);
    Some(out)
}

/// Is `s` a `format!`-style metric pattern — braces whose flattened form
/// is metric-shaped (`integrity.pool{p}.scrub_rounds`)?
fn is_metric_pattern(s: &str) -> bool {
    s.contains('{') && flatten_pattern(s).is_some_and(|f| is_metric_shaped(&f))
}

/// Does one dot-segment of a metric pattern match a concrete segment?
/// `{hole}`s match one or more metric characters.
fn seg_matches(pat: &str, actual: &str) -> bool {
    match pat.find('{') {
        None => pat == actual,
        Some(start) => {
            let Some(end_rel) = pat[start..].find('}') else {
                return false;
            };
            let end = start + end_rel;
            let pre = &pat[..start];
            let Some(rest_actual) = actual.strip_prefix(pre) else {
                return false;
            };
            let rest_pat = &pat[end + 1..];
            for take in 1..=rest_actual.len() {
                if !rest_actual[..take]
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    break;
                }
                if seg_matches(rest_pat, &rest_actual[take..]) {
                    return true;
                }
            }
            false
        }
    }
}

/// Can the `format!` pattern produce the concrete metric name?
fn pattern_matches(pat: &str, name: &str) -> bool {
    let ps: Vec<&str> = pat.split('.').collect();
    let ns: Vec<&str> = name.split('.').collect();
    ps.len() == ns.len() && ps.iter().zip(&ns).all(|(p, n)| seg_matches(p, n))
}

fn check_metric_doc_sync(
    cfg: &AnalyzeConfig,
    registry_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    let Some(registry_file) = scan.file(registry_rel) else {
        return;
    };
    let registered = registered_metrics(registry_file);
    if registered.is_empty() {
        return; // DDC005 already reports the empty registry.
    }

    // Direction 1+2: registry ↔ design-doc table.
    if let Some(doc_rel) = &cfg.doc_file {
        match scan.raw.get(doc_rel) {
            None => findings.push(Finding {
                rule: Rule::MetricDocSync,
                file: doc_rel.clone(),
                line: 0,
                message: "design doc not found; the metric table cannot be checked".to_string(),
            }),
            Some(text) => {
                let mut in_table = false;
                let mut saw_markers = false;
                let mut documented: BTreeMap<String, usize> = BTreeMap::new();
                for (i, raw) in text.lines().enumerate() {
                    if raw.contains(METRIC_TABLE_BEGIN) {
                        in_table = true;
                        saw_markers = true;
                        continue;
                    }
                    if raw.contains(METRIC_TABLE_END) {
                        in_table = false;
                        continue;
                    }
                    if !in_table {
                        continue;
                    }
                    // Backticked tokens in the table rows.
                    let mut rest = raw;
                    while let Some(start) = rest.find('`') {
                        let Some(end_rel) = rest[start + 1..].find('`') else {
                            break;
                        };
                        let token = &rest[start + 1..start + 1 + end_rel];
                        if is_metric_shaped(token) {
                            documented.entry(token.to_string()).or_insert(i + 1);
                        }
                        rest = &rest[start + 1 + end_rel + 1..];
                    }
                }
                if !saw_markers {
                    findings.push(Finding {
                        rule: Rule::MetricDocSync,
                        file: doc_rel.clone(),
                        line: 0,
                        message: format!(
                            "no generated metric table found (markers `{METRIC_TABLE_BEGIN}` / `{METRIC_TABLE_END}` missing)"
                        ),
                    });
                } else {
                    for (name, &line) in &registered {
                        if !documented.contains_key(name) {
                            findings.push(Finding {
                                rule: Rule::MetricDocSync,
                                file: registry_rel.to_path_buf(),
                                line,
                                message: format!(
                                    "metric \"{name}\" is registered but missing from the {} metric table",
                                    doc_rel.display()
                                ),
                            });
                        }
                    }
                    for (name, &line) in &documented {
                        if !registered.contains_key(name) {
                            findings.push(Finding {
                                rule: Rule::MetricDocSync,
                                file: doc_rel.clone(),
                                line,
                                message: format!(
                                    "metric \"{name}\" is documented in the metric table but not registered in {}",
                                    registry_rel.display()
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // Direction 3: every registered name has an emission site. Literal
    // names count directly; `format!` patterns count for every name they
    // can produce.
    let mut plain: BTreeSet<String> = BTreeSet::new();
    let mut patterns: BTreeSet<String> = BTreeSet::new();
    for file in scan.under(&cfg.metric_scan) {
        if file.rel == *registry_rel {
            continue;
        }
        for line in &file.lines {
            if line.code.trim().is_empty() {
                continue;
            }
            for lit in string_literals(&line.raw) {
                if is_metric_shaped(&lit) {
                    plain.insert(lit);
                } else if is_metric_pattern(&lit) {
                    patterns.insert(lit);
                }
            }
        }
    }
    for (name, &line) in &registered {
        let emitted = plain.contains(name) || patterns.iter().any(|p| pattern_matches(p, name));
        if !emitted {
            findings.push(Finding {
                rule: Rule::MetricDocSync,
                file: registry_rel.to_path_buf(),
                line,
                message: format!(
                    "metric \"{name}\" is registered but never emitted from {}",
                    cfg.metric_scan
                        .iter()
                        .map(|p| p.display().to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule DDC011: fault-poll coverage
// ---------------------------------------------------------------------

/// The `impl FaultInjector` methods and the `FaultSpec` variants each
/// references, in declaration order.
fn injector_handlers(file: &SrcFile) -> Vec<(String, BTreeSet<String>)> {
    let mut out: Vec<(String, BTreeSet<String>)> = Vec::new();
    let mut depth = 0i32;
    let mut inside = false;
    let mut started = false;
    for line in &file.lines {
        let code = &line.code;
        if !inside {
            if contains_token(code, "impl FaultInjector") {
                inside = true;
            } else {
                continue;
            }
        }
        if started && depth == 1 {
            if let Some(pos) = code.find("fn ") {
                let boundary_ok =
                    pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap());
                if boundary_ok {
                    let name: String = code[pos + 3..]
                        .chars()
                        .take_while(|&c| is_ident_char(c))
                        .collect();
                    if !name.is_empty() {
                        out.push((name, BTreeSet::new()));
                    }
                }
            }
        }
        if let Some((_, set)) = out.last_mut() {
            for v in path_idents(code, "FaultSpec::") {
                set.insert(v);
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if inside && started && depth <= 0 {
            break;
        }
    }
    out
}

fn check_fault_poll_coverage(
    cfg: &AnalyzeConfig,
    specs_rel: &Path,
    scan: &Scan,
    findings: &mut Vec<Finding>,
) {
    if cfg.fault_poll_files.is_empty() {
        return;
    }
    let Some(specs) = scan.file(specs_rel) else {
        return;
    };
    let variants = enum_variants(specs, "FaultSpec");
    if variants.is_empty() {
        return;
    }
    let handlers = injector_handlers(specs);
    // Which handler methods are actually called from a poll site?
    let mut polled: BTreeSet<&str> = BTreeSet::new();
    for rel in &cfg.fault_poll_files {
        let Some(file) = scan.file(rel) else { continue };
        for (fname, _) in &handlers {
            let call = format!(".{fname}(");
            if file.lines.iter().any(|l| l.code.contains(&call)) {
                polled.insert(fname);
            }
        }
    }
    let poll_list = cfg
        .fault_poll_files
        .iter()
        .map(|p| p.display().to_string())
        .collect::<Vec<_>>()
        .join(", ");
    for (line, v) in &variants {
        // Capability predicates (`has_*`) and lifecycle bookkeeping
        // (`retire_*`) reference variants without polling their effect.
        let handling: Vec<&str> = handlers
            .iter()
            .filter(|(f, vars)| {
                !f.starts_with("has_") && !f.starts_with("retire_") && vars.contains(v)
            })
            .map(|(f, _)| f.as_str())
            .collect();
        if handling.is_empty() {
            findings.push(Finding {
                rule: Rule::FaultPollCoverage,
                file: specs_rel.to_path_buf(),
                line: *line,
                message: format!(
                    "FaultSpec::{v} is not handled by any FaultInjector poll method; the spec can never take effect"
                ),
            });
        } else if !handling.iter().any(|f| polled.contains(f)) {
            findings.push(Finding {
                rule: Rule::FaultPollCoverage,
                file: specs_rel.to_path_buf(),
                line: *line,
                message: format!(
                    "FaultSpec::{v} is handled by {} but none is called from a poll site ({poll_list})",
                    handling.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One stable finding ID per line — what the CI fixture gate diffs.
pub fn render_ids(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.id());
        out.push('\n');
    }
    out
}

/// Machine-readable JSON array, stable across runs (findings are sorted
/// and the serializer is hand-rolled and deterministic).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"id\":\"{}\",", json_escape(&f.id())));
        out.push_str(&format!("\"rule\":\"{}\",", f.rule.id()));
        out.push_str(&format!("\"label\":\"{}\",", f.rule.label()));
        out.push_str(&format!(
            "\"file\":\"{}\",",
            json_escape(&f.file.display().to_string())
        ));
        out.push_str(&format!("\"line\":{},", f.line));
        out.push_str(&format!("\"message\":\"{}\"", json_escape(&f.message)));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// SARIF 2.1.0 report for CI annotation upload. Line 0 (whole-file
/// registry findings) is clamped to 1, the SARIF minimum.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"ddc-analyze\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}{}\n",
            rule.id(),
            rule.label(),
            json_escape(rule.invariant()),
            if i + 1 == RULES.len() { "" } else { "," }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"partialFingerprints\": {{\"stableId\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            f.rule.id(),
            json_escape(&f.message),
            json_escape(&f.id()),
            json_escape(&f.file.display().to_string()),
            f.line.max(1),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_strings_and_comments() {
        let mut blk = false;
        assert_eq!(
            strip_line(r#"let x = "Instant::now"; // Instant::now"#, &mut blk),
            r#"let x = ""; "#
        );
        assert!(!blk);
        assert_eq!(strip_line("code(); /* open", &mut blk), "code(); ");
        assert!(blk);
        assert_eq!(strip_line("still */ after", &mut blk), " after");
        assert!(!blk);
    }

    #[test]
    fn kebab_case_splits_on_uppercase() {
        assert_eq!(kebab_case("DegradedPool"), "degraded-pool");
        assert_eq!(kebab_case("LameFabricLink"), "lame-fabric-link");
        assert_eq!(
            kebab_case("PushdownExceptionProb"),
            "pushdown-exception-prob"
        );
        assert_eq!(kebab_case("SsdLatencyStorm"), "ssd-latency-storm");
    }

    #[test]
    fn metric_shape_matches_names_only() {
        assert!(is_metric_shaped("paging.cache_hits"));
        assert!(is_metric_shaped("net.page_in.bytes"));
        assert!(!is_metric_shaped("no_dots"));
        assert!(!is_metric_shaped("Paging.cache"));
        assert!(!is_metric_shaped("paging."));
        assert!(!is_metric_shaped("2fast.2furious"));
        assert!(!is_metric_shaped("has space.x"));
    }

    #[test]
    fn iteration_detection_respects_boundaries() {
        assert!(iterates("for (k, v) in &self.held {", "held"));
        assert!(iterates("self.entries.iter().map(|x| x)", "entries"));
        assert!(iterates("m.drain(..)", "m"));
        assert!(!iterates("withheld.iter()", "held"));
        assert!(!iterates("m2.iter()", "m"));
        assert!(!iterates("for pid in pages_spanned(a, l) {", "pages"));
        assert!(!iterates("held.get(&k)", "held"));
    }

    #[test]
    fn allow_annotation_requires_reason() {
        assert!(has_allow(
            "// analyze:allow(unordered-iter) order documented unspecified",
            "unordered-iter"
        ));
        assert!(!has_allow(
            "// analyze:allow(unordered-iter)",
            "unordered-iter"
        ));
        assert!(!has_allow(
            "// analyze:allow(debug-assert) why",
            "unordered-iter"
        ));
    }

    #[test]
    fn string_literal_extraction() {
        assert_eq!(
            string_literals(r#"m.set("paging.cache_hits", 1); // "not.this""#),
            vec!["paging.cache_hits".to_string()]
        );
        assert_eq!(
            string_literals(r#"let s = "a\"b.c";"#),
            vec![r#"a"b.c"#.to_string()]
        );
    }

    #[test]
    fn rule_ids_are_stable_and_unique() {
        let ids: BTreeSet<&str> = RULES.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), RULES.len());
        assert_eq!(Rule::WallClock.id(), "DDC001");
        assert_eq!(Rule::FaultPollCoverage.id(), "DDC011");
        let labels: BTreeSet<&str> = RULES.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), RULES.len());
    }

    #[test]
    fn token_boundaries() {
        assert!(contains_token(
            "let e = TraceEvent::Cancel;",
            "TraceEvent::Cancel"
        ));
        assert!(!contains_token(
            "let e = TraceEvent::CancelDeclined;",
            "TraceEvent::Cancel"
        ));
        assert!(!contains_token(
            "MyTraceEvent::Cancel",
            "TraceEvent::Cancel"
        ));
        assert_eq!(
            path_idents(
                "FaultSpec::PoolDeath | FaultSpec::HeartbeatFlap",
                "FaultSpec::"
            ),
            vec!["PoolDeath".to_string(), "HeartbeatFlap".to_string()]
        );
    }

    #[test]
    fn wildcard_arm_detection() {
        assert!(is_wildcard_arm("            _ => true,"));
        assert!(is_wildcard_arm(
            "PushdownError::Killed { .. } | _ => false,"
        ));
        assert!(!is_wildcard_arm("PushdownError::Exception(_) => true,"));
        assert!(!is_wildcard_arm("Killed { ran_for: _ } => false,"));
        assert!(!is_wildcard_arm("let x_ => nope"));
    }

    #[test]
    fn impl_target_parsing() {
        assert_eq!(impl_target("impl RetryPolicy {"), "RetryPolicy");
        assert_eq!(
            impl_target("impl Default for FallbackPolicy {"),
            "FallbackPolicy"
        );
        assert_eq!(impl_target("impl<T> Wrapper<T> {"), "Wrapper");
    }

    #[test]
    fn literal_clock_charges_only() {
        assert!(literal_clock_charge(
            "clock.advance(SimDuration::from_nanos(500));"
        ));
        assert!(literal_clock_charge("c.advance_to(SimTime(1_000));"));
        assert!(!literal_clock_charge(
            ".advance(SimDuration::from_nanos(floor_ns - spent));"
        ));
        assert!(!literal_clock_charge("clock.advance(cost);"));
        assert!(!literal_clock_charge(".advance_to(SimTime(deadline));"));
    }

    #[test]
    fn metric_patterns_match_families() {
        assert!(is_metric_pattern("integrity.pool{p}.scrub_rounds"));
        assert!(is_metric_pattern("serve.{seg}.completed"));
        assert!(!is_metric_pattern("paging.cache_hits"));
        assert!(!is_metric_pattern("{p} pages lost"));
        assert!(pattern_matches(
            "serve.{seg}.completed",
            "serve.guaranteed.completed"
        ));
        assert!(pattern_matches(
            "integrity.pool{p}.scrub_rounds",
            "integrity.pool3.scrub_rounds"
        ));
        assert!(!pattern_matches("serve.{seg}.completed", "serve.shed"));
        assert!(!pattern_matches(
            "serve.tenant{t}.completed",
            "serve.guaranteed.completed"
        ));
    }

    #[test]
    fn json_escaping_and_rendering() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = Finding {
            rule: Rule::MetricName,
            file: PathBuf::from("src/x.rs"),
            line: 3,
            message: "metric \"a.b\" unknown".to_string(),
        };
        assert_eq!(f.id(), "DDC005:src/x.rs:3");
        let json = render_json(std::slice::from_ref(&f));
        assert!(json.contains("\"id\":\"DDC005:src/x.rs:3\""));
        assert!(json.contains("\"label\":\"metric-name\""));
        let sarif = render_sarif(std::slice::from_ref(&f));
        assert!(sarif.contains("\"ruleId\": \"DDC005\""));
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(render_json(&[]).starts_with("[]"));
    }
}
