//! Property tests: analyzer output is a pure function of the tree's
//! *content* — byte-identical across repeated runs, independent of the
//! order files were created in (and therefore of directory-walk order),
//! and always sorted by (file, line, rule).

use std::fs;
use std::path::{Path, PathBuf};

use ddc_analyze::{analyze, render_ids, render_json, render_sarif, AnalyzeConfig};
use proptest::prelude::*;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

/// Every file in the fixture tree as (relative path, contents), sorted.
fn fixture_files() -> Vec<(PathBuf, String)> {
    let root = fixture_root();
    let mut out = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("fixture dir readable") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(&root).expect("under root").to_path_buf();
                let text = fs::read_to_string(&path).expect("fixture file readable");
                out.push((rel, text));
            }
        }
    }
    out.sort();
    out
}

/// Copy the fixture tree into `dest`, creating files in the order given
/// by `perm` (a permutation of indices into the sorted file list). On
/// most filesystems creation order perturbs readdir order, which is
/// exactly what the analyzer's sorted walk must be immune to.
fn copy_shuffled(dest: &Path, files: &[(PathBuf, String)], perm: &[usize]) {
    for &i in perm {
        let (rel, text) = &files[i];
        let target = dest.join(rel);
        fs::create_dir_all(target.parent().expect("parent")).expect("mkdir");
        fs::write(&target, text).expect("write fixture copy");
    }
}

/// Deterministic Fisher–Yates driven by a seed (an LCG is plenty here —
/// we only need distinct orders per case, not statistical quality).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same tree content ⇒ byte-identical findings in every output
    /// format, regardless of the order the files landed on disk.
    #[test]
    fn output_is_deterministic_and_walk_order_independent(seed in any::<u64>()) {
        let files = fixture_files();
        let baseline = analyze(&AnalyzeConfig::fixture(fixture_root()))
            .expect("pristine fixture analysis runs");

        let dest = std::env::temp_dir().join(format!(
            "ddc-analyze-det-{}-{seed:016x}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dest);
        copy_shuffled(&dest, &files, &permutation(files.len(), seed));

        let cfg = AnalyzeConfig::fixture(&dest);
        let first = analyze(&cfg).expect("copied fixture analysis runs");
        let second = analyze(&cfg).expect("repeat analysis runs");
        fs::remove_dir_all(&dest).expect("cleanup");

        // Repeated runs: byte-identical in every format.
        prop_assert_eq!(render_json(&first), render_json(&second));
        prop_assert_eq!(render_sarif(&first), render_sarif(&second));
        prop_assert_eq!(render_ids(&first), render_ids(&second));
        // Creation order: same findings as the pristine tree.
        prop_assert_eq!(render_json(&first), render_json(&baseline));
        // Sorted by (file, line, rule).
        let mut sorted = first.clone();
        sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        prop_assert_eq!(first, sorted);
    }
}
