//! The analyzer against two trees: the seeded-violation fixtures (every
//! planted bug must be flagged, every annotated site must stay silent)
//! and the real workspace (which must be clean).

use std::path::{Path, PathBuf};

use ddc_analyze::{analyze, AnalyzeConfig, Finding, Rule};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

fn fixture_config() -> AnalyzeConfig {
    let p = PathBuf::from;
    AnalyzeConfig {
        root: fixture_root(),
        scan_dirs: vec![p("src")],
        wallclock_exempt: vec![],
        sim_critical: vec![p("src")],
        protocol_files: vec![p("src/protocol.rs")],
        trace_file: Some(p("src/trace.rs")),
        metric_registry: Some(p("src/metric_names.rs")),
        metric_scan: vec![p("src")],
        fault_matrix: Some(p("tests/fault_matrix.rs")),
        fault_specs: Some(p("src/faults.rs")),
    }
}

fn fixture_findings() -> Vec<Finding> {
    analyze(&fixture_config()).expect("fixture analysis runs")
}

fn of_rule(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn flags_wall_clock_calls() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::WallClock);
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("Instant::now")));
    assert!(hits.iter().any(|f| f.message.contains("SystemTime")));
    assert!(hits.iter().all(|f| f.file == Path::new("src/wallclock.rs")));
}

#[test]
fn flags_unannotated_hash_iteration_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::UnorderedIter);
    // The raw `counts.iter()` loop and the reason-less annotation; the
    // properly annotated `counts.keys()` site stays silent.
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().all(|f| f.file == Path::new("src/unordered.rs")));
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert!(
        !lines.contains(&20),
        "annotated site must not be flagged: {hits:#?}"
    );
}

#[test]
fn flags_protocol_debug_assert_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::DebugAssertProtocol);
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert_eq!(hits[0].file, PathBuf::from("src/protocol.rs"));
    assert_eq!(hits[0].line, 6);
}

#[test]
fn flags_broken_digest_registry() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::DigestTag);
    let msgs: Vec<&str> = hits.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag 0") && m.contains("Alpha") && m.contains("Beta")),
        "duplicate tag not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("contiguous")),
        "non-contiguous tags not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("Gamma") && m.contains("kind()")),
        "kind() gap not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("EVENT_KINDS is 5")),
        "EVENT_KINDS mismatch not flagged: {msgs:#?}"
    );
}

#[test]
fn flags_unregistered_metric_name_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::MetricName);
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].message.contains("fixture.bad_metric"));
}

#[test]
fn flags_uncovered_fault_kind_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::FaultKindCoverage);
    // One uncovered injected-fault label, two uncovered FaultSpec
    // variants; the covered "alpha-fault" stays silent on both halves.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits
        .iter()
        .any(|f| f.message.contains("beta-fault") && f.file == Path::new("src/trace.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::GammaGrind")
            && f.message.contains("gamma-grind")
            && f.file == Path::new("src/faults.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::DeltaCrashRestart")
            && f.message.contains("delta-crash-restart")
            && f.file == Path::new("src/faults.rs")));
}

#[test]
fn findings_are_sorted_and_printable() {
    let all = fixture_findings();
    let mut sorted = all.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(all, sorted);
    for f in &all {
        let s = f.to_string();
        assert!(s.contains(':'), "{s}");
    }
}

#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let cfg = AnalyzeConfig::workspace(root);
    let findings = analyze(&cfg).expect("workspace analysis runs");
    assert!(
        findings.is_empty(),
        "the workspace must pass its own analysis:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
