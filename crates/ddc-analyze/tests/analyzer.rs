//! The analyzer against two trees: the seeded-violation fixtures (every
//! planted bug must be flagged, every annotated site must stay silent)
//! and the real workspace (which must be clean).

use std::path::{Path, PathBuf};

use ddc_analyze::{analyze, AnalyzeConfig, Finding, Rule};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
}

fn fixture_config() -> AnalyzeConfig {
    AnalyzeConfig::fixture(fixture_root())
}

fn fixture_findings() -> Vec<Finding> {
    analyze(&fixture_config()).expect("fixture analysis runs")
}

fn of_rule(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn flags_wall_clock_calls() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::WallClock);
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().any(|f| f.message.contains("Instant::now")));
    assert!(hits.iter().any(|f| f.message.contains("SystemTime")));
    assert!(hits.iter().all(|f| f.file == Path::new("src/wallclock.rs")));
}

#[test]
fn flags_unannotated_hash_iteration_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::UnorderedIter);
    // The raw `counts.iter()` loop and the reason-less annotation; the
    // properly annotated `counts.keys()` site stays silent.
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().all(|f| f.file == Path::new("src/unordered.rs")));
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert!(
        !lines.contains(&20),
        "annotated site must not be flagged: {hits:#?}"
    );
}

#[test]
fn flags_protocol_debug_assert_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::DebugAssertProtocol);
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert_eq!(hits[0].file, PathBuf::from("src/protocol.rs"));
    assert_eq!(hits[0].line, 6);
}

#[test]
fn flags_broken_digest_registry() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::DigestTag);
    let msgs: Vec<&str> = hits.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("tag 0") && m.contains("Alpha") && m.contains("Beta")),
        "duplicate tag not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("contiguous")),
        "non-contiguous tags not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("Gamma") && m.contains("kind()")),
        "kind() gap not flagged: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("EVENT_KINDS is 5")),
        "EVENT_KINDS mismatch not flagged: {msgs:#?}"
    );
}

#[test]
fn flags_unregistered_metric_name_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::MetricName);
    assert_eq!(hits.len(), 1, "{hits:#?}");
    assert!(hits[0].message.contains("fixture.bad_metric"));
}

#[test]
fn flags_uncovered_fault_kind_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::FaultKindCoverage);
    // One uncovered injected-fault label, two uncovered FaultSpec
    // variants; the covered "alpha-fault" stays silent on both halves.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits
        .iter()
        .any(|f| f.message.contains("beta-fault") && f.file == Path::new("src/trace.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::GammaGrind")
            && f.message.contains("gamma-grind")
            && f.file == Path::new("src/faults.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::DeltaCrashRestart")
            && f.message.contains("delta-crash-restart")
            && f.file == Path::new("src/faults.rs")));
}

#[test]
fn flags_error_classification_gaps() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::ErrorClassification);
    // RetryPolicy: a wildcard arm plus the Gamma variant it hides;
    // FallbackPolicy: Gamma simply missing. Alpha and Beta stay silent.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits
        .iter()
        .all(|f| f.file == Path::new("src/resilience.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("wildcard") && f.message.contains("RetryPolicy")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("PushdownError::Gamma")
            && f.message.contains("RetryPolicy::covers")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("PushdownError::Gamma")
            && f.message.contains("FallbackPolicy::covers")));
    assert_eq!(
        hits.iter().map(|f| f.id()).collect::<Vec<_>>(),
        vec![
            "DDC007:src/resilience.rs:9",
            "DDC007:src/resilience.rs:13",
            "DDC007:src/resilience.rs:21",
        ]
    );
}

#[test]
fn flags_unemitted_and_unasserted_trace_tags() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::TraceTagEmission);
    // Beta is emitted but never asserted; Gamma is asserted but never
    // emitted; Alpha (emitted by src/emit.rs, asserted by
    // tests/trace_golden.rs) stays silent.
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().all(|f| f.file == Path::new("src/trace.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("TraceEvent::Beta") && f.message.contains("asserted")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("TraceEvent::Gamma") && f.message.contains("emitted")));
    assert_eq!(
        hits.iter().map(|f| f.id()).collect::<Vec<_>>(),
        vec!["DDC008:src/trace.rs:10", "DDC008:src/trace.rs:11"]
    );
}

#[test]
fn flags_literal_clock_charges_only() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::ClockAccounting);
    // Two literal charges; the annotated site and the computed charge
    // stay silent.
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits
        .iter()
        .all(|f| f.file == Path::new("src/clockcharge.rs")));
    assert_eq!(
        hits.iter().map(|f| f.id()).collect::<Vec<_>>(),
        vec![
            "DDC009:src/clockcharge.rs:6",
            "DDC009:src/clockcharge.rs:10",
        ]
    );
}

#[test]
fn flags_metric_doc_drift_in_all_directions() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::MetricDocSync);
    // fixture.unused_metric: registered but undocumented AND unemitted;
    // fixture.ghost_metric: documented but unregistered.
    assert_eq!(hits.len(), 3, "{hits:#?}");
    assert!(hits
        .iter()
        .any(|f| f.message.contains("fixture.ghost_metric")
            && f.message.contains("not registered")
            && f.file == Path::new("docs/DESIGN.md")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("fixture.unused_metric")
            && f.message.contains("missing from the")
            && f.file == Path::new("src/metric_names.rs")));
    assert!(hits.iter().any(
        |f| f.message.contains("fixture.unused_metric") && f.message.contains("never emitted")
    ));
}

#[test]
fn flags_unpolled_fault_specs() {
    let all = fixture_findings();
    let hits = of_rule(&all, Rule::FaultPollCoverage);
    // GammaGrind has a handler nobody polls; DeltaCrashRestart has no
    // handler at all; AlphaFault (polled from src/net.rs) stays silent.
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(hits.iter().all(|f| f.file == Path::new("src/faults.rs")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::GammaGrind")
            && f.message.contains("gamma_factor")
            && f.message.contains("poll site")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("FaultSpec::DeltaCrashRestart")
            && f.message.contains("not handled")));
    assert_eq!(
        hits.iter().map(|f| f.id()).collect::<Vec<_>>(),
        vec!["DDC011:src/faults.rs:17", "DDC011:src/faults.rs:20"]
    );
}

#[test]
fn fixture_ids_match_committed_expectations() {
    // The same golden file the CI regression gate diffs against:
    // fixtures/expected_ids.txt pins every seeded violation by stable ID.
    let expected = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/expected_ids.txt"),
    )
    .expect("fixtures/expected_ids.txt is committed");
    let got = ddc_analyze::render_ids(&fixture_findings());
    assert_eq!(
        got, expected,
        "fixture findings drifted from fixtures/expected_ids.txt; \
         regenerate with `cargo run -p ddc-analyze -- --fixture \
         --root crates/ddc-analyze/fixtures/bad --format ids`"
    );
}

#[test]
fn machine_formats_are_stable_across_runs() {
    let first = fixture_findings();
    let second = fixture_findings();
    assert_eq!(
        ddc_analyze::render_json(&first),
        ddc_analyze::render_json(&second)
    );
    assert_eq!(
        ddc_analyze::render_sarif(&first),
        ddc_analyze::render_sarif(&second)
    );
    let json = ddc_analyze::render_json(&first);
    assert!(json.contains("\"rule\":\"DDC007\""));
    let sarif = ddc_analyze::render_sarif(&first);
    // All eleven rules are declared in the SARIF driver metadata.
    for rule in ddc_analyze::RULES {
        assert!(
            sarif.contains(rule.id()),
            "{} missing from SARIF",
            rule.id()
        );
    }
    // SARIF regions never report line 0 (whole-file findings clamp to 1).
    assert!(!sarif.contains("\"startLine\": 0"));
}

#[test]
fn findings_are_sorted_and_printable() {
    let all = fixture_findings();
    let mut sorted = all.clone();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    assert_eq!(all, sorted);
    for f in &all {
        let s = f.to_string();
        assert!(s.contains(':'), "{s}");
    }
}

#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let cfg = AnalyzeConfig::workspace(root);
    let findings = analyze(&cfg).expect("workspace analysis runs");
    assert!(
        findings.is_empty(),
        "the workspace must pass its own analysis:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
