// Fixture error taxonomy for the classification rule: three variants;
// the fixture resilience policies mishandle two of them.

pub enum PushdownError {
    Alpha,
    Beta { code: u64 },
    Gamma,
}
