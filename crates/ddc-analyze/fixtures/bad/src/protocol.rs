// Fixture: a debug_assert guarding cross-pool protocol state (vanishes in
// release builds — violation), plus an annotated application-level check
// that must stay silent.

pub fn handoff(seq: u64, expected: u64) {
    debug_assert_eq!(seq, expected, "out-of-order handoff");
}

pub fn guarded(idx: usize) {
    // analyze:allow(debug-assert) local index bound, not cross-pool state
    debug_assert!(idx < 1024);
}
