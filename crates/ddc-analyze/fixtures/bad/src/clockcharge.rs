// Fixture clock charges: two literal latencies charged straight into
// the virtual clock (violations), one annotated-and-allowed site, and
// one computed charge that must stay silent.

pub fn bad_literal(clock: &mut Clock) {
    clock.advance(SimDuration::from_nanos(500));
}

pub fn bad_absolute(clock: &mut Clock) {
    clock.advance_to(SimTime(1_000));
}

pub fn allowed(clock: &mut Clock) {
    // analyze:allow(clock-accounting) fixed protocol preamble, modeled in the fixture doc
    clock.advance(SimDuration::from_nanos(7));
}

pub fn computed(clock: &mut Clock, floor_ns: u64, spent: u64) {
    clock.advance(SimDuration::from_nanos(floor_ns - spent));
}
