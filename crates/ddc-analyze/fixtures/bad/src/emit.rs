// Fixture emission sites: Alpha and Beta are emitted from non-test
// source; Gamma exists only in the registry and is never emitted
// (violation caught by trace-tag-emission).

pub fn emit(sink: &mut Vec<TraceEvent>) {
    sink.push(TraceEvent::Alpha { x: 1 });
    sink.push(TraceEvent::Beta);
}
