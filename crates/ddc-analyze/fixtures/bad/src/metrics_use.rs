// Fixture: one registered metric name (silent) and one that is missing
// from the registry (violation).

pub fn record(set: &mut dyn FnMut(&str, u64)) {
    set("fixture.good_metric", 1);
    set("fixture.bad_metric", 2);
}
