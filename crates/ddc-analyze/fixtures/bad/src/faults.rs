// Fixture injector: two FaultSpec variants. "alpha-fault" is exercised
// by the fixture matrix; "gamma-grind" is not and must be flagged. The
// struct variant's field names sit at brace depth 2 and must never be
// mistaken for variants.

pub enum FaultSpec {
    AlphaFault {
        from: u64,
        until: u64,
    },
    GammaGrind {
        factor: u32,
    },
}
