// Fixture injector: three FaultSpec variants. "alpha-fault" is exercised
// by the fixture matrix; "gamma-grind" and the crash-style
// "delta-crash-restart" are not and must be flagged. The struct variants'
// field names sit at brace depth 2 and must never be mistaken for
// variants.

pub enum FaultSpec {
    AlphaFault {
        from: u64,
        until: u64,
    },
    GammaGrind {
        factor: u32,
    },
    DeltaCrashRestart {
        pool: usize,
        down_for: u64,
    },
}
