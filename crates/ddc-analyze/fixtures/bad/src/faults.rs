// Fixture injector: three FaultSpec variants. "alpha-fault" is exercised
// by the fixture matrix; "gamma-grind" and the crash-style
// "delta-crash-restart" are not and must be flagged. The struct variants'
// field names sit at brace depth 2 and must never be mistaken for
// variants.
//
// The impl block seeds the fault-poll-coverage rule: alpha_active is
// polled from src/net.rs (silent), gamma_factor handles GammaGrind but
// is never polled (violation), and DeltaCrashRestart has no handler at
// all (violation).

pub enum FaultSpec {
    AlphaFault {
        from: u64,
        until: u64,
    },
    GammaGrind {
        factor: u32,
    },
    DeltaCrashRestart {
        pool: usize,
        down_for: u64,
    },
}

pub struct FaultInjector {
    pub specs: Vec<FaultSpec>,
}

impl FaultInjector {
    pub fn alpha_active(&self, now: u64) -> bool {
        self.specs
            .iter()
            .any(|s| matches!(s, FaultSpec::AlphaFault { from, until } if *from <= now && now < *until))
    }

    pub fn gamma_factor(&self) -> u32 {
        for s in &self.specs {
            if let FaultSpec::GammaGrind { factor } = s {
                return *factor;
            }
        }
        1
    }
}
