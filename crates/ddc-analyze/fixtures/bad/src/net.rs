// Fixture poll site: polls the alpha handler on every delivery; the
// gamma handler exists in the injector but no poll site ever calls it
// (violation caught by fault-poll-coverage).

pub fn deliver(inj: &FaultInjector, now: u64) -> bool {
    !inj.alpha_active(now)
}
