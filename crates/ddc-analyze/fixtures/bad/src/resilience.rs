// Fixture resilience policies. RetryPolicy::covers hides Gamma behind a
// wildcard arm (two violations: the wildcard itself and the missing
// explicit Gamma classification); FallbackPolicy::covers simply forgets
// Gamma (one violation).

pub struct RetryPolicy;

impl RetryPolicy {
    pub fn covers(&self, err: &PushdownError) -> bool {
        match err {
            PushdownError::Alpha => true,
            PushdownError::Beta { .. } => false,
            _ => true,
        }
    }
}

pub struct FallbackPolicy;

impl FallbackPolicy {
    pub fn covers(&self, err: &PushdownError) -> bool {
        matches!(err, PushdownError::Alpha | PushdownError::Beta { .. })
    }
}
