// Fixture: a broken trace-event registry. Seeded violations:
//   - digest tag 0 assigned to both Alpha and Beta (duplicate)
//   - tags {0, 2} not contiguous from 0
//   - Gamma never matched in kind()
//   - EVENT_KINDS says 5 but the enum has 3 variants
// Plus a fault_label() whose "beta-fault" never appears in the matrix.

pub enum TraceEvent {
    Alpha { x: u64 },
    Beta,
    Gamma { y: u64 },
}

pub const EVENT_KINDS: usize = 5;

impl TraceEvent {
    pub fn kind(&self) -> usize {
        match self {
            TraceEvent::Alpha { .. } => 0,
            TraceEvent::Beta => 1,
            _ => 2,
        }
    }

    fn digest_words(&self) -> [u64; 3] {
        match self {
            TraceEvent::Alpha { x } => [0, *x, 0],
            TraceEvent::Beta => [0, 0, 0],
            TraceEvent::Gamma { y } => [2, *y, 0],
        }
    }
}

pub fn fault_label(k: usize) -> &'static str {
    match k {
        0 => "alpha-fault",
        _ => "beta-fault",
    }
}
