// Fixture: hash-container iteration. One raw violation, one properly
// annotated site (must stay silent), one annotation missing its reason
// (still a violation — an allow without a why is not allowed).

use std::collections::HashMap;

pub fn violation() -> u64 {
    let counts: HashMap<u64, u64> = HashMap::new();
    let mut total = 0;
    for (_k, v) in counts.iter() {
        total += v;
    }
    total
}

pub fn annotated_ok() -> usize {
    let counts: HashMap<u64, u64> = HashMap::new();
    // analyze:allow(unordered-iter) result is a count, order cannot be observed
    counts.keys().count()
}

pub fn missing_reason() -> usize {
    let counts: HashMap<u64, u64> = HashMap::new();
    // analyze:allow(unordered-iter)
    counts.values().count()
}
