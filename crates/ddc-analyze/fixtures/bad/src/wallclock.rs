// Fixture: two wall-clock violations. Reading the real clock ties a
// simulated result to the machine it ran on.

pub fn now_ms() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}

pub fn epoch() -> u64 {
    let _ = std::time::SystemTime::now();
    0
}
