// Fixture registry: the single metric name the fixture tree may use.

pub const METRIC_NAMES: &[&str] = &["fixture.good_metric"];
