// Fixture registry: one metric name the fixture tree uses (silent), and
// one that is neither documented in the fixture doc table nor emitted
// anywhere (two metric-doc-sync violations).

pub const METRIC_NAMES: &[&str] = &["fixture.good_metric", "fixture.unused_metric"];
