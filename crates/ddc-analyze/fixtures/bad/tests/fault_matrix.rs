// Fixture fault matrix: exercises only the first of the two fault kinds
// the fixture trace.rs defines, leaving the second uncovered.

#[test]
fn alpha() {
    run_fault("alpha-fault");
}
