// Fixture golden test: asserts Alpha and Gamma events; Beta is emitted
// by src/emit.rs but never asserted in any test (violation caught by
// trace-tag-emission).

#[test]
fn golden_digest() {
    let a = TraceEvent::Alpha { x: 7 };
    let g = TraceEvent::Gamma { y: 9 };
    assert_digest(&[a, g]);
}
