//! # kvapp — a key-value point-lookup workload on disaggregated memory
//!
//! The fourth application of the reproduction, built for the multi-tenant
//! serving plane (`teleport::serve`): where memdb scans columns, graphproc
//! iterates frontiers, and mapred shuffles corpora, a production rack's
//! dominant traffic is millions of tiny *point lookups* — a memcached /
//! session-store shape. Each session touches one value: a single page of
//! the working set, a handful of cycles of compute, latency bounded by the
//! fabric rather than bandwidth.
//!
//! That shape is exactly where TELEPORT's trade-offs invert. A scan
//! amortizes one pushdown RPC over thousands of pages; a point lookup
//! moves *less* data than the RPC costs unless the page is remote and
//! cold, which under a multi-tenant cache-thrashing mix it usually is.
//! Serving matrices therefore use kvapp as the latency-sensitive
//! guaranteed-class tenant: small, constant service time, sensitive to
//! queueing — the tenant whose p99 the QoS plane must protect.
//!
//! Layout: values are a dense `Region<u64>` indexed by key (`0..n`). The
//! "hash table" indirection is charged as cycles, not modeled as pointer
//! chases, keeping each lookup a one-page working set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teleport::{Mem, PushdownError, PushdownOpts, Region, Runtime};

/// Host-side generated store content (the oracle's ground truth).
#[derive(Debug, Clone)]
pub struct KvData {
    pub vals: Vec<u64>,
}

impl KvData {
    /// `n` values, seeded. Value bits mix the key so wrong-index bugs are
    /// always visible to the oracle comparison.
    pub fn generate(n: usize, seed: u64) -> KvData {
        let mut rng = StdRng::seed_from_u64(seed);
        KvData {
            vals: (0..n)
                .map(|k| (k as u64) ^ rng.random::<u64>().rotate_left(17))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Bytes of simulated memory the loaded store occupies.
    pub fn working_set_bytes(&self) -> usize {
        self.vals.len() * std::mem::size_of::<u64>()
    }
}

/// Host-side reference results.
pub mod oracle {
    use super::KvData;

    /// The value a correct `get` must return.
    pub fn get(data: &KvData, key: u64) -> u64 {
        data.vals[key as usize]
    }
}

/// Cycles charged per lookup for the hash + bucket walk the dense layout
/// abstracts away (a couple of cache-line probes at ~2 GHz).
const LOOKUP_CYCLES: u64 = 64;

/// The store loaded into simulated (disaggregated) memory.
#[derive(Debug, Clone, Copy)]
pub struct KvStore {
    pub n: usize,
    pub vals: Region<u64>,
}

impl KvStore {
    /// Load the generated values into `m`'s address space. Typically
    /// followed by `drop_cache()` + `begin_timing()`.
    pub fn load<M: Mem>(m: &mut M, data: &KvData) -> KvStore {
        let vals = m.alloc_region::<u64>(data.vals.len().max(1));
        if !data.vals.is_empty() {
            m.write_range(&vals, 0, &data.vals);
        }
        KvStore {
            n: data.vals.len(),
            vals,
        }
    }
}

/// One point lookup, pushed down: the memory pool probes the value in
/// place and returns eight bytes, instead of faulting the value's page
/// across the fabric into the compute cache.
pub fn get(rt: &mut Runtime, store: &KvStore, key: u64) -> Result<u64, PushdownError> {
    assert!((key as usize) < store.n, "key {key} out of range");
    let vals = store.vals;
    rt.pushdown(PushdownOpts::new(), move |m| {
        m.charge_cycles(LOOKUP_CYCLES);
        let mut buf = Vec::with_capacity(1);
        m.read_range(&vals, key as usize, 1, &mut buf);
        buf[0]
    })
}

/// A seeded stream of `count` lookup keys over `0..n` (the serving plane's
/// per-session key schedule). Uniform, not Zipf: every page of the store
/// stays warm-able, which is the harder case for the compute cache.
pub fn keys(seed: u64, count: usize, n: usize) -> Vec<u64> {
    assert!(n > 0, "empty store has no keys");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.random_range(0..n as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::DdcConfig;

    #[test]
    fn pushdown_get_matches_oracle_on_every_platform() {
        let data = KvData::generate(4_096, 7);
        let ks = keys(11, 64, data.len());
        for rt in [
            &mut Runtime::local(Default::default()),
            &mut Runtime::base_ddc(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.25)),
            &mut Runtime::teleport(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.25)),
        ] {
            let store = KvStore::load(rt, &data);
            rt.drop_cache();
            rt.begin_timing();
            for &k in &ks {
                assert_eq!(get(rt, &store, k).unwrap(), oracle::get(&data, k));
            }
        }
    }

    #[test]
    fn generation_and_key_streams_are_seed_deterministic() {
        assert_eq!(KvData::generate(100, 3).vals, KvData::generate(100, 3).vals);
        assert_ne!(KvData::generate(100, 3).vals, KvData::generate(100, 4).vals);
        assert_eq!(keys(5, 32, 100), keys(5, 32, 100));
        assert!(keys(5, 1_000, 64).iter().all(|&k| k < 64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_is_a_caller_bug() {
        let data = KvData::generate(8, 0);
        let mut rt = Runtime::local(Default::default());
        let store = KvStore::load(&mut rt, &data);
        let _ = get(&mut rt, &store, 8);
    }
}
