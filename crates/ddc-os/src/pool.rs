//! The memory pool: the backing store of the process address space.
//!
//! The memory pool holds the authoritative page table. A page is either
//! resident in pool DRAM or swapped out to the storage pool; the pool has a
//! finite capacity (the paper's Fig 15 varies it from 1 GB to 128 GB) and
//! evicts LRU pages to storage when full. Pages currently held by the
//! compute-local cache are pinned: evicting the backing copy of a cached
//! page would create a coherence hazard the real OS also avoids.

use std::collections::HashMap;

use crate::lru::LruList;
use crate::page::PageId;

/// Residency of one page in the memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residency {
    /// In pool DRAM. `dirty` = newer than the storage copy.
    InPool { dirty: bool },
    /// Swapped out to the storage pool.
    InStorage,
}

/// What `ensure_resident` had to do to make a page pool-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolFault {
    /// The page had to be read from storage.
    pub storage_read: bool,
    /// A victim page was written back to storage to make room.
    pub storage_writeback: bool,
}

impl PoolFault {
    /// True if any storage traffic occurred.
    pub fn any(&self) -> bool {
        self.storage_read || self.storage_writeback
    }
}

/// Finite-capacity memory pool with LRU spill to storage.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: usize,
    pages: HashMap<PageId, Residency>,
    lru: LruList,
    pinned: HashMap<PageId, u32>,
    resident_count: usize,
}

impl MemoryPool {
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "memory pool needs at least one page");
        MemoryPool {
            capacity: capacity_pages,
            pages: HashMap::new(),
            lru: LruList::new(),
            pinned: HashMap::new(),
            resident_count: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn resident_pages(&self) -> usize {
        self.resident_count
    }

    /// Pages known to this pool (resident or swapped). Placement policies
    /// use it as the shard's occupancy measure.
    pub fn mapped_len(&self) -> usize {
        self.pages.len()
    }

    /// True if the page is known to the pool (resident or swapped).
    pub fn is_mapped(&self, page: PageId) -> bool {
        self.pages.contains_key(&page)
    }

    /// True if the page is resident in pool DRAM.
    pub fn is_resident(&self, page: PageId) -> bool {
        matches!(self.pages.get(&page), Some(Residency::InPool { .. }))
    }

    /// True if the resident copy is newer than the storage copy. The repair
    /// lattice branches on this: a clean page can always be re-read from
    /// storage, a dirty page only from a surviving replica copy.
    pub fn is_dirty(&self, page: PageId) -> bool {
        matches!(
            self.pages.get(&page),
            Some(Residency::InPool { dirty: true })
        )
    }

    /// Register a freshly allocated page. It starts pool-resident and clean
    /// (a zero page has no storage copy to be newer than, but writing it
    /// back on eviction is what a real swap would do — callers account for
    /// that via the eviction result, which reports dirty pages only; fresh
    /// pages become dirty on first write-back from the compute pool or
    /// memory-side write).
    ///
    /// Returns a victim that had to spill to storage, if any.
    pub fn register(&mut self, page: PageId) -> PoolFault {
        assert!(
            !self.pages.contains_key(&page),
            "page {page} already mapped"
        );
        let fault = self.make_room();
        self.pages.insert(page, Residency::InPool { dirty: false });
        self.lru.touch(page);
        self.resident_count += 1;
        fault
    }

    /// Make `page` pool-resident (faulting from storage if needed) and
    /// refresh its LRU position. Reports any storage traffic incurred.
    pub fn ensure_resident(&mut self, page: PageId) -> PoolFault {
        let mut fault = PoolFault::default();
        match self.pages.get(&page) {
            Some(Residency::InPool { .. }) => {
                // Pinned pages live outside the LRU list; do not re-add.
                if !self.pinned.contains_key(&page) {
                    self.lru.touch(page);
                }
            }
            Some(Residency::InStorage) => {
                fault = self.make_room();
                fault.storage_read = true;
                self.pages.insert(page, Residency::InPool { dirty: false });
                self.lru.touch(page);
                self.resident_count += 1;
            }
            None => panic!("page {page} not mapped in the memory pool"),
        }
        fault
    }

    /// Mark a resident page dirty (a write-back arrived from the compute
    /// pool, or pushdown code wrote it in place).
    pub fn mark_dirty(&mut self, page: PageId) {
        match self.pages.get_mut(&page) {
            Some(Residency::InPool { dirty }) => *dirty = true,
            other => panic!("mark_dirty on non-resident page {page}: {other:?}"),
        }
    }

    /// Pin a resident page (it is being cached by the compute pool); pinned
    /// pages are never chosen as spill victims. Pins nest. Pinned pages are
    /// held outside the LRU list so victim selection stays O(1).
    pub fn pin(&mut self, page: PageId) {
        assert!(self.is_resident(page), "pin of non-resident page {page}");
        let n = self.pinned.entry(page).or_insert(0);
        *n += 1;
        if *n == 1 {
            self.lru.remove(page);
        }
    }

    /// Release one pin; the page rejoins the LRU list as most-recently-used
    /// once fully unpinned.
    pub fn unpin(&mut self, page: PageId) {
        match self.pinned.get_mut(&page) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.pinned.remove(&page);
                self.lru.touch(page);
            }
            None => panic!("unpin of unpinned page {page}"),
        }
    }

    fn make_room(&mut self) -> PoolFault {
        let mut fault = PoolFault::default();
        if self.resident_count < self.capacity {
            return fault;
        }
        let victim = self
            .lru
            .pop_lru()
            .expect("memory pool exhausted: all resident pages are pinned");
        let dirty = matches!(
            self.pages.get(&victim),
            Some(Residency::InPool { dirty: true })
        );
        self.pages.insert(victim, Residency::InStorage);
        self.resident_count -= 1;
        fault.storage_writeback = dirty;
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_residency() {
        let mut pool = MemoryPool::new(2);
        assert!(!pool.is_mapped(PageId(1)));
        let f = pool.register(PageId(1));
        assert!(!f.any());
        assert!(pool.is_resident(PageId(1)));
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn overflow_spills_lru_to_storage() {
        let mut pool = MemoryPool::new(2);
        pool.register(PageId(1));
        pool.register(PageId(2));
        let f = pool.register(PageId(3));
        assert!(!f.storage_read);
        // Clean page spilled: no writeback traffic.
        assert!(!f.storage_writeback);
        assert!(!pool.is_resident(PageId(1)));
        assert!(pool.is_mapped(PageId(1)), "swapped, not forgotten");
        assert!(pool.is_resident(PageId(2)) && pool.is_resident(PageId(3)));
    }

    #[test]
    fn dirty_spill_reports_writeback() {
        let mut pool = MemoryPool::new(1);
        pool.register(PageId(1));
        pool.mark_dirty(PageId(1));
        let f = pool.register(PageId(2));
        assert!(f.storage_writeback);
    }

    #[test]
    fn ensure_resident_faults_from_storage() {
        let mut pool = MemoryPool::new(1);
        pool.register(PageId(1));
        pool.register(PageId(2)); // spills 1
        let f = pool.ensure_resident(PageId(1));
        assert!(f.storage_read);
        assert!(pool.is_resident(PageId(1)));
        assert!(!pool.is_resident(PageId(2)));
        // Re-ensuring a resident page is free.
        assert!(!pool.ensure_resident(PageId(1)).any());
    }

    #[test]
    fn pinned_pages_are_not_victims() {
        let mut pool = MemoryPool::new(2);
        pool.register(PageId(1));
        pool.register(PageId(2));
        pool.pin(PageId(1)); // LRU but pinned
        pool.register(PageId(3));
        assert!(pool.is_resident(PageId(1)), "pinned page survived");
        assert!(!pool.is_resident(PageId(2)), "next LRU spilled instead");
        pool.unpin(PageId(1));
        // Unpinning re-inserts as MRU, so page 3 (older) spills first.
        pool.register(PageId(4));
        assert!(!pool.is_resident(PageId(3)));
        assert!(pool.is_resident(PageId(1)));
        pool.register(PageId(5));
        assert!(!pool.is_resident(PageId(1)), "unpinned page now evictable");
    }

    #[test]
    fn pins_nest() {
        let mut pool = MemoryPool::new(1);
        pool.register(PageId(1));
        pool.pin(PageId(1));
        pool.pin(PageId(1));
        pool.unpin(PageId(1));
        // Still pinned once: registering a new page must panic (no victim).
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.register(PageId(2));
        }));
        assert!(r.is_err(), "all pages pinned should panic");
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn ensure_unmapped_panics() {
        let mut pool = MemoryPool::new(1);
        pool.ensure_resident(PageId(9));
    }
}
