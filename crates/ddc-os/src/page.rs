//! Virtual addresses, page identities, and page checksums.

use std::fmt;

use ddc_sim::{fnv1a, PAGE_SIZE};

/// A virtual address within a simulated process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// The identity of one 4 KB virtual page (`vaddr >> 12`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl VAddr {
    pub const NULL: VAddr = VAddr(0);

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE as u64)
    }

    /// Byte offset within the containing page.
    #[inline]
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// The address `bytes` later.
    #[inline]
    pub fn offset(self, bytes: u64) -> VAddr {
        VAddr(self.0 + bytes)
    }

    /// True if a `len`-byte object at this address fits in a single page.
    #[inline]
    pub fn fits_in_page(self, len: usize) -> bool {
        len == 0 || self.page() == self.offset(len as u64 - 1).page()
    }
}

impl PageId {
    /// The first address of this page.
    #[inline]
    pub fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_SIZE as u64)
    }

    /// The page `n` pages later.
    #[inline]
    pub fn offset(self, n: u64) -> PageId {
        PageId(self.0 + n)
    }
}

/// The integrity checksum of one 4 KB page image: FNV-1a-64 over all
/// `PAGE_SIZE` backing bytes, sealed at write/registration time and
/// re-verified whenever the page crosses a pool boundary (fabric delivery,
/// SSD read) or a scrub pass reaches it. The same FNV helpers back the
/// trace-stream digest, so the two can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PageChecksum(pub u64);

impl PageChecksum {
    /// Checksum a full page image. `bytes` must be exactly `PAGE_SIZE` long
    /// (the padded backing of the page, not just the requested length).
    #[inline]
    pub fn of(bytes: &[u8]) -> Self {
        // A short slice would seal a checksum that can never re-verify
        // against the full page image crossing a pool boundary, turning
        // every later integrity check into a false mismatch — guard it in
        // release builds too (the length compare is two words).
        assert_eq!(bytes.len(), PAGE_SIZE, "checksum over a partial page");
        PageChecksum(fnv1a(bytes))
    }

    /// Whether `bytes` still matches this sealed checksum.
    #[inline]
    pub fn matches(self, bytes: &[u8]) -> bool {
        fnv1a(bytes) == self.0
    }
}

impl fmt::Display for PageChecksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Iterate the pages spanned by `[addr, addr + len)`. Zero-length spans
/// touch no page.
pub fn pages_spanned(addr: VAddr, len: usize) -> impl Iterator<Item = PageId> {
    let (first, last) = if len == 0 {
        (1, 0) // empty range
    } else {
        (addr.page().0, addr.offset(len as u64 - 1).page().0)
    };
    (first..=last).map(PageId)
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_page_math() {
        let a = VAddr(PAGE_SIZE as u64 * 3 + 17);
        assert_eq!(a.page(), PageId(3));
        assert_eq!(a.page_offset(), 17);
        assert_eq!(PageId(3).base(), VAddr(PAGE_SIZE as u64 * 3));
        assert_eq!(a.offset(5).0, a.0 + 5);
    }

    #[test]
    fn fits_in_page_boundaries() {
        let base = PageId(2).base();
        assert!(base.fits_in_page(PAGE_SIZE));
        assert!(!base.fits_in_page(PAGE_SIZE + 1));
        assert!(base.offset(PAGE_SIZE as u64 - 8).fits_in_page(8));
        assert!(!base.offset(PAGE_SIZE as u64 - 8).fits_in_page(9));
        assert!(base.fits_in_page(0));
    }

    #[test]
    fn page_checksum_seals_and_detects() {
        let mut img = vec![0u8; PAGE_SIZE];
        let sum = PageChecksum::of(&img);
        assert!(sum.matches(&img));
        img[17] ^= 0x40;
        assert!(!sum.matches(&img), "one flipped bit breaks the seal");
        img[17] ^= 0x40;
        assert!(sum.matches(&img), "XOR-ing the mask back restores it");
    }

    #[test]
    fn pages_spanned_covers_partial_pages() {
        let a = VAddr(PAGE_SIZE as u64 - 1);
        let pages: Vec<_> = pages_spanned(a, 2).collect();
        assert_eq!(pages, vec![PageId(0), PageId(1)]);
        assert_eq!(pages_spanned(a, 0).count(), 0);
        assert_eq!(pages_spanned(VAddr(0), PAGE_SIZE).count(), 1);
        assert_eq!(pages_spanned(VAddr(0), PAGE_SIZE + 1).count(), 2);
    }
}
