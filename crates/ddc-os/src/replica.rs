//! Memory-pool replication: a backup pool fed by an epoch-stamped journal.
//!
//! A [`ReplicatedPool`] pairs the primary memory pool with a backup pool of
//! the same capacity. Every page-table mutation (a fresh allocation) and
//! every dirty-page write-back on the primary appends a [`ReplOp`] to a
//! journal; journal batches ship to the backup over the fabric as
//! [`MsgClass::Replication`] traffic — so replication is *costed*, never
//! free — and the backup acknowledges each shipment, truncating the
//! journal.
//!
//! Crash consistency is the invariant the journal buys: at any instant the
//! backup's image equals the primary's image *as of the last acknowledged
//! journal entry*. On promotion ([`ReplicatedPool::promote`]) every page
//! named by a still-pending entry is treated as lost — its backup copy (if
//! any) is never silently trusted; the failover path re-fetches it from the
//! storage pool, which holds the authoritative swap copy.
//!
//! [`ddc_sim::ReplicationMode`] selects the shipping discipline:
//! `Synchronous` flushes after every append (nothing is ever lost, one
//! round trip per mutation), `LogShipped { batch_pages }` accumulates until
//! that many page images are pending (cheaper on the wire, a bounded lost
//! window).

use ddc_sim::{Clock, Fabric, Lane, MsgClass, ReplicationMode, Ssd, TraceEvent, Tracer, PAGE_SIZE};

use crate::page::PageId;
use crate::pool::MemoryPool;

/// Wire size of one `RegisterRange` journal entry (header + range).
pub const REGISTER_ENTRY_BYTES: usize = 24;
/// Wire header of one `PageWrite` journal entry (the page image follows).
pub const PAGE_WRITE_HEADER_BYTES: usize = 16;
/// Wire size of the backup's acknowledgement message.
pub const REPLICA_ACK_BYTES: usize = 16;
/// Page images per re-silvering catch-up message: bulk copy, not journal
/// replay, so a rejoining standby costs one wire message per chunk.
pub const RESILVER_CHUNK_PAGES: usize = 64;

/// One journal entry: a primary-pool mutation to be replayed on the backup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplOp {
    /// `count` freshly allocated pages starting at `first` were registered.
    RegisterRange { first: PageId, count: u64 },
    /// The primary's copy of the page became newer than the storage copy
    /// (a compute write-back or a memory-side write).
    PageWrite(PageId),
}

impl ReplOp {
    fn wire_bytes(&self) -> usize {
        match self {
            ReplOp::RegisterRange { .. } => REGISTER_ENTRY_BYTES,
            ReplOp::PageWrite(_) => PAGE_WRITE_HEADER_BYTES + PAGE_SIZE,
        }
    }
}

/// Monotonic counters describing replication activity, reset by
/// `begin_timing` so they cover exactly the timed window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationCounters {
    /// Journal entries appended on the primary.
    pub journal_appends: u64,
    /// Shipment messages sent to the backup (each covers ≥ 1 entry).
    pub ship_messages: u64,
    /// Page images shipped inside those messages.
    pub pages_shipped: u64,
    /// Acknowledgements received (== journal truncations).
    pub acks: u64,
    /// Storage reads the backup performed replaying the journal.
    pub backup_storage_reads: u64,
    /// Storage write-backs the backup performed making room.
    pub backup_storage_writes: u64,
}

/// What a completed failover did, surfaced through `Dos::failover_report`
/// and the `failover.*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// Epoch of the pool that died.
    pub old_epoch: u64,
    /// Epoch of the promoted pool (old + 1).
    pub new_epoch: u64,
    /// Pages named by un-acked journal entries at the time of death.
    pub lost_pages: u64,
    /// Lost pages re-fetched from storage (== `lost_pages`; the backup's
    /// copy of an un-acked page is never trusted).
    pub refetched_pages: u64,
    /// Compute-cache pages dropped because their epoch predates the
    /// promotion and their latest write-back was lost.
    pub cache_invalidations: u64,
}

/// The primary pool's replication companion: backup pool + journal.
#[derive(Debug, Clone)]
pub struct ReplicatedPool {
    mode: ReplicationMode,
    backup: MemoryPool,
    /// Sequence number the next journal entry will get (1-based).
    next_seq: u64,
    /// Highest sequence number the backup has acknowledged.
    acked_seq: u64,
    /// Un-acked journal tail, in append order.
    pending: Vec<(u64, ReplOp)>,
    /// Page images among `pending` (the log-shipped batch trigger).
    pending_page_writes: usize,
    counters: ReplicationCounters,
}

impl ReplicatedPool {
    /// A backup pool of `capacity_pages`, matching the primary.
    pub fn new(capacity_pages: usize, mode: ReplicationMode) -> Self {
        assert!(
            mode != ReplicationMode::Off,
            "a replicated pool needs a shipping mode"
        );
        if let ReplicationMode::LogShipped { batch_pages } = mode {
            assert!(batch_pages > 0, "log shipping needs a positive batch");
        }
        ReplicatedPool {
            mode,
            backup: MemoryPool::new(capacity_pages),
            next_seq: 1,
            acked_seq: 0,
            pending: Vec::new(),
            pending_page_writes: 0,
            counters: ReplicationCounters::default(),
        }
    }

    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    pub fn counters(&self) -> ReplicationCounters {
        self.counters
    }

    /// Journal entries not yet acknowledged by the backup.
    pub fn pending_entries(&self) -> usize {
        self.pending.len()
    }

    /// Highest journal sequence number the backup has acknowledged.
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// Drop the un-acked journal tail. It lived in the primary's memory
    /// and died with it: a restarted primary calls this before
    /// re-silvering the pages the dropped tail named, so the backup's
    /// acked image tracks the rebuilt primary instead of trusting entries
    /// that were never shipped. Returns the number of entries dropped.
    pub fn drop_pending(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        self.pending_page_writes = 0;
        n
    }

    /// Zero the activity counters (journal state is untouched). Called by
    /// `begin_timing` so metrics cover exactly the timed window.
    pub fn reset_counters(&mut self) {
        self.counters = ReplicationCounters::default();
    }

    /// Append one mutation to the journal and ship per the mode.
    pub fn record(
        &mut self,
        op: ReplOp,
        fabric: &Fabric,
        ssd: &Ssd,
        clock: &Clock,
        tracer: &Tracer,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counters.journal_appends += 1;
        if matches!(op, ReplOp::PageWrite(_)) {
            self.pending_page_writes += 1;
        }
        self.pending.push((seq, op));
        let due = match self.mode {
            ReplicationMode::Off => unreachable!("checked at construction"),
            ReplicationMode::Synchronous => true,
            ReplicationMode::LogShipped { batch_pages } => self.pending_page_writes >= batch_pages,
        };
        if due {
            self.flush(fabric, ssd, clock, tracer);
        }
    }

    /// Ship every pending journal entry to the backup, replay it there, and
    /// take the acknowledgement (which truncates the journal). A no-op when
    /// the journal is already fully acknowledged.
    pub fn flush(&mut self, fabric: &Fabric, ssd: &Ssd, clock: &Clock, tracer: &Tracer) {
        if self.pending.is_empty() {
            return;
        }
        let last_seq = self.pending.last().expect("non-empty").0;
        let pages = self.pending_page_writes as u64;
        let bytes: usize = self.pending.iter().map(|(_, op)| op.wire_bytes()).sum();
        tracer.emit(
            Lane::Memory,
            TraceEvent::ReplicaShip {
                seq: last_seq,
                pages,
            },
        );
        let d = fabric.send(MsgClass::Replication, bytes);
        clock.advance(d);
        self.counters.ship_messages += 1;
        self.counters.pages_shipped += pages;
        let ops: Vec<ReplOp> = self.pending.iter().map(|&(_, op)| op).collect();
        for op in ops {
            self.apply(op, ssd, clock);
        }
        // The backup's acknowledgement is a small fabric message back; its
        // arrival truncates the journal up to `last_seq`.
        let d = fabric.send(MsgClass::Replication, REPLICA_ACK_BYTES);
        clock.advance(d);
        self.counters.acks += 1;
        self.acked_seq = last_seq;
        self.pending.clear();
        self.pending_page_writes = 0;
        tracer.emit(Lane::Memory, TraceEvent::ReplicaAck { seq: last_seq });
    }

    /// Replay one journal entry on the backup pool, charging any storage
    /// traffic it causes (backup spills and refaults hit the same storage
    /// pool as the primary's).
    fn apply(&mut self, op: ReplOp, ssd: &Ssd, clock: &Clock) {
        match op {
            ReplOp::RegisterRange { first, count } => {
                for i in 0..count {
                    let pid = first.offset(i);
                    if self.backup.is_mapped(pid) {
                        continue; // replayed range (idempotent)
                    }
                    let fault = self.backup.register(pid);
                    if fault.storage_writeback {
                        clock.advance(ssd.write_page());
                        self.counters.backup_storage_writes += 1;
                    }
                }
            }
            ReplOp::PageWrite(pid) => {
                let fault = self.backup.ensure_resident(pid);
                if fault.storage_writeback {
                    clock.advance(ssd.write_page());
                    self.counters.backup_storage_writes += 1;
                }
                if fault.storage_read {
                    clock.advance(ssd.read_page());
                    self.counters.backup_storage_reads += 1;
                }
                self.backup.mark_dirty(pid);
            }
        }
    }

    /// Whether the backup holds an *acknowledged* copy of `page` — one the
    /// crash-consistency invariant lets us trust. A page named by any
    /// still-pending journal entry has no trustworthy backup copy: the
    /// backup may hold an older image than the primary's.
    pub fn has_acked_copy(&self, page: PageId) -> bool {
        if !self.backup.is_mapped(page) {
            return false;
        }
        !self.pending.iter().any(|&(_, op)| match op {
            ReplOp::RegisterRange { first, count } => (first.0..first.0 + count).contains(&page.0),
            ReplOp::PageWrite(pid) => pid == page,
        })
    }

    /// Re-silver the backup from the primary's live image: bulk catch-up
    /// for a crashed pool rejoining as a standby. Each page in `pages`
    /// (the primary's owned set, sorted by the caller for determinism) is
    /// registered and made resident on the backup; images ship in
    /// [`RESILVER_CHUNK_PAGES`]-page chunks as costed
    /// [`MsgClass::Replication`] traffic — one wire message per chunk plus
    /// one acknowledgement, rather than one round trip per journal op.
    /// Returns the number of pages shipped.
    pub fn resilver_from(&mut self, pages: &[PageId], fabric: &Fabric, ssd: &Ssd, clock: &Clock) {
        for chunk in pages.chunks(RESILVER_CHUNK_PAGES) {
            let bytes = chunk.len() * (PAGE_WRITE_HEADER_BYTES + PAGE_SIZE);
            let d = fabric.send(MsgClass::Replication, bytes);
            clock.advance(d);
            self.counters.ship_messages += 1;
            for &pid in chunk {
                if !self.backup.is_mapped(pid) {
                    let fault = self.backup.register(pid);
                    if fault.storage_writeback {
                        clock.advance(ssd.write_page());
                        self.counters.backup_storage_writes += 1;
                    }
                }
                let fault = self.backup.ensure_resident(pid);
                if fault.storage_writeback {
                    clock.advance(ssd.write_page());
                    self.counters.backup_storage_writes += 1;
                }
                if fault.storage_read {
                    clock.advance(ssd.read_page());
                    self.counters.backup_storage_reads += 1;
                }
                self.backup.mark_dirty(pid);
                self.counters.pages_shipped += 1;
            }
            let d = fabric.send(MsgClass::Replication, REPLICA_ACK_BYTES);
            clock.advance(d);
            self.counters.acks += 1;
        }
    }

    /// Consume the replica and hand over the backup pool for promotion.
    /// Returns `(backup, lost, counters)`: `lost` is the sorted, deduped
    /// set of pages named by un-acked journal entries — the failover path
    /// must re-fetch each from storage rather than trust the backup's
    /// stale copy.
    pub fn promote(self) -> (MemoryPool, Vec<PageId>, ReplicationCounters) {
        let mut lost: Vec<PageId> = Vec::new();
        for &(_, op) in &self.pending {
            match op {
                ReplOp::RegisterRange { first, count } => {
                    for i in 0..count {
                        lost.push(first.offset(i));
                    }
                }
                ReplOp::PageWrite(pid) => lost.push(pid),
            }
        }
        lost.sort_unstable();
        lost.dedup();
        (self.backup, lost, self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::{NetConfig, SsdConfig};

    fn rig() -> (Clock, Tracer, Fabric, Ssd) {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.enable();
        let fabric = Fabric::with_tracer(NetConfig::default(), tracer.clone());
        let ssd = Ssd::with_tracer(SsdConfig::default(), tracer.clone());
        (clock, tracer, fabric, ssd)
    }

    #[test]
    fn synchronous_mode_ships_every_append_and_loses_nothing() {
        let (clock, tracer, fabric, ssd) = rig();
        let mut rep = ReplicatedPool::new(8, ReplicationMode::Synchronous);
        rep.record(
            ReplOp::RegisterRange {
                first: PageId(0),
                count: 4,
            },
            &fabric,
            &ssd,
            &clock,
            &tracer,
        );
        rep.record(ReplOp::PageWrite(PageId(2)), &fabric, &ssd, &clock, &tracer);
        assert_eq!(rep.pending_entries(), 0, "sync mode never buffers");
        assert_eq!(rep.acked_seq(), 2);
        let c = rep.counters();
        assert_eq!(c.journal_appends, 2);
        assert_eq!(c.ship_messages, 2);
        assert_eq!(c.pages_shipped, 1);
        assert!(fabric.ledger().replication.bytes > PAGE_SIZE as u64);
        let (backup, lost, _) = rep.promote();
        assert!(lost.is_empty(), "everything was acked");
        assert!(backup.is_resident(PageId(2)));
    }

    #[test]
    fn log_shipping_batches_and_the_unacked_tail_is_lost() {
        let (clock, tracer, fabric, ssd) = rig();
        let mut rep = ReplicatedPool::new(8, ReplicationMode::LogShipped { batch_pages: 2 });
        rep.record(
            ReplOp::RegisterRange {
                first: PageId(0),
                count: 4,
            },
            &fabric,
            &ssd,
            &clock,
            &tracer,
        );
        rep.record(ReplOp::PageWrite(PageId(0)), &fabric, &ssd, &clock, &tracer);
        assert_eq!(rep.pending_entries(), 2, "below the batch threshold");
        assert_eq!(fabric.ledger().replication.messages, 0);
        rep.record(ReplOp::PageWrite(PageId(1)), &fabric, &ssd, &clock, &tracer);
        assert_eq!(rep.pending_entries(), 0, "batch threshold hit, shipped");
        assert_eq!(rep.counters().ship_messages, 1);
        rep.record(ReplOp::PageWrite(PageId(3)), &fabric, &ssd, &clock, &tracer);
        let (_, lost, _) = rep.promote();
        assert_eq!(lost, vec![PageId(3)], "only the un-acked tail is lost");
    }

    #[test]
    fn acked_copies_are_trusted_pending_ones_are_not() {
        let (clock, tracer, fabric, ssd) = rig();
        let mut rep = ReplicatedPool::new(8, ReplicationMode::LogShipped { batch_pages: 64 });
        rep.record(
            ReplOp::RegisterRange {
                first: PageId(0),
                count: 2,
            },
            &fabric,
            &ssd,
            &clock,
            &tracer,
        );
        assert!(
            !rep.has_acked_copy(PageId(0)),
            "registration still in the un-acked tail"
        );
        rep.flush(&fabric, &ssd, &clock, &tracer);
        assert!(rep.has_acked_copy(PageId(0)));
        rep.record(ReplOp::PageWrite(PageId(1)), &fabric, &ssd, &clock, &tracer);
        assert!(rep.has_acked_copy(PageId(0)), "untouched page stays acked");
        assert!(
            !rep.has_acked_copy(PageId(1)),
            "a pending write poisons the backup copy"
        );
        rep.flush(&fabric, &ssd, &clock, &tracer);
        assert!(rep.has_acked_copy(PageId(1)));
        assert!(!rep.has_acked_copy(PageId(5)), "never-registered page");
    }

    #[test]
    fn resilvering_bulk_copies_in_chunks_and_is_costed() {
        let (clock, _tracer, fabric, ssd) = rig();
        let mut rep = ReplicatedPool::new(256, ReplicationMode::Synchronous);
        let pages: Vec<PageId> = (0..100).map(PageId).collect();
        let t0 = clock.now();
        rep.resilver_from(&pages, &fabric, &ssd, &clock);
        assert!(clock.now() > t0, "catch-up traffic is costed");
        let c = rep.counters();
        assert_eq!(c.pages_shipped, 100);
        assert_eq!(
            c.ship_messages,
            100_u64.div_ceil(RESILVER_CHUNK_PAGES as u64),
            "one wire message per chunk, not per page"
        );
        assert_eq!(
            fabric.ledger().replication.messages,
            c.ship_messages + c.acks
        );
        for pid in pages {
            assert!(rep.has_acked_copy(pid), "resilvered copy is trusted");
        }
        let (_, lost, _) = rep.promote();
        assert!(lost.is_empty(), "no journal tail after a bulk copy");
    }

    #[test]
    fn explicit_flush_drains_the_journal() {
        let (clock, tracer, fabric, ssd) = rig();
        let mut rep = ReplicatedPool::new(8, ReplicationMode::LogShipped { batch_pages: 64 });
        rep.record(
            ReplOp::RegisterRange {
                first: PageId(7),
                count: 1,
            },
            &fabric,
            &ssd,
            &clock,
            &tracer,
        );
        rep.flush(&fabric, &ssd, &clock, &tracer);
        assert_eq!(rep.pending_entries(), 0);
        assert_eq!(rep.acked_seq(), 1);
        rep.flush(&fabric, &ssd, &clock, &tracer);
        assert_eq!(rep.counters().ship_messages, 1, "empty flush is a no-op");
    }
}
