//! Paging statistics for one simulated run.

/// Counters accumulated by the kernel's access paths. These regenerate the
/// paper's per-phase "remote memory accesses" annotations (Fig 10) and the
/// memory-intensity metric of §7.4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Accesses satisfied by the compute-local cache (or local DRAM in the
    /// monolithic topology).
    pub cache_hits: u64,
    /// Accesses that required a page fault.
    pub cache_misses: u64,
    /// Pages fetched from the memory pool over the fabric.
    pub remote_page_in: u64,
    /// Dirty pages written back to the memory pool over the fabric.
    pub remote_page_out: u64,
    /// Pages read from the storage pool (or swap device).
    pub storage_page_in: u64,
    /// Pages written to the storage pool (or swap device).
    pub storage_page_out: u64,
    /// Cache evictions (clean or dirty).
    pub evictions: u64,
    /// Accesses performed memory-side by pushdown code.
    pub mem_side_accesses: u64,
}

impl PagingStats {
    /// Total page faults taken by the compute side.
    pub fn faults(&self) -> u64 {
        self.cache_misses
    }

    /// Hit rate in [0, 1]; `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Total remote (fabric) page movements, the paper's "remote memory
    /// accesses".
    pub fn remote_accesses(&self) -> u64 {
        self.remote_page_in + self.remote_page_out
    }

    /// Field-wise difference `self - earlier` for phase attribution.
    pub fn delta_since(&self, earlier: &PagingStats) -> PagingStats {
        PagingStats {
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            remote_page_in: self.remote_page_in - earlier.remote_page_in,
            remote_page_out: self.remote_page_out - earlier.remote_page_out,
            storage_page_in: self.storage_page_in - earlier.storage_page_in,
            storage_page_out: self.storage_page_out - earlier.storage_page_out,
            evictions: self.evictions - earlier.evictions,
            mem_side_accesses: self.mem_side_accesses - earlier.mem_side_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_totals() {
        let mut s = PagingStats::default();
        assert!(s.hit_rate().is_none());
        s.cache_hits = 3;
        s.cache_misses = 1;
        s.remote_page_in = 1;
        s.remote_page_out = 2;
        assert_eq!(s.hit_rate(), Some(0.75));
        assert_eq!(s.faults(), 1);
        assert_eq!(s.remote_accesses(), 3);
    }

    #[test]
    fn delta_isolates_a_phase() {
        let mut s = PagingStats {
            cache_hits: 10,
            ..Default::default()
        };
        let snapshot = s;
        s.cache_hits += 5;
        s.remote_page_in += 2;
        let d = s.delta_since(&snapshot);
        assert_eq!(d.cache_hits, 5);
        assert_eq!(d.remote_page_in, 2);
        assert_eq!(d.cache_misses, 0);
    }
}
