//! Crash-restart recovery: an epoch-stamped, checksummed journal that a
//! restarted memory pool replays over its SSD-authoritative base.
//!
//! A [`RecoveryJournal`] is the pool-local sibling of the replication
//! journal in [`crate::replica`]: where that journal ships mutations to a
//! *backup pool* over the fabric, this one lands them on the shard's own
//! durable media so a crashed pool can rebuild itself. Every entry is
//! stamped with the epoch the pool held when it appended (a zombie's
//! entries are recognizably stale) and sealed with an FNV-1a-64 checksum
//! over its header and payload words — the same FNV the trace digest and
//! the page-integrity plane fold through, so the three can never drift.
//!
//! Durability is batched: entries accumulate in an un-synced tail and a
//! sync point every [`JOURNAL_SYNC_BATCH`] entries makes the prefix
//! atomic. A crash leaves the tail in whatever state the media caught it:
//! normally intact (the appends landed, the sync just never stamped
//! them), but a torn write ([`RecoveryJournal::tear_tail`], driven by
//! `FaultSpec::TornJournalWrite`) corrupts the first un-synced entry.
//! Replay ([`RecoveryJournal::replayable`]) verifies every checksum in
//! sequence order and *discards* the suffix from the first mismatch on —
//! a typed, bounded loss (at most the un-synced tail), never a panic and
//! never a silently-applied partial write.
//!
//! Replay is idempotent by construction: entries re-register pages that
//! registration skips when mapped and re-fetch images that residency
//! skips when resident, so replaying twice equals replaying once.

use crate::page::PageId;
use crate::replica::ReplOp;
use ddc_sim::{FNV_OFFSET, FNV_PRIME};

/// Journal entries per durable sync point. The un-synced tail — the most
/// a torn write can destroy — is always shorter than this.
pub const JOURNAL_SYNC_BATCH: usize = 4;

/// Fold one word into an FNV-1a-64 accumulator, byte by byte.
fn fnv_word(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable payload words of one journal op (kind tag + operands).
fn op_words(op: ReplOp) -> [u64; 3] {
    match op {
        ReplOp::RegisterRange { first, count } => [0, first.0, count],
        ReplOp::PageWrite(pid) => [1, pid.0, 0],
    }
}

/// The checksum sealed over one journal entry: FNV-1a-64 across the
/// sequence number, the epoch, and the op's payload words.
pub fn entry_checksum(seq: u64, epoch: u64, op: ReplOp) -> u64 {
    let mut h = fnv_word(FNV_OFFSET, seq);
    h = fnv_word(h, epoch);
    for w in op_words(op) {
        h = fnv_word(h, w);
    }
    h
}

/// One epoch-stamped, checksummed journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// 1-based append order.
    pub seq: u64,
    /// Epoch the pool held when it appended this entry.
    pub epoch: u64,
    pub op: ReplOp,
    /// Seal over `(seq, epoch, op)`; a torn write breaks it.
    pub checksum: u64,
}

impl JournalEntry {
    /// Whether the sealed checksum still matches the entry's words.
    pub fn verifies(&self) -> bool {
        self.checksum == entry_checksum(self.seq, self.epoch, self.op)
    }
}

/// What one journal replay did (or would do).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySet {
    /// Entries that verified and apply, in sequence order.
    pub applied_entries: u64,
    /// Distinct pages named by applied `PageWrite` entries.
    pub applied_pages: u64,
    /// Entries discarded from the first checksum mismatch on.
    pub discarded_entries: u64,
    /// Distinct pages named by discarded `PageWrite` entries.
    pub discarded_pages: u64,
}

/// What one completed pool restart did, returned by `Dos::restart_pool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartReport {
    /// The restarted shard.
    pub pool: usize,
    /// Epoch the shard's primary holds after the restart — strictly
    /// greater than every epoch any earlier life of the pool held.
    pub epoch: u64,
    /// What journal replay applied and discarded (all-zero on a standby
    /// rejoin: the promoted primary's state is live, not replayed).
    pub replay: ReplaySet,
    /// Catch-up pages shipped to the pool when it rejoined as a standby.
    pub resilvered_pages: u64,
    /// True when the pool woke as a zombie (its replica was promoted
    /// while it was down) and rejoined as a standby instead of resuming
    /// as primary.
    pub rejoined_as_standby: bool,
    /// The stale epoch the zombie's rejected resume-write carried, when
    /// fencing fired.
    pub fenced_stale_epoch: Option<u64>,
}

/// Activity counters for the whole recovery plane, surfaced as the
/// `recovery.*` metrics. Owned by the kernel (crashes and restarts span
/// individual journals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Pool crashes (volatile state wiped).
    pub crashes: u64,
    /// Pool restarts completed (replay or standby rejoin).
    pub restarts: u64,
    /// Journal entries applied by replays.
    pub replayed_entries: u64,
    /// Torn tails detected and discarded at replay.
    pub torn_tails: u64,
    /// Pages shipped as re-silvering catch-up traffic to rejoining
    /// standbys.
    pub resilvered_pages: u64,
    /// Stale-epoch writes/acks rejected by fencing.
    pub fenced_writes: u64,
}

/// The durable recovery journal of one memory-pool shard.
#[derive(Debug, Clone)]
pub struct RecoveryJournal {
    epoch: u64,
    next_seq: u64,
    entries: Vec<JournalEntry>,
    /// `entries[..synced]` are durably synced (atomic under any crash).
    synced: usize,
    sync_batch: usize,
}

impl RecoveryJournal {
    /// An empty journal stamping entries with `epoch`.
    pub fn new(epoch: u64) -> Self {
        RecoveryJournal {
            epoch,
            next_seq: 1,
            entries: Vec::new(),
            synced: 0,
            sync_batch: JOURNAL_SYNC_BATCH,
        }
    }

    /// The epoch new entries are stamped with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries past the last durable sync point — the most a torn write
    /// can destroy.
    pub fn unsynced_len(&self) -> usize {
        self.entries.len() - self.synced
    }

    /// Append one sealed entry. Returns `true` when the append crossed a
    /// sync point (the caller charges the durable-media write for the
    /// batch; the journal itself is costless bookkeeping).
    pub fn append(&mut self, op: ReplOp) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(JournalEntry {
            seq,
            epoch: self.epoch,
            op,
            checksum: entry_checksum(seq, self.epoch, op),
        });
        if self.unsynced_len() >= self.sync_batch {
            self.synced = self.entries.len();
            true
        } else {
            false
        }
    }

    /// Append one entry that is durable immediately (base snapshots taken
    /// at arming time — they describe state already on storage).
    pub fn append_synced(&mut self, op: ReplOp) {
        self.append(op);
        self.synced = self.entries.len();
    }

    /// Corrupt the first un-synced entry, as a torn write would: its
    /// checksum no longer verifies, so replay discards it and everything
    /// after it. No-op when the tail is empty (nothing was in flight).
    pub fn tear_tail(&mut self) {
        if let Some(e) = self.entries.get_mut(self.synced) {
            e.checksum ^= 1;
        }
    }

    /// Verify the journal in sequence order and split it at the first
    /// checksum mismatch: everything before applies, everything from the
    /// mismatch on is discarded. Returns the ops to apply plus the
    /// [`ReplaySet`] accounting of both halves.
    pub fn replayable(&self) -> (Vec<ReplOp>, ReplaySet) {
        let mut set = ReplaySet::default();
        let cut = self.torn_cut();
        let ops: Vec<ReplOp> = self.entries[..cut].iter().map(|e| e.op).collect();
        set.applied_entries = cut as u64;
        set.applied_pages = distinct_write_pages(&self.entries[..cut]);
        set.discarded_entries = (self.entries.len() - cut) as u64;
        set.discarded_pages = distinct_write_pages(&self.entries[cut..]);
        (ops, set)
    }

    /// Ops in the torn suffix that replay will discard (empty while the
    /// journal verifies end to end).
    pub fn discarded_ops(&self) -> Vec<ReplOp> {
        self.entries[self.torn_cut()..]
            .iter()
            .map(|e| e.op)
            .collect()
    }

    /// Index of the first entry whose checksum fails (== `len()` when the
    /// journal is intact).
    fn torn_cut(&self) -> usize {
        self.entries
            .iter()
            .position(|e| !e.verifies())
            .unwrap_or(self.entries.len())
    }

    /// Reset for a new life of the pool: entries cleared, epoch bumped to
    /// `epoch`, sequence numbering continuing (never reused, so an old
    /// life's entry can never be mistaken for a new one's).
    pub fn restart(&mut self, epoch: u64) {
        self.entries.clear();
        self.synced = 0;
        self.epoch = epoch;
    }
}

/// Count distinct pages named by `PageWrite` entries in `entries`.
fn distinct_write_pages(entries: &[JournalEntry]) -> u64 {
    let mut pages: Vec<PageId> = entries
        .iter()
        .filter_map(|e| match e.op {
            ReplOp::PageWrite(pid) => Some(pid),
            ReplOp::RegisterRange { .. } => None,
        })
        .collect();
    pages.sort_unstable();
    pages.dedup();
    pages.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(pid: u64) -> ReplOp {
        ReplOp::PageWrite(PageId(pid))
    }

    #[test]
    fn appends_sync_in_batches_and_seal_verifying_checksums() {
        let mut j = RecoveryJournal::new(0);
        let mut syncs = 0;
        for i in 0..10 {
            if j.append(write(i)) {
                syncs += 1;
            }
        }
        assert_eq!(syncs, 10 / JOURNAL_SYNC_BATCH);
        assert_eq!(j.unsynced_len(), 10 % JOURNAL_SYNC_BATCH);
        let (ops, set) = j.replayable();
        assert_eq!(ops.len(), 10, "an intact tail replays in full");
        assert_eq!(set.applied_entries, 10);
        assert_eq!(set.applied_pages, 10);
        assert_eq!(set.discarded_entries, 0);
    }

    #[test]
    fn torn_tail_is_detected_and_bounded_by_the_sync_batch() {
        let mut j = RecoveryJournal::new(3);
        for i in 0..6 {
            j.append(write(i));
        }
        assert_eq!(j.unsynced_len(), 2);
        j.tear_tail();
        let (ops, set) = j.replayable();
        assert_eq!(set.applied_entries, 4, "the synced prefix survives");
        assert_eq!(set.discarded_entries, 2, "the torn tail is discarded");
        assert!(
            set.discarded_entries <= JOURNAL_SYNC_BATCH as u64,
            "loss is bounded by the sync batch"
        );
        assert_eq!(ops.len(), 4);
        assert_eq!(set.discarded_pages, 2);
    }

    #[test]
    fn tearing_a_fully_synced_journal_loses_nothing() {
        let mut j = RecoveryJournal::new(0);
        for i in 0..JOURNAL_SYNC_BATCH as u64 {
            j.append(write(i));
        }
        assert_eq!(j.unsynced_len(), 0);
        j.tear_tail();
        let (_, set) = j.replayable();
        assert_eq!(set.discarded_entries, 0, "nothing un-synced to tear");
    }

    #[test]
    fn checksums_cover_seq_epoch_and_op() {
        let a = entry_checksum(1, 0, write(7));
        assert_ne!(a, entry_checksum(2, 0, write(7)), "seq is sealed");
        assert_ne!(a, entry_checksum(1, 1, write(7)), "epoch is sealed");
        assert_ne!(a, entry_checksum(1, 0, write(8)), "payload is sealed");
        assert_ne!(
            a,
            entry_checksum(
                1,
                0,
                ReplOp::RegisterRange {
                    first: PageId(7),
                    count: 0
                }
            ),
            "op kind is sealed"
        );
    }

    #[test]
    fn restart_clears_entries_but_never_reuses_sequence_numbers() {
        let mut j = RecoveryJournal::new(0);
        j.append(write(1));
        j.append(write(2));
        j.restart(1);
        assert!(j.is_empty());
        assert_eq!(j.epoch(), 1);
        j.append(write(3));
        let (_, set) = j.replayable();
        assert_eq!(set.applied_entries, 1);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn replay_set_counts_distinct_pages() {
        let mut j = RecoveryJournal::new(0);
        j.append(write(5));
        j.append(write(5));
        j.append(ReplOp::RegisterRange {
            first: PageId(0),
            count: 4,
        });
        let (_, set) = j.replayable();
        assert_eq!(set.applied_entries, 3);
        assert_eq!(set.applied_pages, 1, "repeat writes dedup");
    }
}
