//! Deficit-round-robin fair queueing for the memory-side workqueue.
//!
//! When many tenants contend for the pool's scarce TELEPORT instances, a
//! plain FIFO workqueue lets one chatty tenant monopolize the rack: its
//! burst sits at the head and everyone else queues behind it. [`DrrQueue`]
//! replaces arrival order with *deficit round robin* (Shreedhar &
//! Varghese): each tenant owns a per-tenant FIFO and a quantum (its QoS
//! weight); a round-robin cursor visits non-empty tenants in index order,
//! tops the visited tenant's deficit up by its quantum, and serves sessions
//! while deficit remains (with unit session costs the quantum is spent
//! exactly, so this degenerates to weighted round robin — the deficit
//! machinery is kept for when session costs become non-uniform).
//!
//! Properties the serving plane relies on (property-tested in
//! `tests/serve_props.rs`):
//!
//! - **Starvation-free:** every quantum is ≥ 1 session, so a backlogged
//!   tenant is served at least once per round no matter how heavy the
//!   others are.
//! - **Weighted shares:** over any long busy period, tenant i completes
//!   sessions in proportion to `quantum_i`.
//! - **Deterministic:** tie-breaks are by tenant index; no hashing, no
//!   randomness. The same push/pop sequence always yields the same order.

use std::collections::VecDeque;

/// One tenant's lane inside the [`DrrQueue`].
#[derive(Debug, Clone)]
struct Lane<T> {
    queue: VecDeque<T>,
    quantum: u64,
    deficit: u64,
}

/// A deficit-round-robin queue over per-tenant FIFOs. Items cost one
/// deficit unit each (sessions, not bytes — the serving plane schedules
/// whole sessions).
#[derive(Debug, Clone)]
pub struct DrrQueue<T> {
    lanes: Vec<Lane<T>>,
    /// Next tenant index the round-robin cursor will consider.
    cursor: usize,
    /// Total queued items across all lanes.
    len: usize,
}

impl<T> DrrQueue<T> {
    /// A queue with one lane per entry of `quanta`; `quanta[t]` is tenant
    /// `t`'s per-round service share (must be ≥ 1 to rule out starvation).
    pub fn new(quanta: &[u64]) -> Self {
        assert!(!quanta.is_empty(), "need at least one tenant lane");
        assert!(
            quanta.iter().all(|&q| q >= 1),
            "zero quantum would starve a tenant"
        );
        DrrQueue {
            lanes: quanta
                .iter()
                .map(|&quantum| Lane {
                    queue: VecDeque::new(),
                    quantum,
                    deficit: 0,
                })
                .collect(),
            cursor: 0,
            len: 0,
        }
    }

    pub fn tenants(&self) -> usize {
        self.lanes.len()
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items in tenant `t`'s lane.
    pub fn lane_len(&self, t: usize) -> usize {
        self.lanes[t].queue.len()
    }

    /// Enqueue an item for tenant `t`.
    pub fn push(&mut self, t: usize, item: T) {
        self.lanes[t].queue.push_back(item);
        self.len += 1;
    }

    /// Dequeue the next item under DRR order; `None` when empty. Returns
    /// the owning tenant alongside the item.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let t = self.cursor;
            let lane = &mut self.lanes[t];
            if lane.queue.is_empty() {
                // An idle tenant keeps no deficit: DRR resets the counter
                // when the lane drains so past idleness earns no burst.
                lane.deficit = 0;
                self.cursor = (self.cursor + 1) % self.lanes.len();
                continue;
            }
            if lane.deficit == 0 {
                // First consideration this visit: charge the quantum.
                lane.deficit = lane.quantum;
            }
            let item = lane.queue.pop_front().expect("lane checked non-empty");
            lane.deficit -= 1;
            if lane.deficit == 0 || lane.queue.is_empty() {
                if lane.queue.is_empty() {
                    lane.deficit = 0;
                }
                self.cursor = (self.cursor + 1) % self.lanes.len();
            }
            self.len -= 1;
            return Some((t, item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut DrrQueue<u64>) -> Vec<usize> {
        let mut order = Vec::new();
        while let Some((t, _)) = q.pop() {
            order.push(t);
        }
        order
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut q = DrrQueue::new(&[1, 1]);
        for i in 0..3 {
            q.push(0, i);
            q.push(1, i);
        }
        assert_eq!(q.len(), 6);
        assert_eq!(drain(&mut q), vec![0, 1, 0, 1, 0, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn weights_buy_proportional_service() {
        // Tenant 0 weight 4, tenant 1 weight 1: each round serves 4 then 1.
        let mut q = DrrQueue::new(&[4, 1]);
        for i in 0..8 {
            q.push(0, i);
        }
        for i in 0..2 {
            q.push(1, i);
        }
        assert_eq!(drain(&mut q), vec![0, 0, 0, 0, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn heavy_tenant_cannot_starve_light_tenant() {
        let mut q = DrrQueue::new(&[1, 4]);
        for i in 0..100 {
            q.push(1, i);
        }
        q.push(0, 0);
        // Tenant 0's single session is served within one full round.
        let order = drain(&mut q);
        let pos = order.iter().position(|&t| t == 0).unwrap();
        assert!(pos <= 4, "tenant 0 waited {pos} pops — starved");
    }

    #[test]
    fn leftover_deficit_is_not_hoarded_across_idle_periods() {
        let mut q = DrrQueue::new(&[3, 1]);
        q.push(0, 0); // served; lane drains with deficit left — reset to 0
        q.push(1, 0);
        assert_eq!(drain(&mut q), vec![0, 1]);
        // Refill: tenant 0 starts from a fresh quantum, not 2 + 3.
        for i in 0..5 {
            q.push(0, i);
        }
        q.push(1, 9);
        assert_eq!(drain(&mut q), vec![0, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn pop_reports_owning_tenant_and_fifo_within_lane() {
        let mut q = DrrQueue::new(&[1, 1, 1]);
        q.push(2, 20);
        q.push(0, 10);
        q.push(2, 21);
        assert_eq!(q.lane_len(2), 2);
        assert_eq!(q.pop(), Some((0, 10)));
        assert_eq!(q.pop(), Some((2, 20)));
        assert_eq!(q.pop(), Some((2, 21)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "zero quantum")]
    fn zero_quantum_is_rejected() {
        let _ = DrrQueue::<u64>::new(&[1, 0]);
    }
}
