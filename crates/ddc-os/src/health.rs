//! Per-pool gray-failure detection: fail-slow scoring and quarantine.
//!
//! Fail-stop faults announce themselves — a missed heartbeat, a checksum
//! mismatch, an exception. A *gray* failure does not: the pool keeps
//! answering, just 10–100× slower, and nothing in the fail-stop plane ever
//! trips. This module is the detector the TELEPORT runtime feeds:
//!
//! - a **windowed latency estimator** per pool compares each completed
//!   window of service-time samples against a baseline learned from the
//!   first window (and EWMA-refreshed while healthy);
//! - a second estimator watches **heartbeat-RTT inflation** — a lame
//!   fabric link inflates control round trips long before it shows up in
//!   service times. RTT evidence is one-directional: it can escalate a
//!   pool toward quarantine but never clears suspicion on its own;
//! - verdicts drive a per-pool state machine
//!   `Healthy → Suspect → Quarantined → Probation → Healthy`. Quarantined
//!   shards are excluded from placement for new allocations
//!   (`Dos::place_allocation`) and probed by synthetic pushdowns; a streak
//!   of healthy probes reintegrates the pool.
//!
//! Every transition is emitted as [`TraceEvent::HealthTransition`] on the
//! shared stream (reintegration additionally as
//! [`TraceEvent::PoolReintegrated`]), so detection is as digest-checked as
//! the faults that trigger it. The monitor itself never touches the clock
//! and draws no randomness: observation is pure arithmetic over durations
//! the runtime already charged, which keeps fault-free runs bit-identical
//! whether or not the plane is armed.
//!
//! A deliberate asymmetry: the *last* available shard is never
//! quarantined, no matter how slow it gets. Quarantine is a placement
//! optimization; stranding an allocation with zero placeable pools would
//! turn a brownout into an outage. Mitigation for a degraded-but-only
//! shard is the hedging/deadline layer's job (`teleport::runtime`).

use ddc_sim::{Lane, PoolHealthState, SimDuration, SimTime, TraceEvent, Tracer};

/// Tuning knobs of the gray-failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Samples per evaluation window. Small windows react fast; the
    /// default trades a little noise immunity for detection latency.
    pub window: u32,
    /// A completed window whose mean is at least `degrade_factor` × the
    /// learned baseline votes "degraded" (and a probe at least that much
    /// over its healthy cost fails).
    pub degrade_factor: u32,
    /// Minimum virtual time between synthetic probes of a quarantined or
    /// probationary pool.
    pub probe_interval: SimDuration,
    /// Consecutive healthy probes required before a quarantined pool
    /// rejoins placement.
    pub reintegrate_probes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 4,
            degrade_factor: 2,
            probe_interval: SimDuration::from_micros(100),
            reintegrate_probes: 3,
        }
    }
}

/// Windowed mean-latency estimator with a learned baseline. The first
/// completed window *is* the baseline; later clean windows EWMA it so
/// slow drift is absorbed while step changes still trip the factor test.
#[derive(Debug, Clone, Copy, Default)]
struct WindowedEstimator {
    baseline: Option<u64>,
    acc: u64,
    n: u32,
}

impl WindowedEstimator {
    /// Push one sample; `Some(degraded)` when this sample completes a
    /// window, `None` while the window is still filling.
    fn push(&mut self, sample_ns: u64, window: u32, degrade_factor: u32) -> Option<bool> {
        self.acc += sample_ns;
        self.n += 1;
        if self.n < window.max(1) {
            return None;
        }
        let mean = self.acc / self.n as u64;
        self.acc = 0;
        self.n = 0;
        match self.baseline {
            None => {
                self.baseline = Some(mean.max(1));
                Some(false)
            }
            Some(b) => {
                let degraded = mean >= b.saturating_mul(degrade_factor as u64);
                if !degraded {
                    self.baseline = Some(((b * 7 + mean) / 8).max(1));
                }
                Some(degraded)
            }
        }
    }
}

/// One pool's detector state.
#[derive(Debug, Clone, Copy)]
struct PoolHealth {
    state: PoolHealthState,
    service: WindowedEstimator,
    rtt: WindowedEstimator,
    ok_probes: u32,
    last_probe: Option<SimTime>,
}

impl PoolHealth {
    fn new() -> Self {
        PoolHealth {
            state: PoolHealthState::Healthy,
            service: WindowedEstimator::default(),
            rtt: WindowedEstimator::default(),
            ok_probes: 0,
            last_probe: None,
        }
    }
}

/// The per-rack gray-failure monitor: one [`PoolHealthState`] machine per
/// memory-pool shard, fed by the runtime's service-time and heartbeat-RTT
/// observations, probed while quarantined.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    tracer: Tracer,
    pools: Vec<PoolHealth>,
    transitions: u64,
    quarantines: u64,
    reintegrations: u64,
    probes: u64,
}

impl HealthMonitor {
    pub fn new(pools: usize, cfg: HealthConfig, tracer: Tracer) -> Self {
        HealthMonitor {
            cfg,
            tracer,
            pools: (0..pools).map(|_| PoolHealth::new()).collect(),
            transitions: 0,
            quarantines: 0,
            reintegrations: 0,
            probes: 0,
        }
    }

    pub fn config(&self) -> HealthConfig {
        self.cfg
    }

    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    pub fn state(&self, pool: usize) -> PoolHealthState {
        self.pools[pool].state
    }

    /// Whether new allocations may be placed on `pool`. Suspect pools
    /// still place (one bad window is not a verdict); quarantined and
    /// probationary pools do not.
    pub fn is_placeable(&self, pool: usize) -> bool {
        matches!(
            self.pools[pool].state,
            PoolHealthState::Healthy | PoolHealthState::Suspect
        )
    }

    /// Total state transitions since construction.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Times any pool entered `Quarantined`.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Times any pool completed probation and rejoined placement.
    pub fn reintegrations(&self) -> u64 {
        self.reintegrations
    }

    /// Synthetic probes recorded so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    fn transition(&mut self, pool: usize, to: PoolHealthState) {
        let from = self.pools[pool].state;
        if from == to {
            return;
        }
        self.pools[pool].state = to;
        self.transitions += 1;
        if to == PoolHealthState::Quarantined {
            self.quarantines += 1;
        }
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::HealthTransition {
                pool: pool as u64,
                from,
                to,
            },
        );
    }

    /// True when at least one *other* shard is still placeable — the
    /// never-strand precondition for quarantining `pool`. Probation
    /// counts as unavailable: a probationary shard is excluded from
    /// placement just like a quarantined one, so quarantining the last
    /// healthy-or-suspect shard while another sits in probation would
    /// strand placement all the same.
    fn others_available(&self, pool: usize) -> bool {
        self.pools.iter().enumerate().any(|(q, h)| {
            q != pool && matches!(h.state, PoolHealthState::Healthy | PoolHealthState::Suspect)
        })
    }

    /// One degraded-window verdict against `pool`.
    fn escalate(&mut self, pool: usize) {
        match self.pools[pool].state {
            PoolHealthState::Healthy => self.transition(pool, PoolHealthState::Suspect),
            PoolHealthState::Suspect => {
                // The last available shard is never quarantined: placement
                // must always have somewhere to go. Hedging and deadline
                // budgets bound the damage of a degraded-but-only shard.
                if self.others_available(pool) {
                    self.transition(pool, PoolHealthState::Quarantined);
                }
            }
            PoolHealthState::Quarantined | PoolHealthState::Probation => {}
        }
    }

    /// Feed one memory-side service-time sample for `pool` (a pushdown's
    /// execution window, attributed to its primary shard). A degraded
    /// window escalates; a clean window clears suspicion.
    pub fn observe_service(&mut self, pool: usize, d: SimDuration) {
        if !self.is_placeable(pool) {
            return; // quarantine/probation are probe-driven
        }
        let (w, f) = (self.cfg.window, self.cfg.degrade_factor);
        match self.pools[pool].service.push(d.as_nanos(), w, f) {
            Some(true) => self.escalate(pool),
            Some(false) if self.pools[pool].state == PoolHealthState::Suspect => {
                self.transition(pool, PoolHealthState::Healthy);
            }
            _ => {}
        }
    }

    /// Feed one heartbeat round-trip sample for `pool`. RTT inflation is
    /// one-directional evidence: a degraded window escalates, a clean one
    /// proves only that the control path is fine, so it never de-escalates.
    pub fn observe_rtt(&mut self, pool: usize, d: SimDuration) {
        if !self.is_placeable(pool) {
            return;
        }
        let (w, f) = (self.cfg.window, self.cfg.degrade_factor);
        if self.pools[pool].rtt.push(d.as_nanos(), w, f) == Some(true) {
            self.escalate(pool);
        }
    }

    /// Whether `pool` is due for a synthetic probe at `now`.
    pub fn should_probe(&self, pool: usize, now: SimTime) -> bool {
        if self.is_placeable(pool) {
            return false;
        }
        match self.pools[pool].last_probe {
            None => true,
            Some(at) => now.since(at) >= self.cfg.probe_interval,
        }
    }

    /// Record one synthetic probe of `pool`: `measured` is the probe's
    /// charged virtual duration, `healthy` the cost model's fault-free
    /// prediction for the same probe. Returns whether the probe passed.
    /// A first pass moves the pool to probation; `reintegrate_probes`
    /// consecutive passes reintegrate it (and reset its baselines so the
    /// healed pool relearns them); any failure sends it back.
    pub fn record_probe(
        &mut self,
        pool: usize,
        now: SimTime,
        measured: SimDuration,
        healthy: SimDuration,
    ) -> bool {
        self.probes += 1;
        self.pools[pool].last_probe = Some(now);
        let ok = measured.as_nanos()
            < healthy
                .as_nanos()
                .max(1)
                .saturating_mul(self.cfg.degrade_factor as u64);
        match (self.pools[pool].state, ok) {
            (PoolHealthState::Quarantined, true) => {
                self.pools[pool].ok_probes = 1;
                self.transition(pool, PoolHealthState::Probation);
                self.maybe_reintegrate(pool);
            }
            (PoolHealthState::Probation, true) => {
                self.pools[pool].ok_probes += 1;
                self.maybe_reintegrate(pool);
            }
            (PoolHealthState::Probation, false) => {
                self.pools[pool].ok_probes = 0;
                self.transition(pool, PoolHealthState::Quarantined);
            }
            (PoolHealthState::Quarantined, false) => self.pools[pool].ok_probes = 0,
            _ => {}
        }
        ok
    }

    /// Demote a freshly restarted pool to probation: a rejoining shard
    /// must re-earn placement through the same probe streak a healing
    /// quarantined pool passes, and its baselines are reset so the new
    /// life relearns them. Never strands placement — when no *other*
    /// shard is placeable the restarted pool keeps serving as-is — and
    /// a pool already on probation stays where it is.
    pub fn begin_probation(&mut self, pool: usize) {
        if self.pools[pool].state == PoolHealthState::Probation || !self.others_available(pool) {
            return;
        }
        self.pools[pool].ok_probes = 0;
        self.pools[pool].service = WindowedEstimator::default();
        self.pools[pool].rtt = WindowedEstimator::default();
        self.transition(pool, PoolHealthState::Probation);
    }

    fn maybe_reintegrate(&mut self, pool: usize) {
        if self.pools[pool].ok_probes < self.cfg.reintegrate_probes {
            return;
        }
        self.pools[pool].ok_probes = 0;
        self.pools[pool].service = WindowedEstimator::default();
        self.pools[pool].rtt = WindowedEstimator::default();
        self.transition(pool, PoolHealthState::Healthy);
        self.reintegrations += 1;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::PoolReintegrated { pool: pool as u64 },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::EventKind;

    fn monitor(pools: usize) -> (Tracer, HealthMonitor) {
        let tracer = Tracer::new(ddc_sim::Clock::new());
        tracer.enable();
        let m = HealthMonitor::new(pools, HealthConfig::default(), tracer.clone());
        (tracer, m)
    }

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    /// Feed one full window of identical samples.
    fn window(m: &mut HealthMonitor, pool: usize, sample: u64) {
        for _ in 0..m.config().window {
            m.observe_service(pool, ns(sample));
        }
    }

    #[test]
    fn degraded_windows_walk_healthy_to_quarantined() {
        let (tracer, mut m) = monitor(2);
        window(&mut m, 0, 100); // learns baseline = 100
        assert_eq!(m.state(0), PoolHealthState::Healthy);
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Suspect);
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Quarantined);
        assert!(!m.is_placeable(0));
        assert!(m.is_placeable(1), "the other shard is untouched");
        assert_eq!(m.quarantines(), 1);
        assert_eq!(m.transitions(), 2);
        assert_eq!(tracer.count(EventKind::HealthTransition), 2);
    }

    #[test]
    fn one_clean_window_clears_suspicion() {
        let (_, mut m) = monitor(2);
        window(&mut m, 0, 100);
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Suspect);
        window(&mut m, 0, 100);
        assert_eq!(m.state(0), PoolHealthState::Healthy);
    }

    #[test]
    fn baseline_drifts_only_while_clean() {
        let (_, mut m) = monitor(1);
        window(&mut m, 0, 100);
        // 150 < 2×100: clean, EWMA pulls the baseline up toward 150…
        window(&mut m, 0, 150);
        assert_eq!(m.state(0), PoolHealthState::Healthy);
        // …so 210 (> 2×100 but < 2×~156) still reads healthy-ish only if
        // the baseline moved; it did (100 → 106 → …), and 210 ≥ 2×106
        // escalates. The point: degraded windows must not raise the bar.
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Suspect);
        window(&mut m, 0, 5_000);
        assert_eq!(
            m.state(0),
            PoolHealthState::Suspect,
            "a single pool is never quarantined"
        );
    }

    #[test]
    fn rtt_inflation_escalates_but_never_clears() {
        let (_, mut m) = monitor(2);
        for _ in 0..4 {
            m.observe_rtt(0, ns(10));
        }
        for _ in 0..4 {
            m.observe_rtt(0, ns(500));
        }
        assert_eq!(m.state(0), PoolHealthState::Suspect);
        for _ in 0..4 {
            m.observe_rtt(0, ns(10));
        }
        assert_eq!(
            m.state(0),
            PoolHealthState::Suspect,
            "clean RTT is not exoneration"
        );
    }

    #[test]
    fn probe_streak_reintegrates_and_failure_resets() {
        let (tracer, mut m) = monitor(2);
        window(&mut m, 0, 100);
        window(&mut m, 0, 5_000);
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Quarantined);
        let t0 = SimTime(0);
        assert!(m.should_probe(0, t0));
        assert!(!m.should_probe(1, t0), "healthy pools are not probed");

        // Probe while still degraded: fails, stays quarantined.
        assert!(!m.record_probe(0, t0, ns(1_000), ns(100)));
        assert_eq!(m.state(0), PoolHealthState::Quarantined);
        assert!(
            !m.should_probe(0, t0),
            "probe interval gates the next probe"
        );
        let t1 = SimTime(m.config().probe_interval.as_nanos());
        assert!(m.should_probe(0, t1));

        // Healed: one pass → probation, a relapse → back to quarantine.
        assert!(m.record_probe(0, t1, ns(100), ns(100)));
        assert_eq!(m.state(0), PoolHealthState::Probation);
        assert!(!m.record_probe(0, t1, ns(1_000), ns(100)));
        assert_eq!(m.state(0), PoolHealthState::Quarantined);

        // A full streak reintegrates.
        for k in 0..m.config().reintegrate_probes {
            assert!(m.record_probe(0, SimTime(t1.0 + k as u64), ns(100), ns(100)));
        }
        assert_eq!(m.state(0), PoolHealthState::Healthy);
        assert!(m.is_placeable(0));
        assert_eq!(m.reintegrations(), 1);
        assert_eq!(tracer.count(EventKind::PoolReintegrated), 1);
        assert_eq!(m.probes(), 6);
    }

    #[test]
    fn probation_counts_as_unavailable_for_the_strand_check() {
        let (_, mut m) = monitor(2);
        // Pool 1: quarantined, then one good probe → Probation.
        window(&mut m, 1, 100);
        window(&mut m, 1, 5_000);
        window(&mut m, 1, 5_000);
        assert!(m.record_probe(1, SimTime(0), ns(100), ns(100)));
        assert_eq!(m.state(1), PoolHealthState::Probation);
        // Pool 0 degrades while pool 1 is still on probation: quarantining
        // it would leave zero placeable shards, so it must stay Suspect.
        window(&mut m, 0, 100);
        window(&mut m, 0, 5_000);
        window(&mut m, 0, 5_000);
        assert_eq!(m.state(0), PoolHealthState::Suspect);
        assert!(m.is_placeable(0), "the last placeable shard is protected");
    }

    #[test]
    fn restart_probation_rejoins_through_the_probe_streak() {
        let (tracer, mut m) = monitor(2);
        assert_eq!(m.state(0), PoolHealthState::Healthy);
        m.begin_probation(0);
        assert_eq!(m.state(0), PoolHealthState::Probation);
        assert!(
            !m.is_placeable(0),
            "a rejoining pool must re-earn placement"
        );
        m.begin_probation(0);
        assert_eq!(m.transitions(), 1, "idempotent while already probing");
        for k in 0..m.config().reintegrate_probes {
            assert!(m.record_probe(0, SimTime(k as u64), ns(100), ns(100)));
        }
        assert_eq!(m.state(0), PoolHealthState::Healthy);
        assert_eq!(tracer.count(EventKind::PoolReintegrated), 1);
        // With pool 0 healthy again, demoting pool 1 would strand nothing;
        // demoting pool 0 when pool 1 is quarantined would, so it refuses.
        window(&mut m, 1, 100);
        window(&mut m, 1, 5_000);
        window(&mut m, 1, 5_000);
        assert_eq!(m.state(1), PoolHealthState::Quarantined);
        m.begin_probation(0);
        assert_eq!(
            m.state(0),
            PoolHealthState::Healthy,
            "probation never strands the last placeable shard"
        );
    }

    #[test]
    fn quarantine_never_strands_the_last_shard() {
        let (_, mut m) = monitor(2);
        for p in 0..2 {
            window(&mut m, p, 100);
            window(&mut m, p, 5_000);
            window(&mut m, p, 5_000);
        }
        assert_eq!(m.state(0), PoolHealthState::Quarantined);
        assert_eq!(
            m.state(1),
            PoolHealthState::Suspect,
            "the last available shard refuses quarantine"
        );
        assert!(m.is_placeable(1));
    }
}
