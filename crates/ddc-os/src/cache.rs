//! The compute-local page cache.
//!
//! In a disaggregated OS the compute pool's DRAM "is nothing more than a
//! cache" (paper §1): every page it holds is a copy of a memory-pool page.
//! This module tracks residency, write permission, and dirtiness per cached
//! page with LRU replacement. It also serves as the whole of DRAM in the
//! monolithic ("Linux") topology, where eviction targets the swap device
//! instead of the memory pool.

use std::collections::HashMap;

use crate::lru::LruList;
use crate::page::PageId;

/// Per-page cache metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The page may be written locally without faulting. Cleared when the
    /// TELEPORT coherence protocol downgrades the page to read-only.
    pub writable: bool,
    /// The page has local modifications not yet flushed to the memory pool
    /// (or swap). `dirty` implies `writable`.
    pub dirty: bool,
}

/// A page evicted to make room, together with whether it needs write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub page: PageId,
    pub dirty: bool,
}

/// Fixed-capacity LRU page cache.
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: usize,
    lru: LruList,
    entries: HashMap<PageId, CacheEntry>,
}

impl PageCache {
    /// A cache holding at most `capacity` pages. Capacity zero is allowed
    /// (degenerate DDC with no local memory) — every access then misses.
    pub fn new(capacity: usize) -> Self {
        PageCache {
            capacity,
            lru: LruList::new(),
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metadata for `page` if resident. Does not refresh LRU position.
    pub fn probe(&self, page: PageId) -> Option<CacheEntry> {
        self.entries.get(&page).copied()
    }

    /// Record an access to a resident page: refreshes its LRU position and,
    /// for writes, upgrades it to writable + dirty. Returns `false` if the
    /// page is not resident (the caller must fault it in).
    pub fn access(&mut self, page: PageId, write: bool) -> bool {
        match self.entries.get_mut(&page) {
            Some(e) => {
                if write {
                    e.writable = true;
                    e.dirty = true;
                }
                self.lru.touch(page);
                true
            }
            None => false,
        }
    }

    /// Insert a just-faulted page, evicting the LRU victim if full.
    ///
    /// Panics if the page is already resident (the kernel faults a page at
    /// most once) or if capacity is zero.
    pub fn insert(&mut self, page: PageId, write: bool) -> Option<Evicted> {
        assert!(self.capacity > 0, "insert into zero-capacity cache");
        assert!(
            !self.entries.contains_key(&page),
            "page {page} already cached"
        );
        let victim = if self.entries.len() == self.capacity {
            let v = self.lru.pop_lru().expect("full cache has an LRU page");
            let e = self.entries.remove(&v).expect("LRU page has an entry");
            Some(Evicted {
                page: v,
                dirty: e.dirty,
            })
        } else {
            None
        };
        self.entries.insert(
            page,
            CacheEntry {
                writable: write,
                dirty: write,
            },
        );
        self.lru.touch(page);
        victim
    }

    /// Remove `page` (coherence invalidation or explicit flush). Returns
    /// its entry if it was resident; a dirty entry means the caller must
    /// account for the write-back transfer.
    pub fn evict(&mut self, page: PageId) -> Option<CacheEntry> {
        let e = self.entries.remove(&page)?;
        self.lru.remove(page);
        Some(e)
    }

    /// Downgrade `page` to read-only (coherence: the memory pool asked for
    /// read access). Returns the pre-downgrade entry; if it was dirty the
    /// caller must account for flushing it. No-op returning `None` if the
    /// page is not resident.
    pub fn downgrade(&mut self, page: PageId) -> Option<CacheEntry> {
        let e = self.entries.get_mut(&page)?;
        let before = *e;
        e.writable = false;
        e.dirty = false;
        Some(before)
    }

    /// Mark a dirty page as flushed (kept resident and writable).
    pub fn mark_clean(&mut self, page: PageId) {
        if let Some(e) = self.entries.get_mut(&page) {
            e.dirty = false;
        }
    }

    /// All resident pages with their metadata, in unspecified order.
    /// Callers that expose the result must sort it themselves (and do).
    pub fn resident(&self) -> impl Iterator<Item = (PageId, CacheEntry)> + '_ {
        // analyze:allow(unordered-iter) order is documented as unspecified and every caller sorts before the result becomes observable
        self.entries.iter().map(|(p, e)| (*p, *e))
    }

    /// All dirty pages, sorted by page id.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        // analyze:allow(unordered-iter) collected then sorted below, so the returned order is deterministic
        let mut v: Vec<PageId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drop everything, returning the pages that were dirty (the caller
    /// accounts for their write-back).
    pub fn clear(&mut self) -> Vec<PageId> {
        let dirty = self.dirty_pages();
        self.entries.clear();
        self.lru = LruList::new();
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_miss_then_insert_hits() {
        let mut c = PageCache::new(2);
        assert!(!c.access(PageId(1), false));
        assert!(c.insert(PageId(1), false).is_none());
        assert!(c.access(PageId(1), false));
        assert_eq!(
            c.probe(PageId(1)),
            Some(CacheEntry {
                writable: false,
                dirty: false
            })
        );
    }

    #[test]
    fn write_access_dirties() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), false);
        assert!(c.access(PageId(1), true));
        let e = c.probe(PageId(1)).unwrap();
        assert!(e.writable && e.dirty);
    }

    #[test]
    fn eviction_follows_lru_and_reports_dirtiness() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), true); // dirty
        c.insert(PageId(2), false);
        c.access(PageId(1), false); // refresh 1; LRU is now 2
        let ev = c.insert(PageId(3), false).unwrap();
        assert_eq!(
            ev,
            Evicted {
                page: PageId(2),
                dirty: false
            }
        );
        let ev = c.insert(PageId(4), false).unwrap();
        assert_eq!(
            ev,
            Evicted {
                page: PageId(1),
                dirty: true
            }
        );
    }

    #[test]
    fn downgrade_reports_prior_state() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), true);
        let before = c.downgrade(PageId(1)).unwrap();
        assert!(before.dirty);
        let after = c.probe(PageId(1)).unwrap();
        assert!(!after.writable && !after.dirty);
        assert!(c.downgrade(PageId(9)).is_none());
    }

    #[test]
    fn clear_returns_dirty_set_sorted() {
        let mut c = PageCache::new(4);
        c.insert(PageId(5), true);
        c.insert(PageId(2), false);
        c.insert(PageId(9), true);
        assert_eq!(c.clear(), vec![PageId(5), PageId(9)]);
        assert!(c.is_empty());
    }

    #[test]
    fn evict_removes_from_lru_order() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), false);
        c.insert(PageId(2), false);
        assert!(c.evict(PageId(1)).is_some());
        assert!(c.evict(PageId(1)).is_none());
        // Room now exists; no victim needed.
        assert!(c.insert(PageId(3), false).is_none());
    }

    #[test]
    #[should_panic(expected = "already cached")]
    fn double_insert_panics() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), false);
        c.insert(PageId(1), false);
    }

    #[test]
    fn mark_clean_keeps_residency() {
        let mut c = PageCache::new(2);
        c.insert(PageId(1), true);
        c.mark_clean(PageId(1));
        let e = c.probe(PageId(1)).unwrap();
        assert!(e.writable && !e.dirty);
        assert!(c.dirty_pages().is_empty());
    }
}
