//! The process's virtual address space and its backing bytes.
//!
//! In a real DDC the page *contents* live in whichever pool currently holds
//! the page. The simulation keeps a single authoritative copy of every byte
//! here and lets residency state (cache / pool / storage) drive only *cost*.
//! This is sound for all coherent executions because the protocol enforces
//! single-writer-multiple-reader; deliberately incoherent executions (the
//! paper's disabled-coherence mode) layer a divergence store on top, in the
//! `teleport` crate.

use ddc_sim::PAGE_SIZE;

use crate::page::{PageId, VAddr};

/// One contiguous allocation, page-aligned and padded to whole pages.
#[derive(Debug)]
struct Segment {
    start: VAddr,
    /// Requested length in bytes (what the application may touch).
    len: usize,
    data: Vec<u8>,
}

impl Segment {
    fn contains(&self, addr: VAddr) -> bool {
        addr >= self.start && (addr.0 - self.start.0) < self.len as u64
    }
}

/// A growable, bump-allocated virtual address space.
///
/// Allocations are page-aligned and separated by one unmapped guard page, so
/// any out-of-bounds access panics instead of silently reading a neighboring
/// allocation.
#[derive(Debug, Default)]
pub struct AddressSpace {
    segments: Vec<Segment>,
    next_page: u64,
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace {
            segments: Vec::new(),
            // Page 0 is never mapped: VAddr::NULL stays invalid.
            next_page: 1,
        }
    }

    /// Allocate `bytes` of zeroed memory. Returns the starting address.
    pub fn alloc(&mut self, bytes: usize) -> VAddr {
        assert!(bytes > 0, "zero-sized allocation");
        let pages = bytes.div_ceil(PAGE_SIZE);
        let start = PageId(self.next_page).base();
        // +1 leaves an unmapped guard page after the allocation.
        self.next_page += pages as u64 + 1;
        self.segments.push(Segment {
            start,
            len: bytes,
            data: vec![0u8; pages * PAGE_SIZE],
        });
        start
    }

    /// Number of pages across all allocations (guard pages excluded).
    pub fn allocated_pages(&self) -> usize {
        self.segments.iter().map(|s| s.data.len() / PAGE_SIZE).sum()
    }

    /// Total allocated bytes (as requested by callers).
    pub fn allocated_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.len).sum()
    }

    /// True if `addr` lies within some allocation.
    pub fn is_mapped(&self, addr: VAddr) -> bool {
        self.find(addr).is_some()
    }

    /// The pages of the allocation starting at `start`.
    pub fn pages_of(&self, start: VAddr) -> impl Iterator<Item = PageId> + '_ {
        let seg = self
            .segments
            .iter()
            .find(|s| s.start == start)
            .expect("pages_of: not an allocation start");
        let first = seg.start.page().0;
        let count = (seg.data.len() / PAGE_SIZE) as u64;
        (first..first + count).map(PageId)
    }

    fn find(&self, addr: VAddr) -> Option<usize> {
        // Segments are created in address order, so binary search applies.
        let idx = self
            .segments
            .partition_point(|s| s.start.0 <= addr.0)
            .checked_sub(1)?;
        self.segments[idx].contains(addr).then_some(idx)
    }

    fn locate(&self, addr: VAddr, len: usize) -> (usize, usize) {
        let idx = self
            .find(addr)
            .unwrap_or_else(|| panic!("unmapped access at {addr}"));
        let seg = &self.segments[idx];
        let off = (addr.0 - seg.start.0) as usize;
        assert!(
            off + len <= seg.len,
            "access of {len} bytes at {addr} overruns allocation (len {})",
            seg.len
        );
        (idx, off)
    }

    /// Copy `dst.len()` bytes starting at `addr` into `dst`.
    pub fn read(&self, addr: VAddr, dst: &mut [u8]) {
        let (idx, off) = self.locate(addr, dst.len());
        dst.copy_from_slice(&self.segments[idx].data[off..off + dst.len()]);
    }

    /// Copy `src` into the allocation at `addr`.
    pub fn write(&mut self, addr: VAddr, src: &[u8]) {
        let (idx, off) = self.locate(addr, src.len());
        self.segments[idx].data[off..off + src.len()].copy_from_slice(src);
    }

    /// Borrow `len` bytes at `addr` without copying. The span must lie
    /// within a single allocation.
    pub fn bytes(&self, addr: VAddr, len: usize) -> &[u8] {
        let (idx, off) = self.locate(addr, len);
        &self.segments[idx].data[off..off + len]
    }

    /// The full 4 KB backing of one page, including the padding beyond a
    /// short allocation's requested length. Panics if the page is unmapped.
    /// Used by the coherence layer, which snapshots whole pages.
    pub fn page_view(&self, page: PageId) -> &[u8] {
        let base = page.base();
        let idx = self
            .find(base)
            .unwrap_or_else(|| panic!("page_view of unmapped {page}"));
        let seg = &self.segments[idx];
        let off = (base.0 - seg.start.0) as usize;
        &seg.data[off..off + PAGE_SIZE]
    }

    /// The mutable counterpart of [`page_view`](Self::page_view). Used by
    /// the integrity plane, which applies and reverts byte-level corruption
    /// of whole page images.
    pub fn page_view_mut(&mut self, page: PageId) -> &mut [u8] {
        let base = page.base();
        let idx = self
            .find(base)
            .unwrap_or_else(|| panic!("page_view_mut of unmapped {page}"));
        let seg = &mut self.segments[idx];
        let off = (base.0 - seg.start.0) as usize;
        &mut seg.data[off..off + PAGE_SIZE]
    }

    /// Every mapped page, in address order (guard pages excluded). The
    /// scrubber walks this list.
    pub fn mapped_pages(&self) -> Vec<PageId> {
        let mut pages = Vec::with_capacity(self.allocated_pages());
        for seg in &self.segments {
            let first = seg.start.page().0;
            let count = (seg.data.len() / PAGE_SIZE) as u64;
            pages.extend((first..first + count).map(PageId));
        }
        pages
    }

    /// Mutably borrow `len` bytes at `addr` without copying.
    pub fn bytes_mut(&mut self, addr: VAddr, len: usize) -> &mut [u8] {
        let (idx, off) = self.locate(addr, len);
        &mut self.segments[idx].data[off..off + len]
    }

    pub fn read_u64(&self, addr: VAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    pub fn write_u64(&mut self, addr: VAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    pub fn read_i64(&self, addr: VAddr) -> i64 {
        self.read_u64(addr) as i64
    }

    pub fn write_i64(&mut self, addr: VAddr, v: i64) {
        self.write_u64(addr, v as u64);
    }

    pub fn read_f64(&self, addr: VAddr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    pub fn write_f64(&mut self, addr: VAddr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    pub fn read_u32(&self, addr: VAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    pub fn write_u32(&mut self, addr: VAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    pub fn read_i32(&self, addr: VAddr) -> i32 {
        self.read_u32(addr) as i32
    }

    pub fn write_i32(&mut self, addr: VAddr, v: i32) {
        self.write_u32(addr, v as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_page_aligned_with_guard_gaps() {
        let mut space = AddressSpace::new();
        let a = space.alloc(10);
        let b = space.alloc(PAGE_SIZE * 2);
        assert_eq!(a.page_offset(), 0);
        assert_eq!(b.page_offset(), 0);
        // 10 bytes round to 1 page, +1 guard page.
        assert_eq!(b.page().0, a.page().0 + 2);
        assert_eq!(space.allocated_pages(), 3);
        assert_eq!(space.allocated_bytes(), 10 + PAGE_SIZE * 2);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut space = AddressSpace::new();
        let a = space.alloc(64);
        space.write_u64(a, 0xdeadbeef);
        space.write_f64(a.offset(8), 2.5);
        space.write_i32(a.offset(16), -7);
        assert_eq!(space.read_u64(a), 0xdeadbeef);
        assert_eq!(space.read_f64(a.offset(8)), 2.5);
        assert_eq!(space.read_i32(a.offset(16)), -7);
        assert_eq!(space.read_u64(a.offset(24)), 0, "fresh memory is zeroed");
    }

    #[test]
    fn bulk_read_write() {
        let mut space = AddressSpace::new();
        let a = space.alloc(PAGE_SIZE * 3);
        let src: Vec<u8> = (0..PAGE_SIZE * 2).map(|i| (i % 251) as u8).collect();
        space.write(a.offset(100), &src);
        let mut dst = vec![0u8; src.len()];
        space.read(a.offset(100), &mut dst);
        assert_eq!(src, dst);
        assert_eq!(space.bytes(a.offset(100), 16), &src[..16]);
    }

    #[test]
    #[should_panic(expected = "unmapped access")]
    fn unmapped_access_panics() {
        let space = AddressSpace::new();
        space.read_u64(VAddr(123));
    }

    #[test]
    #[should_panic(expected = "overruns allocation")]
    fn overrun_panics() {
        let mut space = AddressSpace::new();
        let a = space.alloc(16);
        let mut buf = [0u8; 32];
        space.read(a, &mut buf);
    }

    #[test]
    #[should_panic(expected = "unmapped access")]
    fn guard_page_is_unmapped() {
        let mut space = AddressSpace::new();
        let a = space.alloc(PAGE_SIZE);
        let _b = space.alloc(PAGE_SIZE);
        // One byte past the end of `a` lands in the guard page.
        space.read_u64(a.offset(PAGE_SIZE as u64));
    }

    #[test]
    fn pages_of_lists_allocation_pages() {
        let mut space = AddressSpace::new();
        let a = space.alloc(PAGE_SIZE * 2 + 1);
        let pages: Vec<_> = space.pages_of(a).collect();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], a.page());
    }

    #[test]
    fn mapped_pages_walks_all_segments_in_address_order() {
        let mut space = AddressSpace::new();
        let a = space.alloc(PAGE_SIZE * 2);
        let b = space.alloc(1);
        let pages = space.mapped_pages();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[0], a.page());
        assert_eq!(pages[2], b.page());
        assert!(pages.windows(2).all(|w| w[0] < w[1]), "address order");
    }

    #[test]
    fn page_view_mut_mutates_the_authoritative_bytes() {
        let mut space = AddressSpace::new();
        let a = space.alloc(16);
        space.write_u64(a, 7);
        space.page_view_mut(a.page())[0] ^= 0xff;
        assert_eq!(space.read_u64(a), 7 ^ 0xff);
        assert_eq!(space.page_view(a.page()).len(), PAGE_SIZE);
    }
}
