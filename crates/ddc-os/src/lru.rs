//! An intrusive-list LRU tracker over page identities.
//!
//! Both the compute-local cache and the memory pool use LRU replacement,
//! matching LegoOS's eviction policy. This implementation keeps O(1) touch,
//! insert, and evict via a slab-backed doubly linked list, and is fully
//! deterministic.

use std::collections::HashMap;

use crate::page::PageId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

/// LRU ordering over a set of pages. Most-recently-used at the head.
#[derive(Debug, Clone, Default)]
pub struct LruList {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<PageId, usize>,
    head: usize,
    tail: usize,
}

impl LruList {
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Insert `page` as most-recently-used, or move it to the front if
    /// already present. Returns true if the page was newly inserted.
    pub fn touch(&mut self, page: PageId) -> bool {
        if let Some(&slot) = self.index.get(&page) {
            self.unlink(slot);
            self.push_front(slot);
            false
        } else {
            let slot = self.alloc_node(page);
            self.index.insert(page, slot);
            self.push_front(slot);
            true
        }
    }

    /// Remove `page` from the list. Returns true if it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        match self.index.remove(&page) {
            Some(slot) => {
                self.unlink(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// The least-recently-used page, without removing it.
    pub fn peek_lru(&self) -> Option<PageId> {
        (self.tail != NIL).then(|| self.nodes[self.tail].page)
    }

    /// Remove and return the least-recently-used page.
    pub fn pop_lru(&mut self) -> Option<PageId> {
        let victim = self.peek_lru()?;
        self.remove(victim);
        Some(victim)
    }

    /// Pages from most- to least-recently-used.
    pub fn iter_mru(&self) -> impl Iterator<Item = PageId> + '_ {
        LruIter {
            list: self,
            cursor: self.head,
        }
    }

    fn alloc_node(&mut self, page: PageId) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    page,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    page,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

struct LruIter<'a> {
    list: &'a LruList,
    cursor: usize,
}

impl Iterator for LruIter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cursor];
        self.cursor = node.next;
        Some(node.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(list: &LruList) -> Vec<u64> {
        list.iter_mru().map(|p| p.0).collect()
    }

    #[test]
    fn touch_orders_mru_first() {
        let mut l = LruList::new();
        assert!(l.touch(PageId(1)));
        assert!(l.touch(PageId(2)));
        assert!(l.touch(PageId(3)));
        assert_eq!(pages(&l), vec![3, 2, 1]);
        assert!(!l.touch(PageId(1)), "re-touch is not an insert");
        assert_eq!(pages(&l), vec![1, 3, 2]);
        assert_eq!(l.peek_lru(), Some(PageId(2)));
    }

    #[test]
    fn pop_lru_evicts_in_order() {
        let mut l = LruList::new();
        for i in 0..4 {
            l.touch(PageId(i));
        }
        assert_eq!(l.pop_lru(), Some(PageId(0)));
        assert_eq!(l.pop_lru(), Some(PageId(1)));
        l.touch(PageId(2)); // refresh 2
        assert_eq!(l.pop_lru(), Some(PageId(3)));
        assert_eq!(l.pop_lru(), Some(PageId(2)));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn remove_middle_keeps_links_consistent() {
        let mut l = LruList::new();
        for i in 0..5 {
            l.touch(PageId(i));
        }
        assert!(l.remove(PageId(2)));
        assert!(!l.remove(PageId(2)));
        assert_eq!(pages(&l), vec![4, 3, 1, 0]);
        assert_eq!(l.len(), 4);
        // Slab slot is reused.
        l.touch(PageId(9));
        assert_eq!(pages(&l), vec![9, 4, 3, 1, 0]);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LruList::new();
        for i in 0..3 {
            l.touch(PageId(i));
        }
        assert!(l.remove(PageId(2))); // head
        assert!(l.remove(PageId(0))); // tail
        assert_eq!(pages(&l), vec![1]);
        assert_eq!(l.peek_lru(), Some(PageId(1)));
        assert!(l.remove(PageId(1)));
        assert!(l.is_empty());
        assert_eq!(l.peek_lru(), None);
    }

    #[test]
    fn single_element_list() {
        let mut l = LruList::new();
        l.touch(PageId(7));
        assert_eq!(l.peek_lru(), Some(PageId(7)));
        assert!(!l.touch(PageId(7)));
        assert_eq!(l.pop_lru(), Some(PageId(7)));
        assert!(l.pop_lru().is_none());
    }
}
