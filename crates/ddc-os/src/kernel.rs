//! The disaggregated OS kernel: metered memory access across pools.
//!
//! [`Dos`] mediates every memory access of a simulated process, exactly as
//! LegoOS mediates them on real hardware (§2.1 of the paper):
//!
//! - a hit in the compute-local cache costs local DRAM time;
//! - a miss forwards a page fault to the memory pool controller and pulls
//!   the page over the fabric (possibly recursing to the storage pool if it
//!   was swapped out);
//! - cache evictions write dirty pages back to the memory pool;
//! - in the **monolithic** topology ("Linux" in the paper's figures) the
//!   same cache is the server's entire DRAM and misses go to the local swap
//!   device instead of the network.
//!
//! Correctness and cost are separated: the authoritative bytes live in one
//! [`AddressSpace`]; residency state drives only the virtual-time charges.

use ddc_sim::{
    Clock, ConfigError, Corruption, CorruptionPoint, DdcConfig, Fabric, FaultInjector, FaultLevel,
    Lane, MonolithicConfig, MsgClass, PlacementPolicy, RepairSource, ReplicationMode, ScrubConfig,
    SimDuration, SimTime, Ssd, TraceEvent, Tracer, PAGE_SIZE,
};

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::addrspace::AddressSpace;
use crate::cache::{CacheEntry, PageCache};
use crate::health::{HealthConfig, HealthMonitor};
use crate::page::{pages_spanned, PageChecksum, PageId, VAddr};
use crate::pool::MemoryPool;
use crate::recovery::{RecoveryCounters, RecoveryJournal, ReplaySet, RestartReport};
use crate::replica::{FailoverReport, ReplOp, ReplicatedPool, ReplicationCounters};
use crate::stats::PagingStats;

/// Spatial locality of an access, which selects the DRAM cost model:
/// sequential streaming amortizes row hits and prefetching, random access
/// pays full latency per touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    Seq,
    Rand,
}

/// Which topology this kernel instance simulates.
#[derive(Debug, Clone)]
pub enum Topology {
    /// A single server: CPU, DRAM, and SSD on one motherboard.
    Monolithic(MonolithicConfig),
    /// A disaggregated data center: compute / memory / storage pools.
    Disaggregated(DdcConfig),
}

/// Identifier of an open simulated file in the storage pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileId(pub u32);

/// Payload bytes of one synthetic health probe (and of the modeled
/// heartbeat round trip the RTT estimator watches).
const HEALTH_PROBE_BYTES: usize = 16;

/// Random DRAM touches one probe performs on the target shard. Sized so
/// pool-side work dominates the control round trip — otherwise a grinding
/// shard could hide inside the wire time and pass its probes.
const HEALTH_PROBE_TOUCHES: u64 = 64;

/// The kernel's page-integrity plane: sealed checksums, pending (injected,
/// not-yet-detected) corruption, repair bookkeeping, and scrub progress.
///
/// Disabled (and entirely free) unless the fault plan carries corruption
/// specs or a scrub schedule is configured — existing experiments see zero
/// behavioral or digest change.
#[derive(Debug, Default)]
struct Integrity {
    enabled: bool,
    /// Checksum sealed over each page's full 4 KB image, at registration
    /// and at every dirty write-back.
    sums: HashMap<PageId, PageChecksum>,
    /// Pages legitimately written since their last seal; resealed lazily at
    /// the next verification point (checksums are O(page), writes are not).
    stale: HashSet<PageId>,
    /// Injected corruption not yet detected, as invertible XOR edits.
    pending: HashMap<PageId, Vec<Corruption>>,
    /// Pages declared unrecoverable; never re-detected, never re-polled.
    lost: HashSet<PageId>,
    /// Most recent unrecoverable page (for the typed error).
    last_loss: Option<PageId>,
    detected: u64,
    repaired: u64,
    repaired_ssd: u64,
    repaired_replica: u64,
    data_loss: u64,
    /// Virtual deadline of the next background scrub pass.
    next_scrub: Option<SimTime>,
    scrub_passes: u64,
    scrub_pages: u64,
    scrub_detected: u64,
}

/// Per-pool integrity activity, reported as `integrity.pool{p}.*` metric
/// instances on multi-pool deployments.
#[derive(Debug, Default, Clone, Copy)]
struct PoolIntegrity {
    detected: u64,
    repaired: u64,
    data_loss: u64,
}

/// The disaggregated (or monolithic) OS kernel for one process.
pub struct Dos {
    topo: Topology,
    clock: Clock,
    fabric: Fabric,
    ssd: Ssd,
    tracer: Tracer,
    space: AddressSpace,
    cache: PageCache,
    /// The rack's memory-pool set: empty on a monolithic server, one shard
    /// per pool on a DDC. Single-pool deployments behave bit-for-bit like
    /// the pre-pool-set kernel.
    pools: Vec<MemoryPool>,
    /// Each shard's replication companion, when configured (index-aligned
    /// with `pools`).
    replicas: Vec<Option<ReplicatedPool>>,
    /// Epoch of each shard's current primary; bumped by that shard's
    /// promotions.
    pool_epochs: Vec<u64>,
    /// Per-shard report + final counters of a completed failover.
    failovers: Vec<Option<(FailoverReport, ReplicationCounters)>>,
    /// Page → owning shard. Populated only on multi-pool deployments
    /// (single-pool ownership is the identity); lookups only, never
    /// iterated.
    owner: HashMap<PageId, usize>,
    /// Placement policy applied at allocation time.
    placement: PlacementPolicy,
    /// Allocations made so far (drives `PlacementPolicy::Locality`'s
    /// round-robin).
    alloc_seq: u64,
    /// Shards touched by memory-side accesses since the last
    /// [`Dos::begin_pushdown_routing`] (multi-pool only; pool-index order).
    touched_pools: BTreeSet<usize>,
    /// Memory-side page touches in the same routing window.
    touched_pages: u64,
    /// Per-shard integrity counters (multi-pool reporting).
    pool_integrity: Vec<PoolIntegrity>,
    /// Pages that have a copy on the swap device (monolithic only).
    swapped: HashSet<PageId>,
    stats: PagingStats,
    dram: ddc_sim::DramConfig,
    fault_overhead: SimDuration,
    /// Pages prefetched ahead of a sequential fault (0 = disabled).
    prefetch: usize,
    /// Open files in the storage pool (paper §3.1: pushed functions may
    /// use the process's open files like any local function).
    files: Vec<Vec<u8>>,
    /// Fault injector handle for corruption polls (set by `install_faults`).
    injector: Option<FaultInjector>,
    /// Page-checksum integrity plane.
    integrity: Integrity,
    /// Background scrubber schedule.
    scrub: ScrubConfig,
    /// Gray-failure detector, armed by `install_faults` when the plan
    /// carries fail-slow specs (`None` otherwise — fault-free and
    /// fail-stop runs stay bit-identical).
    health: Option<HealthMonitor>,
    /// Per-shard crash-recovery journal, armed when the plan carries
    /// crash-restart specs (`None` otherwise — crash-free runs stay
    /// bit-identical with journaling disarmed).
    journals: Vec<Option<RecoveryJournal>>,
    /// Shards currently crashed (volatile state wiped, restart pending).
    pool_down: Vec<bool>,
    /// Epoch each crashed shard held at death — the fencing baseline its
    /// zombie carries when it wakes.
    crash_epochs: Vec<Option<u64>>,
    /// Recovery-plane activity, surfaced as the `recovery.*` metrics.
    recovery: RecoveryCounters,
}

impl Dos {
    /// A monolithic "Linux" server.
    pub fn new_monolithic(cfg: MonolithicConfig) -> Self {
        let cache_pages = (cfg.dram_bytes / PAGE_SIZE).max(1);
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        Dos {
            clock,
            fabric: Fabric::with_tracer(Default::default(), tracer.clone()),
            ssd: Ssd::with_tracer(cfg.ssd, tracer.clone()),
            tracer,
            space: AddressSpace::new(),
            cache: PageCache::new(cache_pages),
            pools: Vec::new(),
            replicas: Vec::new(),
            pool_epochs: Vec::new(),
            failovers: Vec::new(),
            owner: HashMap::new(),
            placement: PlacementPolicy::default(),
            alloc_seq: 0,
            touched_pools: BTreeSet::new(),
            touched_pages: 0,
            pool_integrity: Vec::new(),
            swapped: HashSet::new(),
            stats: PagingStats::default(),
            dram: cfg.dram_cost,
            fault_overhead: cfg.fault_overhead,
            prefetch: 0,
            files: Vec::new(),
            injector: None,
            integrity: Integrity::default(),
            scrub: ScrubConfig::default(),
            health: None,
            journals: Vec::new(),
            pool_down: Vec::new(),
            crash_epochs: Vec::new(),
            recovery: RecoveryCounters::default(),
            topo: Topology::Monolithic(cfg),
        }
    }

    /// A disaggregated deployment (LegoOS-style). Panics on a degenerate
    /// configuration; use [`Dos::try_new_disaggregated`] to handle the
    /// typed [`ConfigError`] instead.
    pub fn new_disaggregated(cfg: DdcConfig) -> Self {
        match Self::try_new_disaggregated(cfg) {
            Ok(dos) => dos,
            Err(e) => panic!("invalid DDC config: {e}"),
        }
    }

    /// A disaggregated deployment, validating the configuration first so
    /// multi-pool / multi-context mistakes surface as a typed error rather
    /// than a mid-run panic.
    pub fn try_new_disaggregated(cfg: DdcConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        // Each shard owns an equal slice of the pool's page budget; a
        // single-pool deployment gets the whole budget, exactly as before.
        let shard_pages = cfg.pool_shard_pages();
        let pools: Vec<MemoryPool> = (0..cfg.pools)
            .map(|_| MemoryPool::new(shard_pages))
            .collect();
        let replicas: Vec<Option<ReplicatedPool>> = (0..cfg.pools)
            .map(|_| match cfg.replication {
                ReplicationMode::Off => None,
                mode => Some(ReplicatedPool::new(shard_pages, mode)),
            })
            .collect();
        Ok(Dos {
            clock,
            fabric: Fabric::with_tracer(cfg.net, tracer.clone()),
            ssd: Ssd::with_tracer(cfg.ssd, tracer.clone()),
            tracer,
            space: AddressSpace::new(),
            cache: PageCache::new(cfg.cache_pages().max(1)),
            pool_epochs: vec![0; cfg.pools],
            failovers: vec![None; cfg.pools],
            pool_integrity: vec![PoolIntegrity::default(); cfg.pools],
            pools,
            replicas,
            owner: HashMap::new(),
            placement: cfg.placement,
            alloc_seq: 0,
            touched_pools: BTreeSet::new(),
            touched_pages: 0,
            swapped: HashSet::new(),
            stats: PagingStats::default(),
            dram: cfg.dram,
            fault_overhead: cfg.fault_overhead,
            prefetch: cfg.prefetch_pages,
            files: Vec::new(),
            injector: None,
            integrity: Integrity {
                enabled: cfg.scrub.every.is_some(),
                ..Integrity::default()
            },
            scrub: cfg.scrub,
            health: None,
            journals: (0..cfg.pools).map(|_| None).collect(),
            pool_down: vec![false; cfg.pools],
            crash_epochs: vec![None; cfg.pools],
            recovery: RecoveryCounters::default(),
            topo: Topology::Disaggregated(cfg),
        })
    }

    /// Number of memory-pool shards (0 on a monolithic server).
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The placement policy sharding allocations across pools.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// The shard owning `pid`. Single-pool ownership is the identity; on a
    /// multi-pool rack unmapped pages default to shard 0.
    #[inline]
    fn owner_of(&self, pid: PageId) -> usize {
        if self.pools.len() <= 1 {
            0
        } else {
            self.owner.get(&pid).copied().unwrap_or(0)
        }
    }

    /// Read-only view of one memory-pool shard, for tests and tooling.
    pub fn pool_at(&self, p: usize) -> &MemoryPool {
        &self.pools[p]
    }

    /// The shard owning `pid`, for tests and tooling. `None` on a
    /// monolithic server or for a page no pool has registered.
    pub fn pool_owner(&self, pid: PageId) -> Option<usize> {
        if self.pools.is_empty() {
            return None;
        }
        let p = self.owner_of(pid);
        self.pools[p].is_mapped(pid).then_some(p)
    }

    /// Start a fresh routing window: subsequent memory-side accesses record
    /// which shards they land on (multi-pool only; free otherwise).
    pub fn begin_pushdown_routing(&mut self) {
        self.touched_pools.clear();
        self.touched_pages = 0;
    }

    /// End the routing window: the shards touched since
    /// [`Dos::begin_pushdown_routing`], in pool-index order, plus the
    /// number of memory-side page touches routed.
    pub fn take_touched_pools(&mut self) -> (Vec<usize>, u64) {
        let pools: Vec<usize> = self.touched_pools.iter().copied().collect();
        let pages = self.touched_pages;
        self.touched_pools.clear();
        self.touched_pages = 0;
        (pools, pages)
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn is_disaggregated(&self) -> bool {
        matches!(self.topo, Topology::Disaggregated(_))
    }

    /// The DDC configuration; panics on a monolithic kernel. Used by the
    /// TELEPORT layer, which only exists on disaggregated deployments.
    pub fn ddc_config(&self) -> &DdcConfig {
        match &self.topo {
            Topology::Disaggregated(c) => c,
            Topology::Monolithic(_) => panic!("not a disaggregated deployment"),
        }
    }

    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Wire a fault injector into the devices this kernel owns: the fabric
    /// starts paying latency spikes/partitions and the SSD starts seeing
    /// transient errors/latency storms per the injector's plan. A plan that
    /// carries corruption specs also turns the integrity plane on, sealing
    /// a checksum over every page mapped so far.
    pub fn install_faults(&mut self, inj: &FaultInjector) {
        self.fabric.set_injector(inj.clone());
        self.ssd.set_injector(inj.clone());
        self.injector = Some(inj.clone());
        if inj.has_corruption_specs() {
            self.enable_integrity();
        }
        if inj.has_fail_slow_specs() {
            self.health = Some(HealthMonitor::new(
                self.pools.len().max(1),
                HealthConfig::default(),
                self.tracer.clone(),
            ));
        }
        if inj.has_crash_restart_specs() {
            self.enable_recovery_journal();
            // A restarted pool rejoins placement through the probation
            // probe streak, so crash plans arm the health plane too.
            if self.health.is_none() {
                self.health = Some(HealthMonitor::new(
                    self.pools.len().max(1),
                    HealthConfig::default(),
                    self.tracer.clone(),
                ));
            }
        }
    }

    /// The gray-failure monitor, when armed (fail-slow specs in the plan).
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    pub fn health_mut(&mut self) -> Option<&mut HealthMonitor> {
        self.health.as_mut()
    }

    /// Cost-model prediction of one fault-free synthetic health probe: a
    /// control round trip plus a burst of pool-side random DRAM touches.
    /// The health plane compares measured probes against this.
    pub fn healthy_probe_cost(&self) -> SimDuration {
        self.fabric.config().transfer_time(HEALTH_PROBE_BYTES) * 2
            + self.dram.random_access * HEALTH_PROBE_TOUCHES
    }

    /// Run one synthetic health probe against shard `p`, charging its real
    /// (possibly fail-slow-inflated) cost to virtual time: a control round
    /// trip over the fabric plus a burst of pool-side DRAM touches. Returns
    /// the measured duration for [`HealthMonitor::record_probe`] to judge.
    pub fn probe_pool(&mut self, p: usize) -> SimDuration {
        let start = self.clock.now();
        let d = self.fabric.send(MsgClass::Control, HEALTH_PROBE_BYTES);
        self.clock.advance(d);
        self.clock.advance(
            self.dram.random_access * (HEALTH_PROBE_TOUCHES * self.pool_slowdown(p) as u64),
        );
        let d = self.fabric.send(MsgClass::Control, HEALTH_PROBE_BYTES);
        self.clock.advance(d);
        self.clock.now().since(start)
    }

    /// One heartbeat round trip's modeled wire time, for the health
    /// plane's RTT estimator — *observed*, never charged (the heartbeat
    /// budget is already part of the runtime's cost model). An active lame
    /// link inflates it, so fabric gray failures surface here first.
    pub fn control_rtt(&self) -> SimDuration {
        let base = self.fabric.config().transfer_time(HEALTH_PROBE_BYTES) * 2;
        match &self.injector {
            Some(inj) => base * inj.fabric_slowdown() as u64,
            None => base,
        }
    }

    /// The event-trace handle shared by this kernel, its fabric, and its
    /// SSD. Disabled (and free) by default; see [`ddc_sim::trace`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Compute-pool CPU (the server CPU in the monolithic topology).
    pub fn compute_cpu(&self) -> ddc_sim::CpuConfig {
        match &self.topo {
            Topology::Monolithic(c) => c.cpu,
            Topology::Disaggregated(c) => c.compute_cpu,
        }
    }

    /// Charge `cycles` of compute-pool CPU work.
    pub fn charge_compute_cycles(&mut self, cycles: u64) {
        let d = self.compute_cpu().cycles(cycles);
        self.clock.advance(d);
    }

    /// Charge an arbitrary duration (used by upper layers for modeled
    /// costs that are not memory accesses).
    pub fn charge(&mut self, d: SimDuration) {
        self.clock.advance(d);
    }

    // ------------------------------------------------------------------
    // Allocation and experiment setup
    // ------------------------------------------------------------------

    /// Allocate `bytes` of zeroed process memory. In the disaggregated
    /// topology the pages materialize in the memory pool (spilling LRU
    /// pages to storage if the pool is full); nothing enters the compute
    /// cache until first touch.
    pub fn alloc(&mut self, bytes: usize) -> VAddr {
        let addr = self.space.alloc(bytes);
        if !self.pools.is_empty() {
            let pages: Vec<PageId> = self.space.pages_of(addr).collect();
            let owners = self.place_allocation(&pages);
            self.alloc_seq += 1;
            for (&pid, &p) in pages.iter().zip(&owners) {
                if self.pools.len() > 1 {
                    self.owner.insert(pid, p);
                }
                let fault = self.pools[p].register(pid);
                if fault.storage_writeback {
                    let d = self.ssd.write_page();
                    self.clock.advance(d);
                    self.stats.storage_page_out += 1;
                }
            }
            // One journal entry per maximal same-owner run (a single-pool
            // deployment journals the whole contiguous range, as before).
            let mut i = 0;
            while i < pages.len() {
                let p = owners[i];
                let mut j = i + 1;
                while j < pages.len() && owners[j] == p {
                    j += 1;
                }
                self.replicate_for(
                    p,
                    ReplOp::RegisterRange {
                        first: pages[i],
                        count: (j - i) as u64,
                    },
                );
                i = j;
            }
        }
        if self.integrity.enabled {
            let pages: Vec<PageId> = self.space.pages_of(addr).collect();
            for pid in pages {
                self.seal_checksum(pid);
            }
        }
        addr
    }

    /// Pick the owning shard for each page of a fresh allocation.
    ///
    /// - `FirstFit`: the whole allocation lands on the first shard whose
    ///   page table still has room for it, falling back to the shard with
    ///   the most free page-table slots (lowest index on ties);
    /// - `Locality`: whole allocations round-robin across shards, keeping
    ///   each data structure's pages on one pool;
    /// - `LoadBalance`: page-granular striping by page number, spreading
    ///   every structure across the rack (and creating cross-pool fan-out).
    ///
    /// On a single-pool deployment every policy is the identity.
    ///
    /// When the gray-failure plane is armed, quarantined shards are
    /// excluded: every policy runs over the placeable subset (falling back
    /// to the full rack if quarantine somehow emptied it — placement never
    /// strands an allocation). With the plane disarmed the subset is the
    /// identity, so placement stays bit-for-bit as before.
    fn place_allocation(&self, pages: &[PageId]) -> Vec<usize> {
        let n = self.pools.len();
        if n <= 1 {
            return vec![0; pages.len()];
        }
        let allowed: Vec<usize> = match &self.health {
            Some(h) => {
                let ok: Vec<usize> = (0..n).filter(|&p| h.is_placeable(p)).collect();
                if ok.is_empty() {
                    (0..n).collect()
                } else {
                    ok
                }
            }
            None => (0..n).collect(),
        };
        let k = allowed.len();
        match self.placement {
            PlacementPolicy::FirstFit => {
                let fits = allowed.iter().copied().find(|&p| {
                    self.pools[p].mapped_len() + pages.len() <= self.pools[p].capacity()
                });
                let p = fits.unwrap_or_else(|| {
                    allowed
                        .iter()
                        .copied()
                        .max_by_key(|&p| {
                            let free = self.pools[p]
                                .capacity()
                                .saturating_sub(self.pools[p].mapped_len());
                            // Ties break toward the lowest index.
                            (free, n - p)
                        })
                        .expect("at least one pool")
                });
                vec![p; pages.len()]
            }
            PlacementPolicy::Locality => vec![allowed[(self.alloc_seq as usize) % k]; pages.len()],
            PlacementPolicy::LoadBalance => pages
                .iter()
                .map(|pid| allowed[(pid.0 as usize) % k])
                .collect(),
        }
    }

    /// Reset the clock and every metric ledger. Call after loading data so
    /// the timed run starts at zero with the residency state intact.
    pub fn begin_timing(&mut self) {
        self.clock.reset();
        self.stats = PagingStats::default();
        self.fabric.reset_ledger();
        self.ssd.reset_counters();
        self.tracer.reset();
        for rep in self.replicas.iter_mut().flatten() {
            rep.reset_counters();
        }
        for f in &mut self.failovers {
            *f = None;
        }
        for pi in &mut self.pool_integrity {
            *pi = PoolIntegrity::default();
        }
        // Integrity counters cover the timed window; the seals, pending
        // corruption, and lost-page set describe residency state and stay.
        self.integrity.detected = 0;
        self.integrity.repaired = 0;
        self.integrity.repaired_ssd = 0;
        self.integrity.repaired_replica = 0;
        self.integrity.data_loss = 0;
        self.integrity.scrub_passes = 0;
        self.integrity.scrub_pages = 0;
        self.integrity.scrub_detected = 0;
        self.integrity.next_scrub = None;
        self.recovery = RecoveryCounters::default();
    }

    /// Flush and drop the whole compute cache (dirty pages are written
    /// back). Gives experiments a deterministic cold start.
    pub fn drop_cache(&mut self) {
        // Address order, not map order: the flush sequence feeds the
        // replication journal and the corruption injector's PRNG, so it
        // must be run-to-run deterministic.
        let resident: Vec<PageId> = {
            let mut v: Vec<PageId> = self.cache.resident().map(|(p, _)| p).collect();
            v.sort_unstable();
            v
        };
        for pid in resident {
            self.evict_one(pid);
        }
    }

    // ------------------------------------------------------------------
    // Compute-side access path
    // ------------------------------------------------------------------

    /// Read `len` bytes at `addr`, charging the compute-side cost model.
    pub fn read_bytes(&mut self, addr: VAddr, len: usize, pat: Pattern) -> &[u8] {
        self.touch_range(addr, len, false, pat);
        self.space.bytes(addr, len)
    }

    /// Write `data` at `addr`, charging the compute-side cost model.
    pub fn write_bytes(&mut self, addr: VAddr, data: &[u8], pat: Pattern) {
        self.touch_range(addr, data.len(), true, pat);
        self.space.write(addr, data);
    }

    pub fn read_u64(&mut self, addr: VAddr, pat: Pattern) -> u64 {
        self.touch_range(addr, 8, false, pat);
        self.space.read_u64(addr)
    }

    pub fn write_u64(&mut self, addr: VAddr, v: u64, pat: Pattern) {
        self.touch_range(addr, 8, true, pat);
        self.space.write_u64(addr, v);
    }

    pub fn read_i64(&mut self, addr: VAddr, pat: Pattern) -> i64 {
        self.read_u64(addr, pat) as i64
    }

    pub fn write_i64(&mut self, addr: VAddr, v: i64, pat: Pattern) {
        self.write_u64(addr, v as u64, pat);
    }

    pub fn read_f64(&mut self, addr: VAddr, pat: Pattern) -> f64 {
        f64::from_bits(self.read_u64(addr, pat))
    }

    pub fn write_f64(&mut self, addr: VAddr, v: f64, pat: Pattern) {
        self.write_u64(addr, v.to_bits(), pat);
    }

    pub fn read_i32(&mut self, addr: VAddr, pat: Pattern) -> i32 {
        self.touch_range(addr, 4, false, pat);
        self.space.read_i32(addr)
    }

    pub fn write_i32(&mut self, addr: VAddr, v: i32, pat: Pattern) {
        self.touch_range(addr, 4, true, pat);
        self.space.write_i32(addr, v);
    }

    /// Charge for touching `[addr, addr+len)` from the compute pool,
    /// faulting pages in as needed.
    pub fn touch_range(&mut self, addr: VAddr, len: usize, write: bool, pat: Pattern) {
        // analyze:allow(debug-assert) application-level addressing bug on the hot access path, not cross-pool protocol state
        debug_assert!(self.space.is_mapped(addr), "touch of unmapped {addr}");
        let mut remaining = len;
        let mut cursor = addr;
        for pid in pages_spanned(addr, len) {
            let in_page = (PAGE_SIZE - cursor.page_offset()).min(remaining);
            if self.cache.access(pid, write) {
                self.stats.cache_hits += 1;
                if self.integrity.enabled {
                    // The authoritative bytes are shared across pools, so a
                    // latent scribble is observable even through a cache
                    // hit; detect it before the access reads the page.
                    self.check_page(pid, CorruptionPoint::Pool);
                }
            } else {
                self.fault_in(pid, write);
                if pat == Pattern::Seq && self.prefetch > 0 {
                    self.prefetch_ahead(pid);
                }
            }
            if write {
                self.mark_stale(pid);
            }
            self.clock.advance(self.dram_cost(pat, in_page));
            cursor = cursor.offset(in_page as u64);
            remaining -= in_page;
        }
    }

    /// LegoOS-style sequential prefetch: after a sequential-pattern fault
    /// on `pid`, pull the next few mapped pages in one batched transfer
    /// (single message latency, streaming the pages' bytes).
    fn prefetch_ahead(&mut self, pid: PageId) {
        if self.pools.is_empty() {
            return; // swap readahead is already folded into the SSD model
        }
        let mut fetched = 0usize;
        for i in 1..=self.prefetch as u64 {
            let next = pid.offset(i);
            if !self.space.is_mapped(next.base()) {
                break;
            }
            if self.cache.probe(next).is_some() {
                continue;
            }
            let p = self.owner_of(next);
            let fault = self.pools[p].ensure_resident(next);
            if fault.storage_writeback {
                let d = self.ssd.write_page();
                self.clock.advance(d);
                self.stats.storage_page_out += 1;
            }
            if fault.storage_read {
                let d = self.ssd.read_page();
                self.clock.advance(d);
                self.stats.storage_page_in += 1;
            }
            self.pools[p].pin(next);
            if let Some(victim) = self.cache.insert(next, false) {
                self.write_back_evicted(victim.page, victim.dirty);
            }
            self.stats.remote_page_in += 1;
            fetched += 1;
        }
        if fetched > 0 {
            // One batched wire transfer for the whole prefetch window.
            let d = self.fabric.send(MsgClass::PageIn, fetched * PAGE_SIZE);
            self.clock.advance(d);
        }
    }

    fn dram_cost(&self, pat: Pattern, touched: usize) -> SimDuration {
        match pat {
            Pattern::Rand => self.dram.random_access,
            Pattern::Seq => {
                let ns = self.dram.sequential_page.as_nanos() as u128 * touched as u128
                    / PAGE_SIZE as u128;
                SimDuration::from_nanos(ns as u64)
            }
        }
    }

    /// Handle a compute-side page fault on `pid`.
    fn fault_in(&mut self, pid: PageId, write: bool) {
        self.stats.cache_misses += 1;
        if self.tracer.is_enabled() {
            // Classify before `ensure_resident` pulls the page up a level.
            let level = if self.pools.is_empty() {
                if self.swapped.contains(&pid) {
                    FaultLevel::Storage
                } else {
                    FaultLevel::Cache
                }
            } else if self.pools[self.owner_of(pid)].is_resident(pid) {
                FaultLevel::Remote
            } else {
                FaultLevel::Storage
            };
            self.tracer.emit(
                Lane::Compute,
                TraceEvent::PageFault {
                    vaddr: pid.base().0,
                    level,
                },
            );
        }
        self.clock.advance(self.fault_overhead);
        if !self.pools.is_empty() {
            // Recursive fault: the owning memory pool pulls the page from
            // storage if it was swapped out.
            let p = self.owner_of(pid);
            let fault = self.pools[p].ensure_resident(pid);
            if fault.storage_writeback {
                let d = self.ssd.write_page();
                self.clock.advance(d);
                self.stats.storage_page_out += 1;
            }
            if fault.storage_read {
                let d = self.ssd.read_page();
                self.clock.advance(d);
                self.stats.storage_page_in += 1;
            }
            // Page travels memory pool -> compute cache.
            let d = self.fabric.send(MsgClass::PageIn, PAGE_SIZE);
            self.clock.advance(d);
            self.stats.remote_page_in += 1;
            self.pools[p].pin(pid);
            if self.integrity.enabled {
                self.reseal_if_stale(pid);
                if fault.storage_read {
                    self.poll_corruption(CorruptionPoint::Ssd, pid);
                    self.check_page(pid, CorruptionPoint::Ssd);
                }
                // The page just crossed the fabric; poll for an
                // in-flight bit flip and verify the delivery.
                self.poll_corruption(CorruptionPoint::Fabric, pid);
                self.check_page(pid, CorruptionPoint::Fabric);
            }
        } else {
            // Monolithic: first touch materializes a zero page for
            // free; a refault reads the swap copy.
            if self.swapped.contains(&pid) {
                let d = self.ssd.read_page();
                self.clock.advance(d);
                self.stats.storage_page_in += 1;
                if self.integrity.enabled {
                    self.reseal_if_stale(pid);
                    self.poll_corruption(CorruptionPoint::Ssd, pid);
                    self.check_page(pid, CorruptionPoint::Ssd);
                }
            }
        }
        if let Some(victim) = self.cache.insert(pid, write) {
            self.write_back_evicted(victim.page, victim.dirty);
        }
    }

    /// Account for evicting `page` from the compute cache.
    fn write_back_evicted(&mut self, page: PageId, dirty: bool) {
        self.stats.evictions += 1;
        self.tracer.emit(
            Lane::Compute,
            TraceEvent::Evict {
                page: page.0,
                dirty,
            },
        );
        if !self.pools.is_empty() {
            let p = self.owner_of(page);
            self.pools[p].unpin(page);
            if dirty {
                let d = self.fabric.send(MsgClass::PageOut, PAGE_SIZE);
                self.clock.advance(d);
                self.stats.remote_page_out += 1;
                self.pools[p].mark_dirty(page);
            }
        } else if dirty {
            let d = self.ssd.write_page();
            self.clock.advance(d);
            self.stats.storage_page_out += 1;
            self.swapped.insert(page);
        }
        if dirty {
            if !self.pools.is_empty() {
                self.page_out_to_pool(page);
            } else {
                self.seal_checksum(page);
            }
        }
    }

    fn evict_one(&mut self, pid: PageId) {
        if let Some(e) = self.cache.evict(pid) {
            self.write_back_evicted(pid, e.dirty);
        }
    }

    // ------------------------------------------------------------------
    // Memory-side (pushdown) access path — used by the TELEPORT layer
    // ------------------------------------------------------------------

    /// Charge for touching `[addr, addr+len)` from *inside the memory
    /// pool*: pool-local DRAM cost, recursing to storage for swapped pages.
    /// Coherence with the compute cache is the TELEPORT layer's job and
    /// must be settled before calling this.
    pub fn mem_touch_range(&mut self, addr: VAddr, len: usize, write: bool, pat: Pattern) {
        // A memory-side access on a monolithic kernel is a cross-pool
        // protocol violation (there is no pool); in release it previously
        // surfaced as a confusing `expect` on the pool handle below, so
        // check it up front in every build.
        assert!(self.is_disaggregated(), "mem-side access on monolithic");
        let mut remaining = len;
        let mut cursor = addr;
        for pid in pages_spanned(addr, len) {
            let in_page = (PAGE_SIZE - cursor.page_offset()).min(remaining);
            self.stats.mem_side_accesses += 1;
            let p = self.owner_of(pid);
            if self.pools.len() > 1 {
                // Record the routing decision for the runtime's fan-out
                // accounting (free on single-pool deployments).
                self.touched_pools.insert(p);
                self.touched_pages += 1;
            }
            let fault = self.pools[p].ensure_resident(pid);
            if fault.storage_read {
                // A memory-side fault never crosses the fabric: it either
                // hits pool DRAM (no event) or recurses to storage.
                self.tracer.emit(
                    Lane::Memory,
                    TraceEvent::PageFault {
                        vaddr: pid.base().0,
                        level: FaultLevel::Storage,
                    },
                );
            }
            if fault.storage_writeback {
                let d = self.ssd.write_page();
                self.clock.advance(d);
                self.stats.storage_page_out += 1;
            }
            if fault.storage_read {
                let d = self.ssd.read_page();
                self.clock.advance(d);
                self.stats.storage_page_in += 1;
            }
            if self.integrity.enabled {
                self.reseal_if_stale(pid);
                if fault.storage_read {
                    self.poll_corruption(CorruptionPoint::Ssd, pid);
                    self.check_page(pid, CorruptionPoint::Ssd);
                } else {
                    // Latent scribbles surface at the next in-pool access.
                    self.check_page(pid, CorruptionPoint::Pool);
                }
            }
            if write {
                self.pools[p].mark_dirty(pid);
                self.replicate_for(p, ReplOp::PageWrite(pid));
                self.mark_stale(pid);
            }
            self.clock
                .advance(self.dram_cost(pat, in_page) * self.pool_slowdown(p) as u64);
            cursor = cursor.offset(in_page as u64);
            remaining -= in_page;
        }
    }

    /// Fail-slow multiplier for memory-side service on shard `p` (1 when
    /// the gray-failure plane is disarmed). Gated on the armed health
    /// plane so fault-free and fail-stop runs never poll the injector on
    /// this hot path.
    #[inline]
    fn pool_slowdown(&self, p: usize) -> u32 {
        if self.health.is_none() {
            return 1;
        }
        match &self.injector {
            Some(inj) => inj.pool_slowdown_for(p),
            None => 1,
        }
    }

    // ------------------------------------------------------------------
    // File I/O through the storage pool
    // ------------------------------------------------------------------

    /// Create a file with `content` in the storage pool (setup; callers
    /// normally `begin_timing` afterwards).
    pub fn create_file(&mut self, content: Vec<u8>) -> FileId {
        self.files.push(content);
        FileId(self.files.len() as u32 - 1)
    }

    pub fn file_len(&self, file: FileId) -> usize {
        self.files[file.0 as usize].len()
    }

    /// Read `len` bytes of `file` at `offset`, charging the storage pool's
    /// streaming cost. On a DDC, file data flows storage → memory pool; a
    /// *compute-side* read additionally crosses the fabric (§2.1's
    /// recursive path), which a pushed-down reader avoids.
    pub fn file_read(
        &mut self,
        file: FileId,
        offset: usize,
        len: usize,
        memory_side: bool,
    ) -> &[u8] {
        let data = &self.files[file.0 as usize];
        assert!(offset + len <= data.len(), "file read out of bounds");
        let d = self.ssd.read_bulk(len);
        self.clock.advance(d);
        self.stats.storage_page_in += len.div_ceil(PAGE_SIZE) as u64;
        if self.is_disaggregated() && !memory_side {
            let d = self.fabric.send(MsgClass::PageIn, len);
            self.clock.advance(d);
            self.stats.remote_page_in += len.div_ceil(PAGE_SIZE) as u64;
        }
        &self.files[file.0 as usize][offset..offset + len]
    }

    /// Append to a file, charging the streaming write cost (plus the
    /// fabric hop for compute-side writers on a DDC).
    pub fn file_append(&mut self, file: FileId, data: &[u8], memory_side: bool) {
        let d = self.ssd.read_bulk(data.len()); // same streaming cost model
        self.clock.advance(d);
        self.stats.storage_page_out += data.len().div_ceil(PAGE_SIZE) as u64;
        if self.is_disaggregated() && !memory_side {
            let d = self.fabric.send(MsgClass::PageOut, data.len());
            self.clock.advance(d);
            self.stats.remote_page_out += data.len().div_ceil(PAGE_SIZE) as u64;
        }
        self.files[file.0 as usize].extend_from_slice(data);
    }

    /// Raw access to the backing bytes without any charge. Only for the
    /// TELEPORT layer (data movement that was already priced) and for test
    /// oracles.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable raw access; see [`Dos::space`].
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    // ------------------------------------------------------------------
    // Coherence hooks — used by the TELEPORT layer
    // ------------------------------------------------------------------

    /// Pages currently resident in the compute cache together with their
    /// write permission, sorted by page id (the pushdown request ships this
    /// list, RLE-compressed).
    pub fn resident_list(&self) -> Vec<(PageId, bool)> {
        let mut v: Vec<(PageId, bool)> = self
            .cache
            .resident()
            .map(|(p, e)| (p, e.writable))
            .collect();
        v.sort_unstable_by_key(|(p, _)| *p);
        v
    }

    /// Cache metadata for one page.
    pub fn cache_probe(&self, pid: PageId) -> Option<CacheEntry> {
        self.cache.probe(pid)
    }

    /// Number of pages resident in the compute cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Coherence invalidation: the memory pool requested write access to
    /// `pid`. Removes the page from the compute cache; a dirty copy is
    /// flushed back to the pool (priced as a page-out). Returns the prior
    /// entry if the page was resident.
    pub fn coherence_evict(&mut self, pid: PageId) -> Option<CacheEntry> {
        let e = self.cache.evict(pid)?;
        self.stats.evictions += 1;
        self.tracer.emit(
            Lane::Compute,
            TraceEvent::Evict {
                page: pid.0,
                dirty: e.dirty,
            },
        );
        assert!(!self.pools.is_empty(), "coherence on disaggregated only");
        let p = self.owner_of(pid);
        self.pools[p].unpin(pid);
        if e.dirty {
            let d = self.fabric.send(MsgClass::PageOut, PAGE_SIZE);
            self.clock.advance(d);
            self.stats.remote_page_out += 1;
            self.pools[p].mark_dirty(pid);
            self.page_out_to_pool(pid);
        }
        Some(e)
    }

    /// Coherence downgrade: the memory pool requested read access to `pid`.
    /// The compute copy stays resident but read-only; a dirty copy is
    /// flushed first. Returns the prior entry if the page was resident.
    pub fn coherence_downgrade(&mut self, pid: PageId) -> Option<CacheEntry> {
        let e = self.cache.downgrade(pid)?;
        if e.dirty {
            let d = self.fabric.send(MsgClass::PageOut, PAGE_SIZE);
            self.clock.advance(d);
            self.stats.remote_page_out += 1;
            let p = self.owner_of(pid);
            self.pools[p].mark_dirty(pid);
            self.page_out_to_pool(pid);
        }
        Some(e)
    }

    /// `syncmem`: flush every dirty page in the compute cache back to the
    /// memory pool (pages stay resident and writable). Returns how many
    /// pages were flushed.
    pub fn syncmem(&mut self) -> usize {
        let dirty = self.cache.dirty_pages();
        for &pid in &dirty {
            let d = self.fabric.send(MsgClass::PageOut, PAGE_SIZE);
            self.clock.advance(d);
            self.stats.remote_page_out += 1;
            self.cache.mark_clean(pid);
            let p = self.owner_of(pid);
            self.pools[p].mark_dirty(pid);
            self.page_out_to_pool(pid);
        }
        self.tracer.emit(
            Lane::Compute,
            TraceEvent::Syncmem {
                pages: dirty.len() as u64,
            },
        );
        dirty.len()
    }

    /// `syncmem` restricted to the pages spanned by `[addr, addr+len)`.
    pub fn syncmem_range(&mut self, addr: VAddr, len: usize) -> usize {
        let mut flushed = 0;
        for pid in pages_spanned(addr, len) {
            if self.cache.probe(pid).is_some_and(|e| e.dirty) {
                let d = self.fabric.send(MsgClass::PageOut, PAGE_SIZE);
                self.clock.advance(d);
                self.stats.remote_page_out += 1;
                self.cache.mark_clean(pid);
                let p = self.owner_of(pid);
                self.pools[p].mark_dirty(pid);
                self.page_out_to_pool(pid);
                flushed += 1;
            }
        }
        self.tracer.emit(
            Lane::Compute,
            TraceEvent::Syncmem {
                pages: flushed as u64,
            },
        );
        flushed
    }

    /// Eager-sync strawman support: flush and drop every cached page,
    /// returning the list of pages that were resident (so they can be
    /// re-fetched after pushdown).
    pub fn flush_and_clear_cache(&mut self) -> Vec<PageId> {
        let resident: Vec<PageId> = {
            let mut v: Vec<PageId> = self.cache.resident().map(|(p, _)| p).collect();
            v.sort_unstable();
            v
        };
        for &pid in &resident {
            self.evict_one(pid);
        }
        resident
    }

    /// Eager-sync strawman support: page `pids` back into the compute
    /// cache (read-only), charging a page-in each.
    pub fn prefetch_pages(&mut self, pids: &[PageId]) {
        for &pid in pids {
            if self.cache.probe(pid).is_none() {
                self.fault_in(pid, false);
            }
        }
    }

    // ------------------------------------------------------------------
    // Replication & failover — used by the TELEPORT layer
    // ------------------------------------------------------------------

    /// Append one mutation to shard `p`'s replication journal (no-op
    /// without a replica). Shipping discipline is the configured
    /// `ReplicationMode`.
    fn replicate_for(&mut self, p: usize, op: ReplOp) {
        if let Some(rep) = self.replicas.get_mut(p).and_then(|r| r.as_mut()) {
            rep.record(op, &self.fabric, &self.ssd, &self.clock, &self.tracer);
        }
        if let Some(j) = self.journals.get_mut(p).and_then(|j| j.as_mut()) {
            if j.append(op) {
                // Sync point: the batch lands on the shard's durable media.
                let d = self.ssd.write_page();
                self.clock.advance(d);
            }
        }
    }

    /// True if any shard still has a backup pool standing by (i.e. at
    /// least one pool death is survivable). Becomes false once every
    /// backup has been consumed by a failover.
    pub fn has_replica(&self) -> bool {
        self.replicas.iter().any(|r| r.is_some())
    }

    /// True if shard `p` has a backup pool standing by.
    pub fn has_replica_for(&self, p: usize) -> bool {
        self.replicas.get(p).is_some_and(|r| r.is_some())
    }

    /// Epoch of shard 0's current primary (0 until a promotion happens).
    /// The historical single-pool accessor; see [`Dos::pool_epoch_for`].
    pub fn pool_epoch(&self) -> u64 {
        self.pool_epoch_for(0)
    }

    /// Epoch of shard `p`'s current primary.
    pub fn pool_epoch_for(&self, p: usize) -> u64 {
        self.pool_epochs.get(p).copied().unwrap_or(0)
    }

    /// Ship any journal tail that log-shipping has not flushed yet, on
    /// every shard (shard-index order keeps the wire sequence seed-stable).
    pub fn replication_flush(&mut self) {
        for p in 0..self.replicas.len() {
            if let Some(rep) = self.replicas[p].as_mut() {
                rep.flush(&self.fabric, &self.ssd, &self.clock, &self.tracer);
            }
        }
    }

    /// Replication activity so far, summed across shards: live counters
    /// while a replica stands by, the final pre-promotion counters after a
    /// failover. `None` when replication was never configured.
    pub fn replication_counters(&self) -> Option<ReplicationCounters> {
        let mut total: Option<ReplicationCounters> = None;
        for p in 0..self.replicas.len() {
            let c = match (&self.replicas[p], &self.failovers[p]) {
                (Some(rep), _) => rep.counters(),
                (None, Some((_, c))) => *c,
                (None, None) => continue,
            };
            let t = total.get_or_insert_with(ReplicationCounters::default);
            t.journal_appends += c.journal_appends;
            t.ship_messages += c.ship_messages;
            t.pages_shipped += c.pages_shipped;
            t.acks += c.acks;
        }
        total
    }

    /// What the first completed failover did, once one has happened (the
    /// lowest-index failed-over shard; see [`Dos::failover_report_for`]).
    pub fn failover_report(&self) -> Option<FailoverReport> {
        self.failovers.iter().find_map(|f| f.map(|(r, _)| r))
    }

    /// What shard `p`'s failover did, once one has happened.
    pub fn failover_report_for(&self, p: usize) -> Option<FailoverReport> {
        self.failovers.get(p).and_then(|f| f.map(|(r, _)| r))
    }

    /// Promote the backup pool after the primary died. Crash-consistency
    /// rules:
    ///
    /// - every page named by a still-pending (un-acked) journal entry is
    ///   *lost*: its backup copy is never trusted, and it is re-fetched
    ///   from the storage pool (one authoritative read per page);
    /// - compute-cache copies of lost pages are invalidated by epoch
    ///   comparison — their latest write-back died with the primary, so
    ///   they are dropped without a write-back and refault on next touch;
    /// - surviving cache pages are re-pinned in the promoted pool, so the
    ///   coherence session continues against a consistent page table.
    ///
    /// Consumes the backup: a second pool death is fatal again until a new
    /// deployment configures a new replica. Returns `None` when no replica
    /// is standing by.
    pub fn failover_to_replica(&mut self) -> Option<FailoverReport> {
        self.failover_to_replica_for(0)
    }

    /// Promote shard `p`'s backup after that shard's primary died. Pages
    /// owned by other shards (and their cache copies) are untouched: a
    /// rack-scale deployment loses one shard at a time.
    pub fn failover_to_replica_for(&mut self, p: usize) -> Option<FailoverReport> {
        let rep = self.replicas.get_mut(p)?.take()?;
        let old_epoch = self.pool_epochs[p];
        let (mut promoted, lost_list, counters) = rep.promote();
        let mut refetched = 0u64;
        for &pid in &lost_list {
            let fault = if promoted.is_mapped(pid) {
                promoted.ensure_resident(pid)
            } else {
                // The page's registration itself was still in flight.
                promoted.register(pid)
            };
            if fault.storage_writeback {
                let d = self.ssd.write_page();
                self.clock.advance(d);
                self.stats.storage_page_out += 1;
            }
            // Exactly one authoritative storage read per lost page (it
            // subsumes any residency fault the pool reported).
            let d = self.ssd.read_page();
            self.clock.advance(d);
            self.stats.storage_page_in += 1;
            refetched += 1;
        }
        // Reconcile the compute cache against the promoted page table —
        // only this shard's pages; other shards' primaries are healthy.
        let lost_set: HashSet<PageId> = lost_list.iter().copied().collect();
        let cached: Vec<PageId> = {
            let mut v: Vec<PageId> = self
                .cache
                .resident()
                .map(|(pid, _)| pid)
                .filter(|&pid| self.owner_of(pid) == p)
                .collect();
            v.sort_unstable();
            v
        };
        let mut invalidations = 0u64;
        for pid in cached {
            if lost_set.contains(&pid) {
                // Stale epoch: the cached copy's write-back lineage died
                // with the primary. Drop it silently (no write-back); the
                // next touch refaults the authoritative storage copy.
                let _ = self.cache.evict(pid);
                invalidations += 1;
            } else {
                let fault = promoted.ensure_resident(pid);
                if fault.storage_writeback {
                    let d = self.ssd.write_page();
                    self.clock.advance(d);
                    self.stats.storage_page_out += 1;
                }
                if fault.storage_read {
                    let d = self.ssd.read_page();
                    self.clock.advance(d);
                    self.stats.storage_page_in += 1;
                }
                promoted.pin(pid);
            }
        }
        self.pools[p] = promoted;
        self.pool_epochs[p] += 1;
        let report = FailoverReport {
            old_epoch,
            new_epoch: self.pool_epochs[p],
            lost_pages: lost_list.len() as u64,
            refetched_pages: refetched,
            cache_invalidations: invalidations,
        };
        self.failovers[p] = Some((report, counters));
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::PoolPromoted {
                epoch: self.pool_epochs[p],
                lost_pages: report.lost_pages,
            },
        );
        // The promoted primary starts a fresh journal life at the new
        // epoch, and the shard is serving again (the dead primary's
        // eventual wake-up is fenced by the epoch bump above).
        if let Some(d) = self.pool_down.get_mut(p) {
            *d = false;
        }
        self.reseed_journal(p);
        Some(report)
    }

    // ------------------------------------------------------------------
    // Crash-restart recovery: journal, fencing, rejoin
    // ------------------------------------------------------------------

    /// Arm the per-shard crash-recovery journals, seeding each with a
    /// durable base snapshot of the pages its shard currently owns.
    /// Idempotent; armed automatically by `install_faults` when the plan
    /// carries crash-restart specs.
    pub fn enable_recovery_journal(&mut self) {
        if self.pools.is_empty() || self.journal_armed() {
            return;
        }
        for p in 0..self.pools.len() {
            self.journals[p] = Some(RecoveryJournal::new(self.pool_epochs[p]));
            self.reseed_journal(p);
        }
    }

    /// True once the recovery journals are armed.
    pub fn journal_armed(&self) -> bool {
        self.journals.iter().any(|j| j.is_some())
    }

    /// Shard `p`'s recovery journal, when armed (tests and tooling).
    pub fn journal_for(&self, p: usize) -> Option<&RecoveryJournal> {
        self.journals.get(p).and_then(|j| j.as_ref())
    }

    /// Recovery-plane activity so far (crashes, restarts, replays,
    /// fencings), reset by `begin_timing`.
    pub fn recovery_counters(&self) -> RecoveryCounters {
        self.recovery
    }

    /// False while shard `p` is crashed (volatile state wiped, restart or
    /// failover pending).
    pub fn pool_available_for(&self, p: usize) -> bool {
        !self.pool_down.get(p).copied().unwrap_or(false)
    }

    /// Corrupt the first un-synced entry of shard `p`'s journal, as a torn
    /// write would. Public so tests can model a tear without an injector;
    /// `FaultSpec::TornJournalWrite` routes here via `crash_pool`.
    pub fn tear_journal_tail(&mut self, p: usize) {
        if let Some(j) = self.journals.get_mut(p).and_then(|j| j.as_mut()) {
            j.tear_tail();
        }
    }

    /// Kill shard `p`: its volatile state (page table, residency, pins)
    /// is wiped; the SSD keeps the authoritative swap copies and the
    /// recovery journal survives on durable media — possibly with a torn
    /// tail if the plan says the crash caught a write in flight. Returns
    /// the epoch the shard held at death (the zombie's fencing baseline).
    ///
    /// The shard is unavailable until `failover_to_replica_for` promotes
    /// its backup or `restart_pool` rebuilds it.
    pub fn crash_pool(&mut self, p: usize) -> u64 {
        assert!(
            self.pool_available_for(p),
            "shard {p} is already down; restart it before crashing it again"
        );
        let epoch = self.pool_epochs[p];
        self.recovery.crashes += 1;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::PoolCrashed {
                pool: p as u64,
                epoch,
            },
        );
        if let Some(inj) = self.injector.clone() {
            if inj.torn_tail_for(p) {
                self.tear_journal_tail(p);
            }
        }
        let cap = self.pools[p].capacity();
        self.pools[p] = MemoryPool::new(cap);
        self.pool_down[p] = true;
        self.crash_epochs[p] = Some(epoch);
        epoch
    }

    /// Bring the dead shard's hardware back. Two lives are possible:
    ///
    /// - **primary recovery** — no failover happened while it was down, so
    ///   it rebuilds from the SSD-authoritative base plus a checksummed
    ///   journal replay (discarding a torn tail with a typed event) and
    ///   resumes as primary at a strictly higher epoch;
    /// - **zombie rejoin** — its replica was promoted while it slept. Its
    ///   resume-write carries the epoch it held at death, fencing rejects
    ///   it (`FencedWrite`; no stale write ever lands), and it re-enters
    ///   as a standby replica, caught up by costed re-silvering traffic.
    ///
    /// Either way the shard re-enters placement through the health plane's
    /// Probation→Healthy probe streak when that plane is armed.
    pub fn restart_pool(&mut self, p: usize) -> RestartReport {
        let stale = self.crash_epochs[p]
            .take()
            .unwrap_or_else(|| panic!("shard {p} has no crash to restart from"));
        let report = if self.pool_epochs[p] > stale {
            self.rejoin_as_standby(p, stale)
        } else {
            self.recover_primary(p)
        };
        self.pool_down[p] = false;
        self.recovery.restarts += 1;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::PoolRestarted {
                pool: p as u64,
                epoch: self.pool_epochs[p],
            },
        );
        if let Some(h) = self.health.as_mut() {
            h.begin_probation(p);
        }
        self.reseed_journal(p);
        report
    }

    /// The zombie path of [`Dos::restart_pool`]: the old primary wakes
    /// after its replica was promoted and is fenced back to standby duty.
    fn rejoin_as_standby(&mut self, p: usize, stale: u64) -> RestartReport {
        // The zombie's first act is to resume as primary; the write/ack
        // carries the epoch it held at death and the fence rejects it.
        self.recovery.fenced_writes += 1;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::FencedWrite {
                pool: p as u64,
                stale_epoch: stale,
            },
        );
        let mode = self.ddc_config().replication;
        let mut resilvered = 0u64;
        if mode != ReplicationMode::Off && self.replicas[p].is_none() {
            let mut rep = ReplicatedPool::new(self.pools[p].capacity(), mode);
            let pages = self.owned_pages(p);
            rep.resilver_from(&pages, &self.fabric, &self.ssd, &self.clock);
            resilvered = pages.len() as u64;
            self.replicas[p] = Some(rep);
            self.recovery.resilvered_pages += resilvered;
            self.tracer.emit(
                Lane::Memory,
                TraceEvent::ResilverComplete {
                    pool: p as u64,
                    pages: resilvered,
                },
            );
        }
        RestartReport {
            pool: p,
            epoch: self.pool_epochs[p],
            replay: ReplaySet::default(),
            resilvered_pages: resilvered,
            rejoined_as_standby: true,
            fenced_stale_epoch: Some(stale),
        }
    }

    /// The resume-as-primary path of [`Dos::restart_pool`]: base rebuild
    /// plus idempotent journal replay, then an epoch bump.
    fn recover_primary(&mut self, p: usize) -> RestartReport {
        let (ops, replay, discarded) = match self.journals.get(p).and_then(|j| j.as_ref()) {
            Some(j) => {
                let (ops, set) = j.replayable();
                (ops, set, j.discarded_ops())
            }
            None => (Vec::new(), ReplaySet::default(), Vec::new()),
        };
        if replay.discarded_entries > 0 {
            self.recovery.torn_tails += 1;
            self.tracer.emit(
                Lane::Memory,
                TraceEvent::TornTailDiscarded {
                    entries: replay.discarded_entries,
                    pages: replay.discarded_pages,
                },
            );
        }
        // Reading the journal back from durable media: one page read per
        // entry examined. The torn suffix is read too — verifying (and
        // failing) its checksums is how the tear is detected.
        for _ in 0..(replay.applied_entries + replay.discarded_entries) {
            let d = self.ssd.read_page();
            self.clock.advance(d);
        }
        // Base rebuild: every owned page re-registers over the
        // SSD-authoritative base, so replay's residency ops always land on
        // a mapped page table — even when the page's own registration
        // entry died in the torn tail.
        let pages = self.owned_pages(p);
        for &pid in &pages {
            if !self.pools[p].is_mapped(pid) {
                let fault = self.pools[p].register(pid);
                if fault.storage_writeback {
                    let d = self.ssd.write_page();
                    self.clock.advance(d);
                    self.stats.storage_page_out += 1;
                }
            }
        }
        // Replay, idempotent by construction: registration skips mapped
        // pages and residency ops skip resident ones, so replaying twice
        // equals replaying once.
        let mut replayed_writes: Vec<PageId> = Vec::new();
        for op in ops {
            match op {
                ReplOp::RegisterRange { first, count } => {
                    for i in 0..count {
                        let pid = first.offset(i);
                        if self.pools[p].is_mapped(pid) {
                            continue;
                        }
                        let fault = self.pools[p].register(pid);
                        if fault.storage_writeback {
                            let d = self.ssd.write_page();
                            self.clock.advance(d);
                            self.stats.storage_page_out += 1;
                        }
                    }
                }
                ReplOp::PageWrite(pid) => {
                    let fault = self.pools[p].ensure_resident(pid);
                    if fault.storage_writeback {
                        let d = self.ssd.write_page();
                        self.clock.advance(d);
                        self.stats.storage_page_out += 1;
                    }
                    if fault.storage_read {
                        let d = self.ssd.read_page();
                        self.clock.advance(d);
                        self.stats.storage_page_in += 1;
                    }
                    self.pools[p].mark_dirty(pid);
                    replayed_writes.push(pid);
                }
            }
        }
        self.recovery.replayed_entries += replay.applied_entries;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::JournalReplayed {
                entries: replay.applied_entries,
                pages: replay.applied_pages,
            },
        );
        // Cache reconcile mirrors failover: copies of pages named only by
        // the torn tail lost their write-back lineage with the crash and
        // are dropped without write-back (next touch refaults the
        // authoritative storage copy); surviving copies re-pin in the
        // rebuilt page table.
        let mut lost_list: Vec<PageId> = Vec::new();
        for op in &discarded {
            match *op {
                ReplOp::RegisterRange { first, count } => {
                    for i in 0..count {
                        lost_list.push(first.offset(i));
                    }
                }
                ReplOp::PageWrite(pid) => lost_list.push(pid),
            }
        }
        let lost_set: HashSet<PageId> = lost_list.iter().copied().collect();
        let cached: Vec<PageId> = {
            let mut v: Vec<PageId> = self
                .cache
                .resident()
                .map(|(pid, _)| pid)
                .filter(|&pid| self.owner_of(pid) == p)
                .collect();
            v.sort_unstable();
            v
        };
        for pid in cached {
            if lost_set.contains(&pid) {
                let _ = self.cache.evict(pid);
            } else {
                let fault = self.pools[p].ensure_resident(pid);
                if fault.storage_writeback {
                    let d = self.ssd.write_page();
                    self.clock.advance(d);
                    self.stats.storage_page_out += 1;
                }
                if fault.storage_read {
                    let d = self.ssd.read_page();
                    self.clock.advance(d);
                    self.stats.storage_page_in += 1;
                }
                self.pools[p].pin(pid);
            }
        }
        // A standing replica's un-acked shipping queue lived in the dead
        // primary's memory: drop it, then re-silver every page the replay
        // re-wrote so the backup's acked image tracks the rebuilt primary.
        if let Some(rep) = self.replicas.get_mut(p).and_then(|r| r.as_mut()) {
            rep.drop_pending();
            replayed_writes.sort_unstable();
            replayed_writes.dedup();
            rep.resilver_from(&replayed_writes, &self.fabric, &self.ssd, &self.clock);
            let n = replayed_writes.len() as u64;
            self.recovery.resilvered_pages += n;
            self.tracer.emit(
                Lane::Memory,
                TraceEvent::ResilverComplete {
                    pool: p as u64,
                    pages: n,
                },
            );
        }
        // Restart bumps the epoch: every later life of the shard is
        // recognizably newer than any write or ack the dead one produced.
        self.pool_epochs[p] += 1;
        RestartReport {
            pool: p,
            epoch: self.pool_epochs[p],
            replay,
            resilvered_pages: 0,
            rejoined_as_standby: false,
            fenced_stale_epoch: None,
        }
    }

    /// Pages shard `p` currently owns, in address order (the base set a
    /// rebuild re-registers and a re-silver ships).
    fn owned_pages(&self, p: usize) -> Vec<PageId> {
        self.space
            .mapped_pages()
            .into_iter()
            .filter(|&pid| self.owner_of(pid) == p)
            .collect()
    }

    /// Start a fresh journal life for shard `p` at its current epoch:
    /// entries cleared, then a durable base snapshot of the owned set
    /// appended as maximal contiguous ranges (already on storage, so
    /// synced immediately). No-op while the journal is disarmed.
    fn reseed_journal(&mut self, p: usize) {
        if self.journals.get(p).is_none_or(|j| j.is_none()) {
            return;
        }
        let pages = self.owned_pages(p);
        let epoch = self.pool_epochs[p];
        let j = self.journals[p].as_mut().expect("checked above");
        j.restart(epoch);
        let mut i = 0;
        while i < pages.len() {
            let mut n = 1;
            while i + n < pages.len() && pages[i + n].0 == pages[i].0 + n as u64 {
                n += 1;
            }
            j.append_synced(ReplOp::RegisterRange {
                first: pages[i],
                count: n as u64,
            });
            i += n;
        }
    }

    // ------------------------------------------------------------------
    // Integrity plane: seal / verify / repair / scrub
    // ------------------------------------------------------------------

    /// True once the integrity plane is active (the fault plan carries
    /// corruption specs, a scrub schedule is configured, or a scrub pass
    /// was requested explicitly).
    pub fn integrity_enabled(&self) -> bool {
        self.integrity.enabled
    }

    /// Turn the integrity plane on, sealing a checksum over every page
    /// currently mapped. Idempotent; pages allocated later are sealed at
    /// registration.
    pub fn enable_integrity(&mut self) {
        if self.integrity.enabled {
            return;
        }
        self.integrity.enabled = true;
        for pid in self.space.mapped_pages() {
            let sum = PageChecksum::of(self.space.page_view(pid));
            self.integrity.sums.insert(pid, sum);
        }
    }

    /// The sealed checksum of one page, if the integrity plane holds one.
    pub fn page_checksum(&self, pid: PageId) -> Option<PageChecksum> {
        self.integrity.sums.get(&pid).copied()
    }

    /// Unrecoverable-corruption events in the current timed window.
    pub fn data_loss_count(&self) -> u64 {
        self.integrity.data_loss
    }

    /// The page most recently declared unrecoverable, if any.
    pub fn last_data_loss(&self) -> Option<PageId> {
        self.integrity.last_loss
    }

    /// Seal `pid`'s checksum over its current image and clear any stale
    /// mark. Called wherever a page image becomes authoritative: at
    /// registration and at every dirty write-back.
    fn seal_checksum(&mut self, pid: PageId) {
        if !self.integrity.enabled {
            return;
        }
        let sum = PageChecksum::of(self.space.page_view(pid));
        self.integrity.sums.insert(pid, sum);
        self.integrity.stale.remove(&pid);
    }

    /// Record that a legitimate write invalidated `pid`'s sealed checksum.
    /// O(1) per write; the actual reseal happens lazily at the next
    /// verification point.
    fn mark_stale(&mut self, pid: PageId) {
        if self.integrity.enabled {
            self.integrity.stale.insert(pid);
        }
    }

    /// Re-seal a legitimately written page before anything compares its
    /// bytes against the (outdated) checksum. A page with pending
    /// corruption is never resealed: every access path verifies before it
    /// writes, so corruption is always detected before a write could mark
    /// the page stale — blessing corrupt bytes is impossible.
    fn reseal_if_stale(&mut self, pid: PageId) {
        if !self.integrity.enabled
            || !self.integrity.stale.contains(&pid)
            || self.integrity.pending.contains_key(&pid)
        {
            return;
        }
        let sum = PageChecksum::of(self.space.page_view(pid));
        self.integrity.sums.insert(pid, sum);
        self.integrity.stale.remove(&pid);
    }

    /// Poll the fault plan for corruption of `pid` at `point`; on a hit,
    /// XOR the drawn mask into the authoritative image and record the edit
    /// so a repair can invert it exactly.
    fn poll_corruption(&mut self, point: CorruptionPoint, pid: PageId) {
        if !self.integrity.enabled || self.integrity.lost.contains(&pid) {
            return;
        }
        let Some(inj) = self.injector.clone() else {
            return;
        };
        if let Some(c) = inj.corruption(point, pid.0) {
            self.space.page_view_mut(pid)[c.offset] ^= c.mask;
            self.integrity.pending.entry(pid).or_default().push(c);
        }
    }

    /// A dirty page's image just landed in the memory pool: seal its
    /// checksum (the write-back travels checksummed, so the journal records
    /// a good image), journal the write to the replica, then poll for a
    /// scribble corrupting the landed copy — latent until the next read or
    /// scrub pass.
    fn page_out_to_pool(&mut self, pid: PageId) {
        self.seal_checksum(pid);
        let p = self.owner_of(pid);
        self.replicate_for(p, ReplOp::PageWrite(pid));
        self.poll_corruption(CorruptionPoint::Pool, pid);
    }

    /// Verify `pid` against its sealed checksum at a pool boundary (`via`
    /// selects the device that reports the mismatch) and repair on failure.
    /// Pages without pending corruption are skipped: all corruption in the
    /// simulation flows through [`Dos::poll_corruption`], so the pending
    /// map is the ground truth the checksum mechanism is validated against
    /// — and skipping clean pages keeps the plane cheap.
    fn check_page(&mut self, pid: PageId, via: CorruptionPoint) {
        if !self.integrity.enabled
            || self.integrity.lost.contains(&pid)
            || !self.integrity.pending.contains_key(&pid)
        {
            return;
        }
        let Some(&sum) = self.integrity.sums.get(&pid) else {
            return;
        };
        let mismatch = {
            let view = self.space.page_view(pid);
            match via {
                CorruptionPoint::Fabric => self.fabric.verify_delivery(pid.0, view, sum.0).is_err(),
                CorruptionPoint::Ssd => self.ssd.verify_read(pid.0, view, sum.0).is_err(),
                CorruptionPoint::Pool => {
                    let bad = !sum.matches(view);
                    if bad {
                        self.tracer
                            .emit(Lane::Memory, TraceEvent::ChecksumMismatch { page: pid.0 });
                    }
                    bad
                }
            }
        };
        if !mismatch {
            // Self-cancelling XOR edits left the image intact.
            self.integrity.pending.remove(&pid);
            return;
        }
        self.integrity.detected += 1;
        if !self.pools.is_empty() {
            let p = self.owner_of(pid);
            self.pool_integrity[p].detected += 1;
        }
        self.repair_or_lose(pid);
    }

    /// The repair lattice: a clean page re-reads its authoritative storage
    /// copy; a dirty page falls back to the replica's acked journal copy;
    /// with neither, the page is unrecoverable — the loss is surfaced as a
    /// typed error by the runtime, never as a wrong answer.
    fn repair_or_lose(&mut self, pid: PageId) {
        let shard = self.owner_of(pid);
        let dirty = self.pools.get(shard).is_some_and(|pool| pool.is_dirty(pid));
        let source = if !dirty {
            let d = self.ssd.read_page();
            self.clock.advance(d);
            self.stats.storage_page_in += 1;
            Some(RepairSource::Ssd)
        } else if self
            .replicas
            .get(shard)
            .and_then(|r| r.as_ref())
            .is_some_and(|r| r.has_acked_copy(pid))
        {
            // Re-fetch the acked page image from the backup pool.
            let d = self.fabric.send(
                MsgClass::Replication,
                PAGE_SIZE + crate::replica::PAGE_WRITE_HEADER_BYTES,
            );
            self.clock.advance(d);
            Some(RepairSource::Replica)
        } else {
            None
        };
        match source {
            Some(source) => {
                // Invert every recorded XOR edit: the image is restored
                // bit-exactly and matches its sealed checksum again.
                if let Some(edits) = self.integrity.pending.remove(&pid) {
                    let view = self.space.page_view_mut(pid);
                    for c in edits {
                        view[c.offset] ^= c.mask;
                    }
                }
                self.integrity.repaired += 1;
                if !self.pools.is_empty() {
                    self.pool_integrity[shard].repaired += 1;
                }
                match source {
                    RepairSource::Ssd => self.integrity.repaired_ssd += 1,
                    RepairSource::Replica => self.integrity.repaired_replica += 1,
                }
                self.tracer.emit(
                    Lane::Memory,
                    TraceEvent::PageRepaired {
                        page: pid.0,
                        source,
                    },
                );
            }
            None => {
                // The bytes stay corrupt (there is nothing to restore them
                // from); the lost set stops re-detection so the loss is
                // counted exactly once.
                self.integrity.data_loss += 1;
                if !self.pools.is_empty() {
                    self.pool_integrity[shard].data_loss += 1;
                }
                self.integrity.pending.remove(&pid);
                self.integrity.lost.insert(pid);
                self.integrity.last_loss = Some(pid);
                self.tracer
                    .emit(Lane::Memory, TraceEvent::DataLoss { page: pid.0 });
            }
        }
    }

    /// One scrub pass over every mapped page, paced to the configured
    /// bytes-per-second budget. Pool- or cache-resident pages are verified
    /// with a streaming DRAM read; storage-resident pages pay a device read
    /// — which is also where latent sector rot is discovered before any
    /// foreground reader touches it. Returns `(pages_scanned, detected)`.
    pub fn scrub_pass(&mut self) -> (u64, u64) {
        self.enable_integrity();
        let pages = self.space.mapped_pages();
        let before = self.integrity.detected;
        if self.is_disaggregated() {
            // The compute side kicks the pass off with one control message.
            let d = self.fabric.send(MsgClass::Control, 16);
            self.clock.advance(d);
        }
        let floor_ns =
            (PAGE_SIZE as u128 * 1_000_000_000 / self.scrub.bytes_per_sec.max(1) as u128) as u64;
        for pid in pages.iter().copied() {
            let start = self.clock.now();
            let on_storage = if self.pools.is_empty() {
                self.swapped.contains(&pid) && self.cache.probe(pid).is_none()
            } else {
                let pool = &self.pools[self.owner_of(pid)];
                pool.is_mapped(pid) && !pool.is_resident(pid)
            };
            self.reseal_if_stale(pid);
            if on_storage {
                let d = self.ssd.read_page();
                self.clock.advance(d);
                self.stats.storage_page_in += 1;
                self.poll_corruption(CorruptionPoint::Ssd, pid);
                self.check_page(pid, CorruptionPoint::Ssd);
            } else {
                self.clock.advance(self.dram.sequential_page);
                self.check_page(pid, CorruptionPoint::Pool);
            }
            // Pace the walk so the scrubber never exceeds its budget.
            let spent = self.clock.now().since(start).as_nanos();
            if floor_ns > spent {
                self.clock
                    .advance(SimDuration::from_nanos(floor_ns - spent));
            }
        }
        let scanned = pages.len() as u64;
        let detected = self.integrity.detected - before;
        self.integrity.scrub_passes += 1;
        self.integrity.scrub_pages += scanned;
        self.integrity.scrub_detected += detected;
        self.tracer.emit(
            Lane::Memory,
            TraceEvent::ScrubPass {
                pages: scanned,
                detected,
            },
        );
        (scanned, detected)
    }

    /// Run a scrub pass if the configured schedule says one is due (no-op
    /// without a schedule). Reschedules from the pass's completion time.
    /// Returns true if a pass ran.
    pub fn scrub_if_due(&mut self) -> bool {
        let Some(every) = self.scrub.every else {
            return false;
        };
        let next = self
            .integrity
            .next_scrub
            .unwrap_or(SimTime(every.as_nanos()));
        if self.clock.now() < next {
            self.integrity.next_scrub = Some(next);
            return false;
        }
        self.scrub_pass();
        self.integrity.next_scrub = Some(SimTime(self.clock.now().as_nanos() + every.as_nanos()));
        true
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Snapshot every kernel-level ledger into one named-counter registry
    /// (`paging.*`, `net.*`, `ssd.*`). Upper layers extend the same
    /// registry with their own counters (see `Runtime::metrics`).
    pub fn metrics(&self) -> ddc_sim::MetricsRegistry {
        let mut m = ddc_sim::MetricsRegistry::new();
        let s = self.stats;
        m.set("paging.cache_hits", s.cache_hits);
        m.set("paging.cache_misses", s.cache_misses);
        m.set("paging.remote_page_in", s.remote_page_in);
        m.set("paging.remote_page_out", s.remote_page_out);
        m.set("paging.storage_page_in", s.storage_page_in);
        m.set("paging.storage_page_out", s.storage_page_out);
        m.set("paging.evictions", s.evictions);
        m.set("paging.mem_side_accesses", s.mem_side_accesses);
        let ledger = self.fabric.ledger();
        for (name_msgs, name_bytes, c) in [
            ("net.page_in.messages", "net.page_in.bytes", ledger.page_in),
            (
                "net.page_out.messages",
                "net.page_out.bytes",
                ledger.page_out,
            ),
            (
                "net.coherence.messages",
                "net.coherence.bytes",
                ledger.coherence,
            ),
            (
                "net.rpc_request.messages",
                "net.rpc_request.bytes",
                ledger.rpc_request,
            ),
            (
                "net.rpc_response.messages",
                "net.rpc_response.bytes",
                ledger.rpc_response,
            ),
            ("net.control.messages", "net.control.bytes", ledger.control),
            (
                "net.replication.messages",
                "net.replication.bytes",
                ledger.replication,
            ),
        ] {
            m.set(name_msgs, c.messages);
            m.set(name_bytes, c.bytes);
        }
        if let Some(c) = self.replication_counters() {
            m.set("replication.journal_appends", c.journal_appends);
            m.set("replication.ship_messages", c.ship_messages);
            m.set("replication.pages_shipped", c.pages_shipped);
            m.set("replication.acks", c.acks);
            m.set(
                "replication.pending_entries",
                self.replicas
                    .iter()
                    .flatten()
                    .map(|r| r.pending_entries() as u64)
                    .sum::<u64>(),
            );
            m.set(
                "failover.count",
                self.failovers.iter().filter(|f| f.is_some()).count() as u64,
            );
        }
        if let Some(r) = self.failover_report() {
            m.set("failover.epoch", r.new_epoch);
            m.set("failover.lost_pages", r.lost_pages);
            m.set("failover.pages_refetched", r.refetched_pages);
            m.set("failover.cache_invalidations", r.cache_invalidations);
        }
        if self.pools.len() > 1 {
            // Per-shard instances, named dynamically so the registry stays
            // shard-count agnostic.
            for (p, f) in self.failovers.iter().enumerate() {
                if let Some((r, _)) = f {
                    m.set(format!("failover.pool{p}.epoch"), r.new_epoch);
                    m.set(format!("failover.pool{p}.lost_pages"), r.lost_pages);
                }
            }
        }
        if let Some(h) = &self.health {
            m.set("health.transitions", h.transitions());
            m.set("health.quarantines", h.quarantines());
            m.set("health.reintegrations", h.reintegrations());
            m.set("health.probes", h.probes());
        }
        if self.journal_armed() || self.recovery.crashes > 0 {
            let r = &self.recovery;
            m.set("recovery.crashes", r.crashes);
            m.set("recovery.restarts", r.restarts);
            m.set("recovery.replayed_entries", r.replayed_entries);
            m.set("recovery.torn_tails", r.torn_tails);
            m.set("recovery.resilvered_pages", r.resilvered_pages);
            m.set("recovery.fenced_writes", r.fenced_writes);
        }
        let ssd = self.ssd.counters();
        m.set("ssd.page_reads", ssd.page_reads);
        m.set("ssd.page_writes", ssd.page_writes);
        m.set("ssd.bulk_reads", ssd.bulk_reads);
        m.set("ssd.bulk_bytes_read", ssd.bulk_bytes_read);
        if self.integrity.enabled {
            let i = &self.integrity;
            m.set("integrity.detected", i.detected);
            m.set("integrity.repaired", i.repaired);
            m.set("integrity.repaired_from_ssd", i.repaired_ssd);
            m.set("integrity.repaired_from_replica", i.repaired_replica);
            m.set("integrity.data_loss", i.data_loss);
            m.set("integrity.pages_sealed", i.sums.len() as u64);
            m.set("scrub.passes", i.scrub_passes);
            m.set("scrub.pages_scanned", i.scrub_pages);
            m.set("scrub.detected", i.scrub_detected);
            if self.pools.len() > 1 {
                for (p, pi) in self.pool_integrity.iter().enumerate() {
                    m.set(format!("integrity.pool{p}.detected"), pi.detected);
                    m.set(format!("integrity.pool{p}.repaired"), pi.repaired);
                    m.set(format!("integrity.pool{p}.data_loss"), pi.data_loss);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_sim::DdcConfig;

    fn tiny_ddc(cache_pages: usize, pool_pages: usize) -> Dos {
        let cfg = DdcConfig {
            compute_cache_bytes: cache_pages * PAGE_SIZE,
            memory_pool_bytes: pool_pages * PAGE_SIZE,
            ..Default::default()
        };
        Dos::new_disaggregated(cfg)
    }

    #[test]
    fn hit_is_cheap_miss_pays_fabric() {
        let mut dos = tiny_ddc(4, 64);
        let a = dos.alloc(PAGE_SIZE);
        dos.begin_timing();

        let t0 = dos.clock().now();
        let _ = dos.read_u64(a, Pattern::Rand); // miss
        let miss_cost = dos.clock().now().since(t0);

        let t1 = dos.clock().now();
        let _ = dos.read_u64(a, Pattern::Rand); // hit
        let hit_cost = dos.clock().now().since(t1);

        assert!(
            miss_cost.as_nanos() > 10 * hit_cost.as_nanos(),
            "miss {miss_cost} vs hit {hit_cost}"
        );
        let s = dos.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.remote_page_in, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut dos = tiny_ddc(1, 64);
        let a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 7, Pattern::Rand); // page 0 dirty in cache
        let _ = dos.read_u64(a.offset(PAGE_SIZE as u64), Pattern::Rand); // evicts page 0
        let s = dos.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.remote_page_out, 1, "dirty page flowed back");
        assert_eq!(dos.fabric().ledger().page_out.messages, 1);
        // Data survives eviction.
        assert_eq!(dos.read_u64(a, Pattern::Rand), 7);
    }

    #[test]
    fn pool_overflow_spills_to_storage() {
        // Pool of 4 pages, cache of 1: allocate 8 pages, then touch them
        // all; early pages must come back from storage.
        let mut dos = tiny_ddc(1, 4);
        let a = dos.alloc(8 * PAGE_SIZE);
        dos.begin_timing();
        for i in 0..8u64 {
            dos.write_u64(a.offset(i * PAGE_SIZE as u64), i, Pattern::Rand);
        }
        let s = dos.stats();
        assert!(s.storage_page_in > 0, "some faults recursed to storage");
        // Values are still correct afterwards.
        for i in 0..8u64 {
            assert_eq!(
                dos.read_u64(a.offset(i * PAGE_SIZE as u64), Pattern::Rand),
                i
            );
        }
    }

    #[test]
    fn monolithic_first_touch_is_free_refault_reads_swap() {
        let cfg = MonolithicConfig {
            dram_bytes: PAGE_SIZE, // 1-page DRAM
            ..Default::default()
        };
        let mut dos = Dos::new_monolithic(cfg);
        let a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 1, Pattern::Rand); // first touch page 0: no SSD read
        assert_eq!(dos.stats().storage_page_in, 0);
        dos.write_u64(a.offset(PAGE_SIZE as u64), 2, Pattern::Rand); // evicts dirty page 0
        assert_eq!(dos.stats().storage_page_out, 1);
        let _ = dos.read_u64(a, Pattern::Rand); // refault page 0 from swap
        assert_eq!(dos.stats().storage_page_in, 1);
        assert_eq!(dos.read_u64(a, Pattern::Rand), 1);
    }

    #[test]
    fn sequential_reads_charge_less_than_random() {
        let mut dos = tiny_ddc(64, 256);
        let bytes = 32 * PAGE_SIZE;
        let a = dos.alloc(bytes);
        // Warm the cache so only DRAM costs differ.
        let _ = dos.read_bytes(a, bytes, Pattern::Seq);
        dos.begin_timing();
        let (_, seq) = {
            let start = dos.clock().now();
            let _ = dos.read_bytes(a, bytes, Pattern::Seq);
            ((), dos.clock().now().since(start))
        };
        let start = dos.clock().now();
        for i in 0..(bytes / 8) {
            let _ = dos.read_u64(a.offset((i * 8) as u64), Pattern::Rand);
        }
        let rand = dos.clock().now().since(start);
        assert!(
            rand.as_nanos() > 20 * seq.as_nanos(),
            "rand {rand} vs seq {seq}"
        );
    }

    #[test]
    fn microbench_calibration_random_access_cost() {
        // LegoOS-class remote fault paths cost ~3-6us end to end; with the
        // calibrated fault overhead + wire time the model should land
        // around 3.4us per (mostly missing) random access.
        // Scale down: 512-page working set, 2% cache = 10 pages.
        let mut dos = tiny_ddc(10, 1024);
        let pages = 512u64;
        let a = dos.alloc(pages as usize * PAGE_SIZE);
        dos.begin_timing();
        // Deterministic pseudo-random page sequence.
        let mut x = 0x9e3779b97f4a7c15u64;
        let n = 20_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pg = x % pages;
            let _ = dos.read_u64(a.offset(pg * PAGE_SIZE as u64 + 8), Pattern::Rand);
        }
        let per_access = dos.clock().now().as_nanos() / n;
        assert!(
            (2_800..4_200).contains(&per_access),
            "per-access cost was {per_access}ns, expected ~3.4us"
        );
        let hit_rate = dos.stats().hit_rate().unwrap();
        assert!(hit_rate < 0.06, "hit rate was {hit_rate}");
    }

    #[test]
    fn syncmem_flushes_dirty_only() {
        let mut dos = tiny_ddc(8, 64);
        let a = dos.alloc(4 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 1, Pattern::Rand);
        let _ = dos.read_u64(a.offset(PAGE_SIZE as u64), Pattern::Rand);
        dos.write_u64(a.offset(3 * PAGE_SIZE as u64), 2, Pattern::Rand);
        assert_eq!(dos.syncmem(), 2);
        assert_eq!(dos.stats().remote_page_out, 2);
        assert_eq!(dos.syncmem(), 0, "second sync finds nothing dirty");
        // Pages stay resident: all hits now.
        let before = dos.stats().cache_hits;
        let _ = dos.read_u64(a, Pattern::Rand);
        assert_eq!(dos.stats().cache_hits, before + 1);
    }

    #[test]
    fn coherence_evict_and_downgrade() {
        let mut dos = tiny_ddc(8, 64);
        let a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 1, Pattern::Rand);
        let _ = dos.read_u64(a.offset(PAGE_SIZE as u64), Pattern::Rand);

        let pid0 = a.page();
        let pid1 = a.offset(PAGE_SIZE as u64).page();

        let e = dos.coherence_evict(pid0).unwrap();
        assert!(e.dirty);
        assert_eq!(dos.stats().remote_page_out, 1);
        assert!(dos.cache_probe(pid0).is_none());

        let e = dos.coherence_downgrade(pid1).unwrap();
        assert!(!e.dirty, "read-only page flushes nothing");
        assert_eq!(dos.stats().remote_page_out, 1);
        let after = dos.cache_probe(pid1).unwrap();
        assert!(!after.writable);

        assert!(dos.coherence_evict(PageId(999_999)).is_none());
    }

    #[test]
    fn resident_list_is_sorted_with_permissions() {
        let mut dos = tiny_ddc(8, 64);
        let a = dos.alloc(3 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a.offset(2 * PAGE_SIZE as u64), 5, Pattern::Rand);
        let _ = dos.read_u64(a, Pattern::Rand);
        let list = dos.resident_list();
        assert_eq!(list.len(), 2);
        assert!(list.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(list[0], (a.page(), false));
        assert_eq!(list[1], (a.offset(2 * PAGE_SIZE as u64).page(), true));
    }

    #[test]
    fn flush_clear_and_prefetch_roundtrip() {
        let mut dos = tiny_ddc(8, 64);
        let a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 1, Pattern::Rand);
        let resident = dos.flush_and_clear_cache();
        assert_eq!(resident.len(), 1);
        assert_eq!(dos.cache_len(), 0);
        assert_eq!(dos.stats().remote_page_out, 1);
        dos.prefetch_pages(&resident);
        assert_eq!(dos.cache_len(), 1);
        let before = dos.stats().cache_hits;
        let _ = dos.read_u64(a, Pattern::Rand);
        assert_eq!(dos.stats().cache_hits, before + 1);
    }

    #[test]
    fn prefetch_accelerates_sequential_scans_but_not_random_probes() {
        // §2.2: OS-level prefetching helps streaming but is "on its own,
        // insufficient" for the random accesses that dominate the paper's
        // workloads.
        let scan = |prefetch: usize, random: bool| -> SimDuration {
            let mut dos = Dos::new_disaggregated(DdcConfig {
                compute_cache_bytes: 16 * PAGE_SIZE,
                memory_pool_bytes: 1024 * PAGE_SIZE,
                prefetch_pages: prefetch,
                ..Default::default()
            });
            let pages = 256u64;
            let a = dos.alloc(pages as usize * PAGE_SIZE);
            dos.begin_timing();
            if random {
                let mut x = 0x243F_6A88u64;
                for _ in 0..pages {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let _ = dos.read_u64(a.offset((x % pages) * PAGE_SIZE as u64), Pattern::Rand);
                }
            } else {
                let _ = dos.read_bytes(a, pages as usize * PAGE_SIZE, Pattern::Seq);
            }
            dos.clock().now().since(ddc_sim::SimTime::ZERO)
        };
        let seq_off = scan(0, false);
        let seq_on = scan(8, false);
        assert!(
            seq_on.ratio(seq_off) < 0.7,
            "prefetch should cut sequential scan time: {seq_on} vs {seq_off}"
        );
        let rand_off = scan(0, true);
        let rand_on = scan(8, true);
        let delta = rand_on.ratio(rand_off);
        assert!(
            (0.9..1.5).contains(&delta),
            "prefetch must not help random probes: {delta:.2}"
        );
    }

    #[test]
    fn mem_side_access_skips_the_fabric() {
        let mut dos = tiny_ddc(8, 64);
        let a = dos.alloc(4 * PAGE_SIZE);
        dos.begin_timing();
        dos.mem_touch_range(a, 4 * PAGE_SIZE, false, Pattern::Seq);
        let ledger = dos.fabric().ledger();
        assert_eq!(ledger.total_messages(), 0, "in-pool access, no network");
        assert_eq!(dos.stats().mem_side_accesses, 4);
        assert_eq!(dos.stats().cache_misses, 0);
    }

    fn injector_for(dos: &Dos, plan: ddc_sim::FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, dos.clock().clone(), dos.tracer().clone())
    }

    #[test]
    fn clean_page_corruption_repairs_from_storage() {
        let mut dos = tiny_ddc(4, 64);
        let a = dos.alloc(PAGE_SIZE);
        let plan =
            ddc_sim::FaultPlan::new(7).fabric_bit_flips(SimTime::ZERO, ddc_sim::FOREVER, 1.0);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.begin_timing();
        // Never-written page: the fault-in delivery is corrupted in flight,
        // detected on arrival, and repaired from the storage copy.
        assert_eq!(dos.read_u64(a, Pattern::Rand), 0, "repair restored zeros");
        let m = dos.metrics();
        assert_eq!(m.get("integrity.detected"), Some(1));
        assert_eq!(m.get("integrity.repaired_from_ssd"), Some(1));
        assert_eq!(m.get("integrity.data_loss"), Some(0));
        assert_eq!(dos.data_loss_count(), 0);
    }

    #[test]
    fn dirty_page_corruption_without_replica_is_data_loss() {
        let mut dos = tiny_ddc(4, 64);
        let a = dos.alloc(PAGE_SIZE);
        let plan =
            ddc_sim::FaultPlan::new(7).fabric_bit_flips(SimTime::ZERO, ddc_sim::FOREVER, 1.0);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.write_u64(a, 7, Pattern::Rand);
        dos.drop_cache(); // dirty write-back: the pool copy is now the only one
        dos.begin_timing();
        let _ = dos.read_u64(a, Pattern::Rand); // corrupted on re-delivery
        let m = dos.metrics();
        assert_eq!(m.get("integrity.detected"), Some(1));
        assert_eq!(m.get("integrity.repaired"), Some(0));
        assert_eq!(m.get("integrity.data_loss"), Some(1));
        assert_eq!(dos.last_data_loss(), Some(a.page()));
        // Exactly-once: re-reading the lost page does not re-detect.
        dos.drop_cache();
        let _ = dos.read_u64(a, Pattern::Rand);
        assert_eq!(dos.metrics().get("integrity.detected"), Some(1));
    }

    #[test]
    fn dirty_page_corruption_with_replica_repairs_from_journal() {
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            replication: ReplicationMode::Synchronous,
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        let a = dos.alloc(PAGE_SIZE);
        let plan =
            ddc_sim::FaultPlan::new(7).fabric_bit_flips(SimTime::ZERO, ddc_sim::FOREVER, 1.0);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.write_u64(a, 7, Pattern::Rand);
        dos.drop_cache(); // write-back journals an acked copy to the backup
        dos.begin_timing();
        assert_eq!(dos.read_u64(a, Pattern::Rand), 7, "repaired transparently");
        let m = dos.metrics();
        assert_eq!(m.get("integrity.detected"), Some(1));
        assert_eq!(m.get("integrity.repaired_from_replica"), Some(1));
        assert_eq!(m.get("integrity.data_loss"), Some(0));
    }

    #[test]
    fn pool_scribble_is_latent_until_the_next_access() {
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            replication: ReplicationMode::Synchronous,
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        let a = dos.alloc(PAGE_SIZE);
        let plan = ddc_sim::FaultPlan::new(11).pool_scribbles(SimTime::ZERO, ddc_sim::FOREVER, 1.0);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.write_u64(a, 42, Pattern::Rand);
        dos.drop_cache(); // the landed pool copy is scribbled, silently
        assert_eq!(dos.metrics().get("integrity.detected"), Some(0));
        dos.begin_timing();
        assert_eq!(dos.read_u64(a, Pattern::Rand), 42, "detected and repaired");
        let m = dos.metrics();
        assert_eq!(m.get("integrity.detected"), Some(1));
        assert_eq!(m.get("integrity.repaired_from_replica"), Some(1));
    }

    #[test]
    fn scrub_finds_latent_storage_rot_before_any_reader() {
        let mut dos = tiny_ddc(1, 2);
        let a = dos.alloc(4 * PAGE_SIZE); // 4 pages in a 2-page pool: spills
        for i in 0..4u64 {
            dos.write_u64(a.offset(i * PAGE_SIZE as u64), i + 1, Pattern::Rand);
        }
        dos.drop_cache();
        let plan =
            ddc_sim::FaultPlan::new(3).ssd_latent_sectors(SimTime::ZERO, ddc_sim::FOREVER, 1.0);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.begin_timing();
        let t0 = dos.clock().now();
        let (scanned, detected) = dos.scrub_pass();
        assert_eq!(scanned, 4);
        assert!(detected > 0, "storage-resident pages were rotten");
        assert!(dos.clock().now() > t0, "scrubbing charges virtual time");
        let m = dos.metrics();
        assert_eq!(m.get("scrub.passes"), Some(1));
        assert_eq!(m.get("scrub.pages_scanned"), Some(4));
        assert_eq!(
            m.get("integrity.detected").unwrap(),
            m.get("integrity.repaired").unwrap() + m.get("integrity.data_loss").unwrap()
        );
        // Every value survives: rot was repaired from the device copy.
        for i in 0..4u64 {
            assert_eq!(
                dos.read_u64(a.offset(i * PAGE_SIZE as u64), Pattern::Rand),
                i + 1
            );
        }
    }

    #[test]
    fn scheduled_scrub_fires_on_the_virtual_clock() {
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            scrub: ScrubConfig {
                every: Some(SimDuration::from_micros(100)),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        assert!(dos.integrity_enabled(), "scrub schedule enables the plane");
        let _a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        assert!(!dos.scrub_if_due(), "not due at t=0");
        dos.charge(SimDuration::from_micros(150));
        assert!(dos.scrub_if_due(), "due after the interval elapsed");
        assert!(!dos.scrub_if_due(), "rescheduled from completion");
        assert_eq!(dos.metrics().get("scrub.passes"), Some(1));
    }

    #[test]
    fn integrity_plane_is_absent_unless_enabled() {
        let mut dos = tiny_ddc(4, 64);
        let a = dos.alloc(PAGE_SIZE);
        dos.begin_timing();
        dos.write_u64(a, 9, Pattern::Rand);
        assert!(!dos.integrity_enabled());
        assert_eq!(dos.metrics().get("integrity.detected"), None);
        assert_eq!(dos.page_checksum(a.page()), None);
    }

    #[test]
    fn mem_side_write_marks_pool_dirty_then_spills_to_storage() {
        let mut dos = tiny_ddc(1, 2);
        let a = dos.alloc(3 * PAGE_SIZE); // 3 pages in a 2-page pool
        dos.begin_timing();
        // Touch all three pages memory-side with writes; the pool must
        // spill dirty pages to storage.
        dos.mem_touch_range(a, 3 * PAGE_SIZE, true, Pattern::Seq);
        dos.mem_touch_range(a, 3 * PAGE_SIZE, true, Pattern::Seq);
        let s = dos.stats();
        assert!(s.storage_page_out > 0, "dirty spills occurred");
        assert!(s.storage_page_in > 0, "refaults from storage occurred");
    }

    #[test]
    fn degraded_shard_is_charged_and_quarantine_steers_placement() {
        use ddc_sim::PoolHealthState;
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            pools: 2,
            placement: PlacementPolicy::LoadBalance,
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        let plan =
            ddc_sim::FaultPlan::new(11).degraded_pool(0, SimTime::ZERO, ddc_sim::FOREVER, 50);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        assert!(
            dos.health().is_some(),
            "fail-slow spec arms the health plane"
        );

        // LoadBalance stripes pages across the two shards; find one page on
        // each and compare memory-side touch costs.
        let a = dos.alloc(2 * PAGE_SIZE);
        dos.begin_timing();
        let (on_sick, on_healthy) = if dos.pool_owner(a.page()) == Some(0) {
            (a, a.offset(PAGE_SIZE as u64))
        } else {
            (a.offset(PAGE_SIZE as u64), a)
        };
        let t0 = dos.clock().now();
        dos.mem_touch_range(on_healthy, PAGE_SIZE, false, Pattern::Seq);
        let healthy_cost = dos.clock().now().since(t0);
        let t1 = dos.clock().now();
        dos.mem_touch_range(on_sick, PAGE_SIZE, false, Pattern::Seq);
        let sick_cost = dos.clock().now().since(t1);
        assert_eq!(sick_cost.as_nanos(), 50 * healthy_cost.as_nanos());
        assert_eq!(inj.injected_count(), 1, "onset noted once, not per touch");

        // Drive the detector with what the runtime would observe: shard 0's
        // service times sit 50x over its first-window baseline.
        {
            let h = dos.health_mut().expect("armed");
            let w = h.config().window;
            for _ in 0..w {
                h.observe_service(0, SimDuration::from_nanos(100));
            }
            for _ in 0..2 * w {
                h.observe_service(0, SimDuration::from_nanos(5_000));
            }
            assert_eq!(h.state(0), PoolHealthState::Quarantined);
        }

        // Fresh allocations steer around the quarantined shard.
        let b = dos.alloc(4 * PAGE_SIZE);
        for i in 0..4u64 {
            assert_eq!(
                dos.pool_owner(b.offset(i * PAGE_SIZE as u64).page()),
                Some(1),
                "page {i} placed on the healthy shard"
            );
        }
        let m = dos.metrics();
        assert_eq!(m.get("health.quarantines"), Some(1));
        assert_eq!(m.get("health.transitions"), Some(2));
    }

    #[test]
    fn probe_pays_the_degraded_cost_the_healthy_model_predicts_without() {
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            pools: 2,
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        let plan = ddc_sim::FaultPlan::new(3).degraded_pool(1, SimTime::ZERO, ddc_sim::FOREVER, 8);
        let inj = injector_for(&dos, plan);
        dos.install_faults(&inj);
        dos.begin_timing();

        let healthy = dos.healthy_probe_cost();
        let clean = dos.probe_pool(0);
        let sick = dos.probe_pool(1);
        assert_eq!(clean, healthy, "cost model matches a clean probe exactly");
        assert!(
            sick.as_nanos() >= 2 * healthy.as_nanos(),
            "degraded probe {sick} clears the 2x verdict line over {healthy}"
        );
        // RTT observation is analytic: it never advances the clock.
        let before = dos.clock().now();
        let rtt = dos.control_rtt();
        assert_eq!(dos.clock().now(), before);
        assert!(rtt.as_nanos() > 0);
    }

    #[test]
    fn recovery_metrics_stay_absent_until_the_plane_arms() {
        let dos = tiny_ddc(4, 64);
        assert_eq!(dos.metrics().get("recovery.crashes"), None);
        assert!(!dos.journal_armed());
    }

    #[test]
    fn crash_restart_replays_the_journal_and_preserves_every_byte() {
        let mut dos = tiny_ddc(4, 64);
        dos.enable_recovery_journal();
        let a = dos.alloc(8 * PAGE_SIZE);
        for i in 0..8u64 {
            dos.write_u64(a.offset(i * PAGE_SIZE as u64), 100 + i, Pattern::Rand);
        }
        dos.drop_cache(); // the write-backs land in the journal
        let epoch_before = dos.pool_epoch();
        let stale = dos.crash_pool(0);
        assert_eq!(stale, epoch_before);
        assert!(!dos.pool_available_for(0), "down until restarted");
        let report = dos.restart_pool(0);
        assert!(dos.pool_available_for(0));
        assert!(!report.rejoined_as_standby);
        assert!(report.replay.applied_entries > 0, "the journal replayed");
        assert_eq!(report.replay.discarded_entries, 0, "intact tail");
        assert_eq!(report.epoch, epoch_before + 1, "restart bumps the epoch");
        for i in 0..8u64 {
            assert_eq!(
                dos.read_u64(a.offset(i * PAGE_SIZE as u64), Pattern::Rand),
                100 + i
            );
        }
        let m = dos.metrics();
        assert_eq!(m.get("recovery.crashes"), Some(1));
        assert_eq!(m.get("recovery.restarts"), Some(1));
        assert_eq!(m.get("recovery.torn_tails"), Some(0));
    }

    #[test]
    fn torn_tail_restart_discards_bounded_loss_with_a_typed_event() {
        let mut dos = tiny_ddc(4, 64);
        dos.enable_recovery_journal();
        let a = dos.alloc(6 * PAGE_SIZE);
        for i in 0..6u64 {
            dos.write_u64(a.offset(i * PAGE_SIZE as u64), i, Pattern::Rand);
        }
        dos.drop_cache();
        let unsynced = dos.journal_for(0).expect("armed").unsynced_len();
        assert!(unsynced > 0, "test needs an un-synced tail to tear");
        dos.tear_journal_tail(0);
        dos.crash_pool(0);
        let report = dos.restart_pool(0);
        assert!(report.replay.discarded_entries > 0, "the tear was detected");
        assert!(
            report.replay.discarded_entries <= crate::recovery::JOURNAL_SYNC_BATCH as u64,
            "loss is bounded by the sync batch"
        );
        assert_eq!(report.replay.discarded_entries, unsynced as u64);
        // The authoritative bytes never lived in the torn tail.
        for i in 0..6u64 {
            assert_eq!(
                dos.read_u64(a.offset(i * PAGE_SIZE as u64), Pattern::Rand),
                i
            );
        }
        assert_eq!(dos.metrics().get("recovery.torn_tails"), Some(1));
    }

    #[test]
    fn zombie_primary_is_fenced_and_rejoins_as_standby() {
        let cfg = DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            replication: ReplicationMode::Synchronous,
            ..Default::default()
        };
        let mut dos = Dos::new_disaggregated(cfg);
        dos.enable_recovery_journal();
        let a = dos.alloc(4 * PAGE_SIZE);
        for i in 0..4u64 {
            dos.write_u64(a.offset(i * PAGE_SIZE as u64), 7 + i, Pattern::Rand);
        }
        dos.drop_cache();
        let stale = dos.crash_pool(0);
        let fo = dos.failover_to_replica_for(0).expect("replica standing by");
        assert!(dos.pool_available_for(0), "promotion restores service");
        assert_eq!(fo.new_epoch, stale + 1);
        assert!(!dos.has_replica_for(0), "the backup was consumed");

        // The dead hardware wakes with the pre-crash epoch: fenced.
        let report = dos.restart_pool(0);
        assert!(report.rejoined_as_standby);
        assert_eq!(report.fenced_stale_epoch, Some(stale));
        assert_eq!(
            report.epoch, fo.new_epoch,
            "a standby rejoin never bumps the primary's epoch"
        );
        assert!(
            report.resilvered_pages >= 4,
            "catch-up shipped the live set"
        );
        assert!(dos.has_replica_for(0), "redundancy is restored");
        for i in 0..4u64 {
            assert_eq!(
                dos.read_u64(a.offset(i * PAGE_SIZE as u64), Pattern::Rand),
                7 + i
            );
        }
        let m = dos.metrics();
        assert_eq!(m.get("recovery.fenced_writes"), Some(1));
        assert!(m.get("recovery.resilvered_pages").unwrap() >= 4);
        assert!(
            dos.fabric().ledger().replication.bytes > 4 * PAGE_SIZE as u64,
            "re-silvering is costed replication traffic"
        );
    }

    #[test]
    fn epochs_stay_strictly_monotone_when_a_pool_dies_twice() {
        let mut dos = tiny_ddc(4, 64);
        dos.enable_recovery_journal();
        let a = dos.alloc(4 * PAGE_SIZE);
        dos.write_u64(a, 1, Pattern::Rand);
        dos.drop_cache();
        let mut last = dos.pool_epoch();
        for round in 0..2u64 {
            dos.crash_pool(0);
            let r = dos.restart_pool(0);
            assert!(
                r.epoch > last,
                "life {round} regressed {last} -> {}",
                r.epoch
            );
            last = r.epoch;
            dos.write_u64(a, 2 + round, Pattern::Rand);
            dos.drop_cache();
        }
        assert_eq!(dos.pool_epoch(), 2, "two restarts, two bumps");
        assert_eq!(dos.read_u64(a, Pattern::Rand), 3);
        let m = dos.metrics();
        assert_eq!(m.get("recovery.crashes"), Some(2));
        assert_eq!(m.get("recovery.restarts"), Some(2));
    }
}
