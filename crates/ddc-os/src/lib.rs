//! # ddc-os — a LegoOS-style disaggregated operating system, simulated
//!
//! This crate reproduces the substrate the TELEPORT paper builds on: a
//! *disaggregated OS* in which a process's entire address space lives in the
//! memory pool, the compute pool's DRAM is only a page cache, and page
//! faults recurse compute → memory → storage (§2.1 of the paper). It also
//! provides the *monolithic* topology ("Linux" in the paper's figures),
//! where the same access paths hit local DRAM and spill to a local swap
//! device.
//!
//! Layering:
//!
//! - [`page`] — virtual addresses and page identities;
//! - [`addrspace`] — the authoritative backing bytes + bump allocation;
//! - [`lru`] / [`cache`] — the compute-local page cache;
//! - [`pool`] — the memory pool: finite capacity, LRU spill to storage;
//! - [`replica`] — memory-pool replication: a backup pool fed by an
//!   epoch-stamped journal, enabling crash-consistent failover;
//! - [`recovery`] — the pool-local crash-restart journal: epoch-stamped,
//!   checksummed entries replayed over the SSD-authoritative base, with
//!   torn tails detected and discarded;
//! - [`fair`] — deficit-round-robin fair queueing for the memory-side
//!   workqueue under multi-tenant load;
//! - [`kernel`] — [`Dos`], the metered access paths, coherence hooks, and
//!   the page-integrity plane (checksum seal/verify, detect-and-repair,
//!   background scrubbing) consumed by the `teleport` crate;
//! - [`stats`] — paging counters.
//!
//! Everything is deterministic; all costs land on a shared
//! [`ddc_sim::Clock`].

pub mod addrspace;
pub mod cache;
pub mod fair;
pub mod health;
pub mod kernel;
pub mod lru;
pub mod page;
pub mod pool;
pub mod recovery;
pub mod replica;
pub mod stats;

pub use addrspace::AddressSpace;
pub use cache::{CacheEntry, Evicted, PageCache};
pub use fair::DrrQueue;
pub use health::{HealthConfig, HealthMonitor};
pub use kernel::{Dos, FileId, Pattern, Topology};
pub use page::{pages_spanned, PageChecksum, PageId, VAddr};
pub use pool::{MemoryPool, PoolFault};
pub use recovery::{JournalEntry, RecoveryCounters, RecoveryJournal, RestartReport};
pub use replica::{FailoverReport, ReplOp, ReplicatedPool, ReplicationCounters};
pub use stats::PagingStats;
