//! Property tests for the disaggregated OS: data integrity under arbitrary
//! access traces, residency invariants, and platform transparency.

use ddc_os::{Dos, PageCache, PageId, Pattern};
use ddc_sim::{DdcConfig, MonolithicConfig, PAGE_SIZE};
use proptest::prelude::*;

/// One step of a random access trace over a fixed allocation.
#[derive(Debug, Clone)]
enum Op {
    Read { off: usize, len: usize },
    Write { off: usize, val: u8, len: usize },
}

fn op_strategy(alloc_bytes: usize) -> impl Strategy<Value = Op> {
    let reads = (0..alloc_bytes - 64, 1usize..64).prop_map(|(off, len)| Op::Read { off, len });
    let writes = (0..alloc_bytes - 64, any::<u8>(), 1usize..64)
        .prop_map(|(off, val, len)| Op::Write { off, val, len });
    prop_oneof![reads, writes]
}

const ALLOC: usize = 16 * PAGE_SIZE;

fn run_trace(dos: &mut Dos, ops: &[Op]) -> Vec<u8> {
    let a = dos.alloc(ALLOC);
    let mut shadow = vec![0u8; ALLOC];
    for op in ops {
        match *op {
            Op::Read { off, len } => {
                let got = dos
                    .read_bytes(a.offset(off as u64), len, Pattern::Rand)
                    .to_vec();
                assert_eq!(got, shadow[off..off + len], "read mismatch at {off}");
            }
            Op::Write { off, val, len } => {
                let data = vec![val; len];
                dos.write_bytes(a.offset(off as u64), &data, Pattern::Rand);
                shadow[off..off + len].copy_from_slice(&data);
            }
        }
    }
    // Final full readback.
    dos.read_bytes(a, ALLOC, Pattern::Seq).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary traces on a thrashing DDC return exactly the bytes a
    /// shadow buffer predicts, and leave the bookkeeping consistent.
    #[test]
    fn ddc_data_integrity_under_thrash(ops in prop::collection::vec(op_strategy(ALLOC), 1..80)) {
        let mut dos = Dos::new_disaggregated(DdcConfig {
            compute_cache_bytes: 2 * PAGE_SIZE, // brutal thrashing
            memory_pool_bytes: 8 * PAGE_SIZE,   // forces storage spill too
            ..Default::default()
        });
        let final_state = run_trace(&mut dos, &ops);
        let stats = dos.stats();
        prop_assert!(dos.cache_len() <= 2, "cache over capacity");
        prop_assert!(stats.cache_hits + stats.cache_misses > 0);
        // Every miss moved a page in.
        prop_assert!(stats.remote_page_in >= stats.cache_misses);
        prop_assert_eq!(final_state.len(), ALLOC);
    }

    /// Identical traces on the monolithic and disaggregated platforms
    /// produce identical data (only cost differs), and the DDC is never
    /// cheaper than the monolith on the same trace.
    #[test]
    fn platforms_agree_on_data(ops in prop::collection::vec(op_strategy(ALLOC), 1..60)) {
        let mut mono = Dos::new_monolithic(MonolithicConfig {
            dram_bytes: ALLOC * 2,
            ..Default::default()
        });
        let mut ddc = Dos::new_disaggregated(DdcConfig {
            compute_cache_bytes: 4 * PAGE_SIZE,
            memory_pool_bytes: ALLOC * 2,
            ..Default::default()
        });
        let a = run_trace(&mut mono, &ops);
        let b = run_trace(&mut ddc, &ops);
        prop_assert_eq!(a, b);
        prop_assert!(ddc.clock().now() >= mono.clock().now());
    }

    /// The page cache never exceeds capacity and eviction victims are
    /// exactly the least-recently-used pages (model-based check).
    #[test]
    fn page_cache_matches_reference_model(
        accesses in prop::collection::vec((0u64..40, any::<bool>()), 1..200),
        capacity in 1usize..8,
    ) {
        let mut cache = PageCache::new(capacity);
        // Reference: a vector ordered MRU-first.
        let mut model: Vec<(u64, bool)> = Vec::new();
        for &(page, write) in &accesses {
            let pid = PageId(page);
            let hit = cache.access(pid, write);
            let model_pos = model.iter().position(|&(p, _)| p == page);
            prop_assert_eq!(hit, model_pos.is_some(), "hit/miss divergence");
            match model_pos {
                Some(i) => {
                    let (p, d) = model.remove(i);
                    model.insert(0, (p, d || write));
                }
                None => {
                    let victim = cache.insert(pid, write);
                    if model.len() == capacity {
                        let (vp, vd) = model.pop().unwrap();
                        let v = victim.expect("model expected eviction");
                        prop_assert_eq!(v.page, PageId(vp));
                        prop_assert_eq!(v.dirty, vd);
                    } else {
                        prop_assert!(victim.is_none());
                    }
                    model.insert(0, (page, write));
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.len());
        }
        // Dirty sets agree.
        let mut model_dirty: Vec<PageId> =
            model.iter().filter(|&&(_, d)| d).map(|&(p, _)| PageId(p)).collect();
        model_dirty.sort_unstable();
        prop_assert_eq!(cache.dirty_pages(), model_dirty);
    }

    /// Allocations never overlap and are all independently addressable.
    #[test]
    fn allocations_are_disjoint(sizes in prop::collection::vec(1usize..3 * PAGE_SIZE, 1..12)) {
        let mut dos = Dos::new_monolithic(MonolithicConfig::default());
        let allocs: Vec<_> = sizes.iter().map(|&s| (dos.alloc(s), s)).collect();
        // Write a distinct tag at the start and end of each allocation.
        for (i, &(addr, size)) in allocs.iter().enumerate() {
            dos.write_bytes(addr, &[i as u8], Pattern::Rand);
            dos.write_bytes(addr.offset(size as u64 - 1), &[i as u8 ^ 0xFF], Pattern::Rand);
        }
        for (i, &(addr, size)) in allocs.iter().enumerate() {
            prop_assert_eq!(dos.read_bytes(addr, 1, Pattern::Rand)[0], i as u8);
            prop_assert_eq!(
                dos.read_bytes(addr.offset(size as u64 - 1), 1, Pattern::Rand)[0],
                i as u8 ^ 0xFF
            );
        }
    }

    /// syncmem is idempotent and clears all dirtiness.
    #[test]
    fn syncmem_idempotent(writes in prop::collection::vec((0usize..15, any::<u64>()), 1..30)) {
        let mut dos = Dos::new_disaggregated(DdcConfig {
            compute_cache_bytes: 32 * PAGE_SIZE,
            memory_pool_bytes: 64 * PAGE_SIZE,
            ..Default::default()
        });
        let a = dos.alloc(16 * PAGE_SIZE);
        for &(page, val) in &writes {
            dos.write_u64(a.offset((page * PAGE_SIZE) as u64), val, Pattern::Rand);
        }
        let flushed = dos.syncmem();
        prop_assert!(flushed > 0);
        prop_assert_eq!(dos.syncmem(), 0);
        // Data survives.
        for &(page, _) in &writes {
            let _ = dos.read_u64(a.offset((page * PAGE_SIZE) as u64), Pattern::Rand);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Prefetching changes only time, never data: arbitrary traces return
    /// identical bytes with prefetch on and off.
    #[test]
    fn prefetch_is_data_transparent(ops in prop::collection::vec(op_strategy(ALLOC), 1..60)) {
        let mk = |prefetch: usize| {
            Dos::new_disaggregated(DdcConfig {
                compute_cache_bytes: 4 * PAGE_SIZE,
                memory_pool_bytes: ALLOC * 2,
                prefetch_pages: prefetch,
                ..Default::default()
            })
        };
        let mut plain = mk(0);
        let mut prefetched = mk(8);
        let a = run_trace(&mut plain, &ops);
        let b = run_trace(&mut prefetched, &ops);
        prop_assert_eq!(a, b);
        prop_assert!(prefetched.cache_len() <= 4);
    }
}
