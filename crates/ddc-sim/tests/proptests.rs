//! Property tests for the simulation substrate.

use ddc_sim::{multiplex_makespan, Fabric, Interleaver, MsgClass, NetConfig, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Transfer time is monotone in message size and never below latency.
    #[test]
    fn transfer_time_monotone(a in 0usize..10_000_000, b in 0usize..10_000_000) {
        let net = NetConfig::default();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(net.transfer_time(lo) <= net.transfer_time(hi));
        prop_assert!(net.transfer_time(lo) >= net.latency);
    }

    /// The fabric ledger exactly accounts every message and byte.
    #[test]
    fn ledger_accounts_all_traffic(sizes in prop::collection::vec(0usize..100_000, 0..50)) {
        let fab = Fabric::new(NetConfig::default());
        let mut bytes = 0u64;
        for (i, &sz) in sizes.iter().enumerate() {
            let class = match i % 3 {
                0 => MsgClass::PageIn,
                1 => MsgClass::PageOut,
                _ => MsgClass::RpcRequest,
            };
            let _ = fab.send(class, sz);
            bytes += sz as u64;
        }
        let ledger = fab.ledger();
        prop_assert_eq!(ledger.total_messages(), sizes.len() as u64);
        prop_assert_eq!(ledger.total_bytes(), bytes);
    }

    /// The interleaver always steps the lane with the minimum clock, and
    /// the makespan equals the maximum lane clock.
    #[test]
    fn interleaver_min_clock_schedule(
        durations in prop::collection::vec(
            prop::collection::vec(1u64..1_000, 1..20),
            1..6,
        )
    ) {
        let mut il = Interleaver::new(durations.len());
        let mut queues: Vec<std::collections::VecDeque<u64>> =
            durations.iter().map(|d| d.iter().copied().collect()).collect();
        let mut expected_totals: Vec<u64> =
            durations.iter().map(|d| d.iter().sum()).collect();
        while let Some(lane) = il.next_lane() {
            // The chosen lane's clock is minimal among unfinished lanes.
            for other in 0..durations.len() {
                if !il.is_finished(other) {
                    prop_assert!(il.clock_of(lane) <= il.clock_of(other));
                }
            }
            match queues[lane].pop_front() {
                Some(d) => il.advance(lane, SimDuration::from_nanos(d)),
                None => il.finish(lane),
            }
        }
        let max_total = expected_totals.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(il.makespan().as_nanos(), max_total);
        expected_totals.clear();
    }

    /// Multiplexed makespan is bounded below by both the longest job and
    /// perfect parallelism over the real core count, and above by full
    /// serialization (plus nothing: overhead only slows concurrent modes,
    /// which are still bounded by the serial sum).
    #[test]
    fn multiplex_bounds(
        jobs_ns in prop::collection::vec(1_000u64..50_000_000, 1..16),
        contexts in 1usize..6,
        cores in 1usize..4,
    ) {
        let jobs: Vec<SimDuration> =
            jobs_ns.iter().map(|&n| SimDuration::from_nanos(n)).collect();
        let total: u64 = jobs_ns.iter().sum();
        let longest: u64 = jobs_ns.iter().copied().max().unwrap();
        let t = multiplex_makespan(
            &jobs,
            contexts,
            cores,
            SimDuration::from_micros(5),
            SimDuration::from_millis(1),
        );
        prop_assert!(t.as_nanos() >= longest);
        prop_assert!(t.as_nanos() * (contexts.min(cores) as u64) + 1_000 >= total / cores as u64);
        // Never slower than 2x serial (overhead factor is bounded).
        prop_assert!(t.as_nanos() <= total * 2 + 1_000);
    }

    /// SimTime/SimDuration arithmetic is consistent.
    #[test]
    fn time_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime(a) + SimDuration(b);
        prop_assert_eq!(t.since(SimTime(a)), SimDuration(b));
        prop_assert_eq!(SimTime(a).since(t), SimDuration::ZERO);
    }
}
