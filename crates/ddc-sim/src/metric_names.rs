//! Central registry of every metric name used across the workspace.
//!
//! Counters in a [`crate::MetricsRegistry`](crate::metrics::MetricsRegistry)
//! are addressed by `&'static str` literals scattered across `ddc-os`,
//! `core`, and the workloads. A typo in one of those literals silently
//! forks a new counter instead of updating the intended one, so
//! `ddc-analyze` cross-checks every metric-shaped string literal in
//! non-test source against this table. Adding a metric therefore means
//! adding it here first; the analyzer fails the build otherwise.
//!
//! Names follow `component.counter[.sub]` with lowercase snake-case
//! segments. Keep the table sorted so diffs stay reviewable.

/// Every metric name the workspace is allowed to emit.
pub const METRIC_NAMES: &[&str] = &[
    "admission.sheds",
    "coherence.backoffs",
    "coherence.pages_written_memside",
    "coherence.round_trips",
    "failover.cache_invalidations",
    "failover.count",
    "failover.epoch",
    "failover.lost_pages",
    "failover.pages_refetched",
    "failover.promotions",
    "faults.injected",
    "health.probe_ns",
    "health.probes",
    "health.quarantines",
    "health.reintegrations",
    "health.transitions",
    "hedge.credit_ns",
    "hedge.fired",
    "hedge.won",
    "integrity.data_loss",
    "integrity.detected",
    "integrity.pages_sealed",
    "integrity.repaired",
    "integrity.repaired_from_replica",
    "integrity.repaired_from_ssd",
    "net.coherence.bytes",
    "net.coherence.messages",
    "net.control.bytes",
    "net.control.messages",
    "net.page_in.bytes",
    "net.page_in.messages",
    "net.page_out.bytes",
    "net.page_out.messages",
    "net.replication.bytes",
    "net.replication.messages",
    "net.rpc_request.bytes",
    "net.rpc_request.messages",
    "net.rpc_response.bytes",
    "net.rpc_response.messages",
    "paging.cache_hits",
    "paging.cache_misses",
    "paging.evictions",
    "paging.mem_side_accesses",
    "paging.remote_page_in",
    "paging.remote_page_out",
    "paging.storage_page_in",
    "paging.storage_page_out",
    "pushdown.calls",
    "pushdown.deadline_misses",
    "recovery.crashes",
    "recovery.fenced_writes",
    "recovery.replayed_entries",
    "recovery.resilvered_pages",
    "recovery.restarts",
    "recovery.torn_tails",
    "replication.acks",
    "replication.journal_appends",
    "replication.pages_shipped",
    "replication.pending_entries",
    "replication.ship_messages",
    "resilience.fallbacks",
    "resilience.retries",
    "rpc.wakeups",
    "scrub.detected",
    "scrub.pages_scanned",
    "scrub.passes",
    "serve.admitted",
    "serve.arrived",
    "serve.availability_ppm",
    "serve.best_effort.completed",
    "serve.best_effort.shed",
    "serve.burstable.completed",
    "serve.burstable.shed",
    "serve.busy_ns",
    "serve.completed",
    "serve.contexts",
    "serve.deadline_misses",
    "serve.failed",
    "serve.guaranteed.completed",
    "serve.guaranteed.shed",
    "serve.hedge_wins",
    "serve.hedges",
    "serve.makespan_ns",
    "serve.queue_peak_depth",
    "serve.shed",
    "serve.tenants",
    "serve.utilization_ppm",
    "ssd.bulk_bytes_read",
    "ssd.bulk_reads",
    "ssd.page_reads",
    "ssd.page_writes",
    "topology.fanout_pushdowns",
    "topology.pools",
    "topology.routed_pushdowns",
    "trace.admission_sheds",
    "trace.cancels",
    "trace.cancels_declined",
    "trace.checksum_mismatches",
    "trace.coherence_msgs",
    "trace.corruptions_injected",
    "trace.data_losses",
    "trace.deadline_exceededs",
    "trace.evicts",
    "trace.fail_slows",
    "trace.fanout_merges",
    "trace.faults_injected",
    "trace.fenced_writes",
    "trace.health_transitions",
    "trace.hedges_fired",
    "trace.hedges_won",
    "trace.journal_replays",
    "trace.net_msgs",
    "trace.page_faults",
    "trace.pages_repaired",
    "trace.pool_crashes",
    "trace.pool_promotions",
    "trace.pool_reintegrations",
    "trace.pool_restarts",
    "trace.pool_routeds",
    "trace.pushdown_fanouts",
    "trace.pushdown_steps",
    "trace.races_detected",
    "trace.recoveries",
    "trace.replica_acks",
    "trace.replica_ships",
    "trace.resilver_completes",
    "trace.scrub_passes",
    "trace.session_admits",
    "trace.session_arrives",
    "trace.session_completes",
    "trace.ssd_ios",
    "trace.syncmems",
    "trace.tenant_throttleds",
    "trace.timeouts",
    "trace.torn_tails",
];

/// True if `name` is a registered metric name.
pub fn is_registered(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_unique() {
        for w in METRIC_NAMES.windows(2) {
            assert!(w[0] < w[1], "{} must sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn lookup_works() {
        assert!(is_registered("paging.cache_hits"));
        assert!(is_registered("trace.races_detected"));
        assert!(!is_registered("paging.cache_hitz"));
    }
}
