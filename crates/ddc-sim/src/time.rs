//! Virtual time for the simulation.
//!
//! All performance numbers in this reproduction are *simulated*: every page
//! movement, RPC, coherence message, SSD access, and per-element CPU cost
//! advances a virtual clock measured in nanoseconds. Real (wall-clock) time
//! plays no role in any reported result, which keeps every experiment
//! deterministic and machine-independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`. Saturates at zero if `earlier` is later,
    /// which only happens on misuse; saturating keeps the simulator total.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self / other` as a dimensionless ratio (speedup factor).
    /// Returns `f64::INFINITY` when `other` is zero.
    #[inline]
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    /// Human-readable rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimDuration(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimDuration::from_nanos(500);
        let b = SimDuration::from_nanos(200);
        assert_eq!((a + b).as_nanos(), 700);
        assert_eq!((a - b).as_nanos(), 300);
        assert_eq!((b - a).as_nanos(), 0, "subtraction saturates");
        assert_eq!((a * 4).as_nanos(), 2000);
        assert_eq!((a / 2).as_nanos(), 250);
    }

    #[test]
    fn time_advances_and_measures() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(2);
        assert_eq!(t.as_nanos(), 2_000);
        assert_eq!(t.since(SimTime::ZERO).as_nanos(), 2_000);
        assert_eq!(SimTime::ZERO.since(t).as_nanos(), 0, "since saturates");
    }

    #[test]
    fn ratio_handles_zero() {
        let a = SimDuration::from_nanos(100);
        assert_eq!(a.ratio(SimDuration::from_nanos(50)), 2.0);
        assert!(a.ratio(SimDuration::ZERO).is_infinite());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.50us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let parts = [
            SimDuration::from_nanos(1),
            SimDuration::from_nanos(2),
            SimDuration::from_nanos(3),
        ];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total.as_nanos(), 6);
    }
}
