//! The storage pool / local SSD device.
//!
//! A thin stateful wrapper over [`SsdConfig`] that
//! additionally counts operations, so experiments can report how much work
//! spilled to storage (the paper's Fig 1a / 14 / 15 all hinge on the gap
//! between SSD spill and remote-memory paging).

use std::cell::RefCell;
use std::rc::Rc;

use crate::config::{SsdConfig, PAGE_SIZE};
use crate::faults::{FaultInjector, IntegrityError};
use crate::time::SimDuration;
use crate::trace::{fnv1a, Lane, TraceEvent, Tracer};

/// Operation counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsdCounters {
    pub page_reads: u64,
    pub page_writes: u64,
    pub bulk_reads: u64,
    pub bulk_bytes_read: u64,
}

/// A cloneable handle to a simulated NVMe device.
#[derive(Debug, Clone)]
pub struct Ssd {
    cfg: SsdConfig,
    counters: Rc<RefCell<SsdCounters>>,
    tracer: Tracer,
    injector: Rc<RefCell<Option<FaultInjector>>>,
}

impl Ssd {
    pub fn new(cfg: SsdConfig) -> Self {
        Ssd::with_tracer(cfg, Tracer::disconnected())
    }

    /// A device whose operations are recorded as [`TraceEvent::SsdIo`] on
    /// the shared trace stream.
    pub fn with_tracer(cfg: SsdConfig, tracer: Tracer) -> Self {
        Ssd {
            cfg,
            counters: Rc::new(RefCell::new(SsdCounters::default())),
            tracer,
            injector: Rc::new(RefCell::new(None)),
        }
    }

    /// Attach a fault injector: from now on, operations consult the
    /// injector's plan for transient errors and latency storms. Shared
    /// across all clones of this device.
    pub fn set_injector(&self, inj: FaultInjector) {
        *self.injector.borrow_mut() = Some(inj);
    }

    /// Apply the active fault plan to one operation that would take `base`
    /// without faults. A latency storm or a grinding device (fail-slow)
    /// multiplies the device time; a transient error costs one failed
    /// attempt plus a device-level retry (recorded as a second
    /// [`TraceEvent::SsdIo`] so the trace shows the attempt → fault →
    /// retry sequence).
    fn disrupt(&self, base: SimDuration, write: bool, bytes: u64) -> SimDuration {
        let d = match self.injector.borrow().as_ref() {
            Some(inj) => inj.ssd_disruption(),
            None => return base,
        };
        let mut t = base * d.storm_factor as u64 * d.grind_factor as u64;
        if d.transient_error {
            self.tracer
                .emit(Lane::Storage, TraceEvent::SsdIo { write, bytes });
            t = t * 2;
        }
        t
    }

    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Page-in one 4 KB page via the swap path (queue depth 1).
    #[must_use]
    pub fn read_page(&self) -> SimDuration {
        self.counters.borrow_mut().page_reads += 1;
        self.tracer.emit(
            Lane::Storage,
            TraceEvent::SsdIo {
                write: false,
                bytes: PAGE_SIZE as u64,
            },
        );
        self.disrupt(self.cfg.page_io_time(), false, PAGE_SIZE as u64)
    }

    /// Page-out one 4 KB page via the swap path.
    #[must_use]
    pub fn write_page(&self) -> SimDuration {
        self.counters.borrow_mut().page_writes += 1;
        self.tracer.emit(
            Lane::Storage,
            TraceEvent::SsdIo {
                write: true,
                bytes: PAGE_SIZE as u64,
            },
        );
        self.disrupt(self.cfg.page_io_time(), true, PAGE_SIZE as u64)
    }

    /// Bulk sequential read of `bytes` (database load, graph ingest): one
    /// device latency, then streaming bandwidth.
    #[must_use]
    pub fn read_bulk(&self, bytes: usize) -> SimDuration {
        let mut c = self.counters.borrow_mut();
        c.bulk_reads += 1;
        c.bulk_bytes_read += bytes as u64;
        drop(c);
        self.tracer.emit(
            Lane::Storage,
            TraceEvent::SsdIo {
                write: false,
                bytes: bytes as u64,
            },
        );
        self.disrupt(self.cfg.sequential_time(bytes), false, bytes as u64)
    }

    /// Verify a page image read from the device against the checksum sealed
    /// when it was written. A mismatch is a latent sector error / torn
    /// write discovered at read time; the typed error is emitted as
    /// [`TraceEvent::ChecksumMismatch`] and handed to the kernel for repair.
    pub fn verify_read(
        &self,
        page: u64,
        bytes: &[u8],
        expected: u64,
    ) -> Result<(), IntegrityError> {
        if fnv1a(bytes) == expected {
            return Ok(());
        }
        self.tracer
            .emit(Lane::Storage, TraceEvent::ChecksumMismatch { page });
        Err(IntegrityError { page })
    }

    pub fn counters(&self) -> SsdCounters {
        *self.counters.borrow()
    }

    pub fn reset_counters(&self) {
        *self.counters.borrow_mut() = SsdCounters::default();
    }

    /// Total bytes moved by page-granular swap traffic.
    pub fn swap_bytes(&self) -> u64 {
        let c = self.counters();
        (c.page_reads + c.page_writes) * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_io_is_latency_dominated() {
        let ssd = Ssd::new(SsdConfig::default());
        let t = ssd.read_page();
        assert!(t >= SsdConfig::default().qd1_latency);
        assert_eq!(ssd.counters().page_reads, 1);
    }

    #[test]
    fn bulk_read_amortizes_latency() {
        let ssd = Ssd::new(SsdConfig::default());
        let bulk = ssd.read_bulk(64 * PAGE_SIZE);
        let mut paged = SimDuration::ZERO;
        for _ in 0..64 {
            paged += ssd.read_page();
        }
        assert!(bulk < paged / 4, "bulk {bulk} should beat paged {paged}");
        assert_eq!(ssd.counters().bulk_bytes_read, (64 * PAGE_SIZE) as u64);
    }

    #[test]
    fn handles_share_counters_and_reset() {
        let a = Ssd::new(SsdConfig::default());
        let b = a.clone();
        let _ = a.write_page();
        let _ = b.read_page();
        assert_eq!(a.swap_bytes(), 2 * PAGE_SIZE as u64);
        a.reset_counters();
        assert_eq!(b.counters(), SsdCounters::default());
    }
}
