//! Shareable virtual clock handles.
//!
//! A [`Clock`] is a cheaply clonable handle to a single virtual timeline.
//! The disaggregated OS, the TELEPORT kernel, and the application layers all
//! hold clones of the same clock so that every charged cost lands on one
//! timeline. Multi-threaded experiments give each logical thread its own
//! clock ("lane") and combine them with the [`crate::event`] engine.

use std::cell::Cell;
use std::rc::Rc;

use crate::time::{SimDuration, SimTime};

/// A handle to a virtual timeline. Cloning shares the underlying clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Rc<Cell<u64>>,
}

impl Clock {
    /// A fresh clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }

    /// Advance the clock by `d`.
    #[inline]
    pub fn advance(&self, d: SimDuration) {
        self.now.set(self.now.get() + d.0);
    }

    /// Move the clock forward to `t` if `t` is later than now; otherwise do
    /// nothing. Used when a lane blocks on a resource that frees at `t`.
    #[inline]
    pub fn advance_to(&self, t: SimTime) {
        if t.0 > self.now.get() {
            self.now.set(t.0);
        }
    }

    /// Reset to zero. Only used by test and benchmark setup.
    pub fn reset(&self) {
        self.now.set(0);
    }

    /// Elapsed time since `start`.
    #[inline]
    pub fn elapsed_since(&self, start: SimTime) -> SimDuration {
        self.now().since(start)
    }

    /// Run `f` and return its result along with the virtual time it charged.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration) {
        let start = self.now();
        let r = f();
        (r, self.elapsed_since(start))
    }

    /// True if `other` is a handle to the same underlying timeline.
    pub fn same_timeline(&self, other: &Clock) -> bool {
        Rc::ptr_eq(&self.now, &other.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_a_timeline() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_nanos(10));
        b.advance(SimDuration::from_nanos(5));
        assert_eq!(a.now().as_nanos(), 15);
        assert_eq!(b.now().as_nanos(), 15);
        assert!(a.same_timeline(&b));
        assert!(!a.same_timeline(&Clock::new()));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance(SimDuration::from_nanos(100));
        c.advance_to(SimTime(50));
        assert_eq!(c.now().as_nanos(), 100, "never moves backwards");
        c.advance_to(SimTime(150));
        assert_eq!(c.now().as_nanos(), 150);
    }

    #[test]
    fn measure_reports_charged_time() {
        let c = Clock::new();
        let (val, dur) = c.measure(|| {
            c.advance(SimDuration::from_micros(2));
            42
        });
        assert_eq!(val, 42);
        assert_eq!(dur.as_nanos(), 2_000);
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = Clock::new();
        c.advance(SimDuration::from_secs(1));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
