//! # ddc-sim — simulation substrate for disaggregated data centers
//!
//! This crate provides the deterministic, virtual-time foundation on which
//! the rest of the TELEPORT reproduction is built:
//!
//! - [`time`] / [`clock`] — virtual nanosecond timelines. All reported
//!   performance is simulated time; wall-clock time never enters a result.
//! - [`config`] — the cost model of the disaggregated data center,
//!   calibrated from the paper's testbed (56 Gbps / 1.2 µs InfiniBand,
//!   2.1 GHz Xeons, NVMe SSD at 3 GB/s seq / 600 K IOPS).
//! - [`net`] — the fabric: prices messages and keeps a per-class ledger
//!   (page traffic, coherence messages, RPCs), which regenerates the paper's
//!   network statistics.
//! - [`ssd`] — the storage pool / swap device.
//! - [`event`] — deterministic interleaving of logical threads and the
//!   queueing model for parallel pushdown contexts.
//! - [`stats`] — small aggregation helpers for the harness.
//! - [`trace`] — deterministic structured event log (ring buffer, running
//!   digest, pluggable sink) threaded through every layer, plus the
//!   [`MetricsRegistry`] of named monotonic counters.
//! - [`faults`] — seeded, deterministic fault injection: a declarative
//!   [`FaultPlan`] of scheduled/probabilistic faults executed by a
//!   [`FaultInjector`] that the fabric, the SSD, and the runtime poll.
//!
//! Everything here is single-threaded and deterministic by construction:
//! shared components are `Rc`-based handles, and scheduling decisions break
//! ties by index. Running an experiment twice produces identical numbers.

pub mod clock;
pub mod config;
pub mod event;
pub mod faults;
pub mod load;
pub mod metric_names;
pub mod net;
pub mod ssd;
pub mod stats;
pub mod time;
pub mod trace;

pub use clock::Clock;
pub use config::{
    ConfigError, CpuConfig, DdcConfig, DramConfig, HeartbeatConfig, MonolithicConfig, NetConfig,
    PlacementPolicy, ReplicationMode, ScrubConfig, SsdConfig, PAGE_SIZE,
};
pub use event::{multiplex_makespan, Interleaver};
pub use faults::{
    env_seed, Corruption, CorruptionPoint, FaultInjector, FaultPlan, FaultSpec, IntegrityError,
    PushdownDisruption, SsdDisruption, FOREVER,
};
pub use load::{ArrivalProcess, LatencyRecorder, QosClass, QOS_CLASSES};
pub use metric_names::METRIC_NAMES;
pub use net::{Fabric, MsgClass, NetLedger};
pub use ssd::Ssd;
pub use stats::{geometric_mean, DurationStats};
pub use time::{SimDuration, SimTime};
pub use trace::{
    fault_label, fnv1a, fnv_fold, health_label, recovery_label, repair_label, CoherenceTransition,
    EventKind, FaultLevel, InjectedFault, Lane, MetricsRegistry, PoolHealthState, RecoveryAction,
    RepairSource, TraceEvent, TraceRecord, TraceSink, Tracer, FNV_OFFSET, FNV_PRIME,
};
