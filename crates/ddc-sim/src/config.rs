//! Configuration of the simulated disaggregated data center.
//!
//! Default constants are calibrated from the paper's testbed (§7):
//! Mellanox ConnectX-3 InfiniBand at 56 Gbps with 1.2 µs latency, 1.6 µs
//! coherence-message latency, Xeon E5-2630L cores at 2.1 GHz, a 1 GB
//! compute-local cache in front of a 128 GB memory pool, and a 1 TB NVMe SSD
//! (3 GB/s sequential, 600 K IOPS random). Experiments scale the *capacities*
//! down while keeping the paper's ratios (e.g. cache ≈ 2% of the working
//! set), which preserves paging behavior.

use crate::time::SimDuration;

/// Size of a virtual memory page. The paper (and LegoOS) use x86-64 4 KB
/// pages; the whole repository assumes this constant.
pub const PAGE_SIZE: usize = 4096;

/// Network fabric parameters (RDMA over InfiniBand in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// One-way latency of an RDMA message.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Latency of a single coherence protocol message. The paper measures
    /// 1.6 µs, slightly above raw network latency, due to handler overhead.
    pub coherence_msg_latency: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: SimDuration::from_nanos(1_200),
            bandwidth_bytes_per_sec: 56.0e9 / 8.0, // 56 Gbps
            coherence_msg_latency: SimDuration::from_nanos(1_600),
        }
    }
}

impl NetConfig {
    /// Time to move `bytes` across the fabric in a single message.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let wire = bytes as f64 / self.bandwidth_bytes_per_sec * 1e9;
        self.latency + SimDuration::from_nanos(wire as u64)
    }
}

/// NVMe SSD model for the storage pool (and for monolithic-server swap).
///
/// Swap-style 4 KB paging runs at queue depth 1 through the kernel block
/// layer, so each page-in pays the device latency rather than the streaming
/// bandwidth — this is why the paper sees 10–80× gaps between SSD spill and
/// remote-memory paging despite the SSD's 3 GB/s headline number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Queue-depth-1 access latency for a 4 KB random read/write.
    pub qd1_latency: SimDuration,
    /// Sequential throughput in bytes per second (paper: 3 GB/s).
    pub seq_bandwidth_bytes_per_sec: f64,
    /// Random 4 KB operations per second (paper: 600 K IOPS).
    pub random_iops: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            qd1_latency: SimDuration::from_micros(70),
            seq_bandwidth_bytes_per_sec: 3.0e9,
            random_iops: 600_000.0,
        }
    }
}

impl SsdConfig {
    /// Cost of paging one 4 KB page in or out via the swap path.
    #[inline]
    pub fn page_io_time(&self) -> SimDuration {
        let stream = PAGE_SIZE as f64 / self.seq_bandwidth_bytes_per_sec * 1e9;
        self.qd1_latency + SimDuration::from_nanos(stream as u64)
    }

    /// Cost of a large sequential transfer of `bytes` (single latency, then
    /// streaming at full bandwidth). Used for bulk load, not for swap.
    #[inline]
    pub fn sequential_time(&self, bytes: usize) -> SimDuration {
        let stream = bytes as f64 / self.seq_bandwidth_bytes_per_sec * 1e9;
        self.qd1_latency + SimDuration::from_nanos(stream as u64)
    }
}

/// DRAM cost model, shared by the compute-local cache and the memory pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// A random (cache-missing) access to one element.
    pub random_access: SimDuration,
    /// Streaming one full 4 KB page (sequential access amortizes row hits
    /// and hardware prefetch).
    pub sequential_page: SimDuration,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            random_access: SimDuration::from_nanos(100),
            sequential_page: SimDuration::from_nanos(250),
        }
    }
}

/// CPU parameters of one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Core clock in GHz. The paper's testbed runs 2.1 GHz; §7.3 throttles
    /// the memory pool down to 0.4 GHz.
    pub clock_ghz: f64,
    /// Number of physical cores available to user work in this pool.
    pub cores: usize,
}

impl CpuConfig {
    pub fn new(clock_ghz: f64, cores: usize) -> Self {
        CpuConfig { clock_ghz, cores }
    }

    /// Time to retire `cycles` cycles on one core of this pool.
    #[inline]
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        SimDuration::from_nanos((cycles as f64 / self.clock_ghz).round() as u64)
    }
}

/// Where a fresh allocation's pages land when the rack has more than one
/// memory pool (`DdcConfig::pools > 1`).
///
/// Placement is decided once, at allocation time, from state that is itself
/// deterministic (capacities, page counts, an allocation counter) — so the
/// same program against the same config always produces the same shard map,
/// and the trace digest stays a meaningful determinism oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The whole allocation goes to the first pool whose shard still has
    /// room for it (falling back to the emptiest shard when none does).
    #[default]
    FirstFit,
    /// Whole allocations rotate round-robin across pools, keeping each
    /// allocation's pages co-located in one shard.
    Locality,
    /// Pages stripe across pools by page number (`page % pools`), spreading
    /// load at the cost of cross-pool fan-out for range operations.
    LoadBalance,
}

impl PlacementPolicy {
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::Locality => "locality",
            PlacementPolicy::LoadBalance => "load-balance",
        }
    }
}

/// A structurally invalid [`DdcConfig`], reported by
/// [`DdcConfig::validate`] instead of a panic deep inside the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `pools == 0`: a rack needs at least one memory pool.
    NoPools,
    /// `memory_contexts == 0`: the memory side needs at least one TELEPORT
    /// user context to execute pushdowns.
    NoContexts,
    /// The pool capacity does not give every shard at least one page.
    PoolTooSmall { pool_pages: usize, pools: usize },
    /// The compute cache cannot hold even a single page.
    CacheTooSmall { cache_bytes: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoPools => write!(f, "pools must be >= 1"),
            ConfigError::NoContexts => write!(f, "memory_contexts must be >= 1"),
            ConfigError::PoolTooSmall { pool_pages, pools } => write!(
                f,
                "memory pool of {pool_pages} pages cannot shard across {pools} pools"
            ),
            ConfigError::CacheTooSmall { cache_bytes } => write!(
                f,
                "compute cache of {cache_bytes} bytes holds no whole page"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How (and whether) the memory pool is replicated to a backup pool.
///
/// Replication ships every page-table mutation and dirty-page write-back
/// over the fabric to a second pool so that losing the primary is
/// survivable: the heartbeat loop promotes the backup instead of
/// kernel-panicking. Replication traffic is metered like any other fabric
/// traffic (`MsgClass::Replication`), so its cost is visible, not free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// No backup pool: losing the memory pool is a kernel panic (§3.2).
    #[default]
    Off,
    /// Every journal entry ships (and is acknowledged) immediately: a
    /// failover loses nothing, at one fabric message per mutation.
    Synchronous,
    /// Journal entries accumulate and ship once `batch_pages` page images
    /// are pending. Cheaper on the wire; the un-shipped tail is the lost
    /// window a failover must re-fetch from storage.
    LogShipped { batch_pages: usize },
}

/// Background integrity scrubber schedule. The disaggregated OS walks every
/// allocated page on the virtual-time clock, re-verifying checksums and
/// repairing what it can, at a bytes-per-second budget charged to the
/// DRAM/SSD cost models — so scrubbing visibly competes with foreground
/// traffic instead of being free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubConfig {
    /// Virtual-time interval between scrub passes. `None` (the default)
    /// disables the background scrubber; explicit `scrub_now` calls still
    /// work.
    pub every: Option<SimDuration>,
    /// Scrub bandwidth budget. Each scanned page is paced to at least
    /// `PAGE_SIZE / bytes_per_sec`, on top of the modeled access cost.
    pub bytes_per_sec: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            every: None,
            bytes_per_sec: 256 << 20, // 256 MB/s: a background trickle
        }
    }
}

/// Heartbeat protocol between the compute pool and the memory pool. The
/// runtime declares the pool dead (a kernel panic for the application)
/// only after `missed_threshold` consecutive unanswered beats, so a flap
/// shorter than `(missed_threshold - 1) × interval` is survivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Spacing between heartbeat probes.
    pub interval: SimDuration,
    /// Consecutive missed beats before the pool is declared dead.
    pub missed_threshold: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_millis(10),
            missed_threshold: 3,
        }
    }
}

/// Full configuration of a simulated DDC deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DdcConfig {
    /// Compute-local DRAM cache capacity in bytes (the paper's default is
    /// 1 GB, ≈2% of a 50 GB working set; experiments here scale it with the
    /// workload to hold that ratio).
    pub compute_cache_bytes: usize,
    /// Memory pool capacity in bytes. Allocations beyond this spill to the
    /// storage pool. With `pools > 1` this is the *aggregate* rack
    /// capacity, split evenly into per-pool shards.
    pub memory_pool_bytes: usize,
    /// Number of memory pools in the rack. 1 (the default) reproduces the
    /// paper's single-pool topology bit-for-bit; larger values shard the
    /// page table across pools per [`PlacementPolicy`].
    pub pools: usize,
    /// Where new allocations land when `pools > 1`. Ignored (identity) for
    /// a single pool.
    pub placement: PlacementPolicy,
    /// Compute pool CPU.
    pub compute_cpu: CpuConfig,
    /// Memory pool controller CPU (low-power in a real DDC; §7.3 varies it).
    pub memory_cpu: CpuConfig,
    /// Number of parallel TELEPORT user contexts in the memory pool
    /// (1 serializes concurrent pushdowns; §7.3 varies it).
    pub memory_contexts: usize,
    /// Software overhead of one page-fault round trip (trap, forward to the
    /// memory controller, page-table update, TLB shootdown). Together with
    /// the page transfer this calibrates the ~3.4 µs effective remote-page
    /// cost that LegoOS-class fault paths exhibit (their measured 4 KB
    /// fault round trips run 3–6 µs end to end).
    pub fault_overhead: SimDuration,
    /// Pages to prefetch ahead of a sequential-pattern fault (LegoOS-style
    /// OS-level prefetching; §2.2 notes such optimizations are "on their
    /// own, insufficient"). 0 disables prefetching — the default, matching
    /// the configuration the paper's figures assume.
    pub prefetch_pages: usize,
    /// Liveness protocol against the memory pool.
    pub heartbeat: HeartbeatConfig,
    /// Memory-pool replication for crash-consistent failover. `Off` (the
    /// default) preserves the paper's semantics: pool loss is fatal.
    pub replication: ReplicationMode,
    /// Background integrity-scrub schedule (disabled by default).
    pub scrub: ScrubConfig,
    pub net: NetConfig,
    pub ssd: SsdConfig,
    pub dram: DramConfig,
}

impl Default for DdcConfig {
    fn default() -> Self {
        DdcConfig {
            compute_cache_bytes: 64 << 20, // 64 MB: scaled-down "1 GB"
            memory_pool_bytes: 8 << 30,    // scaled-down "128 GB"
            pools: 1,
            placement: PlacementPolicy::FirstFit,
            compute_cpu: CpuConfig::new(2.1, 8),
            memory_cpu: CpuConfig::new(2.1, 2),
            memory_contexts: 1,
            fault_overhead: SimDuration::from_nanos(1_500),
            prefetch_pages: 0,
            heartbeat: HeartbeatConfig::default(),
            replication: ReplicationMode::Off,
            scrub: ScrubConfig::default(),
            net: NetConfig::default(),
            ssd: SsdConfig::default(),
            dram: DramConfig::default(),
        }
    }
}

impl DdcConfig {
    /// Convenience: a config whose compute cache holds `ratio` of
    /// `working_set_bytes` (the paper's headline setting is 2%, or 10% in
    /// Fig 1b), rounded up to whole pages.
    pub fn with_cache_ratio(working_set_bytes: usize, ratio: f64) -> Self {
        let cache = ((working_set_bytes as f64 * ratio) as usize).max(PAGE_SIZE);
        let cache = cache.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        DdcConfig {
            compute_cache_bytes: cache,
            ..Default::default()
        }
    }

    /// Cache capacity in whole pages.
    pub fn cache_pages(&self) -> usize {
        self.compute_cache_bytes / PAGE_SIZE
    }

    /// Memory pool capacity in whole pages.
    pub fn memory_pool_pages(&self) -> usize {
        self.memory_pool_bytes / PAGE_SIZE
    }

    /// Capacity of one pool shard in whole pages: the aggregate capacity
    /// split evenly, with every shard guaranteed at least one page. For
    /// `pools = 1` this equals [`memory_pool_pages`](Self::memory_pool_pages)
    /// exactly, preserving single-pool behavior bit-for-bit.
    pub fn pool_shard_pages(&self) -> usize {
        (self.memory_pool_pages() / self.pools.max(1)).max(1)
    }

    /// Structural validation, replacing the old hard asserts: a config that
    /// cannot describe a working rack comes back as a typed
    /// [`ConfigError`] the caller can surface gracefully instead of a
    /// panic deep inside pool construction.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pools == 0 {
            return Err(ConfigError::NoPools);
        }
        if self.memory_contexts == 0 {
            return Err(ConfigError::NoContexts);
        }
        if self.memory_pool_pages() < self.pools {
            return Err(ConfigError::PoolTooSmall {
                pool_pages: self.memory_pool_pages(),
                pools: self.pools,
            });
        }
        if self.compute_cache_bytes < PAGE_SIZE {
            return Err(ConfigError::CacheTooSmall {
                cache_bytes: self.compute_cache_bytes,
            });
        }
        Ok(())
    }

    /// Time to move one 4 KB page across the fabric.
    #[inline]
    pub fn remote_page_time(&self) -> SimDuration {
        self.net.transfer_time(PAGE_SIZE)
    }
}

/// Monolithic-server ("Linux") configuration used by the paper's local
/// baselines: all resources on one motherboard, spilling to a local SSD when
/// DRAM is exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct MonolithicConfig {
    /// DRAM available to the application before it must swap.
    pub dram_bytes: usize,
    pub cpu: CpuConfig,
    pub ssd: SsdConfig,
    pub dram_cost: DramConfig,
    /// Software overhead of a swap fault (trap + block layer entry).
    pub fault_overhead: SimDuration,
}

impl Default for MonolithicConfig {
    fn default() -> Self {
        MonolithicConfig {
            dram_bytes: 4 << 30,
            cpu: CpuConfig::new(2.1, 8),
            ssd: SsdConfig::default(),
            dram_cost: DramConfig::default(),
            fault_overhead: SimDuration::from_nanos(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_transfer_time_matches_paper_constants() {
        let net = NetConfig::default();
        // Latency-only for a zero-byte message.
        assert_eq!(net.transfer_time(0).as_nanos(), 1_200);
        // A 4 KB page: 1.2 us + 4096 B / 7 GB/s ~= 1.785 us.
        let page = net.transfer_time(PAGE_SIZE);
        assert!(
            (1_700..1_900).contains(&page.as_nanos()),
            "page transfer was {page}"
        );
    }

    #[test]
    fn ssd_page_io_dwarfs_remote_memory() {
        let cfg = DdcConfig::default();
        let ssd = cfg.ssd.page_io_time();
        let remote = cfg.remote_page_time();
        let gap = ssd.ratio(remote);
        // The paper's Fig 14 observes 10-80x between SSD spill and DDC
        // paging; the model should land in that band.
        assert!((10.0..80.0).contains(&gap), "SSD/remote gap was {gap:.1}x");
    }

    #[test]
    fn cpu_cycles_scale_with_clock() {
        let fast = CpuConfig::new(2.1, 8);
        let slow = CpuConfig::new(0.42, 1); // 20% of compute clock (Fig 16)
        assert_eq!(fast.cycles(2_100).as_nanos(), 1_000);
        assert_eq!(slow.cycles(2_100).as_nanos(), 5_000);
    }

    #[test]
    fn cache_ratio_rounds_to_pages() {
        let cfg = DdcConfig::with_cache_ratio(1_000_000, 0.02);
        assert_eq!(cfg.compute_cache_bytes % PAGE_SIZE, 0);
        assert!(cfg.compute_cache_bytes >= 20_000);
        assert!(cfg.cache_pages() >= 5);
    }

    #[test]
    fn default_config_is_self_consistent() {
        let cfg = DdcConfig::default();
        assert!(cfg.compute_cache_bytes < cfg.memory_pool_bytes);
        assert!(cfg.memory_cpu.cores <= cfg.compute_cpu.cores);
        assert_eq!(cfg.memory_contexts, 1, "paper default serializes pushdowns");
        assert_eq!(cfg.pools, 1, "paper default is a single memory pool");
        cfg.validate().expect("default config validates");
    }

    #[test]
    fn validate_accepts_multi_pool_and_multi_context_configs() {
        // What used to trip the hard `memory_contexts == 1` assert is now a
        // perfectly valid configuration: validation only rejects configs
        // that cannot describe a working rack at all.
        let cfg = DdcConfig {
            pools: 4,
            placement: PlacementPolicy::LoadBalance,
            memory_contexts: 8,
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.pool_shard_pages(), cfg.memory_pool_pages() / 4);
    }

    #[test]
    fn validate_rejects_degenerate_configs_with_typed_errors() {
        let no_pools = DdcConfig {
            pools: 0,
            ..Default::default()
        };
        assert_eq!(no_pools.validate(), Err(ConfigError::NoPools));

        let no_ctx = DdcConfig {
            memory_contexts: 0,
            ..Default::default()
        };
        assert_eq!(no_ctx.validate(), Err(ConfigError::NoContexts));

        let tiny_pool = DdcConfig {
            memory_pool_bytes: 2 * PAGE_SIZE,
            pools: 4,
            ..Default::default()
        };
        assert_eq!(
            tiny_pool.validate(),
            Err(ConfigError::PoolTooSmall {
                pool_pages: 2,
                pools: 4
            })
        );

        let tiny_cache = DdcConfig {
            compute_cache_bytes: 100,
            ..Default::default()
        };
        assert_eq!(
            tiny_cache.validate(),
            Err(ConfigError::CacheTooSmall { cache_bytes: 100 })
        );
        // Errors render as readable diagnostics, not Debug dumps.
        assert!(tiny_cache
            .validate()
            .unwrap_err()
            .to_string()
            .contains("100"));
    }

    #[test]
    fn shard_capacity_is_exact_for_one_pool_and_floors_at_one_page() {
        let one = DdcConfig::default();
        assert_eq!(one.pool_shard_pages(), one.memory_pool_pages());
        let four = DdcConfig {
            pools: 4,
            ..Default::default()
        };
        assert_eq!(four.pool_shard_pages(), four.memory_pool_pages() / 4);
    }

    #[test]
    fn sequential_ssd_beats_paged_ssd() {
        let ssd = SsdConfig::default();
        let bulk = ssd.sequential_time(1 << 20); // 1 MB in one go
        let paged = ssd.page_io_time() * ((1usize << 20) / PAGE_SIZE) as u64;
        assert!(bulk < paged / 10, "bulk {bulk} vs paged {paged}");
    }
}
