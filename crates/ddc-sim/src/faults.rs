//! Deterministic fault-injection plane.
//!
//! A [`FaultPlan`] is a declarative schedule of faults — some scheduled on
//! windows of *virtual* time, some probabilistic, some pinned to a specific
//! pushdown call — plus a PRNG seed. A [`FaultInjector`] executes the plan:
//! the fabric, the SSD, and the TELEPORT runtime poll it at their own
//! decision points, and every injected fault is emitted as a typed
//! [`TraceEvent::FaultInjected`] on the shared trace stream.
//!
//! Determinism is the whole point. The simulation is single-threaded on one
//! virtual clock, the plan is data, and all randomness flows from the
//! seeded [`rand::rngs::StdRng`] in plan order of the polling sites — so an
//! identical `(plan, seed)` pair reproduces the identical fault sequence
//! and, with tracing enabled, a byte-identical trace digest. PRNG draws
//! happen whether or not tracing is enabled (fault decisions change
//! simulated time; observation never does).
//!
//! The CI chaos job pins `TELEPORT_FAULT_SEED`; [`env_seed`] is the
//! conventional way for tests and examples to honor it.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::Clock;
use crate::config::PAGE_SIZE;
use crate::time::{SimDuration, SimTime};
use crate::trace::{InjectedFault, Lane, TraceEvent, Tracer};

/// The end of a window that never closes (permanent faults).
pub const FOREVER: SimTime = SimTime(u64::MAX);

/// One scheduled or probabilistic fault. Windows are half-open
/// `[from, until)` on virtual time; `until == FOREVER` never heals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Every fabric send inside the window pays `extra` on the wire.
    FabricLatencySpike {
        from: SimTime,
        until: SimTime,
        extra: SimDuration,
    },
    /// The fabric is unreachable inside the window: a send stalls until the
    /// partition heals before it crosses. `until == FOREVER` is a partition
    /// that never heals — the primary memory pool is unreachable for good,
    /// which the heartbeat path treats exactly like permanent pool death
    /// (sends don't stall forever; the pool is declared dead instead).
    FabricPartition { from: SimTime, until: SimTime },
    /// Each SSD operation inside the window fails transiently with
    /// probability `p`; the device layer retries it once (double cost).
    SsdTransientError {
        from: SimTime,
        until: SimTime,
        p: f64,
    },
    /// SSD operations inside the window take `factor`× their normal time.
    SsdLatencyStorm {
        from: SimTime,
        until: SimTime,
        factor: u32,
    },
    /// Memory-pool heartbeats inside the window go unanswered. A window
    /// shorter than `(missed_threshold - 1) × interval` is a survivable
    /// flap; `until == FOREVER` is permanent pool death (kernel panic, or
    /// a failover when a replica pool is configured). In a multi-pool rack
    /// this targets pool 0 (the legacy single-pool shape); use
    /// [`FaultSpec::PoolDeath`] to kill a specific shard.
    HeartbeatFlap { from: SimTime, until: SimTime },
    /// Pool `pool` of a multi-pool rack permanently stops answering
    /// heartbeats at `from`. The per-pool generalization of
    /// `memory_pool_death`: only the targeted shard dies; the others keep
    /// serving their pages.
    PoolDeath { pool: usize, from: SimTime },
    /// The first pushdown that enqueues inside the window finds `backlog`
    /// of other tenants' work ahead of it (one burst per window).
    QueueBacklogBurst {
        from: SimTime,
        until: SimTime,
        backlog: SimDuration,
    },
    /// Pushdown call number `call` (0-based, counted across all platforms)
    /// raises an exception in the pushed function.
    PushdownException { call: u64 },
    /// Each pushdown call inside the window raises an exception with
    /// probability `p`.
    PushdownExceptionProb {
        from: SimTime,
        until: SimTime,
        p: f64,
    },
    /// Pushdown call number `call` hangs until the kill timeout fires.
    PushdownHang { call: u64 },
    /// Each page crossing the fabric inside the window is bit-flipped in
    /// flight with probability `p` (the corrupted image is what arrives).
    FabricBitFlip {
        from: SimTime,
        until: SimTime,
        p: f64,
    },
    /// Each SSD page read inside the window returns latent-sector-rotted
    /// bytes with probability `p` (a torn write discovered at read time).
    SsdLatentSector {
        from: SimTime,
        until: SimTime,
        p: f64,
    },
    /// Each page image landing in the memory pool inside the window is
    /// scribbled over with probability `p` (silent in-pool corruption,
    /// discovered only at the next read or scrub).
    PoolScribble {
        from: SimTime,
        until: SimTime,
        p: f64,
    },
    /// Fail-slow: pool `pool` keeps answering, but every memory-side
    /// service inside the window (kernel work, pushdown DRAM touches,
    /// reintegration probes) takes `factor`× its normal time. The pool
    /// never misses a heartbeat — this is a brownout, not a blackout.
    DegradedPool {
        pool: usize,
        from: SimTime,
        until: SimTime,
        factor: u32,
    },
    /// Fail-slow: every fabric send inside the window takes `factor`× its
    /// normal wire time. Distinct from [`FaultSpec::FabricLatencySpike`],
    /// which *adds* a fixed surcharge: a lame link scales with message
    /// size, so bulk transfers hurt the most.
    LameFabricLink {
        from: SimTime,
        until: SimTime,
        factor: u32,
    },
    /// Fail-slow: every SSD operation inside the window takes `factor`×
    /// its normal time. Unlike [`FaultSpec::SsdLatencyStorm`] (a bounded
    /// transient traced per-operation), a grinding SSD is a *gray*
    /// degradation: one onset event, then silent slowness.
    GrindingSsd {
        from: SimTime,
        until: SimTime,
        factor: u32,
    },
    /// Pool `pool` crashes at `at` — its volatile state (residency, dirty
    /// bits, pins) is wiped — and restarts `down_for` later. Unlike
    /// [`FaultSpec::PoolDeath`] the pool comes back: recovery rebuilds it
    /// from the SSD-authoritative base plus a replay of its journal, and
    /// a shard whose replica was promoted meanwhile rejoins as a standby.
    PoolCrashRestart {
        pool: usize,
        at: SimTime,
        down_for: SimDuration,
    },
    /// The crash of pool `pool` at or after `at` tears the un-synced tail
    /// of its recovery journal: the partial write fails checksum at
    /// replay time and the tail is discarded (never silently applied).
    /// Only meaningful alongside a [`FaultSpec::PoolCrashRestart`].
    TornJournalWrite { pool: usize, at: SimTime },
}

impl FaultSpec {
    fn window_active(from: SimTime, until: SimTime, now: SimTime) -> bool {
        from <= now && now < until
    }
}

/// A seeded, declarative schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan. `seed` drives every probabilistic decision.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Add an arbitrary spec (the builder methods below cover the common
    /// shapes).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    pub fn fabric_latency_spike(self, from: SimTime, until: SimTime, extra: SimDuration) -> Self {
        self.with(FaultSpec::FabricLatencySpike { from, until, extra })
    }

    /// A fabric partition over `[from, until)`. A finite window stalls
    /// every send until it heals; `until == FOREVER` never heals and is
    /// treated as pool death by the heartbeat path (see
    /// [`FaultSpec::FabricPartition`]).
    pub fn fabric_partition(self, from: SimTime, until: SimTime) -> Self {
        self.with(FaultSpec::FabricPartition { from, until })
    }

    pub fn ssd_transient_errors(self, from: SimTime, until: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.with(FaultSpec::SsdTransientError { from, until, p })
    }

    pub fn ssd_latency_storm(self, from: SimTime, until: SimTime, factor: u32) -> Self {
        assert!(factor >= 1, "a storm slows the device down");
        self.with(FaultSpec::SsdLatencyStorm {
            from,
            until,
            factor,
        })
    }

    pub fn heartbeat_flap(self, from: SimTime, until: SimTime) -> Self {
        self.with(FaultSpec::HeartbeatFlap { from, until })
    }

    pub fn memory_pool_death(self, from: SimTime) -> Self {
        self.with(FaultSpec::HeartbeatFlap {
            from,
            until: FOREVER,
        })
    }

    /// Permanently kill pool `pool` of a multi-pool rack at `from`.
    /// `pool_death(0, t)` is equivalent to `memory_pool_death(t)`.
    pub fn pool_death(self, pool: usize, from: SimTime) -> Self {
        self.with(FaultSpec::PoolDeath { pool, from })
    }

    pub fn queue_backlog_burst(self, from: SimTime, until: SimTime, backlog: SimDuration) -> Self {
        self.with(FaultSpec::QueueBacklogBurst {
            from,
            until,
            backlog,
        })
    }

    pub fn pushdown_exception(self, call: u64) -> Self {
        self.with(FaultSpec::PushdownException { call })
    }

    pub fn pushdown_exceptions_prob(self, from: SimTime, until: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.with(FaultSpec::PushdownExceptionProb { from, until, p })
    }

    pub fn pushdown_hang(self, call: u64) -> Self {
        self.with(FaultSpec::PushdownHang { call })
    }

    pub fn fabric_bit_flips(self, from: SimTime, until: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.with(FaultSpec::FabricBitFlip { from, until, p })
    }

    pub fn ssd_latent_sectors(self, from: SimTime, until: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.with(FaultSpec::SsdLatentSector { from, until, p })
    }

    pub fn pool_scribbles(self, from: SimTime, until: SimTime, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.with(FaultSpec::PoolScribble { from, until, p })
    }

    /// Fail-slow pool `pool`: memory-side service there takes `factor`×
    /// its normal time over `[from, until)` while heartbeats stay healthy.
    pub fn degraded_pool(self, pool: usize, from: SimTime, until: SimTime, factor: u32) -> Self {
        assert!(factor >= 1, "a degraded pool slows down");
        self.with(FaultSpec::DegradedPool {
            pool,
            from,
            until,
            factor,
        })
    }

    /// Fail-slow fabric: every send over `[from, until)` takes `factor`×
    /// its normal wire time (multiplicative, unlike the additive spike).
    pub fn lame_fabric_link(self, from: SimTime, until: SimTime, factor: u32) -> Self {
        assert!(factor >= 1, "a lame link slows down");
        self.with(FaultSpec::LameFabricLink {
            from,
            until,
            factor,
        })
    }

    /// Fail-slow SSD: every device operation over `[from, until)` takes
    /// `factor`× its normal time, with a single traced onset.
    pub fn grinding_ssd(self, from: SimTime, until: SimTime, factor: u32) -> Self {
        assert!(factor >= 1, "a grinding device slows down");
        self.with(FaultSpec::GrindingSsd {
            from,
            until,
            factor,
        })
    }

    /// Crash pool `pool` at `at`, wiping its volatile state, and restart
    /// it `down_for` later. Recovery replays the pool's journal over the
    /// SSD-authoritative base; a shard whose replica was promoted in the
    /// interim rejoins as a standby instead of resuming as primary.
    pub fn pool_crash_restart(self, pool: usize, at: SimTime, down_for: SimDuration) -> Self {
        self.with(FaultSpec::PoolCrashRestart { pool, at, down_for })
    }

    /// Tear the un-synced journal tail of pool `pool` when it crashes at
    /// or after `at`: replay detects the checksum mismatch and discards
    /// the tail instead of applying a partial write.
    pub fn torn_journal_write(self, pool: usize, at: SimTime) -> Self {
        self.with(FaultSpec::TornJournalWrite { pool, at })
    }
}

/// Seed from the `TELEPORT_FAULT_SEED` environment variable when set (and
/// parseable as u64), otherwise `default`. CI pins the variable so chaos
/// runs are reproducible across the fleet.
pub fn env_seed(default: u64) -> u64 {
    std::env::var("TELEPORT_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// What the fault plane did to one SSD operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdDisruption {
    /// The operation failed once and was retried by the device layer.
    pub transient_error: bool,
    /// Slowdown multiplier (1 = no storm).
    pub storm_factor: u32,
    /// Fail-slow grind multiplier (1 = healthy device); compounds with
    /// the storm factor.
    pub grind_factor: u32,
}

impl Default for SsdDisruption {
    fn default() -> Self {
        SsdDisruption {
            transient_error: false,
            storm_factor: 1,
            grind_factor: 1,
        }
    }
}

/// Where on the compute↔memory↔storage path a corruption poll happens.
/// Each point maps to one corruption [`FaultSpec`] kind, so a plan can
/// target exactly one crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionPoint {
    /// A page image crossing the fabric (polled on delivery).
    Fabric,
    /// A page read from the SSD (polled on the read path).
    Ssd,
    /// A page image landing in the memory pool (polled on write-back).
    Pool,
}

/// One injected byte-level corruption of a page: XOR `mask` into the byte
/// at `offset`. The mask is drawn nonzero, so a corruption always changes
/// the page image (and XOR-ing the mask again restores it exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// Byte offset within the page, `0..PAGE_SIZE`.
    pub offset: usize,
    /// Nonzero XOR mask applied to that byte.
    pub mask: u8,
}

/// A checksum verification failed: the page's bytes no longer match the
/// checksum sealed at write/registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityError {
    /// The page whose image is corrupt.
    pub page: u64,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checksum mismatch on page {}", self.page)
    }
}

impl std::error::Error for IntegrityError {}

/// What the fault plane did to one pushdown call's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushdownDisruption {
    /// The pushed function raises an exception.
    Exception,
    /// The pushed function never completes; the kernel kills it after the
    /// conservative timeout.
    Hang,
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    rng: StdRng,
    /// Spec indices of faults no longer eligible to fire (or to trace):
    /// one-shot queue bursts that already fired, pool-death specs retired
    /// by a failover (they killed the old pool, not the promoted one),
    /// and fail-slow specs whose onset event was already emitted.
    fired: Vec<bool>,
    injected: u64,
}

/// A cloneable executor of one [`FaultPlan`]. The fabric, the SSD, and the
/// runtime poll it at their decision points; it reads the shared virtual
/// clock, draws from the seeded PRNG, and emits
/// [`TraceEvent::FaultInjected`] records for every fault it injects.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    clock: Clock,
    tracer: Tracer,
    inner: Rc<RefCell<InjectorState>>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, clock: Clock, tracer: Tracer) -> Self {
        let fired = vec![false; plan.specs.len()];
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            clock,
            tracer,
            inner: Rc::new(RefCell::new(InjectorState {
                plan,
                rng,
                fired,
                injected: 0,
            })),
        }
    }

    /// Snapshot of the plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.inner.borrow().plan.clone()
    }

    /// Total faults injected so far.
    pub fn injected_count(&self) -> u64 {
        self.inner.borrow().injected
    }

    /// Append a spec to the running plan (used by the runtime's legacy
    /// one-shot `inject_*` helpers).
    pub fn add_spec(&self, spec: FaultSpec) {
        let mut st = self.inner.borrow_mut();
        st.plan.specs.push(spec);
        st.fired.push(false);
    }

    fn note(&self, lane: Lane, fault: InjectedFault, magnitude: u64) {
        self.inner.borrow_mut().injected += 1;
        self.tracer
            .emit(lane, TraceEvent::FaultInjected { fault, magnitude });
    }

    /// Trace the *onset* of fail-slow spec `i` exactly once. The slowdown
    /// keeps applying on every poll, but a gray failure is one event, not
    /// a stream — otherwise the digest would scale with poll count.
    fn note_fail_slow_once(&self, i: usize, lane: Lane, fault: InjectedFault, factor: u32) {
        {
            let mut st = self.inner.borrow_mut();
            if st.fired[i] {
                return;
            }
            st.fired[i] = true;
            st.injected += 1;
        }
        self.tracer.emit(
            lane,
            TraceEvent::FailSlowInjected {
                fault,
                factor: factor as u64,
            },
        );
    }

    /// Extra wire delay for a fabric send issued now: latency spikes add
    /// their surcharge, an active partition stalls the message until it
    /// heals. Called by [`crate::net::Fabric::send`].
    pub fn fabric_penalty(&self) -> SimDuration {
        let now = self.clock.now();
        let mut penalty = SimDuration::ZERO;
        let specs = self.inner.borrow().plan.specs.clone();
        for spec in specs {
            match spec {
                FaultSpec::FabricLatencySpike { from, until, extra }
                    if FaultSpec::window_active(from, until, now) =>
                {
                    penalty += extra;
                    self.note(
                        Lane::Net,
                        InjectedFault::FabricLatencySpike,
                        extra.as_nanos(),
                    );
                }
                // An open-ended partition is pool death, not a per-message
                // stall: the heartbeat path declares the pool dead instead
                // of every send waiting forever.
                FaultSpec::FabricPartition { from, until }
                    if until != FOREVER && FaultSpec::window_active(from, until, now) =>
                {
                    let stall = until.since(now);
                    penalty += stall;
                    self.note(Lane::Net, InjectedFault::FabricPartition, stall.as_nanos());
                }
                _ => {}
            }
        }
        penalty
    }

    /// Disruption of one SSD operation issued now. Draws the PRNG exactly
    /// once per active probabilistic spec, tracing on or off.
    pub fn ssd_disruption(&self) -> SsdDisruption {
        let now = self.clock.now();
        let mut d = SsdDisruption::default();
        let specs = self.inner.borrow().plan.specs.clone();
        for (i, spec) in specs.iter().enumerate() {
            match *spec {
                FaultSpec::SsdTransientError { from, until, p }
                    if FaultSpec::window_active(from, until, now) =>
                {
                    let hit = self.inner.borrow_mut().rng.random_bool(p);
                    if hit {
                        d.transient_error = true;
                        self.note(Lane::Storage, InjectedFault::SsdTransientError, 1);
                    }
                }
                FaultSpec::SsdLatencyStorm {
                    from,
                    until,
                    factor,
                } if FaultSpec::window_active(from, until, now) => {
                    d.storm_factor = d.storm_factor.max(factor);
                    self.note(Lane::Storage, InjectedFault::SsdLatencyStorm, factor as u64);
                }
                FaultSpec::GrindingSsd {
                    from,
                    until,
                    factor,
                } if FaultSpec::window_active(from, until, now) => {
                    d.grind_factor = d.grind_factor.saturating_mul(factor);
                    self.note_fail_slow_once(i, Lane::Storage, InjectedFault::GrindingSsd, factor);
                }
                _ => {}
            }
        }
        d
    }

    /// Service-time multiplier for memory-side work on pool `pool` issued
    /// now (1 = healthy). Overlapping `DegradedPool` windows targeting the
    /// shard compound multiplicatively; each window's onset is traced once.
    pub fn pool_slowdown_for(&self, pool: usize) -> u32 {
        let now = self.clock.now();
        let mut slow: u32 = 1;
        let specs = self.inner.borrow().plan.specs.clone();
        for (i, spec) in specs.iter().enumerate() {
            if let FaultSpec::DegradedPool {
                pool: p,
                from,
                until,
                factor,
            } = *spec
            {
                if p == pool && FaultSpec::window_active(from, until, now) {
                    slow = slow.saturating_mul(factor);
                    self.note_fail_slow_once(i, Lane::Memory, InjectedFault::DegradedPool, factor);
                }
            }
        }
        slow
    }

    /// Wire-time multiplier for a fabric send issued now (1 = healthy).
    /// Multiplicative, unlike the additive
    /// [`FaultInjector::fabric_penalty`]; the two compose.
    pub fn fabric_slowdown(&self) -> u32 {
        let now = self.clock.now();
        let mut slow: u32 = 1;
        let specs = self.inner.borrow().plan.specs.clone();
        for (i, spec) in specs.iter().enumerate() {
            if let FaultSpec::LameFabricLink {
                from,
                until,
                factor,
            } = *spec
            {
                if FaultSpec::window_active(from, until, now) {
                    slow = slow.saturating_mul(factor);
                    self.note_fail_slow_once(i, Lane::Net, InjectedFault::LameFabricLink, factor);
                }
            }
        }
        slow
    }

    /// Whether the memory pool fails to answer a heartbeat issued now:
    /// either a `HeartbeatFlap` window is active, or an open-ended
    /// `FabricPartition` has cut the pool off for good. Emits one fault
    /// event (of the matching kind) per missed beat. Specs retired by
    /// [`FaultInjector::retire_pool_faults`] no longer count. Equivalent to
    /// `pool_down_now_for(0)` — legacy single-pool specs target pool 0.
    pub fn pool_down_now(&self) -> bool {
        self.pool_down_now_for(0)
    }

    /// Whether pool `pool` of the rack fails to answer a heartbeat issued
    /// now. Legacy `HeartbeatFlap` and open-ended `FabricPartition` specs
    /// address pool 0; `PoolDeath` specs address their own shard.
    pub fn pool_down_now_for(&self, pool: usize) -> bool {
        let now = self.clock.now();
        let mut hit: Option<(InjectedFault, u64)> = None;
        {
            let st = self.inner.borrow();
            for (i, spec) in st.plan.specs.iter().enumerate() {
                if st.fired[i] {
                    continue;
                }
                match *spec {
                    FaultSpec::HeartbeatFlap { from, until }
                        if pool == 0 && FaultSpec::window_active(from, until, now) =>
                    {
                        hit = Some((InjectedFault::HeartbeatFlap, 1));
                        break;
                    }
                    FaultSpec::FabricPartition { from, until }
                        if pool == 0
                            && until == FOREVER
                            && FaultSpec::window_active(from, until, now) =>
                    {
                        hit = Some((InjectedFault::FabricPartition, 1));
                        break;
                    }
                    FaultSpec::PoolDeath { pool: p, from }
                        if p == pool && FaultSpec::window_active(from, FOREVER, now) =>
                    {
                        // Reuses the heartbeat-flap trace label: pool death
                        // *is* an unanswered heartbeat, addressed per shard
                        // via the magnitude word.
                        hit = Some((InjectedFault::HeartbeatFlap, pool as u64 + 1));
                        break;
                    }
                    _ => {}
                }
            }
        }
        match hit {
            Some((fault, magnitude)) => {
                self.note(Lane::Memory, fault, magnitude);
                true
            }
            None => false,
        }
    }

    /// Retire every pool-death spec (heartbeat flaps and open-ended fabric
    /// partitions): they killed the *old* primary, and must not instantly
    /// re-kill the pool a failover just promoted. Called by the runtime
    /// when it promotes the replica. Equivalent to
    /// `retire_pool_faults_for(0)`.
    pub fn retire_pool_faults(&self) {
        self.retire_pool_faults_for(0);
    }

    /// Retire the death specs addressing pool `pool` after its failover
    /// promoted the shard's backup. Legacy single-pool specs count as
    /// pool 0; other shards' `PoolDeath` specs stay armed.
    pub fn retire_pool_faults_for(&self, pool: usize) {
        let mut st = self.inner.borrow_mut();
        for i in 0..st.plan.specs.len() {
            match st.plan.specs[i] {
                FaultSpec::HeartbeatFlap { .. } if pool == 0 => st.fired[i] = true,
                FaultSpec::FabricPartition { until, .. } if pool == 0 && until == FOREVER => {
                    st.fired[i] = true;
                }
                FaultSpec::PoolDeath { pool: p, .. } if p == pool => st.fired[i] = true,
                _ => {}
            }
        }
    }

    /// Whether pool `pool` crashes *now*: the earliest un-fired
    /// `PoolCrashRestart` spec targeting the shard whose crash time has
    /// arrived fires exactly once, returning how long the pool stays
    /// down. The kernel wipes the shard's volatile state on `Some` and
    /// schedules the restart `down_for` later.
    pub fn pool_crash_now_for(&self, pool: usize) -> Option<SimDuration> {
        let now = self.clock.now();
        let mut hit: Option<SimDuration> = None;
        {
            let mut st = self.inner.borrow_mut();
            for i in 0..st.plan.specs.len() {
                if st.fired[i] {
                    continue;
                }
                if let FaultSpec::PoolCrashRestart {
                    pool: p,
                    at,
                    down_for,
                } = st.plan.specs[i]
                {
                    if p == pool && at <= now {
                        st.fired[i] = true;
                        hit = Some(down_for);
                        break;
                    }
                }
            }
        }
        if let Some(down_for) = hit {
            self.note(
                Lane::Memory,
                InjectedFault::PoolCrashRestart,
                down_for.as_nanos(),
            );
        }
        hit
    }

    /// Whether the crash of pool `pool` happening now tears the un-synced
    /// tail of its recovery journal. One-shot per spec: the torn write is
    /// an artifact of one particular crash, not a standing condition.
    pub fn torn_tail_for(&self, pool: usize) -> bool {
        let now = self.clock.now();
        let mut hit = false;
        {
            let mut st = self.inner.borrow_mut();
            for i in 0..st.plan.specs.len() {
                if st.fired[i] {
                    continue;
                }
                if let FaultSpec::TornJournalWrite { pool: p, at } = st.plan.specs[i] {
                    if p == pool && at <= now {
                        st.fired[i] = true;
                        hit = true;
                        break;
                    }
                }
            }
        }
        if hit {
            self.note(Lane::Memory, InjectedFault::TornJournalWrite, pool as u64);
        }
        hit
    }

    /// Whether the plan schedules any crash-restart spec at all (tells the
    /// kernel to arm its recovery journal — runs without crash plans must
    /// stay digest-identical with journaling disarmed).
    pub fn has_crash_restart_specs(&self) -> bool {
        self.inner.borrow().plan.specs.iter().any(|s| {
            matches!(
                s,
                FaultSpec::PoolCrashRestart { .. } | FaultSpec::TornJournalWrite { .. }
            )
        })
    }

    /// Backlog found ahead of a pushdown enqueuing now, if a burst window
    /// is active that has not fired yet. Each burst fires once.
    pub fn queue_burst(&self) -> Option<SimDuration> {
        let now = self.clock.now();
        let mut burst: Option<SimDuration> = None;
        let specs = self.inner.borrow().plan.specs.clone();
        for (i, spec) in specs.iter().enumerate() {
            if let FaultSpec::QueueBacklogBurst {
                from,
                until,
                backlog,
            } = *spec
            {
                if FaultSpec::window_active(from, until, now) && !self.inner.borrow().fired[i] {
                    self.inner.borrow_mut().fired[i] = true;
                    burst = Some(burst.map_or(backlog, |b| b.max(backlog)));
                    self.note(
                        Lane::Memory,
                        InjectedFault::QueueBacklogBurst,
                        backlog.as_nanos(),
                    );
                }
            }
        }
        burst
    }

    /// Whether the plan schedules any fail-slow (gray-failure) spec at all
    /// (tells the kernel to arm its health plane — healthy runs must stay
    /// digest-identical with the plane disarmed).
    pub fn has_fail_slow_specs(&self) -> bool {
        self.inner.borrow().plan.specs.iter().any(|s| {
            matches!(
                s,
                FaultSpec::DegradedPool { .. }
                    | FaultSpec::LameFabricLink { .. }
                    | FaultSpec::GrindingSsd { .. }
            )
        })
    }

    /// Whether the plan has any corruption spec at all (tells the kernel to
    /// turn its integrity plane on).
    pub fn has_corruption_specs(&self) -> bool {
        self.inner.borrow().plan.specs.iter().any(|s| {
            matches!(
                s,
                FaultSpec::FabricBitFlip { .. }
                    | FaultSpec::SsdLatentSector { .. }
                    | FaultSpec::PoolScribble { .. }
            )
        })
    }

    /// Corruption of one page image crossing `point` now, if any. Draws the
    /// PRNG once per active matching spec (tracing on or off); the first
    /// hit wins. The caller applies the returned XOR to the real page
    /// bytes — the injector only decides and records.
    pub fn corruption(&self, point: CorruptionPoint, page: u64) -> Option<Corruption> {
        let now = self.clock.now();
        let specs = self.inner.borrow().plan.specs.clone();
        for spec in specs {
            let (active_p, lane, fault) = match (point, spec) {
                (CorruptionPoint::Fabric, FaultSpec::FabricBitFlip { from, until, p })
                    if FaultSpec::window_active(from, until, now) =>
                {
                    (p, Lane::Net, InjectedFault::FabricBitFlip)
                }
                (CorruptionPoint::Ssd, FaultSpec::SsdLatentSector { from, until, p })
                    if FaultSpec::window_active(from, until, now) =>
                {
                    (p, Lane::Storage, InjectedFault::SsdLatentSector)
                }
                (CorruptionPoint::Pool, FaultSpec::PoolScribble { from, until, p })
                    if FaultSpec::window_active(from, until, now) =>
                {
                    (p, Lane::Memory, InjectedFault::PoolScribble)
                }
                _ => continue,
            };
            let hit = self.inner.borrow_mut().rng.random_bool(active_p);
            if hit {
                let (offset, mask) = {
                    let mut st = self.inner.borrow_mut();
                    let offset = st.rng.random_range(0..PAGE_SIZE);
                    let mask = st.rng.random_range(1..=255u8);
                    (offset, mask)
                };
                self.note(lane, fault, page);
                self.tracer.emit(
                    lane,
                    TraceEvent::CorruptionInjected {
                        page,
                        offset: offset as u64,
                    },
                );
                return Some(Corruption { offset, mask });
            }
        }
        None
    }

    /// Disruption of pushdown call number `call` (0-based), if any. A hang
    /// dominates an exception when both are scheduled.
    pub fn pushdown_disruption(&self, call: u64) -> Option<PushdownDisruption> {
        let now = self.clock.now();
        let mut d: Option<PushdownDisruption> = None;
        let specs = self.inner.borrow().plan.specs.clone();
        for spec in specs {
            match spec {
                FaultSpec::PushdownException { call: c } if c == call => {
                    d = d.or(Some(PushdownDisruption::Exception));
                    self.note(Lane::Memory, InjectedFault::PushdownException, call);
                }
                FaultSpec::PushdownExceptionProb { from, until, p }
                    if FaultSpec::window_active(from, until, now) =>
                {
                    let hit = self.inner.borrow_mut().rng.random_bool(p);
                    if hit {
                        d = d.or(Some(PushdownDisruption::Exception));
                        self.note(Lane::Memory, InjectedFault::PushdownException, call);
                    }
                }
                FaultSpec::PushdownHang { call: c } if c == call => {
                    d = Some(PushdownDisruption::Hang);
                    self.note(Lane::Memory, InjectedFault::PushdownHang, call);
                }
                _ => {}
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    fn injector(plan: FaultPlan) -> (Clock, Tracer, FaultInjector) {
        let clock = Clock::new();
        let tracer = Tracer::new(clock.clone());
        tracer.enable();
        let inj = FaultInjector::new(plan, clock.clone(), tracer.clone());
        (clock, tracer, inj)
    }

    #[test]
    fn windows_are_half_open_on_virtual_time() {
        let plan = FaultPlan::new(1).fabric_latency_spike(
            SimTime(100),
            SimTime(200),
            SimDuration::from_nanos(7),
        );
        let (clock, _, inj) = injector(plan);
        assert_eq!(inj.fabric_penalty(), SimDuration::ZERO, "before the window");
        clock.advance(SimDuration::from_nanos(100));
        assert_eq!(inj.fabric_penalty(), SimDuration::from_nanos(7));
        clock.advance(SimDuration::from_nanos(100));
        assert_eq!(inj.fabric_penalty(), SimDuration::ZERO, "window closed");
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn partition_stalls_until_heal() {
        let plan = FaultPlan::new(1).fabric_partition(SimTime(0), SimTime(1_000));
        let (clock, _, inj) = injector(plan);
        clock.advance(SimDuration::from_nanos(400));
        assert_eq!(inj.fabric_penalty(), SimDuration::from_nanos(600));
    }

    #[test]
    fn probabilistic_ssd_errors_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).ssd_transient_errors(SimTime(0), FOREVER, 0.5);
            let (clock, _, inj) = injector(plan);
            (0..64)
                .map(|_| {
                    clock.advance(SimDuration::from_nanos(10));
                    inj.ssd_disruption().transient_error
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let hits = run(42).iter().filter(|&&h| h).count();
        assert!((10..=54).contains(&hits), "p=0.5 gave {hits}/64");
    }

    #[test]
    fn corruption_sites_are_seed_deterministic_and_nonzero() {
        let run = |seed: u64| -> Vec<Option<Corruption>> {
            let plan = FaultPlan::new(seed).fabric_bit_flips(SimTime(0), FOREVER, 0.5);
            let (clock, _, inj) = injector(plan);
            (0..64u64)
                .map(|page| {
                    clock.advance(SimDuration::from_nanos(10));
                    inj.corruption(CorruptionPoint::Fabric, page)
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same corruption sites");
        assert_ne!(run(42), run(43), "different seeds diverge");
        let hits: Vec<Corruption> = run(42).into_iter().flatten().collect();
        assert!((10..=54).contains(&hits.len()), "p=0.5 gave {}", hits.len());
        for c in &hits {
            assert!(c.offset < PAGE_SIZE);
            assert_ne!(c.mask, 0, "a corruption always changes the page");
        }
    }

    #[test]
    fn corruption_points_only_match_their_own_spec_kind() {
        let plan = FaultPlan::new(1)
            .ssd_latent_sectors(SimTime(0), FOREVER, 1.0)
            .pool_scribbles(SimTime(0), FOREVER, 1.0);
        let (_, tracer, inj) = injector(plan);
        assert!(inj.has_corruption_specs());
        assert_eq!(inj.corruption(CorruptionPoint::Fabric, 7), None);
        assert!(inj.corruption(CorruptionPoint::Ssd, 7).is_some());
        assert!(inj.corruption(CorruptionPoint::Pool, 7).is_some());
        assert_eq!(tracer.count(EventKind::CorruptionInjected), 2);
        let clean = FaultPlan::new(1).ssd_transient_errors(SimTime(0), FOREVER, 0.5);
        let (_, _, inj) = injector(clean);
        assert!(!inj.has_corruption_specs());
    }

    #[test]
    fn queue_burst_fires_once_per_window() {
        let plan =
            FaultPlan::new(1).queue_backlog_burst(SimTime(0), FOREVER, SimDuration::from_millis(5));
        let (_, tracer, inj) = injector(plan);
        assert_eq!(inj.queue_burst(), Some(SimDuration::from_millis(5)));
        assert_eq!(inj.queue_burst(), None, "a burst is one-shot");
        assert_eq!(tracer.count(EventKind::FaultInjected), 1);
    }

    #[test]
    fn pushdown_disruption_matches_call_index_and_prefers_hang() {
        let plan = FaultPlan::new(1).pushdown_exception(2).pushdown_hang(2);
        let (_, _, inj) = injector(plan);
        assert_eq!(inj.pushdown_disruption(0), None);
        assert_eq!(inj.pushdown_disruption(2), Some(PushdownDisruption::Hang));
    }

    #[test]
    fn heartbeat_flap_tracks_the_window() {
        let plan = FaultPlan::new(1).heartbeat_flap(SimTime(0), SimTime(1_000));
        let (clock, _, inj) = injector(plan);
        assert!(inj.pool_down_now());
        clock.advance(SimDuration::from_micros(2));
        assert!(!inj.pool_down_now(), "the flap healed");
        let dead = FaultPlan::new(1).memory_pool_death(SimTime(0));
        let (_, _, inj) = injector(dead);
        assert!(inj.pool_down_now(), "permanent death never heals");
    }

    #[test]
    fn open_ended_partition_is_pool_death_not_a_stall() {
        let plan = FaultPlan::new(1).fabric_partition(SimTime(0), FOREVER);
        let (_, _, inj) = injector(plan);
        assert_eq!(
            inj.fabric_penalty(),
            SimDuration::ZERO,
            "sends never stall forever"
        );
        assert!(inj.pool_down_now(), "the pool is unreachable for good");
    }

    #[test]
    fn retired_pool_faults_stop_killing_the_pool() {
        let plan = FaultPlan::new(1)
            .memory_pool_death(SimTime(0))
            .fabric_partition(SimTime(0), FOREVER);
        let (_, _, inj) = injector(plan);
        assert!(inj.pool_down_now());
        inj.retire_pool_faults();
        assert!(!inj.pool_down_now(), "retired specs no longer fire");
    }

    #[test]
    fn pool_death_targets_only_its_shard() {
        let plan = FaultPlan::new(1).pool_death(2, SimTime(0));
        let (_, _, inj) = injector(plan);
        assert!(!inj.pool_down_now_for(0));
        assert!(!inj.pool_down_now_for(1));
        assert!(inj.pool_down_now_for(2));
        inj.retire_pool_faults_for(2);
        assert!(!inj.pool_down_now_for(2), "retired spec no longer fires");

        // Legacy single-pool specs address pool 0 only, and retiring one
        // shard leaves the others' specs armed.
        let legacy = FaultPlan::new(1)
            .memory_pool_death(SimTime(0))
            .pool_death(1, SimTime(0));
        let (_, _, inj) = injector(legacy);
        assert!(inj.pool_down_now_for(0));
        assert!(inj.pool_down_now_for(1));
        inj.retire_pool_faults_for(0);
        assert!(!inj.pool_down_now_for(0));
        assert!(inj.pool_down_now_for(1), "pool 1's death spec stays armed");
    }

    #[test]
    fn fail_slow_onset_is_traced_once_and_tracks_the_window() {
        let plan = FaultPlan::new(1).degraded_pool(1, SimTime(100), SimTime(200), 50);
        let (clock, tracer, inj) = injector(plan);
        assert_eq!(inj.pool_slowdown_for(1), 1, "before the window");
        clock.advance(SimDuration::from_nanos(100));
        assert_eq!(inj.pool_slowdown_for(0), 1, "other shards stay healthy");
        assert_eq!(inj.pool_slowdown_for(1), 50);
        assert_eq!(inj.pool_slowdown_for(1), 50, "slowdown keeps applying");
        clock.advance(SimDuration::from_nanos(100));
        assert_eq!(inj.pool_slowdown_for(1), 1, "window closed");
        assert_eq!(
            tracer.count(EventKind::FailSlowInjected),
            1,
            "one onset event, not one per poll"
        );
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn lame_link_and_grind_multiply_while_spikes_add() {
        let plan = FaultPlan::new(1)
            .lame_fabric_link(SimTime(0), FOREVER, 4)
            .grinding_ssd(SimTime(0), FOREVER, 3)
            .ssd_latency_storm(SimTime(0), FOREVER, 2);
        let (_, tracer, inj) = injector(plan);
        assert!(inj.has_fail_slow_specs());
        assert_eq!(inj.fabric_slowdown(), 4);
        assert_eq!(inj.fabric_penalty(), SimDuration::ZERO, "no additive spike");
        let d = inj.ssd_disruption();
        assert_eq!(d.grind_factor, 3);
        assert_eq!(d.storm_factor, 2, "storm and grind compose");
        inj.fabric_slowdown();
        inj.ssd_disruption();
        assert_eq!(
            tracer.count(EventKind::FailSlowInjected),
            2,
            "one onset per fail-slow spec; the storm traces separately"
        );
        let clean = FaultPlan::new(1).ssd_latency_storm(SimTime(0), FOREVER, 2);
        let (_, _, inj) = injector(clean);
        assert!(!inj.has_fail_slow_specs(), "a storm is not a gray failure");
    }

    #[test]
    fn overlapping_degradations_compound() {
        let plan = FaultPlan::new(1)
            .degraded_pool(0, SimTime(0), FOREVER, 10)
            .degraded_pool(0, SimTime(0), FOREVER, 5);
        let (_, tracer, inj) = injector(plan);
        assert_eq!(inj.pool_slowdown_for(0), 50, "overlapping windows multiply");
        assert_eq!(tracer.count(EventKind::FailSlowInjected), 2);
    }

    #[test]
    fn pool_crash_fires_once_per_spec_and_targets_its_shard() {
        let plan =
            FaultPlan::new(1).pool_crash_restart(1, SimTime(100), SimDuration::from_micros(50));
        let (clock, tracer, inj) = injector(plan);
        assert!(inj.has_crash_restart_specs());
        assert_eq!(inj.pool_crash_now_for(1), None, "before the crash time");
        clock.advance(SimDuration::from_nanos(100));
        assert_eq!(inj.pool_crash_now_for(0), None, "other shards stay up");
        assert_eq!(
            inj.pool_crash_now_for(1),
            Some(SimDuration::from_micros(50))
        );
        assert_eq!(inj.pool_crash_now_for(1), None, "a crash is one-shot");
        assert_eq!(tracer.count(EventKind::FaultInjected), 1);
        let clean = FaultPlan::new(1).pool_death(0, SimTime(0));
        let (_, _, inj) = injector(clean);
        assert!(!inj.has_crash_restart_specs(), "death is not crash-restart");
    }

    #[test]
    fn torn_tail_is_one_shot_and_per_pool() {
        let plan = FaultPlan::new(1)
            .pool_crash_restart(0, SimTime(0), SimDuration::from_micros(10))
            .torn_journal_write(0, SimTime(0));
        let (_, _, inj) = injector(plan);
        assert!(inj.has_crash_restart_specs());
        assert!(!inj.torn_tail_for(1), "other shards' tails are intact");
        assert!(inj.torn_tail_for(0));
        assert!(!inj.torn_tail_for(0), "the tear is one-shot");
        assert_eq!(inj.injected_count(), 1);
    }

    #[test]
    fn repeated_crash_specs_fire_in_plan_order() {
        let plan = FaultPlan::new(1)
            .pool_crash_restart(0, SimTime(0), SimDuration::from_micros(1))
            .pool_crash_restart(0, SimTime(0), SimDuration::from_micros(2));
        let (_, _, inj) = injector(plan);
        assert_eq!(inj.pool_crash_now_for(0), Some(SimDuration::from_micros(1)));
        assert_eq!(inj.pool_crash_now_for(0), Some(SimDuration::from_micros(2)));
        assert_eq!(inj.pool_crash_now_for(0), None, "both crashes spent");
    }

    #[test]
    fn env_seed_falls_back_to_default() {
        // The variable is not set under `cargo test`; the default rules.
        std::env::remove_var("TELEPORT_FAULT_SEED");
        assert_eq!(env_seed(7), 7);
        std::env::set_var("TELEPORT_FAULT_SEED", "123");
        assert_eq!(env_seed(7), 123);
        std::env::set_var("TELEPORT_FAULT_SEED", "not-a-number");
        assert_eq!(env_seed(7), 7);
        std::env::remove_var("TELEPORT_FAULT_SEED");
    }
}
