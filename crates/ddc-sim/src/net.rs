//! The network fabric connecting resource pools.
//!
//! [`Fabric`] is a cloneable handle: the disaggregated OS, the TELEPORT
//! kernel, and the benchmark harness all account against the same message
//! ledger, which is how the paper's per-experiment network statistics
//! (remote memory accesses in Fig 10, coherence messages in Fig 22, message
//! sizes in §6) are regenerated.

use std::cell::RefCell;
use std::rc::Rc;

use crate::config::NetConfig;
use crate::faults::{FaultInjector, IntegrityError};
use crate::time::SimDuration;
use crate::trace::{fnv1a, Lane, TraceEvent, Tracer};

/// Classification of fabric traffic, mirroring the message types the paper
/// distinguishes in its evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// A page moving from the memory pool into the compute-local cache.
    PageIn,
    /// A dirty page written back from the compute cache to the memory pool.
    PageOut,
    /// A coherence protocol control message (invalidate/downgrade/ack).
    Coherence,
    /// A pushdown RPC request (includes the RLE'd resident-page list).
    RpcRequest,
    /// A pushdown RPC response.
    RpcResponse,
    /// Control-plane traffic: heartbeats, cancellation, wakeups.
    Control,
    /// Memory-pool replication: journal shipments (page-table mutations and
    /// dirty-page images) from the primary pool to its backup.
    Replication,
}

/// Aggregate counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    pub messages: u64,
    pub bytes: u64,
}

/// Ledger of everything that crossed the fabric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetLedger {
    pub page_in: ClassCounters,
    pub page_out: ClassCounters,
    pub coherence: ClassCounters,
    pub rpc_request: ClassCounters,
    pub rpc_response: ClassCounters,
    pub control: ClassCounters,
    pub replication: ClassCounters,
}

impl NetLedger {
    fn class_mut(&mut self, class: MsgClass) -> &mut ClassCounters {
        match class {
            MsgClass::PageIn => &mut self.page_in,
            MsgClass::PageOut => &mut self.page_out,
            MsgClass::Coherence => &mut self.coherence,
            MsgClass::RpcRequest => &mut self.rpc_request,
            MsgClass::RpcResponse => &mut self.rpc_response,
            MsgClass::Control => &mut self.control,
            MsgClass::Replication => &mut self.replication,
        }
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.page_in.messages
            + self.page_out.messages
            + self.coherence.messages
            + self.rpc_request.messages
            + self.rpc_response.messages
            + self.control.messages
            + self.replication.messages
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.page_in.bytes
            + self.page_out.bytes
            + self.coherence.bytes
            + self.rpc_request.bytes
            + self.rpc_response.bytes
            + self.control.bytes
            + self.replication.bytes
    }

    /// Bytes that moved *data pages* (what the paper reports as "remote
    /// memory accesses" in Fig 10).
    pub fn page_bytes(&self) -> u64 {
        self.page_in.bytes + self.page_out.bytes
    }
}

/// A cloneable handle to the simulated fabric.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: NetConfig,
    ledger: Rc<RefCell<NetLedger>>,
    tracer: Tracer,
    injector: Rc<RefCell<Option<FaultInjector>>>,
}

impl Fabric {
    pub fn new(cfg: NetConfig) -> Self {
        Fabric::with_tracer(cfg, Tracer::disconnected())
    }

    /// A fabric whose sends are recorded as [`TraceEvent::NetMsg`] on the
    /// shared trace stream.
    pub fn with_tracer(cfg: NetConfig, tracer: Tracer) -> Self {
        Fabric {
            cfg,
            ledger: Rc::new(RefCell::new(NetLedger::default())),
            tracer,
            injector: Rc::new(RefCell::new(None)),
        }
    }

    /// Attach a fault injector: from now on, sends consult the injector's
    /// plan for latency spikes and partitions. Shared across all clones of
    /// this fabric.
    pub fn set_injector(&self, inj: FaultInjector) {
        *self.injector.borrow_mut() = Some(inj);
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Record a message of `bytes` in `class` and return the time it spends
    /// on the wire. The caller advances its own clock; the fabric itself is
    /// purely a cost model plus ledger (the 56 Gbps link never saturates at
    /// the scales simulated here, matching the paper's single-application
    /// runs).
    #[must_use]
    pub fn send(&self, class: MsgClass, bytes: usize) -> SimDuration {
        {
            let mut ledger = self.ledger.borrow_mut();
            let c = ledger.class_mut(class);
            c.messages += 1;
            c.bytes += bytes as u64;
        }
        self.tracer.emit(
            Lane::Net,
            TraceEvent::NetMsg {
                class,
                bytes: bytes as u64,
            },
        );
        let base = match class {
            MsgClass::Coherence => self.cfg.coherence_msg_latency,
            _ => self.cfg.transfer_time(bytes),
        };
        // A lame link (fail-slow) scales the wire time itself, so larger
        // messages hurt more; spikes and partition stalls then add on top.
        let (slowdown, penalty) = match self.injector.borrow().as_ref() {
            Some(inj) => (inj.fabric_slowdown(), inj.fabric_penalty()),
            None => (1, SimDuration::ZERO),
        };
        base * slowdown as u64 + penalty
    }

    /// Verify a delivered page image against the checksum sealed before it
    /// crossed the wire. A mismatch means the fabric corrupted the page in
    /// flight (or it was already corrupt at the sender); the typed error is
    /// emitted as [`TraceEvent::ChecksumMismatch`] and handed to the kernel
    /// for repair.
    pub fn verify_delivery(
        &self,
        page: u64,
        bytes: &[u8],
        expected: u64,
    ) -> Result<(), IntegrityError> {
        if fnv1a(bytes) == expected {
            return Ok(());
        }
        self.tracer
            .emit(Lane::Net, TraceEvent::ChecksumMismatch { page });
        Err(IntegrityError { page })
    }

    /// Snapshot of the ledger.
    pub fn ledger(&self) -> NetLedger {
        self.ledger.borrow().clone()
    }

    /// Reset all counters (used between experiment phases so per-phase
    /// traffic can be attributed, as in Fig 10).
    pub fn reset_ledger(&self) {
        *self.ledger.borrow_mut() = NetLedger::default();
    }

    /// Ledger delta produced by running `f`.
    pub fn measure_traffic<R>(&self, f: impl FnOnce() -> R) -> (R, NetLedger) {
        let before = self.ledger();
        let r = f();
        let after = self.ledger();
        (r, diff(&after, &before))
    }
}

fn diff_class(a: ClassCounters, b: ClassCounters) -> ClassCounters {
    ClassCounters {
        messages: a.messages - b.messages,
        bytes: a.bytes - b.bytes,
    }
}

fn diff(after: &NetLedger, before: &NetLedger) -> NetLedger {
    NetLedger {
        page_in: diff_class(after.page_in, before.page_in),
        page_out: diff_class(after.page_out, before.page_out),
        coherence: diff_class(after.coherence, before.coherence),
        rpc_request: diff_class(after.rpc_request, before.rpc_request),
        rpc_response: diff_class(after.rpc_response, before.rpc_response),
        control: diff_class(after.control, before.control),
        replication: diff_class(after.replication, before.replication),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PAGE_SIZE;

    #[test]
    fn send_records_and_prices_messages() {
        let fab = Fabric::new(NetConfig::default());
        let t = fab.send(MsgClass::PageIn, PAGE_SIZE);
        assert!(t.as_nanos() > 1_200, "page transfer exceeds raw latency");
        let ledger = fab.ledger();
        assert_eq!(ledger.page_in.messages, 1);
        assert_eq!(ledger.page_in.bytes, PAGE_SIZE as u64);
        assert_eq!(ledger.total_messages(), 1);
    }

    #[test]
    fn coherence_messages_use_measured_latency() {
        let fab = Fabric::new(NetConfig::default());
        let t = fab.send(MsgClass::Coherence, 64);
        assert_eq!(t.as_nanos(), 1_600, "paper measures 1.6us per message");
        assert_eq!(fab.ledger().coherence.messages, 1);
    }

    #[test]
    fn handles_share_one_ledger() {
        let a = Fabric::new(NetConfig::default());
        let b = a.clone();
        let _ = a.send(MsgClass::RpcRequest, 100);
        let _ = b.send(MsgClass::RpcResponse, 50);
        let ledger = a.ledger();
        assert_eq!(ledger.rpc_request.messages, 1);
        assert_eq!(ledger.rpc_response.messages, 1);
        assert_eq!(ledger.total_bytes(), 150);
    }

    #[test]
    fn measure_traffic_isolates_a_phase() {
        let fab = Fabric::new(NetConfig::default());
        let _ = fab.send(MsgClass::PageIn, PAGE_SIZE);
        let ((), delta) = fab.measure_traffic(|| {
            let _ = fab.send(MsgClass::PageIn, PAGE_SIZE);
            let _ = fab.send(MsgClass::PageOut, PAGE_SIZE);
        });
        assert_eq!(delta.page_in.messages, 1, "only the phase's traffic");
        assert_eq!(delta.page_out.messages, 1);
        assert_eq!(delta.page_bytes(), 2 * PAGE_SIZE as u64);
        assert_eq!(fab.ledger().page_in.messages, 2);
    }

    #[test]
    fn reset_clears_counters() {
        let fab = Fabric::new(NetConfig::default());
        let _ = fab.send(MsgClass::Control, 16);
        fab.reset_ledger();
        assert_eq!(fab.ledger().total_messages(), 0);
    }
}
