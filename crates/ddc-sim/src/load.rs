//! Open-loop load generation for the multi-tenant serving plane.
//!
//! A production rack is never driven by one workload run to completion: it
//! serves thousands of concurrent sessions arriving on their own schedule,
//! whether the system keeps up or not (an *open-loop* client plane —
//! arrivals do not slow down when the rack saturates). This module provides
//! the deterministic ingredients the `teleport::serve` scheduler multiplexes:
//!
//! - [`ArrivalProcess`] — seeded Poisson / bursty / uniform arrival
//!   schedules in virtual time. Sampling uses the workspace's vendored
//!   xoshiro generator, so the same seed always produces the same schedule
//!   down to the nanosecond.
//! - [`QosClass`] — the three tenant service classes (guaranteed /
//!   burstable / best-effort) with their scheduling weights and admission
//!   headroom multipliers.
//! - [`LatencyRecorder`] — per-tenant virtual-time latency samples with
//!   nearest-rank percentile reporting (p50/p99/p999).
//!
//! Everything here is pure data + seeded sampling: no clock, no I/O, no
//! wall time. Determinism of a serve run reduces to determinism of these
//! schedules plus the single-threaded scheduler that consumes them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// A tenant's service class, in strictly decreasing order of privilege.
///
/// The class feeds two mechanisms in the serving plane:
///
/// - **Admission headroom** ([`QosClass::headroom`]): the per-class
///   multiplier applied to the admission policy's queue-depth and backlog
///   limits. Best-effort runs at the nominal limits (sheds first),
///   burstable at 2×, guaranteed at 4× (sheds last). The limits are
///   nested, so at any instant an admitted best-effort request implies the
///   other classes would also have been admitted.
/// - **Scheduling weight** ([`QosClass::weight`]): the deficit-round-robin
///   quantum, in sessions per round, a tenant of this class receives when
///   the workqueue is contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Production traffic: largest DRR quantum, sheds only past 4× the
    /// nominal admission limits.
    Guaranteed,
    /// Elastic traffic: nominal weight ×2, admission headroom ×2.
    Burstable,
    /// Scavenger traffic: nominal limits, first to shed under overload.
    BestEffort,
}

/// Every class, in privilege order (used by sweeps and reports).
pub const QOS_CLASSES: [QosClass; 3] = [
    QosClass::Guaranteed,
    QosClass::Burstable,
    QosClass::BestEffort,
];

impl QosClass {
    /// Deficit-round-robin quantum (sessions per round).
    pub fn weight(self) -> u64 {
        match self {
            QosClass::Guaranteed => 4,
            QosClass::Burstable => 2,
            QosClass::BestEffort => 1,
        }
    }

    /// Multiplier applied to the admission policy's limits for this class.
    pub fn headroom(self) -> u64 {
        match self {
            QosClass::Guaranteed => 4,
            QosClass::Burstable => 2,
            QosClass::BestEffort => 1,
        }
    }

    /// Stable kebab-case name (used by renders and golden tests).
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Guaranteed => "guaranteed",
            QosClass::Burstable => "burstable",
            QosClass::BestEffort => "best-effort",
        }
    }

    /// Stable snake-case metric segment (`serve.<segment>.…`).
    pub fn metric_segment(self) -> &'static str {
        match self {
            QosClass::Guaranteed => "guaranteed",
            QosClass::Burstable => "burstable",
            QosClass::BestEffort => "best_effort",
        }
    }
}

/// How one tenant's sessions arrive, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: independent exponential inter-arrival gaps with
    /// the given mean (a Poisson process of rate `1 / mean_gap`).
    Poisson { mean_gap: SimDuration },
    /// Bursty arrivals: burst *starts* form a Poisson process with mean gap
    /// `mean_gap`; each burst then releases `burst` back-to-back sessions
    /// spaced `intra_gap` apart. Models thundering herds and synchronized
    /// client retries.
    Bursty {
        mean_gap: SimDuration,
        burst: usize,
        intra_gap: SimDuration,
    },
    /// Deterministic arrivals at `0, gap, 2·gap, …` regardless of seed.
    /// Used by golden tests and capacity planning sweeps.
    Uniform { gap: SimDuration },
}

impl ArrivalProcess {
    pub fn poisson(mean_gap: SimDuration) -> Self {
        ArrivalProcess::Poisson { mean_gap }
    }

    pub fn bursty(mean_gap: SimDuration, burst: usize, intra_gap: SimDuration) -> Self {
        assert!(burst >= 1, "a burst releases at least one session");
        ArrivalProcess::Bursty {
            mean_gap,
            burst,
            intra_gap,
        }
    }

    pub fn uniform(gap: SimDuration) -> Self {
        ArrivalProcess::Uniform { gap }
    }

    /// The first `n` arrival instants of this process, relative to virtual
    /// time zero, non-decreasing. Identical for identical `(self, seed, n)`.
    pub fn schedule(&self, seed: u64, n: usize) -> Vec<SimTime> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                let mut t = 0u64;
                for _ in 0..n {
                    t += exp_gap_ns(&mut rng, mean_gap);
                    out.push(SimTime(t));
                }
            }
            ArrivalProcess::Bursty {
                mean_gap,
                burst,
                intra_gap,
            } => {
                let mut burst_start = 0u64;
                let mut last = 0u64;
                'fill: loop {
                    // A short exponential gap may land the next burst start
                    // inside the previous burst's tail; clamp so the overall
                    // schedule stays non-decreasing (overlapping herds pile
                    // up rather than time-travel).
                    burst_start = (burst_start + exp_gap_ns(&mut rng, mean_gap)).max(last);
                    for k in 0..burst {
                        if out.len() == n {
                            break 'fill;
                        }
                        last = burst_start + k as u64 * intra_gap.as_nanos();
                        out.push(SimTime(last));
                    }
                    if out.len() == n {
                        break;
                    }
                }
            }
            ArrivalProcess::Uniform { gap } => {
                for k in 0..n {
                    out.push(SimTime(k as u64 * gap.as_nanos()));
                }
            }
        }
        out
    }
}

/// One exponential inter-arrival gap in whole nanoseconds (≥ 1 so arrival
/// sequences are strictly increasing within a tenant).
fn exp_gap_ns(rng: &mut StdRng, mean: SimDuration) -> u64 {
    let u: f64 = rng.random(); // uniform in [0, 1)
    let gap = -(1.0 - u).ln() * mean.as_nanos() as f64;
    (gap.round() as u64).max(1)
}

/// Per-tenant virtual-time latency samples with nearest-rank percentiles.
///
/// Latency here is always *session* latency — completion minus arrival in
/// virtual time, so it includes queueing delay, which is exactly what a
/// client of the rack would observe.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<Vec<u64>>,
}

impl LatencyRecorder {
    /// A recorder for `tenants` tenants (indices `0..tenants`).
    pub fn new(tenants: usize) -> Self {
        LatencyRecorder {
            samples: vec![Vec::new(); tenants],
        }
    }

    pub fn tenants(&self) -> usize {
        self.samples.len()
    }

    /// Record one completed session's latency for `tenant`.
    pub fn record(&mut self, tenant: usize, latency: SimDuration) {
        self.samples[tenant].push(latency.as_nanos());
    }

    /// Number of samples recorded for `tenant`.
    pub fn count(&self, tenant: usize) -> usize {
        self.samples[tenant].len()
    }

    /// Nearest-rank percentile (`q` in percent, e.g. `99.9`) of one
    /// tenant's latencies; `None` if the tenant completed nothing.
    pub fn percentile(&self, tenant: usize, q: f64) -> Option<SimDuration> {
        rank(&self.samples[tenant], q)
    }

    pub fn p50(&self, tenant: usize) -> Option<SimDuration> {
        self.percentile(tenant, 50.0)
    }

    pub fn p99(&self, tenant: usize) -> Option<SimDuration> {
        self.percentile(tenant, 99.0)
    }

    pub fn p999(&self, tenant: usize) -> Option<SimDuration> {
        self.percentile(tenant, 99.9)
    }

    /// Nearest-rank percentile over every tenant's samples pooled together.
    pub fn overall_percentile(&self, q: f64) -> Option<SimDuration> {
        let pooled: Vec<u64> = self.samples.iter().flatten().copied().collect();
        rank(&pooled, q)
    }

    /// Largest recorded latency across all tenants.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples
            .iter()
            .flatten()
            .copied()
            .max()
            .map(SimDuration::from_nanos)
    }
}

fn rank(samples: &[u64], q: f64) -> Option<SimDuration> {
    if samples.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    // Nearest-rank: the ⌈q·n/100⌉-th smallest sample, 1-based. Multiply
    // before dividing — `q / 100.0` is already inexact (0.999…), and the
    // extra rounding step is what let tiny-sample ranks drift. The clamp
    // then pins the two legitimate edges: q=0 ceils to rank 0 (the
    // minimum), and a high quantile of a tiny sample (p999 of <1000
    // observations) is the maximum, never an index past the buffer.
    let r = ((q * n as f64) / 100.0).ceil() as usize;
    Some(SimDuration::from_nanos(sorted[r.clamp(1, n) - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        for proc in [
            ArrivalProcess::poisson(SimDuration::from_micros(50)),
            ArrivalProcess::bursty(
                SimDuration::from_micros(200),
                4,
                SimDuration::from_nanos(100),
            ),
            ArrivalProcess::uniform(SimDuration::from_micros(10)),
        ] {
            let a = proc.schedule(42, 100);
            let b = proc.schedule(42, 100);
            assert_eq!(a, b, "{proc:?}");
            assert_eq!(a.len(), 100);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_processes() {
        let proc = ArrivalProcess::poisson(SimDuration::from_micros(50));
        assert_ne!(proc.schedule(1, 50), proc.schedule(2, 50));
        // Uniform ignores the seed by construction.
        let uni = ArrivalProcess::uniform(SimDuration::from_micros(10));
        assert_eq!(uni.schedule(1, 50), uni.schedule(2, 50));
    }

    #[test]
    fn poisson_mean_gap_is_roughly_honored() {
        let mean = SimDuration::from_micros(100);
        let sched = ArrivalProcess::poisson(mean).schedule(7, 2_000);
        let avg = sched.last().unwrap().0 / 2_000;
        // 2000 draws: the sample mean lands well within 2× either way.
        assert!(
            avg > mean.as_nanos() / 2 && avg < mean.as_nanos() * 2,
            "avg gap {avg}ns"
        );
    }

    #[test]
    fn bursty_packs_sessions_inside_bursts() {
        let sched =
            ArrivalProcess::bursty(SimDuration::from_millis(1), 4, SimDuration::from_nanos(10))
                .schedule(3, 8);
        // Sessions 0..4 and 4..8 are two bursts: tight inside, wide between.
        assert_eq!(sched[3].0 - sched[0].0, 30);
        assert_eq!(sched[7].0 - sched[4].0, 30);
        assert!(sched[4].0 - sched[3].0 > 30, "gap between bursts dominates");
    }

    #[test]
    fn qos_ordering_is_nested() {
        // Privilege must be monotone: weights and headroom strictly
        // decrease from guaranteed to best-effort, so admission windows
        // nest and the DRR quantum never starves a lower class to zero.
        for w in QOS_CLASSES.windows(2) {
            assert!(w[0].weight() > w[1].weight());
            assert!(w[0].headroom() > w[1].headroom());
        }
        assert_eq!(QosClass::BestEffort.weight(), 1);
        assert_eq!(QosClass::BestEffort.headroom(), 1);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut lat = LatencyRecorder::new(2);
        for ns in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            lat.record(0, SimDuration::from_nanos(ns));
        }
        assert_eq!(lat.p50(0), Some(SimDuration::from_nanos(50)));
        assert_eq!(lat.p99(0), Some(SimDuration::from_nanos(100)));
        assert_eq!(lat.p999(0), Some(SimDuration::from_nanos(100)));
        assert_eq!(lat.percentile(0, 10.0), Some(SimDuration::from_nanos(10)));
        assert_eq!(lat.p50(1), None, "empty tenant has no percentile");
        assert_eq!(lat.count(0), 10);
        assert_eq!(lat.max(), Some(SimDuration::from_nanos(100)));
        assert_eq!(
            lat.overall_percentile(50.0),
            Some(SimDuration::from_nanos(50))
        );
    }

    #[test]
    fn tiny_sample_percentiles_clamp_to_the_extremes() {
        // One observation: every quantile is that observation.
        let mut one = LatencyRecorder::new(1);
        one.record(0, SimDuration::from_nanos(7));
        for q in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(one.percentile(0, q), Some(SimDuration::from_nanos(7)));
        }

        // Fewer than 1000 observations: p999 is the maximum, never an
        // index past the sorted buffer.
        let mut few = LatencyRecorder::new(1);
        for ns in [30u64, 10, 20] {
            few.record(0, SimDuration::from_nanos(ns));
        }
        assert_eq!(few.p999(0), Some(SimDuration::from_nanos(30)));
        assert_eq!(few.percentile(0, 100.0), Some(SimDuration::from_nanos(30)));
        assert_eq!(few.percentile(0, 0.0), Some(SimDuration::from_nanos(10)));

        let mut ten = LatencyRecorder::new(1);
        for ns in 1..=10u64 {
            ten.record(0, SimDuration::from_nanos(ns));
        }
        assert_eq!(ten.p999(0), Some(SimDuration::from_nanos(10)));
        assert_eq!(
            ten.overall_percentile(99.9),
            Some(SimDuration::from_nanos(10))
        );
    }

    #[test]
    fn large_sample_p999_is_not_the_max() {
        // At n=1000 the 99.9th nearest rank is the 999th smallest sample,
        // one below the maximum — the clamp must not flatten it to max.
        let mut lat = LatencyRecorder::new(1);
        for ns in 1..=1000u64 {
            lat.record(0, SimDuration::from_nanos(ns));
        }
        assert_eq!(lat.p999(0), Some(SimDuration::from_nanos(999)));
        assert_eq!(
            lat.percentile(0, 100.0),
            Some(SimDuration::from_nanos(1000))
        );
        assert_eq!(lat.p99(0), Some(SimDuration::from_nanos(990)));
    }
}
