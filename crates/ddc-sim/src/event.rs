//! Deterministic interleaving of logical threads, and a queueing model for
//! parallel pushdown contexts.
//!
//! The paper's multi-threaded experiments (Figs 6, 7, 21, 22) interleave a
//! compute-bound thread with a memory-bound thread over shared coherence
//! state. [`Interleaver`] realizes this as a discrete-event schedule: each
//! logical thread ("lane") owns a virtual clock, and the engine always steps
//! the lane whose clock is earliest, so cross-lane interactions happen in a
//! deterministic global order.
//!
//! [`multiplex_makespan`] models Fig 17: N logical TELEPORT user contexts
//! time-sliced over a smaller number of physical cores in the memory pool,
//! with context-switch overhead producing the paper's diminishing returns.

use crate::time::{SimDuration, SimTime};

/// State of one logical thread in an interleaved simulation.
#[derive(Debug, Clone, Copy)]
struct LaneState {
    clock: SimTime,
    done: bool,
}

/// A deterministic min-clock scheduler over logical threads.
#[derive(Debug, Clone)]
pub struct Interleaver {
    lanes: Vec<LaneState>,
}

impl Interleaver {
    /// Create `n` lanes, all at time zero and runnable.
    pub fn new(n: usize) -> Self {
        Interleaver {
            lanes: vec![
                LaneState {
                    clock: SimTime::ZERO,
                    done: false,
                };
                n
            ],
        }
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The runnable lane with the earliest clock (ties broken by lowest
    /// index, keeping schedules deterministic). `None` when all lanes are
    /// finished.
    pub fn next_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.done)
            .min_by_key(|(i, l)| (l.clock, *i))
            .map(|(i, _)| i)
    }

    /// Advance `lane`'s clock by `d`.
    pub fn advance(&mut self, lane: usize, d: SimDuration) {
        self.lanes[lane].clock += d;
    }

    /// Block `lane` until instant `t` (no-op if already past `t`). Used when
    /// a lane waits on a response from another lane.
    pub fn block_until(&mut self, lane: usize, t: SimTime) {
        if t > self.lanes[lane].clock {
            self.lanes[lane].clock = t;
        }
    }

    /// Current clock of `lane`.
    pub fn clock_of(&self, lane: usize) -> SimTime {
        self.lanes[lane].clock
    }

    /// Mark `lane` finished; its clock freezes at its current value.
    pub fn finish(&mut self, lane: usize) {
        self.lanes[lane].done = true;
    }

    pub fn is_finished(&self, lane: usize) -> bool {
        self.lanes[lane].done
    }

    /// True when every lane has finished.
    pub fn all_finished(&self) -> bool {
        self.lanes.iter().all(|l| l.done)
    }

    /// The completion time of the whole run: the latest lane clock.
    pub fn makespan(&self) -> SimDuration {
        SimDuration(self.lanes.iter().map(|l| l.clock.0).max().unwrap_or(0))
    }
}

/// Makespan of running `jobs` on `contexts` logical workers multiplexed over
/// `cores` physical cores with round-robin time slicing.
///
/// While more contexts than cores are active, every scheduling quantum pays
/// `ctx_switch` of overhead, so per-context progress is scaled by
/// `cores / active * quantum / (quantum + ctx_switch)`. With `active <=
/// cores`, contexts run undisturbed at full speed. This reproduces the
/// paper's Fig 17: speedup grows with added contexts, then flattens once the
/// memory pool's two physical cores are oversubscribed.
pub fn multiplex_makespan(
    jobs: &[SimDuration],
    contexts: usize,
    cores: usize,
    ctx_switch: SimDuration,
    quantum: SimDuration,
) -> SimDuration {
    assert!(
        contexts > 0 && cores > 0,
        "need at least one context and core"
    );
    assert!(quantum > SimDuration::ZERO, "quantum must be positive");

    // Remaining work per busy context, in ns of dedicated-core time.
    let mut running: Vec<f64> = Vec::with_capacity(contexts);
    let mut queue: std::collections::VecDeque<f64> =
        jobs.iter().map(|d| d.as_nanos() as f64).collect();
    let mut now = 0.0_f64;

    while running.len() < contexts {
        match queue.pop_front() {
            Some(j) => running.push(j),
            None => break,
        }
    }

    let overhead_factor =
        quantum.as_nanos() as f64 / (quantum.as_nanos() + ctx_switch.as_nanos()) as f64;

    while !running.is_empty() {
        let active = running.len();
        // Fraction of a dedicated core each active context receives.
        let rate = if active <= cores {
            1.0
        } else {
            cores as f64 / active as f64 * overhead_factor
        };
        // Next completion among active contexts.
        let least = running
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .expect("running is non-empty");
        let dt = least / rate;
        now += dt;
        let progressed = dt * rate;
        for w in &mut running {
            *w -= progressed;
        }
        // Every context that just finished (possibly several at once) frees
        // a slot and immediately pulls the next queued job.
        let mut i = 0;
        while i < running.len() {
            if running[i] <= 1e-9 {
                running.swap_remove(i);
                if let Some(j) = queue.pop_front() {
                    running.push(j);
                }
            } else {
                i += 1;
            }
        }
    }

    SimDuration::from_nanos(now.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaver_steps_earliest_lane() {
        let mut il = Interleaver::new(2);
        assert_eq!(il.next_lane(), Some(0), "tie broken by index");
        il.advance(0, SimDuration::from_nanos(10));
        assert_eq!(il.next_lane(), Some(1));
        il.advance(1, SimDuration::from_nanos(25));
        assert_eq!(il.next_lane(), Some(0));
    }

    #[test]
    fn interleaver_finish_and_makespan() {
        let mut il = Interleaver::new(3);
        il.advance(0, SimDuration::from_nanos(5));
        il.advance(1, SimDuration::from_nanos(9));
        il.advance(2, SimDuration::from_nanos(7));
        il.finish(0);
        il.finish(2);
        assert_eq!(il.next_lane(), Some(1));
        il.finish(1);
        assert!(il.all_finished());
        assert_eq!(il.makespan().as_nanos(), 9);
    }

    #[test]
    fn block_until_never_rewinds() {
        let mut il = Interleaver::new(1);
        il.advance(0, SimDuration::from_nanos(100));
        il.block_until(0, SimTime(40));
        assert_eq!(il.clock_of(0).as_nanos(), 100);
        il.block_until(0, SimTime(140));
        assert_eq!(il.clock_of(0).as_nanos(), 140);
    }

    #[test]
    fn multiplex_single_context_serializes() {
        let job = SimDuration::from_millis(10);
        let jobs = vec![job; 8];
        let t = multiplex_makespan(
            &jobs,
            1,
            2,
            SimDuration::from_micros(5),
            SimDuration::from_millis(1),
        );
        assert_eq!(t, job * 8, "one context runs jobs back to back");
    }

    #[test]
    fn multiplex_scales_then_saturates() {
        let jobs = vec![SimDuration::from_millis(10); 8];
        let cs = SimDuration::from_micros(5);
        let q = SimDuration::from_millis(1);
        let t1 = multiplex_makespan(&jobs, 1, 2, cs, q);
        let t2 = multiplex_makespan(&jobs, 2, 2, cs, q);
        let t4 = multiplex_makespan(&jobs, 4, 2, cs, q);
        // Two contexts on two cores: near-perfect 2x.
        let s2 = t1.ratio(t2);
        assert!(s2 > 1.9 && s2 < 2.05, "2-context speedup was {s2:.2}");
        // Four contexts on two cores: no faster than two, slightly slower
        // due to context switching (diminishing returns in Fig 17).
        assert!(t4 >= t2, "oversubscription cannot beat core count");
        let s4 = t1.ratio(t4);
        assert!(s4 > 1.5, "still roughly core-bound, got {s4:.2}");
    }

    #[test]
    fn multiplex_handles_uneven_jobs() {
        let jobs = vec![
            SimDuration::from_millis(30),
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
        ];
        let t = multiplex_makespan(&jobs, 2, 2, SimDuration::ZERO, SimDuration::from_millis(1));
        // Long job dominates: makespan == 30ms.
        assert_eq!(t, SimDuration::from_millis(30));
    }

    #[test]
    fn multiplex_empty_jobs_is_zero() {
        let t = multiplex_makespan(
            &[],
            4,
            2,
            SimDuration::from_micros(5),
            SimDuration::from_millis(1),
        );
        assert_eq!(t, SimDuration::ZERO);
    }
}
