//! Deterministic structured event tracing and named metrics.
//!
//! Every layer of the simulation — the fabric, the SSD, the disaggregated
//! OS kernel, the coherence protocol, and the pushdown lifecycle — emits
//! typed [`TraceEvent`]s through a shared [`Tracer`] handle. Because the
//! whole simulation is single-threaded and runs on one virtual clock, the
//! resulting stream is a *testable artifact*: integration tests assert
//! exact event sequences for small workloads and digest-equality for
//! determinism regressions.
//!
//! Design points:
//!
//! - **Zero-cost when disabled** (the default): [`Tracer::emit`] checks one
//!   shared boolean and returns. No event is constructed into the buffer,
//!   no time is charged (emission never touches the clock), and no result
//!   of any experiment changes when tracing is off — or on.
//! - **Ring buffer + running digest.** The last
//!   [`Tracer::ring_capacity`] records are kept for inspection; the
//!   64-bit FNV-1a [`Tracer::digest`] and the per-kind
//!   [`Tracer::count`]s cover the *entire* stream since the last reset,
//!   so digest comparisons remain exact even after the ring wraps.
//! - **Pluggable sink.** A [`TraceSink`] observes every record as it is
//!   emitted (e.g. to print a live log); any `FnMut(&TraceRecord)`
//!   qualifies.
//!
//! [`MetricsRegistry`] is the aggregate companion: a deterministic
//! name → monotonic-counter map that the OS and runtime layers fill from
//! their ledgers (`paging.*`, `net.*`, `ssd.*`, `trace.*`, …), subsuming
//! the ad-hoc counter structs for reporting purposes.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::clock::Clock;
use crate::load::QosClass;
use crate::net::MsgClass;
use crate::time::SimTime;

/// Where a page fault was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// Satisfied without leaving the faulting pool (fresh zero page).
    Cache,
    /// Pulled from the remote memory pool over the fabric.
    Remote,
    /// Recursed to the storage pool / swap device.
    Storage,
}

/// The pool (or wire) an event originates from. One virtual clock drives
/// all lanes, so timestamps are globally non-decreasing between resets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    Compute,
    Memory,
    Storage,
    Net,
}

pub const LANES: [Lane; 4] = [Lane::Compute, Lane::Memory, Lane::Storage, Lane::Net];

/// A Fig 9 coherence transition (or §4.1 tie-break) as observed on the
/// wire. Only *messaged* transitions appear in the trace: relaxed modes
/// that go silently stale emit nothing, which is exactly what makes
/// `CoherenceMode::Disabled` traceable as "zero coherence messages".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceTransition {
    /// Memory-side write invalidated the compute copy (WriteInvalidate).
    InvalidateCompute,
    /// Memory-side access downgraded the compute copy to read-only
    /// (PSO first write, or any coherent read of a compute-writable page).
    DowngradeCompute,
    /// Compute-side write invalidated the temporary context's copy.
    InvalidateMem,
    /// Compute-side read downgraded the temporary context to reader.
    DowngradeMem,
    /// `(R, R)` → compute-exclusive permission upgrade round trip.
    UpgradeExclusive,
    /// The compute side lost a §4.1 write-write tie and backed off.
    TieBreakBackoff,
    /// The memory side reissued after losing a FavorCompute tie.
    TieBreakReissue,
    /// Weak Ordering batched invalidation at pushdown completion.
    CompletionSync,
}

/// A fault injected by the deterministic fault plane ([`crate::faults`]).
/// The variant identifies *what* was disrupted; the accompanying
/// [`TraceEvent::FaultInjected`] magnitude carries the fault-specific
/// quantity (extra nanoseconds, a slowdown factor, a backlog, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fabric sends pay extra wire latency.
    FabricLatencySpike,
    /// The fabric was unreachable; the message stalled until the partition
    /// healed.
    FabricPartition,
    /// An SSD operation failed transiently and was retried by the device
    /// layer.
    SsdTransientError,
    /// SSD operations run at a multiple of their normal time.
    SsdLatencyStorm,
    /// A memory-pool heartbeat went unanswered.
    HeartbeatFlap,
    /// Other tenants' requests piled up ahead of a pushdown in the
    /// memory-side workqueue.
    QueueBacklogBurst,
    /// The pushed function raised an injected exception.
    PushdownException,
    /// The pushed function hung until the kill timeout fired.
    PushdownHang,
    /// A page image was flipped in flight on the fabric (bit-flip).
    FabricBitFlip,
    /// A latent sector error / torn write corrupted a page on the SSD.
    SsdLatentSector,
    /// The memory pool scribbled over bytes of a resident page.
    PoolScribble,
    /// Fail-slow: a pool's memory-side service time is multiplied while
    /// its heartbeats stay healthy (a brownout, not a blackout).
    DegradedPool,
    /// Fail-slow: fabric wire time is multiplied per message.
    LameFabricLink,
    /// Fail-slow: SSD operation time is multiplied.
    GrindingSsd,
    /// A pool crashed (volatile state wiped) and is scheduled to restart.
    PoolCrashRestart,
    /// A crash tore the un-synced tail of a pool's recovery journal.
    TornJournalWrite,
}

/// One state of the per-pool gray-failure detector (`ddc-os::health`).
/// Defined here so [`TraceEvent::HealthTransition`] can carry it without
/// the trace layer depending on the OS layer. Discriminants are stable:
/// they are folded into the stream digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolHealthState {
    /// Serving at (or near) its learned baseline.
    Healthy,
    /// One window of degraded service observed; watching for another.
    Suspect,
    /// Confirmed fail-slow: excluded from placement, probed for recovery.
    Quarantined,
    /// Probes look healthy; passing a reintegration streak before trusting
    /// the pool with new placements again.
    Probation,
}

/// Stable kebab-case name of one pool-health state (used by renders and
/// golden tests).
pub fn health_label(state: PoolHealthState) -> &'static str {
    match state {
        PoolHealthState::Healthy => "healthy",
        PoolHealthState::Suspect => "suspect",
        PoolHealthState::Quarantined => "quarantined",
        PoolHealthState::Probation => "probation",
    }
}

/// A recovery decision taken by the resilience policy layer
/// (`teleport::resilience`) or the heartbeat monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A failed pushdown is backed off and reissued (attempt = the retry
    /// number being started, 1-based).
    RetryBackoff,
    /// A reissued pushdown succeeded after `attempt` retries.
    RetrySuccess,
    /// The caller gave up on pushdown and re-executed locally.
    LocalFallback,
    /// The memory pool answered heartbeats again after `attempt` misses.
    HeartbeatRecovered,
}

/// Where the kernel found an intact copy when repairing a corrupted page
/// (the repair lattice: SSD for clean pages, the replica journal for dirty
/// pages with an acked surviving copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairSource {
    /// Clean page: re-read the authoritative image from storage.
    Ssd,
    /// Dirty page: re-fetch the acked copy from the backup pool.
    Replica,
}

/// One structured simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A page fault, tagged with the level that satisfied it.
    PageFault { vaddr: u64, level: FaultLevel },
    /// A page left the faulting pool's cache.
    Evict { page: u64, dirty: bool },
    /// A message crossed the fabric.
    NetMsg { class: MsgClass, bytes: u64 },
    /// An SSD operation.
    SsdIo { write: bool, bytes: u64 },
    /// A coherence protocol round trip (request + response).
    CoherenceMsg {
        page: u64,
        transition: CoherenceTransition,
    },
    /// One step ❶–❽ of the pushdown lifecycle (paper Fig 5).
    PushdownStep { step: u8 },
    /// A `syncmem` call flushed `pages` dirty pages (one event per call).
    Syncmem { pages: u64 },
    /// A queued pushdown request was cancelled via `try_cancel`.
    Cancel { req: u64 },
    /// A pushdown call's timeout elapsed while queued.
    Timeout { req: u64 },
    /// The fault plane injected a fault. `magnitude` is fault-specific:
    /// extra latency in ns, a slowdown factor, a backlog in ns, or a count.
    FaultInjected {
        fault: InjectedFault,
        magnitude: u64,
    },
    /// A resilience decision: retry backoff, retry success, local fallback,
    /// or heartbeat recovery. `attempt` counts retries (or missed beats).
    Recovery {
        action: RecoveryAction,
        attempt: u32,
    },
    /// A `try_cancel` arrived after the request had started running; the
    /// memory pool declined it (§3.2's already-running race).
    CancelDeclined { req: u64 },
    /// The primary pool shipped a journal batch (page-table mutations plus
    /// `pages` dirty-page images, ending at sequence `seq`) to its backup.
    ReplicaShip { seq: u64, pages: u64 },
    /// The backup acknowledged every journal entry up to `seq`; the primary
    /// truncates its journal to that point.
    ReplicaAck { seq: u64 },
    /// The backup pool was promoted to primary at `epoch`. `lost_pages`
    /// counts pages whose latest state was un-acked at the time of death
    /// and therefore had to be re-fetched from storage.
    PoolPromoted { epoch: u64, lost_pages: u64 },
    /// Admission control shed a pushdown request before it queued;
    /// `backlog_ns` is the memory-side backlog that triggered the verdict.
    AdmissionShed { backlog_ns: u64 },
    /// The fault plane flipped real bytes of a page (at `offset` within the
    /// page) somewhere on the compute↔memory↔storage path.
    CorruptionInjected { page: u64, offset: u64 },
    /// A checksum verification failed: the stored page checksum no longer
    /// matches the page's bytes.
    ChecksumMismatch { page: u64 },
    /// The kernel restored a corrupted page from an intact copy.
    PageRepaired { page: u64, source: RepairSource },
    /// No intact copy of the corrupted page survives anywhere; the page is
    /// unrecoverable and the error is surfaced, never a wrong answer.
    DataLoss { page: u64 },
    /// One background scrub pass finished: `pages` resident pages were
    /// verified, `detected` of them failed their checksum.
    ScrubPass { pages: u64, detected: u64 },
    /// The happens-before checker found two unordered accesses to `page`
    /// from opposite sides of a pushdown session (§5 syncmem hygiene):
    /// neither a syncmem edge nor a coherence round trip ordered them, and
    /// at least one was a write. `write_write` distinguishes a write/write
    /// conflict from a read/write one.
    RaceDetected { page: u64, write_write: bool },
    /// The kernel routed a pushdown's working set to the shard owning it:
    /// `pool` is the primary (lowest-index) owning pool, `pages` the pages
    /// the call touched. Emitted only in multi-pool topologies
    /// (`pools > 1`), so single-pool streams stay bit-identical.
    PoolRouted { pool: u64, pages: u64 },
    /// A pushdown's working set spanned `pools` shards, so the call fanned
    /// out as one sub-call per owning pool (in pool-index order).
    PushdownFanout { pools: u64, pages: u64 },
    /// Every per-pool sub-call of a fanned-out pushdown completed and the
    /// results merged, in pool-index order, back on the primary shard.
    FanoutMerge { pools: u64 },
    /// A tenant's session arrived at the open-loop serving plane (client
    /// arrivals never wait for the rack; this stamps the schedule instant).
    SessionArrive { tenant: u64, session: u64 },
    /// The session passed class-aware admission and entered the fair
    /// workqueue.
    SessionAdmit { tenant: u64, session: u64 },
    /// The session finished; `latency_ns` is completion minus arrival in
    /// virtual time (queueing included — client-observed latency).
    SessionComplete { tenant: u64, latency_ns: u64 },
    /// Class-aware admission shed a session of `tenant` at arrival; the
    /// tenant's QoS class identifies which headroom limit it overran.
    TenantThrottled { tenant: u64, class: QosClass },
    /// The fault plane started a fail-slow (gray) degradation. Emitted
    /// once at onset — the slowdown itself is silent after this, unlike
    /// the per-poll [`TraceEvent::FaultInjected`] stream.
    FailSlowInjected { fault: InjectedFault, factor: u64 },
    /// The per-pool health detector moved pool `pool` between states of
    /// `Healthy → Suspect → Quarantined → Probation → Healthy`.
    HealthTransition {
        pool: u64,
        from: PoolHealthState,
        to: PoolHealthState,
    },
    /// Pushdown `call` ran past the hedge delay; a hedge leg was issued.
    HedgeFired { call: u64 },
    /// The hedge leg of pushdown `call` finished first; the primary leg
    /// was cancelled (or its result discarded).
    HedgeWon { call: u64 },
    /// Pushdown `call` blew its deadline budget by `over_ns`.
    DeadlineExceeded { call: u64, over_ns: u64 },
    /// A quarantined pool passed its probe streak and rejoined placement.
    PoolReintegrated { pool: u64 },
    /// Pool `pool` crashed: its volatile state (residency, dirty bits,
    /// pins) is gone. `epoch` is the epoch the pool held when it died —
    /// any in-flight interaction stamped with it is now stale.
    PoolCrashed { pool: u64, epoch: u64 },
    /// Recovery replayed `entries` journal entries over the restarted
    /// pool's SSD-authoritative base, re-fetching `pages` distinct pages.
    JournalReplayed { entries: u64, pages: u64 },
    /// Replay found a checksum-invalid (torn) journal tail and discarded
    /// it: `entries` entries covering `pages` page writes never applied.
    TornTailDiscarded { entries: u64, pages: u64 },
    /// Pool `pool` finished recovery and is back online at `epoch`
    /// (strictly greater than any epoch the pool ever held before).
    PoolRestarted { pool: u64, epoch: u64 },
    /// A write or ack carrying `stale_epoch` reached pool `pool` after an
    /// epoch bump fenced it off; the interaction was rejected, not applied.
    FencedWrite { pool: u64, stale_epoch: u64 },
    /// A rejoining standby finished re-silvering: `pages` pages of catch-up
    /// replication traffic brought it level with the current primary.
    ResilverComplete { pool: u64, pages: u64 },
}

/// Coarse classification of [`TraceEvent`]s, used for whole-stream counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    PageFault,
    Evict,
    NetMsg,
    SsdIo,
    CoherenceMsg,
    PushdownStep,
    Syncmem,
    Cancel,
    Timeout,
    FaultInjected,
    Recovery,
    CancelDeclined,
    ReplicaShip,
    ReplicaAck,
    PoolPromoted,
    AdmissionShed,
    CorruptionInjected,
    ChecksumMismatch,
    PageRepaired,
    DataLoss,
    ScrubPass,
    RaceDetected,
    PoolRouted,
    PushdownFanout,
    FanoutMerge,
    SessionArrive,
    SessionAdmit,
    SessionComplete,
    TenantThrottled,
    FailSlowInjected,
    HealthTransition,
    HedgeFired,
    HedgeWon,
    DeadlineExceeded,
    PoolReintegrated,
    PoolCrashed,
    JournalReplayed,
    TornTailDiscarded,
    PoolRestarted,
    FencedWrite,
    ResilverComplete,
}

pub const EVENT_KINDS: usize = 41;

impl TraceEvent {
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::PageFault { .. } => EventKind::PageFault,
            TraceEvent::Evict { .. } => EventKind::Evict,
            TraceEvent::NetMsg { .. } => EventKind::NetMsg,
            TraceEvent::SsdIo { .. } => EventKind::SsdIo,
            TraceEvent::CoherenceMsg { .. } => EventKind::CoherenceMsg,
            TraceEvent::PushdownStep { .. } => EventKind::PushdownStep,
            TraceEvent::Syncmem { .. } => EventKind::Syncmem,
            TraceEvent::Cancel { .. } => EventKind::Cancel,
            TraceEvent::Timeout { .. } => EventKind::Timeout,
            TraceEvent::FaultInjected { .. } => EventKind::FaultInjected,
            TraceEvent::Recovery { .. } => EventKind::Recovery,
            TraceEvent::CancelDeclined { .. } => EventKind::CancelDeclined,
            TraceEvent::ReplicaShip { .. } => EventKind::ReplicaShip,
            TraceEvent::ReplicaAck { .. } => EventKind::ReplicaAck,
            TraceEvent::PoolPromoted { .. } => EventKind::PoolPromoted,
            TraceEvent::AdmissionShed { .. } => EventKind::AdmissionShed,
            TraceEvent::CorruptionInjected { .. } => EventKind::CorruptionInjected,
            TraceEvent::ChecksumMismatch { .. } => EventKind::ChecksumMismatch,
            TraceEvent::PageRepaired { .. } => EventKind::PageRepaired,
            TraceEvent::DataLoss { .. } => EventKind::DataLoss,
            TraceEvent::ScrubPass { .. } => EventKind::ScrubPass,
            TraceEvent::RaceDetected { .. } => EventKind::RaceDetected,
            TraceEvent::PoolRouted { .. } => EventKind::PoolRouted,
            TraceEvent::PushdownFanout { .. } => EventKind::PushdownFanout,
            TraceEvent::FanoutMerge { .. } => EventKind::FanoutMerge,
            TraceEvent::SessionArrive { .. } => EventKind::SessionArrive,
            TraceEvent::SessionAdmit { .. } => EventKind::SessionAdmit,
            TraceEvent::SessionComplete { .. } => EventKind::SessionComplete,
            TraceEvent::TenantThrottled { .. } => EventKind::TenantThrottled,
            TraceEvent::FailSlowInjected { .. } => EventKind::FailSlowInjected,
            TraceEvent::HealthTransition { .. } => EventKind::HealthTransition,
            TraceEvent::HedgeFired { .. } => EventKind::HedgeFired,
            TraceEvent::HedgeWon { .. } => EventKind::HedgeWon,
            TraceEvent::DeadlineExceeded { .. } => EventKind::DeadlineExceeded,
            TraceEvent::PoolReintegrated { .. } => EventKind::PoolReintegrated,
            TraceEvent::PoolCrashed { .. } => EventKind::PoolCrashed,
            TraceEvent::JournalReplayed { .. } => EventKind::JournalReplayed,
            TraceEvent::TornTailDiscarded { .. } => EventKind::TornTailDiscarded,
            TraceEvent::PoolRestarted { .. } => EventKind::PoolRestarted,
            TraceEvent::FencedWrite { .. } => EventKind::FencedWrite,
            TraceEvent::ResilverComplete { .. } => EventKind::ResilverComplete,
        }
    }

    /// Stable words folded into the stream digest (tag + payload).
    fn digest_words(&self) -> [u64; 3] {
        match *self {
            TraceEvent::PageFault { vaddr, level } => [0, vaddr, level as u64],
            TraceEvent::Evict { page, dirty } => [1, page, dirty as u64],
            TraceEvent::NetMsg { class, bytes } => [2, class as u64, bytes],
            TraceEvent::SsdIo { write, bytes } => [3, write as u64, bytes],
            TraceEvent::CoherenceMsg { page, transition } => [4, page, transition as u64],
            TraceEvent::PushdownStep { step } => [5, step as u64, 0],
            TraceEvent::Syncmem { pages } => [6, pages, 0],
            TraceEvent::Cancel { req } => [7, req, 0],
            TraceEvent::Timeout { req } => [8, req, 0],
            TraceEvent::FaultInjected { fault, magnitude } => [9, fault as u64, magnitude],
            TraceEvent::Recovery { action, attempt } => [10, action as u64, attempt as u64],
            TraceEvent::CancelDeclined { req } => [11, req, 0],
            TraceEvent::ReplicaShip { seq, pages } => [12, seq, pages],
            TraceEvent::ReplicaAck { seq } => [13, seq, 0],
            TraceEvent::PoolPromoted { epoch, lost_pages } => [14, epoch, lost_pages],
            TraceEvent::AdmissionShed { backlog_ns } => [15, backlog_ns, 0],
            TraceEvent::CorruptionInjected { page, offset } => [16, page, offset],
            TraceEvent::ChecksumMismatch { page } => [17, page, 0],
            TraceEvent::PageRepaired { page, source } => [18, page, source as u64],
            TraceEvent::DataLoss { page } => [19, page, 0],
            TraceEvent::ScrubPass { pages, detected } => [20, pages, detected],
            TraceEvent::RaceDetected { page, write_write } => [21, page, write_write as u64],
            TraceEvent::PoolRouted { pool, pages } => [22, pool, pages],
            TraceEvent::PushdownFanout { pools, pages } => [23, pools, pages],
            TraceEvent::FanoutMerge { pools } => [24, pools, 0],
            TraceEvent::SessionArrive { tenant, session } => [25, tenant, session],
            TraceEvent::SessionAdmit { tenant, session } => [26, tenant, session],
            TraceEvent::SessionComplete { tenant, latency_ns } => [27, tenant, latency_ns],
            TraceEvent::TenantThrottled { tenant, class } => [28, tenant, class as u64],
            TraceEvent::FailSlowInjected { fault, factor } => [29, fault as u64, factor],
            TraceEvent::HealthTransition { pool, from, to } => {
                [30, pool, (from as u64) << 2 | to as u64]
            }
            TraceEvent::HedgeFired { call } => [31, call, 0],
            TraceEvent::HedgeWon { call } => [32, call, 0],
            TraceEvent::DeadlineExceeded { call, over_ns } => [33, call, over_ns],
            TraceEvent::PoolReintegrated { pool } => [34, pool, 0],
            TraceEvent::PoolCrashed { pool, epoch } => [35, pool, epoch],
            TraceEvent::JournalReplayed { entries, pages } => [36, entries, pages],
            TraceEvent::TornTailDiscarded { entries, pages } => [37, entries, pages],
            TraceEvent::PoolRestarted { pool, epoch } => [38, pool, epoch],
            TraceEvent::FencedWrite { pool, stale_epoch } => [39, pool, stale_epoch],
            TraceEvent::ResilverComplete { pool, pages } => [40, pool, pages],
        }
    }
}

/// One emitted event with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in the whole stream (0-based, never reused until a reset).
    pub seq: u64,
    /// Virtual time of emission.
    pub at: SimTime,
    /// Originating pool/lane.
    pub lane: Lane,
    pub event: TraceEvent,
}

/// Observer of the live event stream.
pub trait TraceSink {
    fn record(&mut self, rec: &TraceRecord);
}

impl<F: FnMut(&TraceRecord)> TraceSink for F {
    fn record(&mut self, rec: &TraceRecord) {
        self(rec)
    }
}

const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// FNV-1a-64 offset basis. The *single* FNV implementation in the
/// workspace: the trace-stream digest below and the page checksums in
/// `ddc-os` both fold through these helpers, so the two can never drift.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a-64 prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Fold one little-endian `u64` word into a running FNV-1a-64 hash.
#[inline]
pub fn fnv_fold(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One-shot FNV-1a-64 over a byte slice, starting from the offset basis.
/// This is the page-checksum function: fast, deterministic, and sensitive
/// to every bit of the page image.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

struct TraceBuf {
    next_seq: u64,
    digest: u64,
    ring: VecDeque<TraceRecord>,
    capacity: usize,
    counts: [u64; EVENT_KINDS],
    sink: Option<Box<dyn TraceSink>>,
}

impl TraceBuf {
    fn new() -> Self {
        TraceBuf {
            next_seq: 0,
            digest: FNV_OFFSET,
            ring: VecDeque::new(),
            capacity: DEFAULT_RING_CAPACITY,
            counts: [0; EVENT_KINDS],
            sink: None,
        }
    }

    fn reset(&mut self) {
        self.next_seq = 0;
        self.digest = FNV_OFFSET;
        self.ring.clear();
        self.counts = [0; EVENT_KINDS];
        // Sink and capacity survive a reset: they are configuration.
    }
}

/// A cloneable handle to one shared event stream. All clones observe and
/// feed the same buffer; the clock stamps every record.
#[derive(Clone)]
pub struct Tracer {
    enabled: Rc<Cell<bool>>,
    clock: Clock,
    buf: Rc<RefCell<TraceBuf>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled.get())
            .field("events", &self.buf.borrow().next_seq)
            .finish()
    }
}

impl Tracer {
    /// A tracer stamping records with `clock`. Starts disabled.
    pub fn new(clock: Clock) -> Self {
        Tracer {
            enabled: Rc::new(Cell::new(false)),
            clock,
            buf: Rc::new(RefCell::new(TraceBuf::new())),
        }
    }

    /// A permanently-idle tracer for components constructed without one
    /// (e.g. a bare `Fabric::new`). It can technically be enabled, but no
    /// clock drives it, so timestamps stay at zero.
    pub fn disconnected() -> Self {
        Tracer::new(Clock::new())
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Start recording. Emission while disabled is a single branch.
    pub fn enable(&self) {
        self.enabled.set(true);
    }

    pub fn disable(&self) {
        self.enabled.set(false);
    }

    /// Record one event. The fast path (tracing disabled) is one shared
    /// boolean load.
    #[inline]
    pub fn emit(&self, lane: Lane, event: TraceEvent) {
        if !self.enabled.get() {
            return;
        }
        self.emit_slow(lane, event);
    }

    #[cold]
    fn emit_slow(&self, lane: Lane, event: TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        let rec = TraceRecord {
            seq: buf.next_seq,
            at: self.clock.now(),
            lane,
            event,
        };
        buf.next_seq += 1;
        buf.counts[event.kind() as usize] += 1;
        let mut h = buf.digest;
        h = fnv_fold(h, rec.at.0);
        h = fnv_fold(h, lane as u64);
        for w in event.digest_words() {
            h = fnv_fold(h, w);
        }
        buf.digest = h;
        if buf.ring.len() == buf.capacity {
            buf.ring.pop_front();
        }
        let capacity = buf.capacity;
        if capacity > 0 {
            buf.ring.push_back(rec);
        }
        if let Some(sink) = buf.sink.as_mut() {
            sink.record(&rec);
        }
    }

    /// Stable 64-bit FNV-1a hash of the entire event stream since the last
    /// reset (covers records the ring has already dropped).
    pub fn digest(&self) -> u64 {
        self.buf.borrow().digest
    }

    /// Total events emitted since the last reset.
    pub fn len(&self) -> u64 {
        self.buf.borrow().next_seq
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whole-stream count of one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.buf.borrow().counts[kind as usize]
    }

    /// Snapshot of the retained ring (the most recent records).
    pub fn events(&self) -> Vec<TraceRecord> {
        self.buf.borrow().ring.iter().copied().collect()
    }

    /// How many records the ring retains.
    pub fn ring_capacity(&self) -> usize {
        self.buf.borrow().capacity
    }

    /// Resize the ring (existing overflow is dropped oldest-first). The
    /// digest and counts are unaffected: they always cover the full stream.
    pub fn set_ring_capacity(&self, capacity: usize) {
        let mut buf = self.buf.borrow_mut();
        buf.capacity = capacity;
        while buf.ring.len() > capacity {
            buf.ring.pop_front();
        }
    }

    /// Install (or replace) the live sink.
    pub fn set_sink(&self, sink: impl TraceSink + 'static) {
        self.buf.borrow_mut().sink = Some(Box::new(sink));
    }

    /// Remove the sink.
    pub fn clear_sink(&self) {
        self.buf.borrow_mut().sink = None;
    }

    /// Drop all recorded state (ring, digest, counts, sequence numbers).
    /// Enablement, capacity, and the sink survive. Called by
    /// `begin_timing` so traces cover exactly the timed window.
    pub fn reset(&self) {
        self.buf.borrow_mut().reset();
    }

    /// Compact text rendering of the retained ring, one record per line.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let buf = self.buf.borrow();
        let mut out = String::new();
        for rec in &buf.ring {
            let _ = writeln!(out, "{rec}");
        }
        out
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(lane_label(*self))
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] {:>12}ns {:<7} {}",
            self.seq,
            self.at.0,
            lane_label(self.lane),
            self.event
        )
    }
}

fn lane_label(lane: Lane) -> &'static str {
    match lane {
        Lane::Compute => "compute",
        Lane::Memory => "memory",
        Lane::Storage => "storage",
        Lane::Net => "net",
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::PageFault { vaddr, level } => {
                write!(f, "page-fault 0x{vaddr:x} {level:?}")
            }
            TraceEvent::Evict { page, dirty } => {
                write!(f, "evict pg{page}{}", if dirty { " dirty" } else { "" })
            }
            TraceEvent::NetMsg { class, bytes } => write!(f, "net {class:?} {bytes}B"),
            TraceEvent::SsdIo { write, bytes } => {
                write!(f, "ssd {} {bytes}B", if write { "write" } else { "read" })
            }
            TraceEvent::CoherenceMsg { page, transition } => {
                write!(f, "coherence pg{page} {transition:?}")
            }
            TraceEvent::PushdownStep { step } => write!(f, "pushdown step {step}"),
            TraceEvent::Syncmem { pages } => write!(f, "syncmem {pages} pages"),
            TraceEvent::Cancel { req } => write!(f, "cancel req{req}"),
            TraceEvent::Timeout { req } => write!(f, "timeout req{req}"),
            TraceEvent::FaultInjected { fault, magnitude } => {
                write!(f, "fault-injected {} x{magnitude}", fault_label(fault))
            }
            TraceEvent::Recovery { action, attempt } => {
                write!(f, "recovery {} attempt{attempt}", recovery_label(action))
            }
            TraceEvent::CancelDeclined { req } => write!(f, "cancel-declined req{req}"),
            TraceEvent::ReplicaShip { seq, pages } => {
                write!(f, "replica-ship seq{seq} {pages} pages")
            }
            TraceEvent::ReplicaAck { seq } => write!(f, "replica-ack seq{seq}"),
            TraceEvent::PoolPromoted { epoch, lost_pages } => {
                write!(f, "pool-promoted epoch{epoch} lost {lost_pages} pages")
            }
            TraceEvent::AdmissionShed { backlog_ns } => {
                write!(f, "admission-shed backlog {backlog_ns}ns")
            }
            TraceEvent::CorruptionInjected { page, offset } => {
                write!(f, "corruption-injected pg{page} +{offset}")
            }
            TraceEvent::ChecksumMismatch { page } => write!(f, "checksum-mismatch pg{page}"),
            TraceEvent::PageRepaired { page, source } => {
                write!(f, "page-repaired pg{page} from {}", repair_label(source))
            }
            TraceEvent::DataLoss { page } => write!(f, "data-loss pg{page}"),
            TraceEvent::ScrubPass { pages, detected } => {
                write!(f, "scrub-pass {pages} pages {detected} bad")
            }
            TraceEvent::RaceDetected { page, write_write } => {
                let kind = if write_write {
                    "write-write"
                } else {
                    "read-write"
                };
                write!(f, "race-detected pg{page} {kind}")
            }
            TraceEvent::PoolRouted { pool, pages } => {
                write!(f, "pool-routed p{pool} {pages} pages")
            }
            TraceEvent::PushdownFanout { pools, pages } => {
                write!(f, "pushdown-fanout {pools} pools {pages} pages")
            }
            TraceEvent::FanoutMerge { pools } => write!(f, "fanout-merge {pools} pools"),
            TraceEvent::SessionArrive { tenant, session } => {
                write!(f, "session-arrive t{tenant} s{session}")
            }
            TraceEvent::SessionAdmit { tenant, session } => {
                write!(f, "session-admit t{tenant} s{session}")
            }
            TraceEvent::SessionComplete { tenant, latency_ns } => {
                write!(f, "session-complete t{tenant} {latency_ns}ns")
            }
            TraceEvent::TenantThrottled { tenant, class } => {
                write!(f, "tenant-throttled t{tenant} {}", class.label())
            }
            TraceEvent::FailSlowInjected { fault, factor } => {
                write!(f, "fail-slow {} x{factor}", fault_label(fault))
            }
            TraceEvent::HealthTransition { pool, from, to } => {
                write!(
                    f,
                    "health p{pool} {}->{}",
                    health_label(from),
                    health_label(to)
                )
            }
            TraceEvent::HedgeFired { call } => write!(f, "hedge-fired call{call}"),
            TraceEvent::HedgeWon { call } => write!(f, "hedge-won call{call}"),
            TraceEvent::DeadlineExceeded { call, over_ns } => {
                write!(f, "deadline-exceeded call{call} +{over_ns}ns")
            }
            TraceEvent::PoolReintegrated { pool } => write!(f, "pool-reintegrated p{pool}"),
            TraceEvent::PoolCrashed { pool, epoch } => {
                write!(f, "pool-crashed p{pool} epoch{epoch}")
            }
            TraceEvent::JournalReplayed { entries, pages } => {
                write!(f, "journal-replayed {entries} entries {pages} pages")
            }
            TraceEvent::TornTailDiscarded { entries, pages } => {
                write!(f, "torn-tail-discarded {entries} entries {pages} pages")
            }
            TraceEvent::PoolRestarted { pool, epoch } => {
                write!(f, "pool-restarted p{pool} epoch{epoch}")
            }
            TraceEvent::FencedWrite { pool, stale_epoch } => {
                write!(f, "fenced-write p{pool} stale-epoch{stale_epoch}")
            }
            TraceEvent::ResilverComplete { pool, pages } => {
                write!(f, "resilver-complete p{pool} {pages} pages")
            }
        }
    }
}

/// Stable kebab-case name of one injected-fault kind (used by renders and
/// golden tests).
pub fn fault_label(fault: InjectedFault) -> &'static str {
    match fault {
        InjectedFault::FabricLatencySpike => "fabric-latency-spike",
        InjectedFault::FabricPartition => "fabric-partition",
        InjectedFault::SsdTransientError => "ssd-transient-error",
        InjectedFault::SsdLatencyStorm => "ssd-latency-storm",
        InjectedFault::HeartbeatFlap => "heartbeat-flap",
        InjectedFault::QueueBacklogBurst => "queue-backlog-burst",
        InjectedFault::PushdownException => "pushdown-exception",
        InjectedFault::PushdownHang => "pushdown-hang",
        InjectedFault::FabricBitFlip => "fabric-bit-flip",
        InjectedFault::SsdLatentSector => "ssd-latent-sector",
        InjectedFault::PoolScribble => "pool-scribble",
        InjectedFault::DegradedPool => "degraded-pool",
        InjectedFault::LameFabricLink => "lame-fabric-link",
        InjectedFault::GrindingSsd => "grinding-ssd",
        InjectedFault::PoolCrashRestart => "pool-crash-restart",
        InjectedFault::TornJournalWrite => "torn-journal-write",
    }
}

/// Stable kebab-case name of one repair source.
pub fn repair_label(source: RepairSource) -> &'static str {
    match source {
        RepairSource::Ssd => "ssd",
        RepairSource::Replica => "replica",
    }
}

/// Stable kebab-case name of one recovery action.
pub fn recovery_label(action: RecoveryAction) -> &'static str {
    match action {
        RecoveryAction::RetryBackoff => "retry-backoff",
        RecoveryAction::RetrySuccess => "retry-success",
        RecoveryAction::LocalFallback => "local-fallback",
        RecoveryAction::HeartbeatRecovered => "heartbeat-recovered",
    }
}

/// A deterministic name → monotonic-counter map, filled from the layers'
/// ledgers on demand (`Dos::metrics`, `Runtime::metrics`). `BTreeMap`
/// keeps iteration (and rendering) order stable across runs.
///
/// Keys are `Cow<'static, str>` so the fixed registry names stay
/// allocation-free while per-instance metrics (the multi-pool
/// `integrity.pool{p}.*` family) can be formatted on demand.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<std::borrow::Cow<'static, str>, u64>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `name` to `value` (registering it if new).
    pub fn set(&mut self, name: impl Into<std::borrow::Cow<'static, str>>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Add `delta` to `name` (registering it at zero if new).
    pub fn add(&mut self, name: impl Into<std::borrow::Cow<'static, str>>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    pub fn len(&self) -> usize {
        self.counters.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// One `name value` line per counter, sorted by name.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.iter() {
            let _ = writeln!(out, "{name:<32} {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn tracer() -> (Clock, Tracer) {
        let clock = Clock::new();
        let t = Tracer::new(clock.clone());
        (clock, t)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (_, t) = tracer();
        t.emit(Lane::Compute, TraceEvent::PushdownStep { step: 1 });
        assert_eq!(t.len(), 0);
        assert!(t.events().is_empty());
        let empty_digest = t.digest();
        t.enable();
        t.emit(Lane::Compute, TraceEvent::PushdownStep { step: 1 });
        assert_eq!(t.len(), 1);
        assert_ne!(t.digest(), empty_digest);
    }

    #[test]
    fn records_carry_time_lane_and_sequence() {
        let (clock, t) = tracer();
        t.enable();
        t.emit(
            Lane::Compute,
            TraceEvent::PageFault {
                vaddr: 0x1000,
                level: FaultLevel::Remote,
            },
        );
        clock.advance(SimDuration::from_micros(3));
        t.emit(
            Lane::Net,
            TraceEvent::NetMsg {
                class: MsgClass::PageIn,
                bytes: 4096,
            },
        );
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[0].at, SimTime(0));
        assert_eq!(evs[0].lane, Lane::Compute);
        assert_eq!(evs[1].seq, 1);
        assert_eq!(evs[1].at, SimTime(3_000));
        assert_eq!(evs[1].lane, Lane::Net);
    }

    #[test]
    fn digest_covers_stream_beyond_ring_capacity() {
        let (_, a) = tracer();
        let (_, b) = tracer();
        a.enable();
        b.enable();
        a.set_ring_capacity(4);
        for t in [&a, &b] {
            for i in 0..100u64 {
                t.emit(
                    Lane::Storage,
                    TraceEvent::SsdIo {
                        write: i % 2 == 0,
                        bytes: i,
                    },
                );
            }
        }
        assert_eq!(a.events().len(), 4, "ring keeps only the tail");
        assert_eq!(a.len(), 100, "stream length is exact");
        assert_eq!(a.digest(), b.digest(), "digest covers the full stream");
        assert_eq!(a.count(EventKind::SsdIo), 100);
    }

    #[test]
    fn different_streams_have_different_digests() {
        let (_, a) = tracer();
        let (_, b) = tracer();
        a.enable();
        b.enable();
        a.emit(
            Lane::Compute,
            TraceEvent::Evict {
                page: 1,
                dirty: true,
            },
        );
        b.emit(
            Lane::Compute,
            TraceEvent::Evict {
                page: 1,
                dirty: false,
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn reset_clears_state_but_keeps_configuration() {
        let (_, t) = tracer();
        t.enable();
        t.set_ring_capacity(8);
        t.emit(Lane::Memory, TraceEvent::Syncmem { pages: 3 });
        let fresh_digest = Tracer::disconnected().digest();
        t.reset();
        assert_eq!(t.len(), 0);
        assert_eq!(t.digest(), fresh_digest);
        assert!(t.is_enabled(), "enablement survives reset");
        assert_eq!(t.ring_capacity(), 8, "capacity survives reset");
    }

    #[test]
    fn sink_sees_every_record() {
        let (_, t) = tracer();
        t.enable();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        t.set_sink(move |rec: &TraceRecord| seen2.borrow_mut().push(rec.seq));
        t.emit(
            Lane::Net,
            TraceEvent::NetMsg {
                class: MsgClass::Control,
                bytes: 16,
            },
        );
        t.emit(
            Lane::Net,
            TraceEvent::NetMsg {
                class: MsgClass::Control,
                bytes: 16,
            },
        );
        assert_eq!(*seen.borrow(), vec![0, 1]);
        t.clear_sink();
        t.emit(
            Lane::Net,
            TraceEvent::NetMsg {
                class: MsgClass::Control,
                bytes: 16,
            },
        );
        assert_eq!(seen.borrow().len(), 2);
    }

    #[test]
    fn clones_share_one_stream() {
        let (_, t) = tracer();
        let u = t.clone();
        u.enable();
        assert!(t.is_enabled(), "enable through any handle");
        t.emit(Lane::Compute, TraceEvent::PushdownStep { step: 1 });
        u.emit(Lane::Compute, TraceEvent::PushdownStep { step: 2 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.digest(), u.digest());
    }

    #[test]
    fn render_is_one_line_per_record() {
        let (_, t) = tracer();
        t.enable();
        t.emit(
            Lane::Compute,
            TraceEvent::PageFault {
                vaddr: 0x2a,
                level: FaultLevel::Storage,
            },
        );
        t.emit(Lane::Compute, TraceEvent::Cancel { req: 7 });
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("page-fault 0x2a Storage"), "{text}");
        assert!(text.contains("cancel req7"), "{text}");
    }

    #[test]
    fn shared_fnv_helpers_agree() {
        // The byte-wise checksum and the word-wise digest fold are the same
        // hash: folding a word equals hashing its little-endian bytes.
        let w = 0x0123_4567_89ab_cdefu64;
        assert_eq!(fnv1a(&w.to_le_bytes()), fnv_fold(FNV_OFFSET, w));
        assert_eq!(fnv1a(&[]), FNV_OFFSET);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn metrics_registry_is_sorted_and_monotonic() {
        let mut m = MetricsRegistry::new();
        m.set("paging.cache_hits", 10);
        m.add("net.page_in.messages", 2);
        m.add("net.page_in.messages", 3);
        assert_eq!(m.get("net.page_in.messages"), Some(5));
        assert_eq!(m.get("missing"), None);
        let names: Vec<_> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["net.page_in.messages", "paging.cache_hits"]);
        assert_eq!(m.render().lines().count(), 2);
    }
}
