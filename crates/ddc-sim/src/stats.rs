//! Small statistics helpers used by the experiment harness.

use crate::time::SimDuration;

/// Streaming min/max/mean accumulator for durations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl DurationStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.total_ns)
    }

    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(SimDuration::from_nanos(self.min_ns))
    }

    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then_some(SimDuration::from_nanos(self.max_ns))
    }

    pub fn mean(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_nanos(self.total_ns / self.count))
    }

    pub fn merge(&mut self, other: &DurationStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Geometric mean of speedup factors — the paper's Fig 1a aggregates
/// per-query speedups this way. Returns `None` for an empty or non-positive
/// input.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_stats_track_extremes_and_mean() {
        let mut s = DurationStats::new();
        assert!(s.mean().is_none());
        s.record(SimDuration::from_nanos(10));
        s.record(SimDuration::from_nanos(30));
        s.record(SimDuration::from_nanos(20));
        assert_eq!(s.count(), 3);
        assert_eq!(s.min().unwrap().as_nanos(), 10);
        assert_eq!(s.max().unwrap().as_nanos(), 30);
        assert_eq!(s.mean().unwrap().as_nanos(), 20);
        assert_eq!(s.total().as_nanos(), 60);
    }

    #[test]
    fn merge_combines_accumulators() {
        let mut a = DurationStats::new();
        a.record(SimDuration::from_nanos(5));
        let mut b = DurationStats::new();
        b.record(SimDuration::from_nanos(15));
        b.record(SimDuration::from_nanos(25));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min().unwrap().as_nanos(), 5);
        assert_eq!(a.max().unwrap().as_nanos(), 25);

        let mut empty = DurationStats::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[4.0, 9.0]), Some(6.0));
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
        let g = geometric_mean(&[10.0, 10.0, 10.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
    }
}
