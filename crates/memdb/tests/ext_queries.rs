//! The extended TPC-H suite (Q4, Q5, Q10, Q12) against its oracles on
//! every platform, under no-push and all-push plans.

use ddc_sim::{DdcConfig, MonolithicConfig};
use memdb::queries_ext::{ops_ext, ExtParams};
use memdb::{oracle, q10, q12, q4, q5, Database, PushdownPlan, TpchData};
use teleport::Runtime;

const SF: f64 = 0.003;
const SEED: u64 = 77;

fn data() -> TpchData {
    TpchData::generate(SF, SEED)
}

fn platforms(data: &TpchData) -> Vec<(&'static str, Runtime)> {
    let ws = data.working_set_bytes();
    let ddc = DdcConfig::with_cache_ratio(ws, 0.02);
    vec![
        (
            "local",
            Runtime::local(MonolithicConfig {
                dram_bytes: ws * 4,
                ..Default::default()
            }),
        ),
        ("base-ddc", Runtime::base_ddc(ddc.clone())),
        ("teleport", Runtime::teleport(ddc)),
    ]
}

fn load(rt: &mut Runtime, data: &TpchData) -> Database {
    let db = Database::load(rt, data);
    if rt.kind() != teleport::PlatformKind::Local {
        rt.drop_cache();
    }
    rt.begin_timing();
    db
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn q4_matches_oracle_everywhere() {
    let data = data();
    let params = ExtParams::default();
    let expected = oracle::q4(&data, &params);
    assert!(!expected.is_empty());
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        for plan in [PushdownPlan::none(), PushdownPlan::of(ops_ext::Q4)] {
            let (got, rep) = q4(&mut rt, &db, &plan, &params);
            assert_eq!(got, expected, "{name}");
            assert_eq!(rep.ops.len(), ops_ext::Q4.len());
        }
    }
}

#[test]
fn q5_matches_oracle_everywhere() {
    let data = data();
    let params = ExtParams::default();
    let expected = oracle::q5(&data, &params);
    assert!(!expected.is_empty(), "some ASIA-local revenue exists");
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, _) = q5(&mut rt, &db, &PushdownPlan::of(ops_ext::Q5), &params);
        assert_eq!(got.len(), expected.len(), "{name}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.0, e.0, "{name}: nation order");
            assert!(close(g.1, e.1), "{name}: {} vs {}", g.1, e.1);
        }
        // Revenue is descending.
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}

#[test]
fn q10_matches_oracle_everywhere() {
    let data = data();
    let params = ExtParams::default();
    let expected = oracle::q10(&data, &params);
    assert!(!expected.is_empty());
    assert!(expected.len() <= 20);
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, _) = q10(&mut rt, &db, &PushdownPlan::of(ops_ext::Q10), &params);
        assert_eq!(got.len(), expected.len(), "{name}");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.custkey, e.custkey, "{name}");
            assert!(close(g.revenue, e.revenue), "{name}");
            assert_eq!(g.nation, e.nation, "{name}");
        }
    }
}

#[test]
fn q12_matches_oracle_everywhere() {
    let data = data();
    let params = ExtParams::default();
    let expected = oracle::q12(&data, &params);
    assert_eq!(expected.len(), 2, "two ship modes");
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        for plan in [PushdownPlan::none(), PushdownPlan::of(ops_ext::Q12)] {
            let (got, _) = q12(&mut rt, &db, &plan, &params);
            assert_eq!(got, expected, "{name}");
        }
    }
}

#[test]
fn extended_suite_profits_from_pushdown_on_ddc() {
    // Not a headline figure, but the mechanism should generalize: pushing
    // each extended query's intensity-ranked operators must never lose
    // badly, and the suite total must win.
    let data = TpchData::generate(0.01, 3);
    let params = ExtParams::default();
    let ws = data.working_set_bytes();
    let cfg = DdcConfig::with_cache_ratio(ws, 0.02);

    let mut base = Runtime::base_ddc(cfg.clone());
    let db = load(&mut base, &data);
    let (_, b4) = q4(&mut base, &db, &PushdownPlan::none(), &params);
    let (_, b5) = q5(&mut base, &db, &PushdownPlan::none(), &params);
    let (_, b10) = q10(&mut base, &db, &PushdownPlan::none(), &params);
    let (_, b12) = q12(&mut base, &db, &PushdownPlan::none(), &params);

    let mut tele = Runtime::teleport(cfg);
    let db = load(&mut tele, &data);
    let (_, t4) = q4(
        &mut tele,
        &db,
        &PushdownPlan::top_k(&b4.rank_by_intensity(), 2),
        &params,
    );
    let (_, t5) = q5(
        &mut tele,
        &db,
        &PushdownPlan::top_k(&b5.rank_by_intensity(), 3),
        &params,
    );
    let (_, t10) = q10(
        &mut tele,
        &db,
        &PushdownPlan::top_k(&b10.rank_by_intensity(), 3),
        &params,
    );
    let (_, t12) = q12(
        &mut tele,
        &db,
        &PushdownPlan::top_k(&b12.rank_by_intensity(), 2),
        &params,
    );

    let base_total = b4.total() + b5.total() + b10.total() + b12.total();
    let tele_total = t4.total() + t5.total() + t10.total() + t12.total();
    assert!(
        tele_total < base_total,
        "suite: teleport {tele_total} vs base {base_total}"
    );
}
