//! Edge cases: empty results, degenerate parameters, tiny tables, and the
//! external sort operator.

use ddc_sim::DdcConfig;
use memdb::exec::{project, sort};
use memdb::types::Date;
use memdb::{oracle, q3, q6, q9, Database, PushdownPlan, QueryParams, TpchData};
use teleport::{Mem, Runtime};

fn rt() -> Runtime {
    Runtime::teleport(DdcConfig {
        compute_cache_bytes: 1 << 20,
        memory_pool_bytes: 256 << 20,
        ..Default::default()
    })
}

#[test]
fn queries_with_empty_results_agree_with_the_oracle() {
    let data = TpchData::generate(0.002, 13);
    let params = QueryParams {
        // A Q3 cutoff before any order exists: empty everything.
        q3_date: Date::from_ymd(1990, 1, 1),
        // Q6 on a year outside the data window.
        q6_shipdate_lo: Date::from_ymd(1970, 1, 1),
        ..Default::default()
    };

    let mut rt = rt();
    let db = Database::load(&mut rt, &data);
    rt.begin_timing();

    let (rows, _) = q3(&mut rt, &db, &PushdownPlan::none(), &params);
    assert_eq!(rows, oracle::q3(&data, &params));
    assert!(rows.is_empty());

    let (total, _) = q6(&mut rt, &db, &PushdownPlan::none(), &params);
    assert_eq!(total, oracle::q6(&data, &params));
    assert_eq!(total, 0.0);
}

#[test]
fn q9_with_an_unpopular_color_still_matches() {
    // Whatever the rarest color matches (possibly very few parts), the
    // simulated plan and the oracle must agree.
    let data = TpchData::generate(0.002, 21);
    let params = QueryParams {
        q9_color: "azure",
        ..Default::default()
    };
    let mut rt = rt();
    let db = Database::load(&mut rt, &data);
    rt.begin_timing();
    let (rows, _) = q9(&mut rt, &db, &PushdownPlan::none(), &params);
    let expected = oracle::q9(&data, &params);
    assert_eq!(rows.len(), expected.len());
    for (g, e) in rows.iter().zip(&expected) {
        assert_eq!((&g.nation, g.year), (&e.nation, e.year));
    }
}

#[test]
fn tiny_scale_factor_is_well_formed() {
    // The generator clamps to minimum cardinalities; everything still runs.
    let data = TpchData::generate(0.000001, 1);
    assert!(data.part.len() >= 64);
    assert!(data.orders.len() >= 64);
    let mut rt = rt();
    let db = Database::load(&mut rt, &data);
    rt.begin_timing();
    let (rows, _) = q9(&mut rt, &db, &PushdownPlan::none(), &QueryParams::default());
    let expected = oracle::q9(&data, &QueryParams::default());
    assert_eq!(rows.len(), expected.len());
}

#[test]
fn external_sort_matches_host_sort() {
    let mut rt = rt();
    let n = 10_000usize;
    let keys_host: Vec<i64> = (0..n)
        .map(|i| ((i * 2_654_435_761) % 100_000) as i64)
        .collect();
    let payload_host: Vec<u32> = (0..n as u32).collect();
    let keys = rt.alloc_region::<i64>(n);
    let payload = rt.alloc_region::<u32>(n);
    rt.write_range(&keys, 0, &keys_host);
    rt.write_range(&payload, 0, &payload_host);
    rt.begin_timing();

    let (sk, sp) = sort::external_sort_by_key(&mut rt, &keys, &payload, n, 1_000);
    let got_k = project::fetch(&mut rt, &sk, n);
    let got_p = project::fetch(&mut rt, &sp, n);

    let mut expected: Vec<(i64, u32)> = keys_host.into_iter().zip(payload_host).collect();
    expected.sort_unstable();
    assert_eq!(got_k, expected.iter().map(|&(k, _)| k).collect::<Vec<_>>());
    assert_eq!(got_p, expected.iter().map(|&(_, p)| p).collect::<Vec<_>>());
}

#[test]
fn external_sort_edge_shapes() {
    let mut rt = rt();
    // Empty input.
    let keys = rt.alloc_region::<i64>(1);
    let payload = rt.alloc_region::<u32>(1);
    let (sk, _) = sort::external_sort_by_key(&mut rt, &keys, &payload, 0, 16);
    assert_eq!(sk.len(), 1, "placeholder allocation");

    // Single run (n < run size), already sorted, and reverse-sorted.
    for input in [vec![1i64, 2, 3], vec![3i64, 2, 1], vec![5i64; 7]] {
        let n = input.len();
        let keys = rt.alloc_region::<i64>(n);
        let payload = rt.alloc_region::<u32>(n);
        rt.write_range(&keys, 0, &input);
        let pl: Vec<u32> = (0..n as u32).collect();
        rt.write_range(&payload, 0, &pl);
        let (sk, _) = sort::external_sort_by_key(&mut rt, &keys, &payload, n, 16);
        let got = project::fetch(&mut rt, &sk, n);
        let mut expected = input.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}

#[test]
fn external_sort_charges_more_than_in_place_reads() {
    // The sort's virtual cost includes run writes and merge reads.
    let mut rt = rt();
    let n = 50_000usize;
    let keys_host: Vec<i64> = (0..n).rev().map(|i| i as i64).collect();
    let keys = rt.alloc_region::<i64>(n);
    let payload = rt.alloc_region::<u32>(n);
    rt.write_range(&keys, 0, &keys_host);
    rt.drop_cache();
    rt.begin_timing();
    let t0 = rt.elapsed();
    let _ = sort::external_sort_by_key(&mut rt, &keys, &payload, n, 8_192);
    let sort_time = rt.elapsed() - t0;

    let t0 = rt.elapsed();
    let mut buf = Vec::new();
    rt.read_range(&keys, 0, n, &mut buf);
    let scan_time = rt.elapsed() - t0;
    assert!(
        sort_time.as_nanos() > 3 * scan_time.as_nanos(),
        "sort {sort_time} vs scan {scan_time}"
    );
}
