//! Property tests for the columnar engine: every operator against a naive
//! host-memory model, plus calendar and plan invariants.

use ddc_sim::DdcConfig;
use memdb::exec::{aggregate, hashjoin, mergejoin, project, select, CandList};
use memdb::types::Date;
use memdb::{oracle, q6, Database, PushdownPlan, QueryParams, TpchData};
use proptest::prelude::*;
use teleport::{Mem, Runtime};

fn rt() -> Runtime {
    Runtime::teleport(DdcConfig {
        compute_cache_bytes: 1 << 20,
        memory_pool_bytes: 128 << 20,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Selection matches `Vec::filter` for arbitrary data and bounds,
    /// chained through an arbitrary candidate prefix.
    #[test]
    fn selection_matches_filter(
        vals in prop::collection::vec(-1000i64..1000, 1..2000),
        bound in -1000i64..1000,
        second_bound in -1000i64..1000,
    ) {
        let mut rt = rt();
        let col = rt.alloc_region::<i64>(vals.len());
        rt.write_range(&col, 0, &vals);

        let cand = select::select_where(&mut rt, &col, vals.len(), None, |v| v < bound);
        let expected: Vec<u32> = vals.iter().enumerate()
            .filter(|(_, &v)| v < bound).map(|(i, _)| i as u32).collect();
        prop_assert_eq!(cand.read(&mut rt), expected.clone());

        // Chained selection narrows correctly.
        let chained = select::select_where(&mut rt, &col, vals.len(), Some(&cand), |v| v >= second_bound);
        let expected2: Vec<u32> = expected.into_iter()
            .filter(|&r| vals[r as usize] >= second_bound).collect();
        prop_assert_eq!(chained.read(&mut rt), expected2);
    }

    /// Gather + sum matches the host computation.
    #[test]
    fn gather_and_sum_match(
        vals in prop::collection::vec(-1e6f64..1e6, 1..1500),
        pick in prop::collection::vec(any::<prop::sample::Index>(), 0..200),
    ) {
        let mut rt = rt();
        let col = rt.alloc_region::<f64>(vals.len());
        rt.write_range(&col, 0, &vals);
        let rows: Vec<u32> = pick.iter().map(|ix| ix.index(vals.len()) as u32).collect();
        let gathered = project::gather(&mut rt, &col, &rows);
        let got = project::fetch(&mut rt, &gathered, rows.len());
        let expected: Vec<f64> = rows.iter().map(|&r| vals[r as usize]).collect();
        prop_assert_eq!(got, expected.clone());

        let cand = CandList::materialize(&mut rt, &rows);
        let sum = aggregate::sum_f64(&mut rt, &col, vals.len(), Some(&cand));
        let esum: f64 = expected.iter().sum();
        prop_assert!((sum - esum).abs() <= 1e-9 * esum.abs().max(1.0));
    }

    /// The hash index finds exactly the inserted keys.
    #[test]
    fn hash_index_total_and_sound(
        keys in prop::collection::btree_set(1i64..1_000_000, 1..400),
        probes in prop::collection::vec(1i64..1_000_000, 0..200),
    ) {
        let mut rt = rt();
        let keys: Vec<i64> = keys.into_iter().collect();
        let rows: Vec<u32> = (0..keys.len() as u32).collect();
        let idx = hashjoin::HashIndex::build(&mut rt, &keys, &rows);
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(idx.probe(&mut rt, k), Some(i as u32));
        }
        let keyset: std::collections::HashSet<i64> = keys.iter().copied().collect();
        for &p in &probes {
            let hit = idx.probe(&mut rt, p);
            prop_assert_eq!(hit.is_some(), keyset.contains(&p));
        }
    }

    /// Merge join agrees with a binary-search join for sorted inputs.
    #[test]
    fn merge_join_matches_binary_search(
        inner_set in prop::collection::btree_set(0i64..10_000, 1..500),
        outer_raw in prop::collection::vec(0i64..10_000, 0..300),
    ) {
        let mut rt = rt();
        let inner: Vec<i64> = inner_set.into_iter().collect();
        let mut outer = outer_raw;
        outer.sort_unstable();
        let ireg = rt.alloc_region::<i64>(inner.len());
        rt.write_range(&ireg, 0, &inner);
        let joined = mergejoin::merge_join(&mut rt, &outer, &ireg, inner.len());
        for (i, &k) in outer.iter().enumerate() {
            let expected = inner.binary_search(&k).ok().map(|p| p as u32);
            prop_assert_eq!(joined[i], expected, "key {}", k);
        }
    }

    /// Civil-calendar dates round-trip across the whole TPC-H window and
    /// stay ordered.
    #[test]
    fn dates_roundtrip_and_order(days in prop::collection::vec(7000i32..11_000, 2..50)) {
        for &d in &days {
            let date = Date(d);
            let (y, m, dd) = date.to_ymd();
            prop_assert_eq!(Date::from_ymd(y, m, dd), date);
            prop_assert!((1989..=2000).contains(&y));
        }
        let mut sorted = days.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(Date(w[0]) <= Date(w[1]));
        }
    }

    /// Q6 on the simulator equals the oracle for arbitrary generator seeds
    /// and date parameters.
    #[test]
    fn q6_matches_oracle_for_any_seed(seed in 0u64..1000, year_off in 0i32..5) {
        let data = TpchData::generate(0.001, seed);
        let params = QueryParams {
            q6_shipdate_lo: Date::from_ymd(1993 + year_off, 1, 1),
            ..Default::default()
        };
        let expected = oracle::q6(&data, &params);
        let mut rt = rt();
        let db = Database::load(&mut rt, &data);
        rt.begin_timing();
        let (got, _) = q6(&mut rt, &db, &PushdownPlan::none(), &params);
        prop_assert!((got - expected).abs() <= 1e-6 * expected.abs().max(1.0));
    }

    /// Candidate lists round-trip arbitrary row sets.
    #[test]
    fn candlist_roundtrip(rows in prop::collection::vec(any::<u32>(), 0..2000)) {
        let mut rt = rt();
        let cand = CandList::materialize(&mut rt, &rows);
        prop_assert_eq!(cand.read(&mut rt), rows);
    }
}
