//! Every query must produce the oracle's answer on every platform and
//! under every pushdown plan — placement changes time, never results.

use ddc_sim::{DdcConfig, MonolithicConfig};
use memdb::queries::ops;
use memdb::{oracle, q3, q6, q9, q_filter, Database, PushdownPlan, QueryParams, TpchData};
use teleport::Runtime;

const SF: f64 = 0.003;
const SEED: u64 = 2024;

fn data() -> TpchData {
    TpchData::generate(SF, SEED)
}

fn platforms(data: &TpchData) -> Vec<(&'static str, Runtime)> {
    let ws = data.working_set_bytes();
    let ddc = DdcConfig::with_cache_ratio(ws, 0.02);
    vec![
        (
            "local",
            Runtime::local(MonolithicConfig {
                dram_bytes: ws * 4,
                ..Default::default()
            }),
        ),
        ("base-ddc", Runtime::base_ddc(ddc.clone())),
        ("teleport", Runtime::teleport(ddc)),
    ]
}

fn load(rt: &mut Runtime, data: &TpchData) -> Database {
    let db = Database::load(rt, data);
    if rt.kind() != teleport::PlatformKind::Local {
        rt.drop_cache();
    }
    rt.begin_timing();
    db
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn qfilter_matches_oracle_everywhere() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q_filter(&data, &params);
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        for plan in [PushdownPlan::none(), PushdownPlan::of(ops::QFILTER)] {
            let (got, _) = q_filter(&mut rt, &db, &plan, &params);
            assert!(close(got, expected), "{name}: {got} vs oracle {expected}");
        }
    }
}

#[test]
fn q1_matches_oracle_everywhere() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q1(&data, &params);
    assert!(!expected.is_empty());
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, rep) = memdb::q1(&mut rt, &db, &PushdownPlan::of(ops::Q1), &params);
        assert_eq!(got.len(), expected.len(), "{name}: group count");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.returnflag, e.returnflag, "{name}");
            assert_eq!(g.linestatus, e.linestatus, "{name}");
            assert_eq!(g.count, e.count, "{name}");
            assert!(close(g.sum_qty, e.sum_qty), "{name}");
            assert!(close(g.sum_charge, e.sum_charge), "{name}");
            assert!(close(g.avg_disc, e.avg_disc), "{name}");
        }
        assert_eq!(rep.ops.len(), ops::Q1.len());
    }
}

#[test]
fn q6_matches_oracle_everywhere() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q6(&data, &params);
    assert!(expected > 0.0, "test data must select something");
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, _) = q6(&mut rt, &db, &PushdownPlan::of(ops::Q6), &params);
        assert!(close(got, expected), "{name}: {got} vs oracle {expected}");
    }
}

#[test]
fn q3_matches_oracle_everywhere() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q3(&data, &params);
    assert!(!expected.is_empty());
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, _) = q3(&mut rt, &db, &PushdownPlan::of(ops::Q3), &params);
        assert_eq!(got.len(), expected.len(), "{name}: row count");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.orderkey, e.orderkey, "{name}");
            assert!(close(g.revenue, e.revenue), "{name}");
            assert_eq!(g.orderdate, e.orderdate, "{name}");
            assert_eq!(g.shippriority, e.shippriority, "{name}");
        }
    }
}

#[test]
fn q9_matches_oracle_everywhere() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q9(&data, &params);
    assert!(!expected.is_empty());
    for (name, mut rt) in platforms(&data) {
        let db = load(&mut rt, &data);
        let (got, _) = q9(&mut rt, &db, &PushdownPlan::of(ops::Q9), &params);
        assert_eq!(got.len(), expected.len(), "{name}: group count");
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.nation, e.nation, "{name}");
            assert_eq!(g.year, e.year, "{name}");
            assert!(
                close(g.profit, e.profit),
                "{name}: {} vs {}",
                g.profit,
                e.profit
            );
        }
    }
}

#[test]
fn partial_pushdown_plans_also_match() {
    let data = data();
    let params = QueryParams::default();
    let expected = oracle::q9(&data, &params);
    let ws = data.working_set_bytes();
    let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(ws, 0.02));
    let db = load(&mut rt, &data);
    for k in [1usize, 4, 6] {
        let plan = PushdownPlan::top_k(ops::Q9, k);
        let (got, _) = q9(&mut rt, &db, &plan, &params);
        assert_eq!(got.len(), expected.len(), "top-{k}");
        for (g, e) in got.iter().zip(&expected) {
            assert!(close(g.profit, e.profit), "top-{k}: {g:?} vs {e:?}");
        }
    }
}

#[test]
fn teleport_beats_base_ddc_on_q9() {
    // The headline performance shape at test scale: TELEPORT's pushdown
    // must substantially beat the unmodified DDC on the most
    // memory-intensive query.
    let data = data();
    let params = QueryParams::default();
    let ws = data.working_set_bytes();
    let cfg = DdcConfig::with_cache_ratio(ws, 0.02);

    let mut base = Runtime::base_ddc(cfg.clone());
    let db = load(&mut base, &data);
    let (_, rep_base) = q9(&mut base, &db, &PushdownPlan::none(), &params);

    let mut tele = Runtime::teleport(cfg);
    let db = load(&mut tele, &data);
    let ranking = rep_base.rank_by_intensity();
    let plan = PushdownPlan::top_k(&ranking, 4);
    let (_, rep_tele) = q9(&mut tele, &db, &plan, &params);

    let speedup = rep_base.total().ratio(rep_tele.total());
    assert!(
        speedup > 2.0,
        "TELEPORT speedup over base DDC was only {speedup:.2}x\nbase:\n{rep_base}\ntele:\n{rep_tele}"
    );
}
