//! The paper's TPC-H workload: `Q_filter` (§5.1's running example) and the
//! three most expensive TPC-H queries — Q9, Q3, Q6 — as hand-built physical
//! plans over the columnar operators.
//!
//! Each plan runs operator-at-a-time with per-operator instrumentation and
//! a [`PushdownPlan`] deciding which operators execute in the memory pool.
//! The "code change" for pushdown is exactly what the paper reports
//! (Fig 11): wrapping existing operator calls — here, passing the same
//! closure to `pushdown` instead of calling it inline.

use teleport::{Mem, Runtime};

use crate::db::Database;
use crate::exec::{aggregate, expr, hashjoin, mergejoin, project, select, sort, CandList};
use crate::report::{op, PushdownPlan, QueryReport};
use crate::types::Date;

/// Workload parameters (TPC-H defaults used by the paper's experiments).
#[derive(Debug, Clone)]
pub struct QueryParams {
    /// `Q_filter`: `shipdate < qfilter_date`.
    pub qfilter_date: Date,
    /// Q1: `shipdate <= DATE '1998-12-01' - INTERVAL q1_delta_days DAY`.
    pub q1_delta_days: i32,
    pub q3_segment: &'static str,
    pub q3_date: Date,
    pub q6_shipdate_lo: Date,
    pub q6_discount: (f64, f64),
    pub q6_quantity: f64,
    pub q9_color: &'static str,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            qfilter_date: Date::from_ymd(1995, 9, 1),
            q1_delta_days: 90,
            q3_segment: "BUILDING",
            q3_date: Date::from_ymd(1995, 3, 15),
            q6_shipdate_lo: Date::from_ymd(1994, 1, 1),
            q6_discount: (0.05, 0.07),
            q6_quantity: 24.0,
            q9_color: "green",
        }
    }
}

/// A row of Q3's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Q3Row {
    pub orderkey: i64,
    pub revenue: f64,
    pub orderdate: i32,
    pub shippriority: i64,
}

/// A row of Q9's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Q9Row {
    pub nation: String,
    pub year: i32,
    pub profit: f64,
}

/// Operator names of each plan, in execution order. These are the units of
/// pushdown and the rows of the Fig 10 / Fig 18 breakdowns.
pub mod ops {
    pub const QFILTER: &[&str] = &["Selection", "Projection", "Aggregation"];
    pub const Q1: &[&str] = &["Selection", "GroupAggregate"];
    pub const Q6: &[&str] = &[
        "Selection(shipdate)",
        "Selection(discount)",
        "Selection(quantity)",
        "Projection",
        "Expression",
        "Aggregation",
    ];
    pub const Q3: &[&str] = &[
        "Selection(customer)",
        "Selection(orders)",
        "HashJoin(customer)",
        "Selection(lineitem)",
        "MergeJoin(orders)",
        "Projection",
        "Expression",
        "GroupAggregate",
    ];
    pub const Q9: &[&str] = &[
        "Selection",
        "Projection",
        "HashJoin(part)",
        "HashJoin(partsupp)",
        "HashJoin(supplier)",
        "MergeJoin(orders)",
        "Expression",
        "GroupAggregate",
    ];
}

/// `SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate < $DATE`
/// (the paper's `Q_filter`, §5.1).
pub fn q_filter(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &QueryParams,
) -> (f64, QueryReport) {
    let mut rep = QueryReport::new("Q_filter");
    let li = db.li;
    let bound = params.qfilter_date.raw();

    let cand = op(rt, &mut rep, plan, "Selection", move |m| {
        select::select_where(m, &li.shipdate, li.n, None, |d| d < bound)
    });
    rep.note_rows(cand.len as u64);

    let qty = op(rt, &mut rep, plan, "Projection", move |m| {
        let rows = cand.read(m);
        project::gather(m, &li.quantity, &rows)
    });
    rep.note_rows(cand.len as u64);

    let total = op(rt, &mut rep, plan, "Aggregation", move |m| {
        aggregate::sum_f64(m, &qty, cand.len, None)
    });
    rep.note_rows(1);

    (total, rep)
}

/// TPC-H Q1: the pricing summary report — a near-full scan with a grouped
/// multi-aggregate over `(l_returnflag, l_linestatus)`. Not one of the
/// paper's three headline queries, but the canonical columnar-scan
/// workload; included for engine completeness.
pub fn q1(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &QueryParams,
) -> (Vec<aggregate::Q1Group>, QueryReport) {
    let mut rep = QueryReport::new("Q1");
    let li = db.li;
    let bound = Date::from_ymd(1998, 12, 1)
        .plus_days(-params.q1_delta_days)
        .raw();

    let cand = op(rt, &mut rep, plan, "Selection", move |m| {
        select::select_where(m, &li.shipdate, li.n, None, |d| d <= bound)
    });
    rep.note_rows(cand.len as u64);

    let groups = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        let rows = cand.read(m);
        aggregate::group_q1(
            m,
            &li.returnflag,
            &li.linestatus,
            &li.quantity,
            &li.extendedprice,
            &li.discount,
            &li.tax,
            &rows,
        )
    });
    rep.note_rows(groups.len() as u64);

    (groups, rep)
}

/// TPC-H Q6: the forecast-revenue-change query.
pub fn q6(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &QueryParams,
) -> (f64, QueryReport) {
    let mut rep = QueryReport::new("Q6");
    let li = db.li;
    let lo = params.q6_shipdate_lo.raw();
    let hi = params.q6_shipdate_lo.plus_days(365).raw();
    let (dlo, dhi) = params.q6_discount;
    let qmax = params.q6_quantity;

    let c1 = op(rt, &mut rep, plan, "Selection(shipdate)", move |m| {
        select::select_where(m, &li.shipdate, li.n, None, |d| d >= lo && d < hi)
    });
    rep.note_rows(c1.len as u64);

    let c2 = op(rt, &mut rep, plan, "Selection(discount)", move |m| {
        select::select_where(m, &li.discount, li.n, Some(&c1), |d| {
            d >= dlo - 1e-9 && d <= dhi + 1e-9
        })
    });
    rep.note_rows(c2.len as u64);

    let c3 = op(rt, &mut rep, plan, "Selection(quantity)", move |m| {
        select::select_where(m, &li.quantity, li.n, Some(&c2), |q| q < qmax)
    });
    rep.note_rows(c3.len as u64);

    let (price, disc) = op(rt, &mut rep, plan, "Projection", move |m| {
        let rows = c3.read(m);
        let price = project::gather(m, &li.extendedprice, &rows);
        let disc = project::gather(m, &li.discount, &rows);
        (price, disc)
    });
    rep.note_rows(c3.len as u64);

    let product = op(rt, &mut rep, plan, "Expression", move |m| {
        expr::price_times_discount(m, &price, &disc, c3.len)
    });
    rep.note_rows(c3.len as u64);

    let total = op(rt, &mut rep, plan, "Aggregation", move |m| {
        aggregate::sum_f64(m, &product, c3.len, None)
    });
    rep.note_rows(1);

    (total, rep)
}

/// TPC-H Q3: shipping-priority query (top-10 undelivered orders by
/// revenue for one market segment).
pub fn q3(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &QueryParams,
) -> (Vec<Q3Row>, QueryReport) {
    let mut rep = QueryReport::new("Q3");
    let li = db.li;
    let ord = db.ord;
    let cust = db.cust;
    let seg_code = db
        .segments
        .code_of(params.q3_segment)
        .expect("segment exists");
    let date = params.q3_date.raw();

    // 1. Customers in the segment.
    let cand_c = op(rt, &mut rep, plan, "Selection(customer)", move |m| {
        select::select_where(m, &cust.mktsegment, cust.n, None, |s| s == seg_code)
    });
    rep.note_rows(cand_c.len as u64);

    // 2. Orders placed before the date.
    let cand_o = op(rt, &mut rep, plan, "Selection(orders)", move |m| {
        select::select_where(m, &ord.orderdate, ord.n, None, |d| d < date)
    });
    rep.note_rows(cand_o.len as u64);

    // 3. orders ⋈ customer on custkey (hash join; inner = customers).
    let surviving_orders = op(rt, &mut rep, plan, "HashJoin(customer)", move |m| {
        let crow = cand_c.read(m);
        let ckeys = project::gather_host(m, &cust.custkey, &crow);
        let idx = hashjoin::HashIndex::build(m, &ckeys, &crow);
        let orows = cand_o.read(m);
        let okeys = project::gather_host(m, &ord.custkey, &orows);
        let mut keep: Vec<u32> = Vec::new();
        for (i, &ck) in okeys.iter().enumerate() {
            if idx.probe(m, ck).is_some() {
                keep.push(orows[i]);
            }
        }
        CandList::materialize(m, &keep)
    });
    rep.note_rows(surviving_orders.len as u64);

    // 4. Lineitems shipped after the date.
    let cand_l = op(rt, &mut rep, plan, "Selection(lineitem)", move |m| {
        select::select_where(m, &li.shipdate, li.n, None, |d| d > date)
    });
    rep.note_rows(cand_l.len as u64);

    // 5. lineitem ⋈ orders on orderkey (both clustered: merge join),
    //    keeping only orders that survived step 3.
    let (li_rows, ord_rows) = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let lrows = cand_l.read(m);
        let lkeys = project::gather_host(m, &li.orderkey, &lrows);
        let joined = mergejoin::merge_join(m, &lkeys, &ord.orderkey, ord.n);
        let keep: std::collections::HashSet<u32> = surviving_orders.read(m).into_iter().collect();
        let mut li_rows: Vec<u32> = Vec::new();
        let mut ord_rows: Vec<u32> = Vec::new();
        for (i, j) in joined.iter().enumerate() {
            if let Some(orow) = j {
                if keep.contains(orow) {
                    li_rows.push(lrows[i]);
                    ord_rows.push(*orow);
                }
            }
        }
        (li_rows, ord_rows)
    });
    rep.note_rows(li_rows.len() as u64);
    let n_pairs = li_rows.len();

    // 6. Projection: revenue inputs + grouping keys.
    let li_rows2 = li_rows.clone();
    let ord_rows2 = ord_rows.clone();
    let (price, disc, okey_col) = op(rt, &mut rep, plan, "Projection", move |m| {
        let price = project::gather(m, &li.extendedprice, &li_rows2);
        let disc = project::gather(m, &li.discount, &li_rows2);
        let okey = project::gather(m, &ord.orderkey, &ord_rows2);
        (price, disc, okey)
    });
    rep.note_rows(n_pairs as u64);

    // 7. revenue = extendedprice * (1 - discount).
    let revenue = op(rt, &mut rep, plan, "Expression", move |m| {
        expr::revenue(m, &price, &disc, n_pairs)
    });
    rep.note_rows(n_pairs as u64);

    // 8. Group by order, then top-10 by revenue.
    let rows = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        let groups = aggregate::group_sum_by_key(m, &okey_col, &revenue, n_pairs);
        // Attach o_orderdate / o_shippriority (functionally dependent).
        let ork: Vec<u32> = ord_rows.clone();
        let okeys = project::gather_host(m, &ord.orderkey, &ork);
        let odates = project::gather_host(m, &ord.orderdate, &ork);
        let oprios = project::gather_host(m, &ord.shippriority, &ork);
        let mut meta = std::collections::HashMap::new();
        for i in 0..ork.len() {
            meta.insert(okeys[i], (odates[i], oprios[i]));
        }
        let items: Vec<(f64, (i64, i32, i64))> = groups
            .into_iter()
            .map(|(k, rev)| {
                let (d, p) = meta[&k];
                (rev, (k, d, p))
            })
            .collect();
        let top = sort::topk_desc_f64(m, items, 10, |a, b| a.0.cmp(&b.0));
        top.into_iter()
            .map(|(rev, (k, d, p))| Q3Row {
                orderkey: k,
                revenue: rev,
                orderdate: d,
                shippriority: p,
            })
            .collect::<Vec<_>>()
    });
    rep.note_rows(rows.len() as u64);

    (rows, rep)
}

/// TPC-H Q9: product-type profit measure — the paper's most expensive
/// query (52.4× slowdown unmodified on a DDC) and its Fig 10 / Fig 18
/// case study. Eight operators.
pub fn q9(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &QueryParams,
) -> (Vec<Q9Row>, QueryReport) {
    let mut rep = QueryReport::new("Q9");
    let li = db.li;
    let ord = db.ord;
    let part = db.part;
    let supp = db.supp;
    let ps = db.ps;
    let color = db.colors.code_of(params.q9_color).expect("color exists");

    // 1. Parts whose name contains the color.
    let cand_p = op(rt, &mut rep, plan, "Selection", move |m| {
        select::select_name_contains(m, &part.name, part.n, color)
    });
    rep.note_rows(cand_p.len as u64);

    // 2. Projection: materialize lineitem's six join/value columns. In a
    //    DDC this is the single largest data movement of the query
    //    (Fig 10's 189 GB bar).
    let proj = op(rt, &mut rep, plan, "Projection", move |m| {
        (
            project::copy_column(m, &li.partkey, li.n),
            project::copy_column(m, &li.suppkey, li.n),
            project::copy_column(m, &li.orderkey, li.n),
            project::copy_column(m, &li.quantity, li.n),
            project::copy_column(m, &li.extendedprice, li.n),
            project::copy_column(m, &li.discount, li.n),
        )
    });
    rep.note_rows(li.n as u64);
    let (pk_col, sk_col, ok_col, qty_col, price_col, disc_col) = proj;

    // 3. lineitem ⋉ green parts (hash semi-join on partkey).
    let cand1 = op(rt, &mut rep, plan, "HashJoin(part)", move |m| {
        let prow = cand_p.read(m);
        let pkeys = project::gather_host(m, &part.partkey, &prow);
        let idx = hashjoin::HashIndex::build(m, &pkeys, &prow);
        let mut keep: Vec<u32> = Vec::new();
        let chunk = 16_384;
        let mut buf: Vec<i64> = Vec::new();
        let mut base = 0usize;
        while base < li.n {
            let take = chunk.min(li.n - base);
            buf.clear();
            m.read_range(&pk_col, base, take, &mut buf);
            for (i, &k) in buf.iter().enumerate() {
                if idx.probe(m, k).is_some() {
                    keep.push((base + i) as u32);
                }
            }
            base += take;
        }
        CandList::materialize(m, &keep)
    });
    rep.note_rows(cand1.len as u64);

    // 4. ⋈ partsupp on (partkey, suppkey) to fetch supplycost.
    let cost_col = op(rt, &mut rep, plan, "HashJoin(partsupp)", move |m| {
        let mut ps_pk: Vec<i64> = Vec::new();
        let mut ps_sk: Vec<i64> = Vec::new();
        m.read_range(&ps.partkey, 0, ps.n, &mut ps_pk);
        m.read_range(&ps.suppkey, 0, ps.n, &mut ps_sk);
        let keys: Vec<i64> = ps_pk
            .iter()
            .zip(&ps_sk)
            .map(|(&p, &s)| hashjoin::composite_key(p, s))
            .collect();
        let rows: Vec<u32> = (0..ps.n as u32).collect();
        let idx = hashjoin::HashIndex::build(m, &keys, &rows);

        let lrows = cand1.read(m);
        let lpk = project::gather_host(m, &pk_col, &lrows);
        let lsk = project::gather_host(m, &sk_col, &lrows);
        let mut ps_rows: Vec<u32> = Vec::with_capacity(lrows.len());
        for i in 0..lrows.len() {
            let row = idx
                .probe(m, hashjoin::composite_key(lpk[i], lsk[i]))
                .expect("referential integrity: partsupp row exists");
            ps_rows.push(row);
        }
        project::gather(m, &ps.supplycost, &ps_rows)
    });
    rep.note_rows(cand1.len as u64);

    // 5. ⋈ supplier on suppkey to fetch nationkey.
    let nation_col = op(rt, &mut rep, plan, "HashJoin(supplier)", move |m| {
        let skeys: Vec<i64> = {
            let mut v = Vec::new();
            m.read_range(&supp.suppkey, 0, supp.n, &mut v);
            v
        };
        let rows: Vec<u32> = (0..supp.n as u32).collect();
        let idx = hashjoin::HashIndex::build(m, &skeys, &rows);
        let lrows = cand1.read(m);
        let lsk = project::gather_host(m, &sk_col, &lrows);
        let mut srow: Vec<u32> = Vec::with_capacity(lrows.len());
        for &k in &lsk {
            srow.push(idx.probe(m, k).expect("supplier exists"));
        }
        project::gather(m, &supp.nationkey, &srow)
    });
    rep.note_rows(cand1.len as u64);

    // 6. ⋈ orders on orderkey (merge join; both sides clustered).
    let odate_col = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let lrows = cand1.read(m);
        let lok = project::gather_host(m, &ok_col, &lrows);
        let joined = mergejoin::merge_join(m, &lok, &ord.orderkey, ord.n);
        let orow: Vec<u32> = joined
            .into_iter()
            .map(|j| j.expect("order exists"))
            .collect();
        project::gather(m, &ord.orderdate, &orow)
    });
    rep.note_rows(cand1.len as u64);

    // 7. amount = extendedprice*(1-discount) - supplycost*quantity.
    let n1 = cand1.len;
    let amount_col = op(rt, &mut rep, plan, "Expression", move |m| {
        let lrows = cand1.read(m);
        let price = project::gather(m, &price_col, &lrows);
        let disc = project::gather(m, &disc_col, &lrows);
        let qty = project::gather(m, &qty_col, &lrows);
        expr::q9_amount(m, &price, &disc, &cost_col, &qty, n1)
    });
    rep.note_rows(n1 as u64);

    // 8. Group by (nation, year), order nation asc / year desc.
    let groups = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        aggregate::group_sum_nation_year(m, &nation_col, &odate_col, &amount_col, n1)
    });
    rep.note_rows(groups.len() as u64);

    let mut rows: Vec<Q9Row> = groups
        .into_iter()
        .map(|((nk, year), profit)| Q9Row {
            nation: db.nation_name[nk as usize].clone(),
            year,
            profit,
        })
        .collect();
    // Output order per the query: n_name asc, o_year desc.
    rows.sort_by(|a, b| a.nation.cmp(&b.nation).then(b.year.cmp(&a.year)));
    (rows, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchData;
    use ddc_sim::DdcConfig;

    fn setup() -> (Runtime, Database, TpchData) {
        let data = TpchData::generate(0.002, 42);
        let mut rt = Runtime::teleport(DdcConfig {
            compute_cache_bytes: 64 << 10,
            memory_pool_bytes: 512 << 20,
            ..Default::default()
        });
        let db = Database::load(&mut rt, &data);
        rt.drop_cache();
        rt.begin_timing();
        (rt, db, data)
    }

    #[test]
    fn qfilter_reports_three_ops() {
        let (mut rt, db, _) = setup();
        let params = QueryParams::default();
        let (total, rep) = q_filter(&mut rt, &db, &PushdownPlan::none(), &params);
        assert!(total > 0.0);
        let names: Vec<_> = rep.ops.iter().map(|o| o.name).collect();
        assert_eq!(names, ops::QFILTER);
        assert!(rep.total() > ddc_sim::SimDuration::ZERO);
    }

    #[test]
    fn q9_reports_eight_ops_in_order() {
        let (mut rt, db, _) = setup();
        let params = QueryParams::default();
        let (rows, rep) = q9(&mut rt, &db, &PushdownPlan::none(), &params);
        assert!(!rows.is_empty());
        let names: Vec<_> = rep.ops.iter().map(|o| o.name).collect();
        assert_eq!(names, ops::Q9);
        // Output order: nation asc, year desc.
        for w in rows.windows(2) {
            assert!(
                w[0].nation < w[1].nation || (w[0].nation == w[1].nation && w[0].year > w[1].year)
            );
        }
    }

    #[test]
    fn pushdown_does_not_change_results() {
        let (mut rt, db, _) = setup();
        let params = QueryParams::default();
        let (r_none, _) = q6(&mut rt, &db, &PushdownPlan::none(), &params);
        let (r_all, _) = q6(&mut rt, &db, &PushdownPlan::of(ops::Q6), &params);
        assert!((r_none - r_all).abs() < 1e-6, "{r_none} vs {r_all}");

        let (q3_none, _) = q3(&mut rt, &db, &PushdownPlan::none(), &params);
        let (q3_all, _) = q3(&mut rt, &db, &PushdownPlan::of(ops::Q3), &params);
        assert_eq!(q3_none.len(), q3_all.len());
        for (a, b) in q3_none.iter().zip(&q3_all) {
            assert_eq!(a.orderkey, b.orderkey);
            assert!((a.revenue - b.revenue).abs() < 1e-6);
        }
    }

    #[test]
    fn q3_limits_to_ten() {
        let (mut rt, db, _) = setup();
        let (rows, rep) = q3(&mut rt, &db, &PushdownPlan::none(), &QueryParams::default());
        assert!(rows.len() <= 10);
        assert!(!rows.is_empty());
        // Revenue is descending.
        for w in rows.windows(2) {
            assert!(w[0].revenue >= w[1].revenue);
        }
        assert_eq!(rep.ops.len(), ops::Q3.len());
    }
}
