//! Per-operator instrumentation of query execution.
//!
//! Every operator of a plan records its virtual time, remote memory traffic
//! and output cardinality — exactly the quantities the paper's Fig 10
//! annotates per operator, and the raw input to the memory-intensity metric
//! of §7.4.

use std::collections::HashSet;
use std::fmt;

use ddc_sim::SimDuration;
use teleport::{Arm, PushdownOpts, Runtime};

/// Measurements for one operator instance.
#[derive(Debug, Clone)]
pub struct OpReport {
    pub name: &'static str,
    pub time: SimDuration,
    /// Remote page movements (in + out) attributed to this operator.
    pub remote_accesses: u64,
    /// Bytes of page traffic attributed to this operator.
    pub remote_bytes: u64,
    /// Output cardinality, when the operator has one.
    pub rows_out: u64,
    /// Whether the operator executed in the memory pool.
    pub pushed: bool,
}

impl OpReport {
    /// The §7.4 memory-intensity metric: remote memory accesses per second
    /// of execution. Operators above the threshold are pushdown candidates.
    pub fn memory_intensity(&self) -> f64 {
        let secs = self.time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.remote_accesses as f64 / secs
        }
    }
}

/// Measurements for a whole query.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    pub query: &'static str,
    pub ops: Vec<OpReport>,
}

impl QueryReport {
    pub fn new(query: &'static str) -> Self {
        QueryReport {
            query,
            ops: Vec::new(),
        }
    }

    pub fn total(&self) -> SimDuration {
        self.ops.iter().map(|o| o.time).sum()
    }

    pub fn op(&self, name: &str) -> Option<&OpReport> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Operator names ranked by descending memory intensity (§7.4's
    /// profiling step, run on the base DDC).
    pub fn rank_by_intensity(&self) -> Vec<&'static str> {
        let mut ranked: Vec<&OpReport> = self.ops.iter().collect();
        ranked.sort_by(|a, b| {
            b.memory_intensity()
                .total_cmp(&a.memory_intensity())
                .then(a.name.cmp(b.name))
        });
        ranked.iter().map(|o| o.name).collect()
    }

    /// Annotate the most recent operator with its output cardinality.
    pub fn note_rows(&mut self, rows: u64) {
        if let Some(last) = self.ops.last_mut() {
            last.rows_out = rows;
        }
    }
}

impl fmt::Display for QueryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: total {}", self.query, self.total())?;
        for op in &self.ops {
            writeln!(
                f,
                "  {}{:<24} {:>12}  remote {:>8} pages / {:>6.1} MB  rows {}",
                if op.pushed { "*" } else { " " },
                op.name,
                op.time.to_string(),
                op.remote_accesses,
                op.remote_bytes as f64 / 1e6,
                op.rows_out,
            )?;
        }
        Ok(())
    }
}

/// Which operators of a plan run in the memory pool.
#[derive(Debug, Clone, Default)]
pub struct PushdownPlan {
    pushed: HashSet<&'static str>,
}

impl PushdownPlan {
    /// Nothing pushed: the base-DDC (or local) execution.
    pub fn none() -> Self {
        Self::default()
    }

    /// Push the named operators.
    pub fn of(names: &[&'static str]) -> Self {
        PushdownPlan {
            pushed: names.iter().copied().collect(),
        }
    }

    /// Push the first `k` of an intensity-ranked operator list (§7.4's
    /// "level of pushdown").
    pub fn top_k(ranking: &[&'static str], k: usize) -> Self {
        Self::of(&ranking[..k.min(ranking.len())])
    }

    /// The paper's §7.4 threshold rule, automated: push every operator
    /// whose profiled memory intensity exceeds `threshold_rm_per_sec`.
    /// The paper found 80 K remote accesses per second a good split on its
    /// testbed; [`PushdownPlan::PAPER_THRESHOLD_RM_S`] carries that value.
    pub fn auto(profile: &QueryReport, threshold_rm_per_sec: f64) -> Self {
        let pushed = profile
            .ops
            .iter()
            .filter(|o| o.memory_intensity() > threshold_rm_per_sec)
            .map(|o| o.name)
            .collect();
        PushdownPlan { pushed }
    }

    /// The 80 K RM/s split of §7.4.
    pub const PAPER_THRESHOLD_RM_S: f64 = 80_000.0;

    pub fn is_pushed(&self, name: &str) -> bool {
        self.pushed.contains(name)
    }

    pub fn len(&self) -> usize {
        self.pushed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pushed.is_empty()
    }
}

/// Run one operator under the plan's placement decision, recording its
/// measurements.
pub fn op<R>(
    rt: &mut Runtime,
    rep: &mut QueryReport,
    plan: &PushdownPlan,
    name: &'static str,
    f: impl FnOnce(&mut Arm<'_>) -> R,
) -> R {
    let t0 = rt.elapsed();
    let l0 = rt.net_ledger();
    let pushed = plan.is_pushed(name) && rt.kind() == teleport::PlatformKind::Teleport;
    let r = if pushed {
        rt.pushdown(PushdownOpts::new(), f)
            .unwrap_or_else(|e| panic!("pushdown of {name} failed: {e}"))
    } else {
        rt.run_local(f)
    };
    let l1 = rt.net_ledger();
    rep.ops.push(OpReport {
        name,
        time: rt.elapsed() - t0,
        remote_accesses: (l1.page_in.messages + l1.page_out.messages)
            - (l0.page_in.messages + l0.page_out.messages),
        remote_bytes: l1.page_bytes() - l0.page_bytes(),
        rows_out: 0,
        pushed,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(name: &'static str, ms: u64, accesses: u64) -> OpReport {
        OpReport {
            name,
            time: SimDuration::from_millis(ms),
            remote_accesses: accesses,
            remote_bytes: accesses * 4096,
            rows_out: 0,
            pushed: false,
        }
    }

    #[test]
    fn intensity_ranking_orders_by_rm_per_second() {
        let mut rep = QueryReport::new("test");
        rep.ops.push(mk("cheap", 100, 10));
        rep.ops.push(mk("hot", 100, 10_000));
        rep.ops.push(mk("warm", 100, 1_000));
        assert_eq!(rep.rank_by_intensity(), vec!["hot", "warm", "cheap"]);
        assert!(rep.op("hot").unwrap().memory_intensity() > 1e4);
    }

    #[test]
    fn plan_top_k() {
        let ranking = vec!["a", "b", "c"];
        let plan = PushdownPlan::top_k(&ranking, 2);
        assert!(plan.is_pushed("a") && plan.is_pushed("b"));
        assert!(!plan.is_pushed("c"));
        assert_eq!(PushdownPlan::top_k(&ranking, 99).len(), 3);
        assert!(PushdownPlan::none().is_empty());
    }

    #[test]
    fn auto_plan_uses_the_threshold() {
        let mut rep = QueryReport::new("t");
        rep.ops.push(mk("cold", 100, 100)); // 1K RM/s
        rep.ops.push(mk("hot", 100, 20_000)); // 200K RM/s
        rep.ops.push(mk("borderline", 100, 8_000)); // 80K RM/s exactly
        let plan = PushdownPlan::auto(&rep, PushdownPlan::PAPER_THRESHOLD_RM_S);
        assert!(plan.is_pushed("hot"));
        assert!(!plan.is_pushed("cold"));
        assert!(!plan.is_pushed("borderline"), "strictly above the split");
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn totals_and_note_rows() {
        let mut rep = QueryReport::new("t");
        rep.ops.push(mk("x", 5, 0));
        rep.note_rows(42);
        rep.ops.push(mk("y", 7, 0));
        assert_eq!(rep.total(), SimDuration::from_millis(12));
        assert_eq!(rep.op("x").unwrap().rows_out, 42);
    }
}
