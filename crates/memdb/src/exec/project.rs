//! Projection: materialize a subset of columns (optionally through a
//! candidate list) into temporary columns.
//!
//! In MonetDB's operator-at-a-time model projection is a real data
//! movement, not a no-op — which is why it tops the paper's Fig 10
//! breakdown (189 GB of remote accesses for Q9's projection in a DDC).

use teleport::{Mem, Region, Scalar};

use super::cost;

/// Gather `col[rows[i]]` to the host (random reads, charged per tuple).
pub fn gather_host<M: Mem, T: Scalar>(m: &mut M, col: &Region<T>, rows: &[u32]) -> Vec<T> {
    let mut vals: Vec<T> = Vec::with_capacity(rows.len());
    for &r in rows {
        vals.push(m.get(col, r as usize, ddc_os::Pattern::Rand));
    }
    m.charge_cycles(cost::GATHER * rows.len() as u64);
    vals
}

/// Gather `col[rows[i]]` into a new materialized column.
pub fn gather<M: Mem, T: Scalar>(m: &mut M, col: &Region<T>, rows: &[u32]) -> Region<T> {
    let vals = gather_host(m, col, rows);
    let out = m.alloc_region::<T>(rows.len().max(1));
    if !vals.is_empty() {
        m.write_range(&out, 0, &vals);
    }
    out
}

/// Materialize a full copy of a column (projection without candidates).
pub fn copy_column<M: Mem, T: Scalar>(m: &mut M, col: &Region<T>, n: usize) -> Region<T> {
    let out = m.alloc_region::<T>(n.max(1));
    let mut buf: Vec<T> = Vec::new();
    let chunk = 16_384;
    let mut base = 0usize;
    while base < n {
        let take = chunk.min(n - base);
        buf.clear();
        m.read_range(col, base, take, &mut buf);
        m.write_range(&out, base, &buf);
        m.charge_cycles(cost::GATHER * take as u64);
        base += take;
    }
    out
}

/// Read a whole materialized column back to the host (the final "ship the
/// result to the client" step, and a convenience for tests).
pub fn fetch<M: Mem, T: Scalar>(m: &mut M, col: &Region<T>, n: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(n);
    m.read_range(col, 0, n, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;
    use teleport::Mem;

    #[test]
    fn gather_respects_candidate_order() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<f64>(100);
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 1.5).collect();
        rt.write_range(&col, 0, &vals);

        let rows = vec![99u32, 0, 50];
        let out = gather(&mut rt, &col, &rows);
        assert_eq!(fetch(&mut rt, &out, 3), vec![148.5, 0.0, 75.0]);
    }

    #[test]
    fn copy_column_is_identical() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<i64>(20_000);
        let vals: Vec<i64> = (0..20_000).map(|i| i * 7).collect();
        rt.write_range(&col, 0, &vals);
        let copy = copy_column(&mut rt, &col, 20_000);
        assert_eq!(fetch(&mut rt, &copy, 20_000), vals);
    }

    #[test]
    fn empty_gather() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<i64>(10);
        let out = gather(&mut rt, &col, &[]);
        assert_eq!(out.len(), 1, "placeholder allocation");
    }
}
