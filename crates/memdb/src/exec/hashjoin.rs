//! Hash join: build a linear-probing hash index in (simulated) memory over
//! the inner relation, probe it with the outer relation.
//!
//! The probe phase is the paper's canonical memory-bound victim (§2.2):
//! random accesses into an index far larger than the compute-local cache
//! miss constantly in a DDC, which is why Q9's hash joins dominate its
//! disaggregated execution (Fig 10) and are prime pushdown candidates.

use teleport::{Mem, Region};

use super::cost;

/// An open-addressing (linear probing) hash index living in simulated
/// memory: a key array and an aligned payload array of inner row ids.
/// Key 0 marks an empty slot — TPC-H keys are ≥ 1; composite keys add 1.
#[derive(Debug, Clone, Copy)]
pub struct HashIndex {
    keys: Region<i64>,
    vals: Region<u32>,
    mask: u64,
    pub entries: usize,
}

#[inline]
fn hash64(key: i64) -> u64 {
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl HashIndex {
    /// Build an index mapping `keys[i] -> rows[i]`. Keys must be non-zero
    /// and unique (all TPC-H primary-key joins used here are).
    pub fn build<M: Mem>(m: &mut M, keys: &[i64], rows: &[u32]) -> HashIndex {
        assert_eq!(keys.len(), rows.len());
        let capacity = (keys.len().max(1) * 2).next_power_of_two();
        let mask = capacity as u64 - 1;
        let kreg = m.alloc_region::<i64>(capacity);
        let vreg = m.alloc_region::<u32>(capacity);
        // Insertions are random writes into the table — the memory traffic
        // of a real hash build.
        for (i, (&k, &r)) in keys.iter().zip(rows).enumerate() {
            assert!(k != 0, "key 0 is the empty sentinel");
            let mut slot = (hash64(k) & mask) as usize;
            loop {
                let existing = m.get(&kreg, slot, ddc_os::Pattern::Rand);
                if existing == 0 {
                    m.set(&kreg, slot, k, ddc_os::Pattern::Rand);
                    m.set(&vreg, slot, r, ddc_os::Pattern::Rand);
                    break;
                }
                assert!(existing != k, "duplicate key {k} at input {i}");
                slot = (slot + 1) & mask as usize;
            }
        }
        m.charge_cycles(cost::HASH_BUILD * keys.len() as u64);
        HashIndex {
            keys: kreg,
            vals: vreg,
            mask,
            entries: keys.len(),
        }
    }

    /// Probe one key; returns the inner row id if present.
    pub fn probe<M: Mem>(&self, m: &mut M, key: i64) -> Option<u32> {
        m.charge_cycles(cost::HASH_PROBE);
        if key == 0 {
            return None;
        }
        let mut slot = (hash64(key) & self.mask) as usize;
        loop {
            let k = m.get(&self.keys, slot, ddc_os::Pattern::Rand);
            if k == key {
                return Some(m.get(&self.vals, slot, ddc_os::Pattern::Rand));
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & self.mask as usize;
        }
    }

    /// Probe a batch of keys; returns `(outer_position, inner_row)` for
    /// every match, preserving outer order (an inner join against a
    /// unique-key inner relation).
    pub fn probe_all<M: Mem>(&self, m: &mut M, probe_keys: &[i64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (i, &k) in probe_keys.iter().enumerate() {
            if let Some(row) = self.probe(m, k) {
                out.push((i as u32, row));
            }
        }
        out
    }
}

/// Compose a `(partkey, suppkey)` pair into a single join key, as the
/// engine does for partsupp lookups. Injective for `0 <= suppkey <
/// 100_000` (TPC-H suppkeys stay below 10 000 × SF); offsets by 1 so the
/// result is never the empty sentinel.
#[inline]
pub fn composite_key(partkey: i64, suppkey: i64) -> i64 {
    debug_assert!((0..100_000).contains(&suppkey));
    partkey * 100_000 + suppkey + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;

    #[test]
    fn build_and_probe_hits_and_misses() {
        let mut rt = test_rt();
        let keys: Vec<i64> = vec![10, 20, 30, 40];
        let rows: Vec<u32> = vec![0, 1, 2, 3];
        let idx = HashIndex::build(&mut rt, &keys, &rows);
        assert_eq!(idx.entries, 4);
        assert_eq!(idx.probe(&mut rt, 30), Some(2));
        assert_eq!(idx.probe(&mut rt, 35), None);
        assert_eq!(idx.probe(&mut rt, 0), None);
    }

    #[test]
    fn probe_all_preserves_outer_order() {
        let mut rt = test_rt();
        let idx = HashIndex::build(&mut rt, &[5, 7, 9], &[50, 70, 90]);
        let matches = idx.probe_all(&mut rt, &[9, 6, 5, 7, 7]);
        assert_eq!(matches, vec![(0, 90), (2, 50), (3, 70), (4, 70)]);
    }

    #[test]
    fn survives_heavy_collisions() {
        // Keys chosen to collide in a small table exercise linear probing.
        let mut rt = test_rt();
        let n = 1000usize;
        let keys: Vec<i64> = (1..=n as i64).collect();
        let rows: Vec<u32> = (0..n as u32).collect();
        let idx = HashIndex::build(&mut rt, &keys, &rows);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(idx.probe(&mut rt, k), Some(i as u32));
        }
        assert_eq!(idx.probe(&mut rt, n as i64 + 1), None);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_are_rejected() {
        let mut rt = test_rt();
        let _ = HashIndex::build(&mut rt, &[4, 4], &[0, 1]);
    }

    #[test]
    fn composite_keys_are_injective_and_nonzero() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for pk in 0..50 {
            for sk in 0..50 {
                let k = composite_key(pk, sk);
                assert_ne!(k, 0);
                assert!(seen.insert(k), "collision at ({pk},{sk})");
            }
        }
        assert_ne!(composite_key(7, 13), composite_key(13, 7));
    }

    #[test]
    fn probing_is_memory_bound_on_ddc() {
        // A probe storm over an index larger than the cache must generate
        // remote traffic — this is the Fig 10 HashJoin story.
        let mut rt = test_rt();
        let n = 50_000usize;
        let keys: Vec<i64> = (1..=n as i64).collect();
        let rows: Vec<u32> = (0..n as u32).collect();
        let idx = HashIndex::build(&mut rt, &keys, &rows);
        rt.drop_cache();
        rt.begin_timing();
        let mut hits = 0;
        for i in (1..=n as i64).step_by(17) {
            if idx.probe(&mut rt, i).is_some() {
                hits += 1;
            }
        }
        assert!(hits > 0);
        let stats = rt.paging_stats();
        assert!(
            stats.remote_page_in > (hits / 2) as u64,
            "probes should fault: {} pages for {hits} probes",
            stats.remote_page_in
        );
    }
}
