//! Vectorized expression evaluation over materialized columns.

use teleport::{Mem, Region};

use super::cost;

/// `price * (1 - discount)` — TPC-H's revenue expression (Q3, Q6).
pub fn revenue<M: Mem>(
    m: &mut M,
    price: &Region<f64>,
    discount: &Region<f64>,
    n: usize,
) -> Region<f64> {
    binary_map(m, price, discount, n, |p, d| p * (1.0 - d))
}

/// `price * discount` — Q6's aggregate input.
pub fn price_times_discount<M: Mem>(
    m: &mut M,
    price: &Region<f64>,
    discount: &Region<f64>,
    n: usize,
) -> Region<f64> {
    binary_map(m, price, discount, n, |p, d| p * d)
}

/// Q9's profit expression:
/// `extendedprice * (1 - discount) - supplycost * quantity`.
pub fn q9_amount<M: Mem>(
    m: &mut M,
    price: &Region<f64>,
    discount: &Region<f64>,
    supplycost: &Region<f64>,
    quantity: &Region<f64>,
    n: usize,
) -> Region<f64> {
    let out = m.alloc_region::<f64>(n.max(1));
    let chunk = 16_384;
    let (mut p, mut d, mut c, mut q) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut acc: Vec<f64> = Vec::with_capacity(chunk);
    let mut base = 0usize;
    while base < n {
        let take = chunk.min(n - base);
        p.clear();
        d.clear();
        c.clear();
        q.clear();
        m.read_range(price, base, take, &mut p);
        m.read_range(discount, base, take, &mut d);
        m.read_range(supplycost, base, take, &mut c);
        m.read_range(quantity, base, take, &mut q);
        acc.clear();
        for i in 0..take {
            acc.push(p[i] * (1.0 - d[i]) - c[i] * q[i]);
        }
        m.write_range(&out, base, &acc);
        m.charge_cycles(2 * cost::EXPR * take as u64);
        base += take;
    }
    out
}

/// Generic element-wise binary map.
pub fn binary_map<M: Mem>(
    m: &mut M,
    a: &Region<f64>,
    b: &Region<f64>,
    n: usize,
    f: impl Fn(f64, f64) -> f64,
) -> Region<f64> {
    let out = m.alloc_region::<f64>(n.max(1));
    let chunk = 16_384;
    let (mut abuf, mut bbuf) = (Vec::new(), Vec::new());
    let mut acc: Vec<f64> = Vec::with_capacity(chunk);
    let mut base = 0usize;
    while base < n {
        let take = chunk.min(n - base);
        abuf.clear();
        bbuf.clear();
        m.read_range(a, base, take, &mut abuf);
        m.read_range(b, base, take, &mut bbuf);
        acc.clear();
        for i in 0..take {
            acc.push(f(abuf[i], bbuf[i]));
        }
        m.write_range(&out, base, &acc);
        m.charge_cycles(cost::EXPR * take as u64);
        base += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::project::fetch;
    use crate::exec::testutil::test_rt;
    use teleport::Mem;

    #[test]
    fn revenue_formula() {
        let mut rt = test_rt();
        let p = rt.alloc_region::<f64>(3);
        let d = rt.alloc_region::<f64>(3);
        rt.write_range(&p, 0, &[100.0f64, 200.0, 50.0]);
        rt.write_range(&d, 0, &[0.1f64, 0.0, 0.5]);
        let r = revenue(&mut rt, &p, &d, 3);
        assert_eq!(fetch(&mut rt, &r, 3), vec![90.0, 200.0, 25.0]);
    }

    #[test]
    fn q9_amount_formula() {
        let mut rt = test_rt();
        let p = rt.alloc_region::<f64>(2);
        let d = rt.alloc_region::<f64>(2);
        let c = rt.alloc_region::<f64>(2);
        let q = rt.alloc_region::<f64>(2);
        rt.write_range(&p, 0, &[100.0f64, 1000.0]);
        rt.write_range(&d, 0, &[0.1f64, 0.2]);
        rt.write_range(&c, 0, &[2.0f64, 10.0]);
        rt.write_range(&q, 0, &[5.0f64, 10.0]);
        let out = q9_amount(&mut rt, &p, &d, &c, &q, 2);
        assert_eq!(fetch(&mut rt, &out, 2), vec![80.0, 700.0]);
    }

    #[test]
    fn large_inputs_cross_chunks() {
        let mut rt = test_rt();
        let n = 40_000usize;
        let a = rt.alloc_region::<f64>(n);
        let b = rt.alloc_region::<f64>(n);
        let av: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let bv: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        rt.write_range(&a, 0, &av);
        rt.write_range(&b, 0, &bv);
        let out = binary_map(&mut rt, &a, &b, n, |x, y| x + y);
        let got = fetch(&mut rt, &out, n);
        for i in [0usize, 16_383, 16_384, 39_999] {
            assert_eq!(got[i], av[i] + bv[i], "index {i}");
        }
    }
}
