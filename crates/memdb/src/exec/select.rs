//! Selection: scan a column (or a candidate list) and keep matching rows.
//!
//! MonetDB's selection takes a table, a filter, and an optional candidate
//! list from previous selections (paper §2.3); the output is a new
//! candidate list materialized to a temporary — which is why an unpushed
//! selection in a DDC must drag every tuple through the compute cache.

use teleport::{Mem, Region, Scalar};

use super::{cost, CandList};

/// Generic typed selection. Without a candidate list, streams the whole
/// column sequentially; with one, gathers just the candidate rows
/// (random access). Returns the surviving rows as a new candidate list.
///
/// # Examples
///
/// ```
/// use memdb::exec::select::select_where;
/// use teleport::{Mem, Runtime};
///
/// let mut rt = Runtime::teleport(ddc_sim::DdcConfig::default());
/// let col = rt.alloc_region::<i64>(100);
/// let vals: Vec<i64> = (0..100).collect();
/// rt.write_range(&col, 0, &vals);
///
/// let cand = select_where(&mut rt, &col, 100, None, |v| v % 25 == 0);
/// assert_eq!(cand.read(&mut rt), vec![0, 25, 50, 75]);
/// ```
pub fn select_where<M: Mem, T: Scalar>(
    m: &mut M,
    col: &Region<T>,
    n: usize,
    cand: Option<&CandList>,
    pred: impl Fn(T) -> bool,
) -> CandList {
    let mut out: Vec<u32> = Vec::new();
    match cand {
        None => {
            let mut buf: Vec<T> = Vec::new();
            let chunk = 16_384;
            let mut base = 0usize;
            while base < n {
                let take = chunk.min(n - base);
                buf.clear();
                m.read_range(col, base, take, &mut buf);
                for (i, &v) in buf.iter().enumerate() {
                    if pred(v) {
                        out.push((base + i) as u32);
                    }
                }
                m.charge_cycles(cost::FILTER * take as u64);
                base += take;
            }
        }
        Some(c) => {
            let rows = c.read(m);
            for &r in &rows {
                let v = m.get(col, r as usize, ddc_os::Pattern::Rand);
                if pred(v) {
                    out.push(r);
                }
            }
            m.charge_cycles(cost::FILTER * rows.len() as u64);
        }
    }
    CandList::materialize(m, &out)
}

/// Two-column selection: keep rows where `pred(a[i], b[i])` holds —
/// `l_commitdate < l_receiptdate` and friends. Streams both columns
/// without candidates; gathers both with them.
pub fn select_where2<M: Mem, A: Scalar, B: Scalar>(
    m: &mut M,
    col_a: &Region<A>,
    col_b: &Region<B>,
    n: usize,
    cand: Option<&CandList>,
    pred: impl Fn(A, B) -> bool,
) -> CandList {
    let mut out: Vec<u32> = Vec::new();
    match cand {
        None => {
            let (mut abuf, mut bbuf): (Vec<A>, Vec<B>) = (Vec::new(), Vec::new());
            let chunk = 16_384;
            let mut base = 0usize;
            while base < n {
                let take = chunk.min(n - base);
                abuf.clear();
                bbuf.clear();
                m.read_range(col_a, base, take, &mut abuf);
                m.read_range(col_b, base, take, &mut bbuf);
                for i in 0..take {
                    if pred(abuf[i], bbuf[i]) {
                        out.push((base + i) as u32);
                    }
                }
                m.charge_cycles(cost::FILTER * take as u64);
                base += take;
            }
        }
        Some(c) => {
            let rows = c.read(m);
            for &r in &rows {
                let a = m.get(col_a, r as usize, ddc_os::Pattern::Rand);
                let b = m.get(col_b, r as usize, ddc_os::Pattern::Rand);
                if pred(a, b) {
                    out.push(r);
                }
            }
            m.charge_cycles(cost::FILTER * rows.len() as u64);
        }
    }
    CandList::materialize(m, &out)
}

/// Selection over packed part names: `p_name LIKE '%color%'`.
pub fn select_name_contains<M: Mem>(
    m: &mut M,
    names: &Region<u64>,
    n: usize,
    color_code: u8,
) -> CandList {
    select_where(m, names, n, None, |packed| {
        crate::types::name_contains(packed, color_code)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;
    use crate::types::pack_name;
    use teleport::Mem;

    #[test]
    fn full_scan_selection() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<i64>(1000);
        let vals: Vec<i64> = (0..1000).collect();
        rt.write_range(&col, 0, &vals);

        let cand = select_where(&mut rt, &col, 1000, None, |v| v % 10 == 0);
        assert_eq!(cand.len, 100);
        let rows = cand.read(&mut rt);
        assert_eq!(rows[0], 0);
        assert_eq!(rows[99], 990);
    }

    #[test]
    fn selection_with_candidates_narrows() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<f64>(100);
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        rt.write_range(&col, 0, &vals);

        let first = select_where(&mut rt, &col, 100, None, |v| v >= 50.0);
        assert_eq!(first.len, 50);
        let second = select_where(&mut rt, &col, 100, Some(&first), |v| v < 60.0);
        assert_eq!(second.len, 10);
        assert_eq!(second.read(&mut rt), (50..60).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_result_is_fine() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<i64>(10);
        let cand = select_where(&mut rt, &col, 10, None, |v| v > 100);
        assert!(cand.is_empty());
        // Chaining from an empty candidate list stays empty.
        let chained = select_where(&mut rt, &col, 10, Some(&cand), |_| true);
        assert!(chained.is_empty());
    }

    #[test]
    fn name_like_selection() {
        let mut rt = test_rt();
        let names = rt.alloc_region::<u64>(4);
        rt.write_range(
            &names,
            0,
            &[
                pack_name([1, 2, 3, 4, 5]),
                pack_name([9, 9, 9, 9, 7]),
                pack_name([7, 1, 1, 1, 1]),
                pack_name([2, 2, 2, 2, 2]),
            ],
        );
        let cand = select_name_contains(&mut rt, &names, 4, 7);
        assert_eq!(cand.read(&mut rt), vec![1, 2]);
    }

    #[test]
    fn two_column_selection() {
        let mut rt = test_rt();
        let a = rt.alloc_region::<i32>(100);
        let b = rt.alloc_region::<i32>(100);
        let av: Vec<i32> = (0..100).collect();
        let bv: Vec<i32> = (0..100).map(|i| 100 - i).collect();
        rt.write_range(&a, 0, &av);
        rt.write_range(&b, 0, &bv);
        // a < b holds for rows 0..50.
        let cand = select_where2(&mut rt, &a, &b, 100, None, |x, y| x < y);
        assert_eq!(cand.len, 50);
        assert_eq!(cand.read(&mut rt), (0..50).collect::<Vec<u32>>());
        // Chained through candidates.
        let narrowed = select_where2(&mut rt, &a, &b, 100, Some(&cand), |x, y| x + y > 100);
        assert!(narrowed.is_empty(), "a+b == 100 everywhere");
    }

    #[test]
    fn selection_charges_filter_cycles() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<i64>(10_000);
        let vals: Vec<i64> = (0..10_000).collect();
        rt.write_range(&col, 0, &vals);
        rt.begin_timing();
        let _ = select_where(&mut rt, &col, 10_000, None, |v| v > 5_000);
        // At least the pure filter cycles must have been charged.
        let min_ns = rt.dos().compute_cpu().cycles(cost::FILTER * 10_000);
        assert!(rt.elapsed() >= min_ns);
    }
}
