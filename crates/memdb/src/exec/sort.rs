//! Ordering operators: top-k selection for `ORDER BY ... LIMIT` plans.

use teleport::Mem;

use super::cost;

/// Sort `(sort_key, payload)` pairs descending by key and keep the top `k`.
/// Ties break on the payload's order for determinism. The comparison work
/// is charged as `n log2 n` cycles; the pairs themselves are operator
/// output already materialized host-side (group-by results are tiny).
pub fn topk_desc_f64<M: Mem, T: Clone>(
    m: &mut M,
    mut items: Vec<(f64, T)>,
    k: usize,
    tiebreak: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Vec<(f64, T)> {
    let n = items.len() as u64;
    if n > 1 {
        m.charge_cycles(cost::SORT * n * (64 - n.leading_zeros() as u64));
    }
    items.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| tiebreak(&a.1, &b.1)));
    items.truncate(k);
    items
}

use teleport::Region;

/// External merge sort of a key column with an aligned payload column —
/// the engine's `ORDER BY` for results too large to sort in one buffer.
///
/// Classic two-phase out-of-place sort, fully metered: (1) generate sorted
/// runs of `run_elems` elements (stream in, sort, stream out); (2) k-way
/// merge the runs into fresh output columns, reading each run in blocks.
/// Returns the sorted `(keys, payload)` columns.
pub fn external_sort_by_key<M: Mem>(
    m: &mut M,
    keys: &Region<i64>,
    payload: &Region<u32>,
    n: usize,
    run_elems: usize,
) -> (Region<i64>, Region<u32>) {
    assert!(run_elems >= 2, "runs need at least two elements");
    let out_k = m.alloc_region::<i64>(n.max(1));
    let out_p = m.alloc_region::<u32>(n.max(1));
    if n == 0 {
        return (out_k, out_p);
    }

    // Phase 1: sorted runs, written to scratch columns.
    let scratch_k = m.alloc_region::<i64>(n);
    let scratch_p = m.alloc_region::<u32>(n);
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
    let mut base = 0usize;
    let (mut kbuf, mut pbuf): (Vec<i64>, Vec<u32>) = (Vec::new(), Vec::new());
    while base < n {
        let take = run_elems.min(n - base);
        kbuf.clear();
        pbuf.clear();
        m.read_range(keys, base, take, &mut kbuf);
        m.read_range(payload, base, take, &mut pbuf);
        let mut idx: Vec<usize> = (0..take).collect();
        idx.sort_by_key(|&i| (kbuf[i], pbuf[i]));
        let sk: Vec<i64> = idx.iter().map(|&i| kbuf[i]).collect();
        let sp: Vec<u32> = idx.iter().map(|&i| pbuf[i]).collect();
        m.write_range(&scratch_k, base, &sk);
        m.write_range(&scratch_p, base, &sp);
        m.charge_cycles(cost::SORT * take as u64 * (64 - (take as u64).leading_zeros() as u64));
        runs.push((base, take));
        base += take;
    }

    // Phase 2: k-way merge with block-buffered run cursors.
    struct Cursor {
        start: usize,
        len: usize,
        pos: usize, // global position consumed
        kblock: Vec<i64>,
        pblock: Vec<u32>,
        boff: usize, // offset within the block
    }
    let block = (run_elems / 4).max(64);
    let mut cursors: Vec<Cursor> = runs
        .iter()
        .map(|&(start, len)| Cursor {
            start,
            len,
            pos: 0,
            kblock: Vec::new(),
            pblock: Vec::new(),
            boff: 0,
        })
        .collect();
    let mut out_kbuf: Vec<i64> = Vec::with_capacity(block);
    let mut out_pbuf: Vec<u32> = Vec::with_capacity(block);
    let mut written = 0usize;
    loop {
        // Refill exhausted cursors.
        for c in &mut cursors {
            if c.boff == c.kblock.len() && c.pos < c.len {
                let take = block.min(c.len - c.pos);
                c.kblock.clear();
                c.pblock.clear();
                m.read_range(&scratch_k, c.start + c.pos, take, &mut c.kblock);
                m.read_range(&scratch_p, c.start + c.pos, take, &mut c.pblock);
                c.boff = 0;
            }
        }
        // Pick the smallest head.
        let next = cursors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.boff < c.kblock.len())
            .min_by_key(|(i, c)| (c.kblock[c.boff], c.pblock[c.boff], *i))
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        let c = &mut cursors[i];
        out_kbuf.push(c.kblock[c.boff]);
        out_pbuf.push(c.pblock[c.boff]);
        c.boff += 1;
        c.pos += 1;
        m.charge_cycles(cost::SORT * 2);
        if out_kbuf.len() == block {
            m.write_range(&out_k, written, &out_kbuf);
            m.write_range(&out_p, written, &out_pbuf);
            written += out_kbuf.len();
            out_kbuf.clear();
            out_pbuf.clear();
        }
    }
    if !out_kbuf.is_empty() {
        m.write_range(&out_k, written, &out_kbuf);
        m.write_range(&out_p, written, &out_pbuf);
    }
    (out_k, out_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;

    #[test]
    fn keeps_top_k_descending() {
        let mut rt = test_rt();
        let items = vec![(3.0, "c"), (9.0, "a"), (1.0, "d"), (7.0, "b")];
        let top = topk_desc_f64(&mut rt, items, 2, |a, b| a.cmp(b));
        assert_eq!(top, vec![(9.0, "a"), (7.0, "b")]);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut rt = test_rt();
        let items = vec![(5.0, 30u32), (5.0, 10), (5.0, 20)];
        let top = topk_desc_f64(&mut rt, items, 3, |a, b| a.cmp(b));
        assert_eq!(top, vec![(5.0, 10), (5.0, 20), (5.0, 30)]);
    }

    #[test]
    fn short_inputs() {
        let mut rt = test_rt();
        let top = topk_desc_f64(&mut rt, Vec::<(f64, ())>::new(), 5, |_, _| {
            std::cmp::Ordering::Equal
        });
        assert!(top.is_empty());
        let top = topk_desc_f64(&mut rt, vec![(1.0, 9u8)], 5, |a, b| a.cmp(b));
        assert_eq!(top.len(), 1);
    }
}
