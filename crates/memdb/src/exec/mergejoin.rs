//! Merge join over sorted keys.
//!
//! MonetDB picks merge joins when both sides are ordered — in TPC-H,
//! lineitem and orders are both clustered by `orderkey`, so Q9's
//! lineitem ⋈ orders runs as a merge join (it appears as its own bar in the
//! paper's Fig 10 breakdown).

use teleport::{Mem, Region};

use super::cost;

/// Join sorted `outer_keys` (duplicates allowed) against a sorted,
/// unique-key inner column, streaming the inner column sequentially.
/// Returns the matching inner row for each outer position (`None` when the
/// key is absent).
pub fn merge_join<M: Mem>(
    m: &mut M,
    outer_keys: &[i64],
    inner: &Region<i64>,
    inner_n: usize,
) -> Vec<Option<u32>> {
    debug_assert!(
        outer_keys.windows(2).all(|w| w[0] <= w[1]),
        "outer side must be sorted"
    );
    let mut out = Vec::with_capacity(outer_keys.len());
    let mut ibuf: Vec<i64> = Vec::new();
    let chunk = 16_384;
    let mut ibase = 0usize; // first inner index of the current chunk
    let mut ipos = 0usize; // cursor within the chunk
    if inner_n > 0 {
        m.read_range(inner, 0, chunk.min(inner_n), &mut ibuf);
    }
    for &k in outer_keys {
        // Advance the inner cursor while its key is smaller.
        loop {
            if ibase + ipos >= inner_n {
                out.push(None);
                break;
            }
            if ipos >= ibuf.len() {
                ibase += ibuf.len();
                ipos = 0;
                ibuf.clear();
                if ibase < inner_n {
                    m.read_range(inner, ibase, chunk.min(inner_n - ibase), &mut ibuf);
                    continue;
                } else {
                    out.push(None);
                    break;
                }
            }
            let ik = ibuf[ipos];
            m.charge_cycles(cost::MERGE);
            if ik < k {
                ipos += 1;
            } else if ik == k {
                out.push(Some((ibase + ipos) as u32));
                break;
            } else {
                out.push(None);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;
    use teleport::Mem;

    #[test]
    fn joins_sorted_streams_with_duplicates() {
        let mut rt = test_rt();
        let inner = rt.alloc_region::<i64>(5);
        rt.write_range(&inner, 0, &[2i64, 4, 6, 8, 10]);
        let outer = vec![2, 2, 3, 6, 10, 11];
        let joined = merge_join(&mut rt, &outer, &inner, 5);
        assert_eq!(joined, vec![Some(0), Some(0), None, Some(2), Some(4), None]);
    }

    #[test]
    fn empty_sides() {
        let mut rt = test_rt();
        let inner = rt.alloc_region::<i64>(1);
        assert!(merge_join(&mut rt, &[], &inner, 0).is_empty());
        let joined = merge_join(&mut rt, &[1, 2], &inner, 0);
        assert_eq!(joined, vec![None, None]);
    }

    #[test]
    fn crosses_chunk_boundaries() {
        let mut rt = test_rt();
        let n = 40_000usize; // several 16 Ki chunks
        let inner = rt.alloc_region::<i64>(n);
        let keys: Vec<i64> = (0..n as i64).map(|i| i * 2 + 1).collect();
        rt.write_range(&inner, 0, &keys);
        let outer: Vec<i64> = vec![1, 39_999, 60_001, 79_999, 80_000];
        let joined = merge_join(&mut rt, &outer, &inner, n);
        assert_eq!(joined[0], Some(0));
        assert_eq!(joined[1], Some(19_999));
        assert_eq!(joined[2], Some(30_000));
        assert_eq!(joined[3], Some(39_999));
        assert_eq!(joined[4], None);
    }

    #[test]
    fn dense_inner_matches_everything() {
        let mut rt = test_rt();
        let n = 1000usize;
        let inner = rt.alloc_region::<i64>(n);
        let keys: Vec<i64> = (1..=n as i64).collect();
        rt.write_range(&inner, 0, &keys);
        let outer: Vec<i64> = vec![1, 1, 500, 500, 500, 1000];
        let joined = merge_join(&mut rt, &outer, &inner, n);
        assert!(joined.iter().all(|j| j.is_some()));
        assert_eq!(joined[2], Some(499));
    }
}
