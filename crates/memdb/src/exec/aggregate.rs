//! Aggregation: simple folds and hash group-bys over materialized columns.

use std::collections::HashMap;

use teleport::{Mem, Region};

use super::{cost, CandList};

/// `SUM(col)`, optionally restricted to a candidate list.
pub fn sum_f64<M: Mem>(m: &mut M, col: &Region<f64>, n: usize, cand: Option<&CandList>) -> f64 {
    match cand {
        None => {
            let mut acc = 0.0;
            let mut buf: Vec<f64> = Vec::new();
            let chunk = 16_384;
            let mut base = 0usize;
            while base < n {
                let take = chunk.min(n - base);
                buf.clear();
                m.read_range(col, base, take, &mut buf);
                acc += buf.iter().sum::<f64>();
                m.charge_cycles(cost::AGG * take as u64);
                base += take;
            }
            acc
        }
        Some(c) => {
            let rows = c.read(m);
            let mut acc = 0.0;
            for &r in &rows {
                acc += m.get(col, r as usize, ddc_os::Pattern::Rand);
            }
            m.charge_cycles(cost::AGG * rows.len() as u64);
            acc
        }
    }
}

/// `COUNT(*)` over a candidate list is free metadata; over a column it is
/// the column length. Provided for plan completeness.
pub fn count(cand: Option<&CandList>, n: usize) -> usize {
    cand.map(|c| c.len).unwrap_or(n)
}

/// `MIN(col)` / `MAX(col)` over a full column.
pub fn min_max_f64<M: Mem>(m: &mut M, col: &Region<f64>, n: usize) -> Option<(f64, f64)> {
    if n == 0 {
        return None;
    }
    let mut buf: Vec<f64> = Vec::new();
    m.read_range(col, 0, n, &mut buf);
    m.charge_cycles(cost::AGG * n as u64);
    let mut lo = buf[0];
    let mut hi = buf[0];
    for &v in &buf[1..] {
        if v < lo {
            lo = v;
        }
        if v > hi {
            hi = v;
        }
    }
    Some((lo, hi))
}

/// Hash group-by: `SELECT key, SUM(val) GROUP BY key` over two aligned
/// materialized columns. Returns groups sorted by key (deterministic).
pub fn group_sum_by_key<M: Mem>(
    m: &mut M,
    keys: &Region<i64>,
    vals: &Region<f64>,
    n: usize,
) -> Vec<(i64, f64)> {
    let mut kbuf: Vec<i64> = Vec::new();
    let mut vbuf: Vec<f64> = Vec::new();
    m.read_range(keys, 0, n, &mut kbuf);
    m.read_range(vals, 0, n, &mut vbuf);
    m.charge_cycles(cost::GROUP * n as u64);
    let mut groups: HashMap<i64, f64> = HashMap::new();
    for i in 0..n {
        *groups.entry(kbuf[i]).or_insert(0.0) += vbuf[i];
    }
    let mut out: Vec<(i64, f64)> = groups.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Q9's grouping: `GROUP BY n_name, YEAR(o_orderdate)` with `SUM(amount)`.
/// Takes three aligned materialized columns; the year extraction is real
/// calendar math charged per tuple. Returns `((nationkey, year), sum)`
/// sorted by nation then year descending (the query's output order).
pub fn group_sum_nation_year<M: Mem>(
    m: &mut M,
    nationkey: &Region<i64>,
    orderdate: &Region<i32>,
    amount: &Region<f64>,
    n: usize,
) -> Vec<((i64, i32), f64)> {
    let mut nk: Vec<i64> = Vec::new();
    let mut od: Vec<i32> = Vec::new();
    let mut am: Vec<f64> = Vec::new();
    m.read_range(nationkey, 0, n, &mut nk);
    m.read_range(orderdate, 0, n, &mut od);
    m.read_range(amount, 0, n, &mut am);
    m.charge_cycles((cost::GROUP + 10) * n as u64); // +10 for year extraction
    let mut groups: HashMap<(i64, i32), f64> = HashMap::new();
    for i in 0..n {
        let year = crate::types::Date(od[i]).year();
        *groups.entry((nk[i], year)).or_insert(0.0) += am[i];
    }
    let mut out: Vec<((i64, i32), f64)> = groups.into_iter().collect();
    out.sort_unstable_by_key(|&((nk, year), _)| (nk, -year));
    out
}

/// One output row of TPC-H Q1's pricing summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Q1Group {
    pub returnflag: u8,
    pub linestatus: u8,
    pub sum_qty: f64,
    pub sum_base_price: f64,
    pub sum_disc_price: f64,
    pub sum_charge: f64,
    pub avg_qty: f64,
    pub avg_price: f64,
    pub avg_disc: f64,
    pub count: u64,
}

/// TPC-H Q1's grouped multi-aggregate over six aligned columns, restricted
/// to a candidate list. Groups by `(returnflag, linestatus)` — a handful of
/// groups over millions of tuples, the classic streaming aggregation.
#[allow(clippy::too_many_arguments)]
pub fn group_q1<M: Mem>(
    m: &mut M,
    returnflag: &Region<u8>,
    linestatus: &Region<u8>,
    quantity: &Region<f64>,
    price: &Region<f64>,
    discount: &Region<f64>,
    tax: &Region<f64>,
    rows: &[u32],
) -> Vec<Q1Group> {
    #[derive(Default, Clone)]
    struct Acc {
        qty: f64,
        base: f64,
        disc_price: f64,
        charge: f64,
        disc: f64,
        count: u64,
    }
    let mut groups: HashMap<(u8, u8), Acc> = HashMap::new();
    for &r in rows {
        let i = r as usize;
        let flag = m.get(returnflag, i, ddc_os::Pattern::Rand);
        let status = m.get(linestatus, i, ddc_os::Pattern::Rand);
        let q = m.get(quantity, i, ddc_os::Pattern::Rand);
        let p = m.get(price, i, ddc_os::Pattern::Rand);
        let d = m.get(discount, i, ddc_os::Pattern::Rand);
        let t = m.get(tax, i, ddc_os::Pattern::Rand);
        let acc = groups.entry((flag, status)).or_default();
        acc.qty += q;
        acc.base += p;
        acc.disc_price += p * (1.0 - d);
        acc.charge += p * (1.0 - d) * (1.0 + t);
        acc.disc += d;
        acc.count += 1;
    }
    m.charge_cycles((cost::GROUP + 4 * cost::AGG) * rows.len() as u64);
    let mut out: Vec<Q1Group> = groups
        .into_iter()
        .map(|((flag, status), a)| Q1Group {
            returnflag: flag,
            linestatus: status,
            sum_qty: a.qty,
            sum_base_price: a.base,
            sum_disc_price: a.disc_price,
            sum_charge: a.charge,
            avg_qty: a.qty / a.count as f64,
            avg_price: a.base / a.count as f64,
            avg_disc: a.disc / a.count as f64,
            count: a.count,
        })
        .collect();
    out.sort_by_key(|g| (g.returnflag, g.linestatus));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_rt;
    use crate::types::Date;
    use teleport::Mem;

    #[test]
    fn sum_full_and_with_candidates() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<f64>(1000);
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        rt.write_range(&col, 0, &vals);
        assert_eq!(sum_f64(&mut rt, &col, 1000, None), 499_500.0);

        let cand = CandList::materialize(&mut rt, &[1, 2, 3]);
        assert_eq!(sum_f64(&mut rt, &col, 1000, Some(&cand)), 6.0);
    }

    #[test]
    fn group_sum_sorted_by_key() {
        let mut rt = test_rt();
        let keys = rt.alloc_region::<i64>(6);
        let vals = rt.alloc_region::<f64>(6);
        rt.write_range(&keys, 0, &[5i64, 3, 5, 3, 9, 5]);
        rt.write_range(&vals, 0, &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let groups = group_sum_by_key(&mut rt, &keys, &vals, 6);
        assert_eq!(groups, vec![(3, 6.0), (5, 10.0), (9, 5.0)]);
    }

    #[test]
    fn nation_year_grouping_extracts_years() {
        let mut rt = test_rt();
        let nk = rt.alloc_region::<i64>(4);
        let od = rt.alloc_region::<i32>(4);
        let am = rt.alloc_region::<f64>(4);
        rt.write_range(&nk, 0, &[1i64, 1, 2, 1]);
        rt.write_range(
            &od,
            0,
            &[
                Date::from_ymd(1995, 3, 1).raw(),
                Date::from_ymd(1995, 9, 9).raw(),
                Date::from_ymd(1995, 1, 1).raw(),
                Date::from_ymd(1996, 1, 1).raw(),
            ],
        );
        rt.write_range(&am, 0, &[10.0f64, 20.0, 30.0, 40.0]);
        let groups = group_sum_nation_year(&mut rt, &nk, &od, &am, 4);
        // Nation asc, year desc.
        assert_eq!(
            groups,
            vec![((1, 1996), 40.0), ((1, 1995), 30.0), ((2, 1995), 30.0),]
        );
    }

    #[test]
    fn q1_grouping_aggregates_all_measures() {
        let mut rt = test_rt();
        let flag = rt.alloc_region::<u8>(4);
        let status = rt.alloc_region::<u8>(4);
        let qty = rt.alloc_region::<f64>(4);
        let price = rt.alloc_region::<f64>(4);
        let disc = rt.alloc_region::<f64>(4);
        let tax = rt.alloc_region::<f64>(4);
        rt.write_range(&flag, 0, b"AARA");
        rt.write_range(&status, 0, b"FFOF");
        rt.write_range(&qty, 0, &[10.0f64, 20.0, 5.0, 30.0]);
        rt.write_range(&price, 0, &[100.0f64, 200.0, 50.0, 300.0]);
        rt.write_range(&disc, 0, &[0.1f64, 0.0, 0.5, 0.1]);
        rt.write_range(&tax, 0, &[0.0f64, 0.1, 0.0, 0.0]);
        let groups = group_q1(
            &mut rt,
            &flag,
            &status,
            &qty,
            &price,
            &disc,
            &tax,
            &[0, 1, 2, 3],
        );
        assert_eq!(groups.len(), 2);
        let af = &groups[0];
        assert_eq!((af.returnflag, af.linestatus), (b'A', b'F'));
        assert_eq!(af.count, 3);
        assert_eq!(af.sum_qty, 60.0);
        assert_eq!(af.sum_base_price, 600.0);
        assert!((af.sum_disc_price - (90.0 + 200.0 + 270.0)).abs() < 1e-9);
        assert!((af.sum_charge - (90.0 + 220.0 + 270.0)).abs() < 1e-9);
        assert!((af.avg_qty - 20.0).abs() < 1e-9);
        let ro = &groups[1];
        assert_eq!((ro.returnflag, ro.linestatus), (b'R', b'O'));
        assert_eq!(ro.count, 1);
    }

    #[test]
    fn min_max_and_count() {
        let mut rt = test_rt();
        let col = rt.alloc_region::<f64>(5);
        rt.write_range(&col, 0, &[3.0f64, -1.0, 7.5, 0.0, 2.0]);
        assert_eq!(min_max_f64(&mut rt, &col, 5), Some((-1.0, 7.5)));
        assert_eq!(min_max_f64(&mut rt, &col, 0), None);
        let cand = CandList::materialize(&mut rt, &[0, 4]);
        assert_eq!(count(Some(&cand), 5), 2);
        assert_eq!(count(None, 5), 5);
    }
}
