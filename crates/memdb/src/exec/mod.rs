//! Physical operators of the columnar engine.
//!
//! MonetDB-style operator-at-a-time execution: every operator consumes
//! whole columns (or candidate lists from previous selections), materializes
//! its result, and hands it to the next operator. All data movement runs
//! through the [`Mem`] trait, so each operator's memory behavior — the
//! thing the paper's Fig 10 per-operator breakdown measures — is metered
//! regardless of which pool it executes in.

pub mod aggregate;
pub mod expr;
pub mod hashjoin;
pub mod mergejoin;
pub mod project;
pub mod select;
pub mod sort;

use teleport::{Mem, Region};

/// Per-tuple CPU cost constants (cycles), in line with vectorized columnar
/// engines: cheap predicates and arithmetic, pricier hashing.
pub mod cost {
    /// Evaluate a selection predicate on one tuple.
    pub const FILTER: u64 = 2;
    /// Gather one value through a candidate list.
    pub const GATHER: u64 = 3;
    /// Fold one value into a simple aggregate.
    pub const AGG: u64 = 1;
    /// Hash-aggregate one tuple into a group table.
    pub const GROUP: u64 = 6;
    /// Insert one tuple into a join hash table.
    pub const HASH_BUILD: u64 = 16;
    /// Probe the hash table with one key (excluding the memory reads,
    /// which are charged by the access layer).
    pub const HASH_PROBE: u64 = 10;
    /// One step of a merge join.
    pub const MERGE: u64 = 3;
    /// Evaluate one arithmetic expression.
    pub const EXPR: u64 = 2;
    /// Per-comparison sorting cost.
    pub const SORT: u64 = 3;
}

/// A materialized candidate list (MonetDB's `candlist`): row indices that
/// survived previous selections, stored in simulated memory like any other
/// intermediate.
#[derive(Debug, Clone, Copy)]
pub struct CandList {
    pub rows: Region<u32>,
    pub len: usize,
}

impl CandList {
    /// Materialize `rows` into simulated memory.
    pub fn materialize<M: Mem>(m: &mut M, rows: &[u32]) -> CandList {
        let region = m.alloc_region::<u32>(rows.len().max(1));
        if !rows.is_empty() {
            m.write_range(&region, 0, rows);
        }
        CandList {
            rows: region,
            len: rows.len(),
        }
    }

    /// Read the list back (sequential scan of the intermediate).
    pub fn read<M: Mem>(&self, m: &mut M) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        m.read_range(&self.rows, 0, self.len, &mut out);
        out
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use ddc_sim::DdcConfig;
    use teleport::Runtime;

    /// A roomy DDC runtime for operator unit tests.
    pub fn test_rt() -> Runtime {
        Runtime::teleport(DdcConfig {
            compute_cache_bytes: 1 << 20,
            memory_pool_bytes: 256 << 20,
            ..Default::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::test_rt;

    #[test]
    fn candlist_roundtrip() {
        let mut rt = test_rt();
        let rows = vec![3u32, 5, 8, 13, 21];
        let cand = CandList::materialize(&mut rt, &rows);
        assert_eq!(cand.len, 5);
        assert_eq!(cand.read(&mut rt), rows);
    }

    #[test]
    fn empty_candlist() {
        let mut rt = test_rt();
        let cand = CandList::materialize(&mut rt, &[]);
        assert!(cand.is_empty());
        assert!(cand.read(&mut rt).is_empty());
    }
}
