//! # memdb — a columnar in-memory DBMS on disaggregated memory
//!
//! The MonetDB stand-in of the TELEPORT reproduction (paper §5.1): a
//! columnar engine with operator-at-a-time execution whose every memory
//! access is metered by the disaggregated OS, and whose operators can be
//! selectively pushed to the memory pool with a single wrapped call.
//!
//! - [`types`] — dates, dictionaries, packed part names;
//! - [`tpch`] — a schema-faithful TPC-H generator;
//! - [`db`] — loading columns into simulated (remote) memory;
//! - [`exec`] — selection, projection, aggregation, hash/merge join,
//!   expressions, sort;
//! - [`queries`] — `Q_filter`, Q3, Q6, Q9 as instrumented physical plans;
//! - [`report`] — per-operator measurements, the §7.4 memory-intensity
//!   metric, and [`report::PushdownPlan`] (None / Top-k / All);
//! - [`oracle`] — host-memory reference evaluation for validation;
//! - [`dist`] — the distributed-DBMS cost model behind Fig 1b's
//!   SparkSQL/Vertica reference points.

pub mod db;
pub mod dist;
pub mod exec;
pub mod oracle;
pub mod queries;
pub mod queries_ext;
pub mod report;
pub mod tpch;
pub mod types;

pub use db::Database;
pub use queries::{q1, q3, q6, q9, q_filter, Q3Row, Q9Row, QueryParams};
pub use queries_ext::{q10, q12, q4, q5, ExtParams, Q10Row};
pub use report::{OpReport, PushdownPlan, QueryReport};
pub use tpch::TpchData;
pub use types::{Date, Dictionary};
