//! Loading the generated TPC-H data into simulated (disaggregated) memory.
//!
//! Columns become typed [`Region`]s in the process address space — the
//! MonetDB buffer pool living in the memory pool, with the compute-local
//! cache in front of it. Dictionaries and the 25-row nation table stay
//! host-side as catalog metadata, as a columnar DBMS would keep them hot.

use teleport::{Mem, Region};

use crate::tpch::TpchData;
use crate::types::Dictionary;

/// Lineitem columns in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct LineitemT {
    pub n: usize,
    pub orderkey: Region<i64>,
    pub partkey: Region<i64>,
    pub suppkey: Region<i64>,
    pub quantity: Region<f64>,
    pub extendedprice: Region<f64>,
    pub discount: Region<f64>,
    pub tax: Region<f64>,
    pub returnflag: Region<u8>,
    pub linestatus: Region<u8>,
    pub shipdate: Region<i32>,
    pub commitdate: Region<i32>,
    pub receiptdate: Region<i32>,
    pub shipmode: Region<u8>,
}

#[derive(Debug, Clone, Copy)]
pub struct OrdersT {
    pub n: usize,
    pub orderkey: Region<i64>,
    pub custkey: Region<i64>,
    pub totalprice: Region<f64>,
    pub orderdate: Region<i32>,
    pub orderpriority: Region<u8>,
    pub shippriority: Region<i64>,
}

#[derive(Debug, Clone, Copy)]
pub struct PartT {
    pub n: usize,
    pub partkey: Region<i64>,
    pub name: Region<u64>,
    pub brand: Region<u8>,
    pub size: Region<i64>,
    pub retailprice: Region<f64>,
}

#[derive(Debug, Clone, Copy)]
pub struct SupplierT {
    pub n: usize,
    pub suppkey: Region<i64>,
    pub nationkey: Region<i64>,
    pub acctbal: Region<f64>,
}

#[derive(Debug, Clone, Copy)]
pub struct PartSuppT {
    pub n: usize,
    pub partkey: Region<i64>,
    pub suppkey: Region<i64>,
    pub availqty: Region<i64>,
    pub supplycost: Region<f64>,
}

#[derive(Debug, Clone, Copy)]
pub struct CustomerT {
    pub n: usize,
    pub custkey: Region<i64>,
    pub nationkey: Region<i64>,
    pub mktsegment: Region<u8>,
    pub acctbal: Region<f64>,
}

/// The loaded database: regions in simulated memory + host-side catalog.
#[derive(Debug, Clone)]
pub struct Database {
    pub li: LineitemT,
    pub ord: OrdersT,
    pub part: PartT,
    pub supp: SupplierT,
    pub ps: PartSuppT,
    pub cust: CustomerT,
    /// Nation names by nationkey (25 rows; catalog metadata).
    pub nation_name: Vec<String>,
    /// Region key of each nation (catalog metadata).
    pub nation_region: Vec<i64>,
    /// Region names by regionkey.
    pub region_name: Vec<String>,
    pub colors: Dictionary,
    pub segments: Dictionary,
    pub shipmodes: Dictionary,
    pub priorities: Dictionary,
}

fn load_col<M: Mem, T: teleport::Scalar>(m: &mut M, vals: &[T]) -> Region<T> {
    let r = m.alloc_region::<T>(vals.len().max(1));
    if !vals.is_empty() {
        m.write_range(&r, 0, vals);
    }
    r
}

impl Database {
    /// Load the generated data into `m`'s address space. Typically followed
    /// by `drop_cache()` + `begin_timing()` so queries start cold and at
    /// t=0.
    pub fn load<M: Mem>(m: &mut M, data: &TpchData) -> Database {
        let li = LineitemT {
            n: data.lineitem.len(),
            orderkey: load_col(m, &data.lineitem.orderkey),
            partkey: load_col(m, &data.lineitem.partkey),
            suppkey: load_col(m, &data.lineitem.suppkey),
            quantity: load_col(m, &data.lineitem.quantity),
            extendedprice: load_col(m, &data.lineitem.extendedprice),
            discount: load_col(m, &data.lineitem.discount),
            tax: load_col(m, &data.lineitem.tax),
            returnflag: load_col(m, &data.lineitem.returnflag),
            linestatus: load_col(m, &data.lineitem.linestatus),
            shipdate: load_col(m, &data.lineitem.shipdate),
            commitdate: load_col(m, &data.lineitem.commitdate),
            receiptdate: load_col(m, &data.lineitem.receiptdate),
            shipmode: load_col(m, &data.lineitem.shipmode),
        };
        let ord = OrdersT {
            n: data.orders.len(),
            orderkey: load_col(m, &data.orders.orderkey),
            custkey: load_col(m, &data.orders.custkey),
            totalprice: load_col(m, &data.orders.totalprice),
            orderdate: load_col(m, &data.orders.orderdate),
            orderpriority: load_col(m, &data.orders.orderpriority),
            shippriority: load_col(m, &data.orders.shippriority),
        };
        let part = PartT {
            n: data.part.len(),
            partkey: load_col(m, &data.part.partkey),
            name: load_col(m, &data.part.name),
            brand: load_col(m, &data.part.brand),
            size: load_col(m, &data.part.size),
            retailprice: load_col(m, &data.part.retailprice),
        };
        let supp = SupplierT {
            n: data.supplier.len(),
            suppkey: load_col(m, &data.supplier.suppkey),
            nationkey: load_col(m, &data.supplier.nationkey),
            acctbal: load_col(m, &data.supplier.acctbal),
        };
        let ps = PartSuppT {
            n: data.partsupp.len(),
            partkey: load_col(m, &data.partsupp.partkey),
            suppkey: load_col(m, &data.partsupp.suppkey),
            availqty: load_col(m, &data.partsupp.availqty),
            supplycost: load_col(m, &data.partsupp.supplycost),
        };
        let cust = CustomerT {
            n: data.customer.len(),
            custkey: load_col(m, &data.customer.custkey),
            nationkey: load_col(m, &data.customer.nationkey),
            mktsegment: load_col(m, &data.customer.mktsegment),
            acctbal: load_col(m, &data.customer.acctbal),
        };
        Database {
            li,
            ord,
            part,
            supp,
            ps,
            cust,
            nation_name: data.nation.name.clone(),
            nation_region: data.nation.regionkey.clone(),
            region_name: crate::tpch::REGIONS.iter().map(|s| s.to_string()).collect(),
            colors: data.colors.clone(),
            segments: data.segments.clone(),
            shipmodes: data.shipmodes.clone(),
            priorities: data.priorities.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_os::Pattern;
    use ddc_sim::DdcConfig;
    use teleport::Runtime;

    #[test]
    fn load_roundtrips_values() {
        let data = TpchData::generate(0.001, 11);
        let mut rt = Runtime::teleport(DdcConfig::default());
        let db = Database::load(&mut rt, &data);
        assert_eq!(db.li.n, data.lineitem.len());
        // Spot-check a few values through the metered path.
        for &i in &[0usize, db.li.n / 2, db.li.n - 1] {
            assert_eq!(
                rt.get(&db.li.orderkey, i, Pattern::Rand),
                data.lineitem.orderkey[i]
            );
            assert_eq!(
                rt.get(&db.li.extendedprice, i, Pattern::Rand),
                data.lineitem.extendedprice[i]
            );
            assert_eq!(
                rt.get(&db.li.shipdate, i, Pattern::Rand),
                data.lineitem.shipdate[i]
            );
            assert_eq!(
                rt.get(&db.li.returnflag, i, Pattern::Rand),
                data.lineitem.returnflag[i]
            );
        }
        assert_eq!(rt.get(&db.part.name, 3, Pattern::Rand), data.part.name[3]);
        assert_eq!(db.nation_name.len(), 25);
    }
}
