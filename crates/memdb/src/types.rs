//! Value types of the columnar engine: calendar dates and dictionary-coded
//! strings.

use std::fmt;

/// A calendar date stored as days since 1970-01-01 (can be negative).
/// Columns store the raw `i32`; this wrapper provides exact civil-calendar
/// conversions (Howard Hinnant's algorithm), which the engine needs for
/// `YEAR(o_orderdate)` grouping in TPC-H Q9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a civil calendar date. Panics on out-of-range month.
    ///
    /// # Examples
    ///
    /// ```
    /// use memdb::Date;
    /// let d = Date::from_ymd(1995, 3, 15);
    /// assert_eq!(d.to_ymd(), (1995, 3, 15));
    /// assert_eq!(d.year(), 1995);
    /// assert!(d < Date::from_ymd(1995, 3, 16));
    /// ```
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Date {
        assert!((1..=12).contains(&m), "month {m} out of range");
        assert!((1..=31).contains(&d), "day {d} out of range");
        // days_from_civil (proleptic Gregorian).
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((m + 9) % 12) as i64; // [0, 11], Mar=0
        let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date((era as i64 * 146_097 + doe - 719_468) as i32)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let y = if m <= 2 { y + 1 } else { y };
        (y as i32, m, d)
    }

    /// The calendar year, as TPC-H's `EXTRACT(YEAR FROM ...)`.
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// The date `n` days later.
    pub fn plus_days(self, n: i32) -> Date {
        Date(self.0 + n)
    }

    pub fn raw(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A small string dictionary: columns store `u8` codes, the dictionary maps
/// codes back to strings. Dictionaries are catalog metadata (tiny; resident
/// compute-side), exactly as a columnar DBMS keeps them hot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    entries: Vec<String>,
}

impl Dictionary {
    pub fn new<S: Into<String>>(entries: impl IntoIterator<Item = S>) -> Self {
        let entries: Vec<String> = entries.into_iter().map(Into::into).collect();
        assert!(entries.len() <= 256, "u8 dictionary overflow");
        Dictionary { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn decode(&self, code: u8) -> &str {
        &self.entries[code as usize]
    }

    pub fn code_of(&self, s: &str) -> Option<u8> {
        self.entries.iter().position(|e| e == s).map(|i| i as u8)
    }
}

/// TPC-H `p_name` is a concatenation of five words from a color list; Q9
/// filters with `p_name LIKE '%green%'`. We store a part name as five color
/// codes packed into a `u64`, so the LIKE predicate is "any of the five
/// bytes equals the color's code" — the same per-tuple scan work at a
/// fraction of the storage.
pub const PART_NAME_WORDS: usize = 5;

/// Pack five color codes into a u64.
pub fn pack_name(words: [u8; PART_NAME_WORDS]) -> u64 {
    words
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &w)| acc | (w as u64) << (8 * i))
}

/// Does the packed name contain `code`? (`LIKE '%word%'`.)
#[inline]
pub fn name_contains(packed: u64, code: u8) -> bool {
    (0..PART_NAME_WORDS).any(|i| ((packed >> (8 * i)) & 0xFF) as u8 == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrips_epoch_and_tpch_range() {
        assert_eq!(Date::from_ymd(1970, 1, 1).raw(), 0);
        assert_eq!(Date(0).to_ymd(), (1970, 1, 1));
        for &(y, m, d) in &[
            (1992, 1, 1),
            (1995, 3, 15),
            (1998, 8, 2),
            (2000, 2, 29), // leap day
            (1900, 3, 1),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.to_ymd(), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn date_ordering_matches_calendar() {
        let a = Date::from_ymd(1994, 12, 31);
        let b = Date::from_ymd(1995, 1, 1);
        assert!(a < b);
        assert_eq!(a.plus_days(1), b);
        assert_eq!(b.year(), 1995);
    }

    #[test]
    fn date_display() {
        assert_eq!(Date::from_ymd(1995, 3, 5).to_string(), "1995-03-05");
    }

    #[test]
    fn dictionary_roundtrip() {
        let d = Dictionary::new(["BUILDING", "AUTOMOBILE", "MACHINERY"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.code_of("MACHINERY"), Some(2));
        assert_eq!(d.decode(0), "BUILDING");
        assert_eq!(d.code_of("missing"), None);
    }

    #[test]
    fn packed_names_support_like() {
        let name = pack_name([3, 10, 7, 3, 90]);
        assert!(name_contains(name, 10));
        assert!(name_contains(name, 90));
        assert!(!name_contains(name, 11));
    }

    #[test]
    fn leap_year_math() {
        // 1996 is a leap year, 1900 is not, 2000 is.
        assert_eq!(
            Date::from_ymd(1996, 3, 1).raw() - Date::from_ymd(1996, 2, 1).raw(),
            29
        );
        assert_eq!(
            Date::from_ymd(1900, 3, 1).raw() - Date::from_ymd(1900, 2, 1).raw(),
            28
        );
        assert_eq!(
            Date::from_ymd(2000, 3, 1).raw() - Date::from_ymd(2000, 2, 1).raw(),
            29
        );
    }
}
