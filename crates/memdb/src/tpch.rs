//! A TPC-H data generator (schema-faithful, scale-factor parameterized).
//!
//! Generates the eight TPC-H relations as plain Rust column vectors, which
//! are then (a) loaded into simulated disaggregated memory by
//! [`crate::db::Database::load`] and (b) evaluated directly by the oracle
//! (`crate::oracle`) to validate every query result.
//!
//! Cardinalities follow the spec: at scale factor 1 — 1.5 M orders, ~6 M
//! lineitems, 200 K parts, 10 K suppliers, 800 K partsupps, 150 K
//! customers. The paper runs SF 50–200; this reproduction scales down while
//! keeping the compute-cache : working-set ratio, which is what governs
//! paging behavior.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{pack_name, Date, Dictionary, PART_NAME_WORDS};

/// TPC-H's color vocabulary for `p_name` (Q9 filters `LIKE '%green%'`,
/// matching ~5% of parts with five words drawn from this list).
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

pub const MKT_SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

pub const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

#[derive(Debug, Clone, Default)]
pub struct Lineitem {
    pub orderkey: Vec<i64>, // sorted ascending (clustered, as dbgen emits)
    pub partkey: Vec<i64>,
    pub suppkey: Vec<i64>,
    pub linenumber: Vec<i64>,
    pub quantity: Vec<f64>,
    pub extendedprice: Vec<f64>,
    pub discount: Vec<f64>,
    pub tax: Vec<f64>,
    pub returnflag: Vec<u8>,
    pub linestatus: Vec<u8>,
    pub shipdate: Vec<i32>,
    pub commitdate: Vec<i32>,
    pub receiptdate: Vec<i32>,
    pub shipmode: Vec<u8>,
}

impl Lineitem {
    pub fn len(&self) -> usize {
        self.orderkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.orderkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct Orders {
    pub orderkey: Vec<i64>, // sorted ascending
    pub custkey: Vec<i64>,
    pub orderstatus: Vec<u8>,
    pub totalprice: Vec<f64>,
    pub orderdate: Vec<i32>,
    pub orderpriority: Vec<u8>,
    pub shippriority: Vec<i64>,
}

impl Orders {
    pub fn len(&self) -> usize {
        self.orderkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.orderkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct Part {
    pub partkey: Vec<i64>, // 1..=n, dense
    pub name: Vec<u64>,    // five packed color codes
    pub brand: Vec<u8>,
    pub size: Vec<i64>,
    pub container: Vec<u8>,
    pub retailprice: Vec<f64>,
}

impl Part {
    pub fn len(&self) -> usize {
        self.partkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.partkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct Supplier {
    pub suppkey: Vec<i64>, // 1..=n, dense
    pub nationkey: Vec<i64>,
    pub acctbal: Vec<f64>,
}

impl Supplier {
    pub fn len(&self) -> usize {
        self.suppkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.suppkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct PartSupp {
    /// Sorted by (partkey, suppkey): four suppliers per part.
    pub partkey: Vec<i64>,
    pub suppkey: Vec<i64>,
    pub availqty: Vec<i64>,
    pub supplycost: Vec<f64>,
}

impl PartSupp {
    pub fn len(&self) -> usize {
        self.partkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.partkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct Customer {
    pub custkey: Vec<i64>, // 1..=n, dense
    pub nationkey: Vec<i64>,
    pub mktsegment: Vec<u8>,
    pub acctbal: Vec<f64>,
}

impl Customer {
    pub fn len(&self) -> usize {
        self.custkey.len()
    }

    pub fn is_empty(&self) -> bool {
        self.custkey.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
pub struct Nation {
    pub nationkey: Vec<i64>,
    pub name: Vec<String>,
    pub regionkey: Vec<i64>,
}

/// The generated database (plain host memory; load it into a simulated
/// platform with [`crate::db::Database::load`]).
#[derive(Debug, Clone)]
pub struct TpchData {
    pub sf: f64,
    pub lineitem: Lineitem,
    pub orders: Orders,
    pub part: Part,
    pub supplier: Supplier,
    pub partsupp: PartSupp,
    pub customer: Customer,
    pub nation: Nation,
    pub colors: Dictionary,
    pub segments: Dictionary,
    pub shipmodes: Dictionary,
    pub priorities: Dictionary,
}

/// Number of suppliers listed per part (TPC-H fixes this at 4).
pub const SUPPLIERS_PER_PART: usize = 4;

impl TpchData {
    /// Generate a database at scale factor `sf` with a fixed seed.
    /// Identical `(sf, seed)` always produce identical data.
    pub fn generate(sf: f64, seed: u64) -> TpchData {
        assert!(sf > 0.0, "scale factor must be positive");
        let mut rng = StdRng::seed_from_u64(seed);

        let n_part = ((200_000.0 * sf) as usize).max(64);
        let n_supp = ((10_000.0 * sf) as usize).max(SUPPLIERS_PER_PART * 2);
        let n_cust = ((150_000.0 * sf) as usize).max(32);
        let n_orders = ((1_500_000.0 * sf) as usize).max(64);

        let start = Date::from_ymd(1992, 1, 1).raw();
        let end = Date::from_ymd(1998, 8, 2).raw();

        // --- part ---
        let mut part = Part::default();
        for pk in 1..=n_part as i64 {
            part.partkey.push(pk);
            let mut words = [0u8; PART_NAME_WORDS];
            for w in &mut words {
                *w = rng.random_range(0..COLORS.len() as u32) as u8;
            }
            part.name.push(pack_name(words));
            part.brand.push(rng.random_range(0..25));
            part.size.push(rng.random_range(1..=50));
            part.container.push(rng.random_range(0..40));
            part.retailprice
                .push((90_000 + (pk % 200_001) * 100 % 20_001) as f64 / 100.0);
        }

        // --- supplier ---
        let mut supplier = Supplier::default();
        for sk in 1..=n_supp as i64 {
            supplier.suppkey.push(sk);
            supplier.nationkey.push(rng.random_range(0..25));
            supplier
                .acctbal
                .push(rng.random_range(-99_999..=999_999) as f64 / 100.0);
        }

        // --- partsupp: the spec's four suppliers per part ---
        let mut partsupp = PartSupp::default();
        for pk in 1..=n_part as i64 {
            for i in 0..SUPPLIERS_PER_PART as i64 {
                let sk = supplier_for_part(pk, i, n_supp);
                partsupp.partkey.push(pk);
                partsupp.suppkey.push(sk);
                partsupp.availqty.push(rng.random_range(1..=9999));
                partsupp
                    .supplycost
                    .push(rng.random_range(100..=100_000) as f64 / 100.0);
            }
        }

        // --- customer ---
        let mut customer = Customer::default();
        for ck in 1..=n_cust as i64 {
            customer.custkey.push(ck);
            customer.nationkey.push(rng.random_range(0..25));
            customer
                .mktsegment
                .push(rng.random_range(0..MKT_SEGMENTS.len() as u32) as u8);
            customer
                .acctbal
                .push(rng.random_range(-99_999..=999_999) as f64 / 100.0);
        }

        // --- orders + lineitem (clustered by orderkey) ---
        let mut orders = Orders::default();
        let mut li = Lineitem::default();
        for ok in 1..=n_orders as i64 {
            let odate = rng.random_range(start..end - 151);
            orders.orderkey.push(ok);
            orders.custkey.push(rng.random_range(1..=n_cust as i64));
            orders.orderdate.push(odate);
            orders
                .orderpriority
                .push(rng.random_range(0..PRIORITIES.len() as u32) as u8);
            orders.shippriority.push(0);

            let lines = rng.random_range(1..=7);
            let mut total = 0.0;
            for ln in 1..=lines {
                let pk = rng.random_range(1..=n_part as i64);
                let which = rng.random_range(0..SUPPLIERS_PER_PART as i64);
                let sk = supplier_for_part(pk, which, n_supp);
                let qty = rng.random_range(1..=50) as f64;
                let price_base = 90_000.0 + ((pk % 20_000) as f64) + 100.0;
                let eprice = (qty * price_base / 100.0 * 100.0).round() / 100.0;
                let discount = rng.random_range(0..=10) as f64 / 100.0;
                let tax = rng.random_range(0..=8) as f64 / 100.0;
                let sdate = odate + rng.random_range(1..=121);
                let cdate = odate + rng.random_range(30..=90);
                let rdate = sdate + rng.random_range(1..=30);

                li.orderkey.push(ok);
                li.partkey.push(pk);
                li.suppkey.push(sk);
                li.linenumber.push(ln);
                li.quantity.push(qty);
                li.extendedprice.push(eprice);
                li.discount.push(discount);
                li.tax.push(tax);
                // Return flag/status per spec shape: based on dates.
                li.returnflag
                    .push(if rdate <= Date::from_ymd(1995, 6, 17).raw() {
                        if rng.random_bool(0.5) {
                            b'R'
                        } else {
                            b'A'
                        }
                    } else {
                        b'N'
                    });
                li.linestatus
                    .push(if sdate > Date::from_ymd(1995, 6, 17).raw() {
                        b'O'
                    } else {
                        b'F'
                    });
                li.shipdate.push(sdate);
                li.commitdate.push(cdate);
                li.receiptdate.push(rdate);
                li.shipmode
                    .push(rng.random_range(0..SHIP_MODES.len() as u32) as u8);
                total += eprice * (1.0 - discount) * (1.0 + tax);
            }
            orders.totalprice.push((total * 100.0).round() / 100.0);
            orders.orderstatus.push(b'O');
        }

        let mut nation = Nation::default();
        for (i, &(name, region)) in NATIONS.iter().enumerate() {
            nation.nationkey.push(i as i64);
            nation.name.push(name.to_string());
            nation.regionkey.push(region);
        }

        TpchData {
            sf,
            lineitem: li,
            orders,
            part,
            supplier,
            partsupp,
            customer,
            nation,
            colors: Dictionary::new(COLORS.iter().copied()),
            segments: Dictionary::new(MKT_SEGMENTS.iter().copied()),
            shipmodes: Dictionary::new(SHIP_MODES.iter().copied()),
            priorities: Dictionary::new(PRIORITIES.iter().copied()),
        }
    }

    /// Approximate in-memory footprint of the hot columns, used to size the
    /// compute cache at the paper's ratio.
    pub fn working_set_bytes(&self) -> usize {
        let li = self.lineitem.len();
        let ord = self.orders.len();
        li * (8 * 8 + 4 * 3 + 3) // lineitem numeric + date + code columns
            + ord * (8 * 3 + 4 + 2)
            + self.part.len() * (8 * 4 + 2)
            + self.partsupp.len() * (8 * 3 + 8)
            + self.supplier.len() * (8 * 3)
            + self.customer.len() * (8 * 3 + 1)
    }
}

/// The TPC-H formula (simplified) tying a part to its four suppliers;
/// lineitem rows pick one of these, so every `(l_partkey, l_suppkey)`
/// exists in partsupp. The spec's extra `(partkey-1)/S` term is dropped:
/// it only matters at S values far above any scale simulated here, and at
/// small S it breaks the formula's distinctness guarantee.
pub fn supplier_for_part(partkey: i64, which: i64, n_supp: usize) -> i64 {
    let s = n_supp as i64;
    debug_assert!(s >= SUPPLIERS_PER_PART as i64);
    (partkey + which * (s / SUPPLIERS_PER_PART as i64)) % s + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchData {
        TpchData::generate(0.002, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(0.002, 7);
        let b = TpchData::generate(0.002, 7);
        assert_eq!(a.lineitem.extendedprice, b.lineitem.extendedprice);
        assert_eq!(a.part.name, b.part.name);
        let c = TpchData::generate(0.002, 8);
        assert_ne!(a.lineitem.partkey, c.lineitem.partkey, "seed matters");
    }

    #[test]
    fn cardinalities_scale() {
        let d = tiny();
        assert_eq!(d.part.len(), 400);
        assert_eq!(d.partsupp.len(), 1600);
        assert_eq!(d.orders.len(), 3000);
        assert!(d.lineitem.len() >= d.orders.len(), "1..7 lines per order");
        assert!(d.lineitem.len() <= d.orders.len() * 7);
        assert_eq!(d.nation.name.len(), 25);
    }

    #[test]
    fn orderkeys_are_clustered_and_sorted() {
        let d = tiny();
        assert!(d.orders.orderkey.windows(2).all(|w| w[0] < w[1]));
        assert!(d.lineitem.orderkey.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lineitem_partsupp_referential_integrity() {
        let d = tiny();
        use std::collections::HashSet;
        let ps: HashSet<(i64, i64)> = d
            .partsupp
            .partkey
            .iter()
            .zip(&d.partsupp.suppkey)
            .map(|(&p, &s)| (p, s))
            .collect();
        for i in 0..d.lineitem.len() {
            let key = (d.lineitem.partkey[i], d.lineitem.suppkey[i]);
            assert!(
                ps.contains(&key),
                "lineitem row {i} has no partsupp {key:?}"
            );
        }
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let d = tiny();
        let n_supp = d.supplier.len() as i64;
        let n_cust = d.customer.len() as i64;
        assert!(d
            .partsupp
            .suppkey
            .iter()
            .all(|&s| (1..=n_supp).contains(&s)));
        assert!(d.orders.custkey.iter().all(|&c| (1..=n_cust).contains(&c)));
        assert!(d.supplier.nationkey.iter().all(|&n| (0..25).contains(&n)));
    }

    #[test]
    fn dates_are_in_the_spec_window() {
        let d = tiny();
        let start = Date::from_ymd(1992, 1, 1).raw();
        let end = Date::from_ymd(1999, 1, 1).raw();
        assert!(d.orders.orderdate.iter().all(|&x| x >= start && x < end));
        assert!(d.lineitem.shipdate.iter().all(|&x| x > start && x < end));
        // Shipdate is always after the order date.
        // (Check via the join: lineitem i belongs to order orderkey[i].)
        let mut order_date = std::collections::HashMap::new();
        for i in 0..d.orders.len() {
            order_date.insert(d.orders.orderkey[i], d.orders.orderdate[i]);
        }
        for i in 0..d.lineitem.len() {
            assert!(d.lineitem.shipdate[i] > order_date[&d.lineitem.orderkey[i]]);
        }
    }

    #[test]
    fn green_parts_have_q9_like_selectivity() {
        let d = TpchData::generate(0.01, 3);
        let green = d.colors.code_of("green").unwrap();
        let matches = d
            .part
            .name
            .iter()
            .filter(|&&n| crate::types::name_contains(n, green))
            .count();
        let rate = matches as f64 / d.part.len() as f64;
        assert!(
            (0.02..0.10).contains(&rate),
            "LIKE '%green%' selectivity was {rate:.3}"
        );
    }

    #[test]
    fn working_set_estimate_is_sane() {
        let d = tiny();
        let ws = d.working_set_bytes();
        assert!(ws > 100_000, "working set {ws}");
        assert!(ws < 10_000_000);
    }
}
