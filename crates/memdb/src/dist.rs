//! Distributed-DBMS baselines for Fig 1b's "cost of scaling" comparison.
//!
//! The paper contrasts the DDC's cost of scaling against two distributed
//! in-memory DBMSs on monolithic servers: SparkSQL (1.2× over purely local
//! execution) and Vertica (2.3×). Neither codebase is reproducible here, so
//! this module prices a *shared-nothing distributed execution* of the same
//! physical plans from first principles:
//!
//! - per-operator compute parallelizes across nodes (local-time / N);
//! - exchange operators (joins, group-bys, sorts) repartition their inputs
//!   over the network and pay per-tuple (de)serialization;
//! - the *stage-materializing* profile additionally writes and re-reads
//!   every stage boundary (SparkSQL's shuffle files / unsafe rows);
//! - the *pipelined MPP* profile streams between operators but pays higher
//!   per-exchange coordination and per-tuple messaging costs.
//!
//! The model's purpose is the paper's *band*: distributed message-passing
//! scaling costs sit at a small constant factor (≈1–3×) over local
//! execution — far below an unmodified DDC's 5.4× — and TELEPORT brings
//! the DDC back into that band.

use ddc_sim::{CpuConfig, NetConfig, SimDuration};

use crate::report::QueryReport;

/// Which distributed engine style to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistProfile {
    /// Stage-materializing dataflow (SparkSQL-like): cheap per-tuple path
    /// from whole-stage codegen, but every exchange is a full materialize.
    StageMaterializing,
    /// Pipelined columnar MPP (Vertica-like): streams between operators,
    /// heavier per-tuple exchange path and per-operator coordination.
    PipelinedMpp,
}

/// Cluster configuration for the distributed baselines.
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub nodes: usize,
    pub net: NetConfig,
    pub cpu: CpuConfig,
    pub profile: DistProfile,
}

impl DistConfig {
    pub fn new(nodes: usize, profile: DistProfile) -> Self {
        DistConfig {
            nodes,
            net: NetConfig::default(),
            cpu: CpuConfig::new(2.1, 8),
            profile,
        }
    }
}

/// Average row width at an exchange, in bytes (key + a few value columns).
const EXCHANGE_ROW_BYTES: f64 = 32.0;

fn is_exchange(op_name: &str) -> bool {
    op_name.starts_with("HashJoin")
        || op_name.starts_with("MergeJoin")
        || op_name.starts_with("GroupAggregate")
        || op_name.starts_with("Sort")
        || op_name == "Aggregation" // final merge of partial aggregates
}

/// Price a distributed execution of the plan that produced `local_report`
/// (measured on the monolithic platform). Returns the estimated makespan.
///
/// Fig 1b's local baseline uses *the same total resources* in one server,
/// so distribution does not shrink compute — it only inserts message
/// passing (the paper's "cost of scaling"). The model therefore charges
/// the full local compute time scaled by an engine-efficiency factor, plus
/// exchange costs where the plan repartitions.
pub fn estimate(local_report: &QueryReport, cfg: &DistConfig) -> SimDuration {
    assert!(cfg.nodes >= 1);
    // (engine factor num/den, per-tuple exchange cycles, stage barrier,
    //  materializes stage boundaries?)
    let (ef_num, ef_den, ser_cycles, stage_overhead, materialize) = match cfg.profile {
        DistProfile::StageMaterializing => {
            (105u64, 100u64, 30u64, SimDuration::from_micros(500), true)
        }
        DistProfile::PipelinedMpp => (135, 100, 400, SimDuration::from_micros(100), false),
    };

    let mut total = SimDuration::ZERO;
    let mut prev_rows: u64 = 0;
    for op in &local_report.ops {
        total += op.time * ef_num / ef_den;

        if is_exchange(op.name) && cfg.nodes > 1 {
            // An exchange repartitions the operator's *input*, which the
            // operator-at-a-time plan delivers as the previous operator's
            // output.
            let rows = prev_rows.max(op.rows_out).max(1);
            let bytes = rows as f64 * EXCHANGE_ROW_BYTES;
            // All-to-all repartitioning: the bisection carries bytes/N per
            // link in parallel.
            let wire = bytes / cfg.nodes as f64;
            total += cfg.net.transfer_time(wire as usize);
            // Per-tuple (de)serialization, parallel across nodes.
            total += cfg.cpu.cycles(2 * ser_cycles * rows / cfg.nodes as u64);
            total += stage_overhead;
            if materialize {
                // Write + read of the shuffle data at ~10 GB/s effective
                // memory bandwidth, parallel across nodes.
                total += SimDuration::from_nanos((2.0 * bytes * 0.1 / cfg.nodes as f64) as u64);
            }
        }
        prev_rows = op.rows_out;
    }
    total
}

/// The Fig 1b "cost of scaling": distributed time over purely-local time.
pub fn cost_of_scaling(local_report: &QueryReport, cfg: &DistConfig) -> f64 {
    estimate(local_report, cfg).ratio(local_report.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::OpReport;

    fn fake_report() -> QueryReport {
        let mut rep = QueryReport::new("fake");
        let mk = |name: &'static str, ms: u64, rows: u64| OpReport {
            name,
            time: SimDuration::from_millis(ms),
            remote_accesses: 0,
            remote_bytes: 0,
            rows_out: rows,
            pushed: false,
        };
        rep.ops.push(mk("Selection", 400, 3_000_000));
        rep.ops.push(mk("HashJoin(part)", 600, 150_000));
        rep.ops.push(mk("Expression", 150, 150_000));
        rep.ops.push(mk("GroupAggregate", 200, 175));
        rep
    }

    #[test]
    fn single_node_pays_only_the_engine_factor() {
        let rep = fake_report();
        let cfg = DistConfig::new(1, DistProfile::StageMaterializing);
        let t = estimate(&rep, &cfg);
        assert!(t >= rep.total());
        assert!(t.ratio(rep.total()) < 1.1, "no exchanges on one node");
    }

    #[test]
    fn scaling_cost_lands_in_the_papers_band() {
        let rep = fake_report();
        for profile in [DistProfile::StageMaterializing, DistProfile::PipelinedMpp] {
            let cfg = DistConfig::new(4, profile);
            let cost = cost_of_scaling(&rep, &cfg);
            // Fig 1b: distributed engines scale at a small constant factor
            // over a same-total-resources local run (1.2x / 2.3x).
            assert!(
                (1.0..3.5).contains(&cost),
                "{profile:?} cost of scaling {cost:.2}"
            );
        }
    }

    #[test]
    fn mpp_pays_more_per_exchange_than_stage_dataflow_saves() {
        let rep = fake_report();
        let spark = cost_of_scaling(&rep, &DistConfig::new(4, DistProfile::StageMaterializing));
        let vertica = cost_of_scaling(&rep, &DistConfig::new(4, DistProfile::PipelinedMpp));
        assert!(
            vertica > spark,
            "pipelined MPP ({vertica:.2}) should cost more than stage dataflow ({spark:.2}) \
             on this exchange-heavy plan, as in Fig 1b"
        );
    }

    #[test]
    fn more_nodes_reduce_compute_share() {
        let rep = fake_report();
        let t2 = estimate(&rep, &DistConfig::new(2, DistProfile::StageMaterializing));
        let t8 = estimate(&rep, &DistConfig::new(8, DistProfile::StageMaterializing));
        assert!(t8 < t2);
    }
}
