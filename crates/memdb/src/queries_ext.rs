//! The extended TPC-H suite: Q4, Q5, Q10, Q12.
//!
//! The paper's evaluation centers on Q9/Q3/Q6 (its three most expensive
//! queries) plus `Q_filter`; these additional plans exercise the remaining
//! operator combinations — EXISTS semi-joins, region-constrained
//! multi-joins, returned-items analysis, and two-column predicates — so the
//! engine covers the workload a downstream user would actually run.

use std::collections::{HashMap, HashSet};

use teleport::{Mem, Runtime};

use crate::db::Database;
use crate::exec::{aggregate, expr, hashjoin, mergejoin, project, select, sort};
use crate::report::{op, PushdownPlan, QueryReport};
use crate::types::Date;

/// Extra parameters for the extended suite (TPC-H defaults).
#[derive(Debug, Clone)]
pub struct ExtParams {
    /// Q4: orders placed in `[q4_date, q4_date + 3 months)`.
    pub q4_date: Date,
    /// Q5: region name and one-year order window start.
    pub q5_region: &'static str,
    pub q5_date: Date,
    /// Q10: quarter start for returned-items analysis.
    pub q10_date: Date,
    /// Q12: the two ship modes and the receipt year.
    pub q12_modes: (&'static str, &'static str),
    pub q12_date: Date,
}

impl Default for ExtParams {
    fn default() -> Self {
        ExtParams {
            q4_date: Date::from_ymd(1993, 7, 1),
            q5_region: "ASIA",
            q5_date: Date::from_ymd(1994, 1, 1),
            q10_date: Date::from_ymd(1993, 10, 1),
            q12_modes: ("MAIL", "SHIP"),
            q12_date: Date::from_ymd(1994, 1, 1),
        }
    }
}

/// Operator lists of the extended plans (pushdown units).
pub mod ops_ext {
    pub const Q4: &[&str] = &[
        "Selection(orders)",
        "Selection(lineitem)",
        "MergeJoin(orders)",
        "GroupAggregate",
    ];
    pub const Q5: &[&str] = &[
        "Selection(orders)",
        "MergeJoin(orders)",
        "HashJoin(supplier)",
        "HashJoin(customer)",
        "Expression",
        "GroupAggregate",
    ];
    pub const Q10: &[&str] = &[
        "Selection(orders)",
        "Selection(lineitem)",
        "MergeJoin(orders)",
        "HashJoin(customer)",
        "Expression",
        "GroupAggregate",
    ];
    pub const Q12: &[&str] = &[
        "Selection(shipmode)",
        "Selection(dates)",
        "MergeJoin(orders)",
        "GroupAggregate",
    ];
}

/// TPC-H Q4: order-priority checking — orders of a quarter with at least
/// one late-committed lineitem, counted per priority.
pub fn q4(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &ExtParams,
) -> (Vec<(String, u64)>, QueryReport) {
    let mut rep = QueryReport::new("Q4");
    let li = db.li;
    let ord = db.ord;
    let lo = params.q4_date.raw();
    let hi = params.q4_date.plus_days(92).raw();

    let cand_o = op(rt, &mut rep, plan, "Selection(orders)", move |m| {
        select::select_where(m, &ord.orderdate, ord.n, None, |d| d >= lo && d < hi)
    });
    rep.note_rows(cand_o.len as u64);

    let cand_l = op(rt, &mut rep, plan, "Selection(lineitem)", move |m| {
        select::select_where2(m, &li.commitdate, &li.receiptdate, li.n, None, |c, r| c < r)
    });
    rep.note_rows(cand_l.len as u64);

    // EXISTS: distinct orders (within the window) having a late lineitem.
    let matching_orders = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let lrows = cand_l.read(m);
        let lkeys = project::gather_host(m, &li.orderkey, &lrows);
        let joined = mergejoin::merge_join(m, &lkeys, &ord.orderkey, ord.n);
        let window: HashSet<u32> = cand_o.read(m).into_iter().collect();
        let mut distinct: Vec<u32> = joined
            .into_iter()
            .flatten()
            .filter(|r| window.contains(r))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        distinct
    });
    rep.note_rows(matching_orders.len() as u64);

    let counts = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        let prios = project::gather_host(m, &ord.orderpriority, &matching_orders);
        m.charge_cycles(crate::exec::cost::GROUP * prios.len() as u64);
        let mut counts: HashMap<u8, u64> = HashMap::new();
        for p in prios {
            *counts.entry(p).or_insert(0) += 1;
        }
        let mut out: Vec<(u8, u64)> = counts.into_iter().collect();
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    });
    rep.note_rows(counts.len() as u64);

    let named = counts
        .into_iter()
        .map(|(p, c)| (db.priorities.decode(p).to_string(), c))
        .collect();
    (named, rep)
}

/// TPC-H Q5: local-supplier volume — revenue from lineitems where customer
/// and supplier share a nation inside one region, grouped by nation.
pub fn q5(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &ExtParams,
) -> (Vec<(String, f64)>, QueryReport) {
    let mut rep = QueryReport::new("Q5");
    let li = db.li;
    let ord = db.ord;
    let supp = db.supp;
    let cust = db.cust;
    let lo = params.q5_date.raw();
    let hi = params.q5_date.plus_days(365).raw();
    let region_key = db
        .region_name
        .iter()
        .position(|r| r == params.q5_region)
        .expect("region exists") as i64;
    let region_nations: HashSet<i64> = db
        .nation_region
        .iter()
        .enumerate()
        .filter(|(_, &r)| r == region_key)
        .map(|(nk, _)| nk as i64)
        .collect();

    let cand_o = op(rt, &mut rep, plan, "Selection(orders)", move |m| {
        select::select_where(m, &ord.orderdate, ord.n, None, |d| d >= lo && d < hi)
    });
    rep.note_rows(cand_o.len as u64);

    // lineitem ⋈ orders (both clustered on orderkey).
    let (li_rows, ord_rows) = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let mut lkeys: Vec<i64> = Vec::new();
        m.read_range(&li.orderkey, 0, li.n, &mut lkeys);
        let joined = mergejoin::merge_join(m, &lkeys, &ord.orderkey, ord.n);
        let window: HashSet<u32> = cand_o.read(m).into_iter().collect();
        let mut li_rows = Vec::new();
        let mut ord_rows = Vec::new();
        for (i, j) in joined.into_iter().enumerate() {
            if let Some(orow) = j {
                if window.contains(&orow) {
                    li_rows.push(i as u32);
                    ord_rows.push(orow);
                }
            }
        }
        (li_rows, ord_rows)
    });
    rep.note_rows(li_rows.len() as u64);

    // ⋈ supplier: nationkey, filtered to the region.
    let region_nations2 = region_nations.clone();
    let li_rows2 = li_rows.clone();
    let ord_rows2 = ord_rows.clone();
    let (li_rows, ord_rows, s_nations) = op(rt, &mut rep, plan, "HashJoin(supplier)", move |m| {
        let mut skeys: Vec<i64> = Vec::new();
        m.read_range(&supp.suppkey, 0, supp.n, &mut skeys);
        let rows: Vec<u32> = (0..supp.n as u32).collect();
        let idx = hashjoin::HashIndex::build(m, &skeys, &rows);
        let lsk = project::gather_host(m, &li.suppkey, &li_rows2);
        let mut out_li = Vec::new();
        let mut out_ord = Vec::new();
        let mut out_nation = Vec::new();
        for i in 0..li_rows2.len() {
            let srow = idx.probe(m, lsk[i]).expect("supplier exists");
            let nk = m.get(&supp.nationkey, srow as usize, ddc_os::Pattern::Rand);
            if region_nations2.contains(&nk) {
                out_li.push(li_rows2[i]);
                out_ord.push(ord_rows2[i]);
                out_nation.push(nk);
            }
        }
        (out_li, out_ord, out_nation)
    });
    rep.note_rows(li_rows.len() as u64);

    // ⋈ customer: keep pairs where the customer's nation equals the
    // supplier's (the query's "local supplier" condition).
    let li_rows3 = li_rows.clone();
    let s_nations2 = s_nations.clone();
    let (li_rows, s_nations) = op(rt, &mut rep, plan, "HashJoin(customer)", move |m| {
        let mut ckeys: Vec<i64> = Vec::new();
        m.read_range(&cust.custkey, 0, cust.n, &mut ckeys);
        let rows: Vec<u32> = (0..cust.n as u32).collect();
        let idx = hashjoin::HashIndex::build(m, &ckeys, &rows);
        let ock = project::gather_host(m, &ord.custkey, &ord_rows);
        let mut out_li = Vec::new();
        let mut out_nation = Vec::new();
        for i in 0..li_rows3.len() {
            let crow = idx.probe(m, ock[i]).expect("customer exists");
            let cnk = m.get(&cust.nationkey, crow as usize, ddc_os::Pattern::Rand);
            if cnk == s_nations2[i] {
                out_li.push(li_rows3[i]);
                out_nation.push(cnk);
            }
        }
        (out_li, out_nation)
    });
    rep.note_rows(li_rows.len() as u64);

    let n_pairs = li_rows.len();
    let revenue = op(rt, &mut rep, plan, "Expression", move |m| {
        let price = project::gather(m, &li.extendedprice, &li_rows);
        let disc = project::gather(m, &li.discount, &li_rows);
        expr::revenue(m, &price, &disc, n_pairs)
    });
    rep.note_rows(n_pairs as u64);

    let groups = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        let nation_col = m.alloc_region::<i64>(n_pairs.max(1));
        m.write_range(&nation_col, 0, &s_nations);
        aggregate::group_sum_by_key(m, &nation_col, &revenue, n_pairs)
    });
    rep.note_rows(groups.len() as u64);

    // Output order: revenue descending.
    let mut named: Vec<(String, f64)> = groups
        .into_iter()
        .map(|(nk, rev)| (db.nation_name[nk as usize].clone(), rev))
        .collect();
    named.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    (named, rep)
}

/// A row of Q10's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Q10Row {
    pub custkey: i64,
    pub revenue: f64,
    pub nation: String,
}

/// TPC-H Q10: returned-item reporting — top-20 customers by lost revenue
/// from returned items in one quarter.
pub fn q10(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &ExtParams,
) -> (Vec<Q10Row>, QueryReport) {
    let mut rep = QueryReport::new("Q10");
    let li = db.li;
    let ord = db.ord;
    let cust = db.cust;
    let lo = params.q10_date.raw();
    let hi = params.q10_date.plus_days(92).raw();

    let cand_o = op(rt, &mut rep, plan, "Selection(orders)", move |m| {
        select::select_where(m, &ord.orderdate, ord.n, None, |d| d >= lo && d < hi)
    });
    rep.note_rows(cand_o.len as u64);

    let cand_l = op(rt, &mut rep, plan, "Selection(lineitem)", move |m| {
        select::select_where(m, &li.returnflag, li.n, None, |f| f == b'R')
    });
    rep.note_rows(cand_l.len as u64);

    let (li_rows, ord_rows) = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let lrows = cand_l.read(m);
        let lkeys = project::gather_host(m, &li.orderkey, &lrows);
        let joined = mergejoin::merge_join(m, &lkeys, &ord.orderkey, ord.n);
        let window: HashSet<u32> = cand_o.read(m).into_iter().collect();
        let mut li_out = Vec::new();
        let mut ord_out = Vec::new();
        for (i, j) in joined.into_iter().enumerate() {
            if let Some(orow) = j {
                if window.contains(&orow) {
                    li_out.push(lrows[i]);
                    ord_out.push(orow);
                }
            }
        }
        (li_out, ord_out)
    });
    rep.note_rows(li_rows.len() as u64);

    let (custkeys, c_nations) = op(rt, &mut rep, plan, "HashJoin(customer)", move |m| {
        let mut ckeys: Vec<i64> = Vec::new();
        m.read_range(&cust.custkey, 0, cust.n, &mut ckeys);
        let rows: Vec<u32> = (0..cust.n as u32).collect();
        let idx = hashjoin::HashIndex::build(m, &ckeys, &rows);
        let ock = project::gather_host(m, &ord.custkey, &ord_rows);
        let mut nations = Vec::with_capacity(ock.len());
        for &ck in &ock {
            let crow = idx.probe(m, ck).expect("customer exists");
            nations.push(m.get(&cust.nationkey, crow as usize, ddc_os::Pattern::Rand));
        }
        (ock, nations)
    });
    rep.note_rows(custkeys.len() as u64);

    let n_pairs = li_rows.len();
    let revenue = op(rt, &mut rep, plan, "Expression", move |m| {
        let price = project::gather(m, &li.extendedprice, &li_rows);
        let disc = project::gather(m, &li.discount, &li_rows);
        expr::revenue(m, &price, &disc, n_pairs)
    });
    rep.note_rows(n_pairs as u64);

    let rows = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        let key_col = m.alloc_region::<i64>(n_pairs.max(1));
        m.write_range(&key_col, 0, &custkeys);
        let groups = aggregate::group_sum_by_key(m, &key_col, &revenue, n_pairs);
        let nation_of: HashMap<i64, i64> = custkeys
            .iter()
            .zip(&c_nations)
            .map(|(&c, &n)| (c, n))
            .collect();
        let items: Vec<(f64, i64)> = groups.into_iter().map(|(k, r)| (r, k)).collect();
        let top = sort::topk_desc_f64(m, items, 20, |a, b| a.cmp(b));
        top.into_iter()
            .map(|(rev, ck)| (ck, rev, nation_of[&ck]))
            .collect::<Vec<_>>()
    });
    rep.note_rows(rows.len() as u64);

    let named = rows
        .into_iter()
        .map(|(ck, rev, nk)| Q10Row {
            custkey: ck,
            revenue: rev,
            nation: db.nation_name[nk as usize].clone(),
        })
        .collect();
    (named, rep)
}

/// TPC-H Q12: shipping-mode and order-priority — for two ship modes, count
/// late-shipped lineitems of high vs low priority.
pub fn q12(
    rt: &mut Runtime,
    db: &Database,
    plan: &PushdownPlan,
    params: &ExtParams,
) -> (Vec<(String, u64, u64)>, QueryReport) {
    let mut rep = QueryReport::new("Q12");
    let li = db.li;
    let ord = db.ord;
    let mode_a = db.shipmodes.code_of(params.q12_modes.0).expect("mode");
    let mode_b = db.shipmodes.code_of(params.q12_modes.1).expect("mode");
    let lo = params.q12_date.raw();
    let hi = params.q12_date.plus_days(365).raw();

    let cand1 = op(rt, &mut rep, plan, "Selection(shipmode)", move |m| {
        select::select_where(m, &li.shipmode, li.n, None, |s| s == mode_a || s == mode_b)
    });
    rep.note_rows(cand1.len as u64);

    let cand2 = op(rt, &mut rep, plan, "Selection(dates)", move |m| {
        let in_year = select::select_where(m, &li.receiptdate, li.n, Some(&cand1), |d| {
            d >= lo && d < hi
        });
        let late_commit = select::select_where2(
            m,
            &li.commitdate,
            &li.receiptdate,
            li.n,
            Some(&in_year),
            |c, r| c < r,
        );
        select::select_where2(
            m,
            &li.shipdate,
            &li.commitdate,
            li.n,
            Some(&late_commit),
            |s, c| s < c,
        )
    });
    rep.note_rows(cand2.len as u64);

    let (modes, prios) = op(rt, &mut rep, plan, "MergeJoin(orders)", move |m| {
        let lrows = cand2.read(m);
        let lkeys = project::gather_host(m, &li.orderkey, &lrows);
        let joined = mergejoin::merge_join(m, &lkeys, &ord.orderkey, ord.n);
        let ord_rows: Vec<u32> = joined
            .into_iter()
            .map(|j| j.expect("order exists"))
            .collect();
        let modes = project::gather_host(m, &li.shipmode, &lrows);
        let prios = project::gather_host(m, &ord.orderpriority, &ord_rows);
        (modes, prios)
    });
    rep.note_rows(modes.len() as u64);

    let counts = op(rt, &mut rep, plan, "GroupAggregate", move |m| {
        m.charge_cycles(crate::exec::cost::GROUP * modes.len() as u64);
        // high priority = "1-URGENT" (code 0) or "2-HIGH" (code 1).
        let mut table: HashMap<u8, (u64, u64)> = HashMap::new();
        for i in 0..modes.len() {
            let e = table.entry(modes[i]).or_insert((0, 0));
            if prios[i] <= 1 {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let mut out: Vec<(u8, u64, u64)> = table.into_iter().map(|(k, (h, l))| (k, h, l)).collect();
        out.sort_unstable_by_key(|&(k, ..)| k);
        out
    });
    rep.note_rows(counts.len() as u64);

    let named = counts
        .into_iter()
        .map(|(mode, high, low)| (db.shipmodes.decode(mode).to_string(), high, low))
        .collect();
    (named, rep)
}
