//! Reference query evaluation over the generated data in plain host
//! memory. Used by tests to validate every simulated execution, and by the
//! distributed-baseline cost model, which prices plans from true
//! cardinalities.

// Accumulator maps that are *iterated* into results use `BTreeMap`, so
// tie-handling and float summation order are seed-stable rather than
// hasher-dependent; maps and sets used only for point lookups stay hashed.
use std::collections::{BTreeMap, HashMap, HashSet};

use crate::queries::{Q3Row, Q9Row, QueryParams};
use crate::tpch::TpchData;
use crate::types::{name_contains, Date};

/// `Q_filter`: `SELECT SUM(l_quantity) WHERE l_shipdate < $DATE`.
pub fn q_filter(data: &TpchData, params: &QueryParams) -> f64 {
    let bound = params.qfilter_date.raw();
    let li = &data.lineitem;
    (0..li.len())
        .filter(|&i| li.shipdate[i] < bound)
        .map(|i| li.quantity[i])
        .sum()
}

/// TPC-H Q1 (pricing summary).
pub fn q1(data: &TpchData, params: &QueryParams) -> Vec<crate::exec::aggregate::Q1Group> {
    let bound = Date::from_ymd(1998, 12, 1)
        .plus_days(-params.q1_delta_days)
        .raw();
    let li = &data.lineitem;
    #[derive(Default, Clone)]
    struct Acc {
        qty: f64,
        base: f64,
        disc_price: f64,
        charge: f64,
        disc: f64,
        count: u64,
    }
    let mut groups: BTreeMap<(u8, u8), Acc> = BTreeMap::new();
    for i in 0..li.len() {
        if li.shipdate[i] <= bound {
            let acc = groups
                .entry((li.returnflag[i], li.linestatus[i]))
                .or_default();
            let (q, p, d, t) = (
                li.quantity[i],
                li.extendedprice[i],
                li.discount[i],
                li.tax[i],
            );
            acc.qty += q;
            acc.base += p;
            acc.disc_price += p * (1.0 - d);
            acc.charge += p * (1.0 - d) * (1.0 + t);
            acc.disc += d;
            acc.count += 1;
        }
    }
    groups
        .into_iter()
        .map(|((flag, status), a)| crate::exec::aggregate::Q1Group {
            returnflag: flag,
            linestatus: status,
            sum_qty: a.qty,
            sum_base_price: a.base,
            sum_disc_price: a.disc_price,
            sum_charge: a.charge,
            avg_qty: a.qty / a.count as f64,
            avg_price: a.base / a.count as f64,
            avg_disc: a.disc / a.count as f64,
            count: a.count,
        })
        .collect()
}

/// TPC-H Q6.
pub fn q6(data: &TpchData, params: &QueryParams) -> f64 {
    let lo = params.q6_shipdate_lo.raw();
    let hi = params.q6_shipdate_lo.plus_days(365).raw();
    let (dlo, dhi) = params.q6_discount;
    let li = &data.lineitem;
    let mut acc = 0.0;
    for i in 0..li.len() {
        if li.shipdate[i] >= lo
            && li.shipdate[i] < hi
            && li.discount[i] >= dlo - 1e-9
            && li.discount[i] <= dhi + 1e-9
            && li.quantity[i] < params.q6_quantity
        {
            acc += li.extendedprice[i] * li.discount[i];
        }
    }
    acc
}

/// TPC-H Q3 (top-10 by revenue).
pub fn q3(data: &TpchData, params: &QueryParams) -> Vec<Q3Row> {
    let seg = data
        .segments
        .code_of(params.q3_segment)
        .expect("segment exists");
    let date = params.q3_date.raw();
    let cust_in_segment: HashSet<i64> = (0..data.customer.len())
        .filter(|&i| data.customer.mktsegment[i] == seg)
        .map(|i| data.customer.custkey[i])
        .collect();
    let mut order_ok: HashMap<i64, (i32, i64)> = HashMap::new();
    for i in 0..data.orders.len() {
        if data.orders.orderdate[i] < date && cust_in_segment.contains(&data.orders.custkey[i]) {
            order_ok.insert(
                data.orders.orderkey[i],
                (data.orders.orderdate[i], data.orders.shippriority[i]),
            );
        }
    }
    let li = &data.lineitem;
    let mut revenue: BTreeMap<i64, f64> = BTreeMap::new();
    for i in 0..li.len() {
        if li.shipdate[i] > date && order_ok.contains_key(&li.orderkey[i]) {
            *revenue.entry(li.orderkey[i]).or_insert(0.0) +=
                li.extendedprice[i] * (1.0 - li.discount[i]);
        }
    }
    let mut rows: Vec<Q3Row> = revenue
        .into_iter()
        .map(|(k, rev)| {
            let (d, p) = order_ok[&k];
            Q3Row {
                orderkey: k,
                revenue: rev,
                orderdate: d,
                shippriority: p,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.revenue
            .total_cmp(&a.revenue)
            .then(a.orderkey.cmp(&b.orderkey))
    });
    rows.truncate(10);
    rows
}

/// TPC-H Q9 (nation asc, year desc).
pub fn q9(data: &TpchData, params: &QueryParams) -> Vec<Q9Row> {
    let color = data.colors.code_of(params.q9_color).expect("color exists");
    let green_parts: HashSet<i64> = (0..data.part.len())
        .filter(|&i| name_contains(data.part.name[i], color))
        .map(|i| data.part.partkey[i])
        .collect();
    let supplycost: HashMap<(i64, i64), f64> = (0..data.partsupp.len())
        .map(|i| {
            (
                (data.partsupp.partkey[i], data.partsupp.suppkey[i]),
                data.partsupp.supplycost[i],
            )
        })
        .collect();
    let supp_nation: HashMap<i64, i64> = (0..data.supplier.len())
        .map(|i| (data.supplier.suppkey[i], data.supplier.nationkey[i]))
        .collect();
    let order_date: HashMap<i64, i32> = (0..data.orders.len())
        .map(|i| (data.orders.orderkey[i], data.orders.orderdate[i]))
        .collect();

    let li = &data.lineitem;
    let mut groups: BTreeMap<(i64, i32), f64> = BTreeMap::new();
    for i in 0..li.len() {
        if !green_parts.contains(&li.partkey[i]) {
            continue;
        }
        let cost = supplycost[&(li.partkey[i], li.suppkey[i])];
        let nation = supp_nation[&li.suppkey[i]];
        let year = Date(order_date[&li.orderkey[i]]).year();
        let amount = li.extendedprice[i] * (1.0 - li.discount[i]) - cost * li.quantity[i];
        *groups.entry((nation, year)).or_insert(0.0) += amount;
    }
    let mut rows: Vec<Q9Row> = groups
        .into_iter()
        .map(|((nk, year), profit)| Q9Row {
            nation: data.nation.name[nk as usize].clone(),
            year,
            profit,
        })
        .collect();
    rows.sort_by(|a, b| a.nation.cmp(&b.nation).then(b.year.cmp(&a.year)));
    rows
}

// ---------------------------------------------------------------------
// Oracles for the extended suite (Q4, Q5, Q10, Q12)
// ---------------------------------------------------------------------

use crate::queries_ext::{ExtParams, Q10Row};

/// TPC-H Q4: order-priority checking.
pub fn q4(data: &TpchData, params: &ExtParams) -> Vec<(String, u64)> {
    let lo = params.q4_date.raw();
    let hi = params.q4_date.plus_days(92).raw();
    let late_orders: HashSet<i64> = (0..data.lineitem.len())
        .filter(|&i| data.lineitem.commitdate[i] < data.lineitem.receiptdate[i])
        .map(|i| data.lineitem.orderkey[i])
        .collect();
    let mut counts: std::collections::BTreeMap<u8, u64> = Default::default();
    for i in 0..data.orders.len() {
        let d = data.orders.orderdate[i];
        if d >= lo && d < hi && late_orders.contains(&data.orders.orderkey[i]) {
            *counts.entry(data.orders.orderpriority[i]).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .map(|(p, c)| (data.priorities.decode(p).to_string(), c))
        .collect()
}

/// TPC-H Q5: local-supplier volume, revenue descending.
pub fn q5(data: &TpchData, params: &ExtParams) -> Vec<(String, f64)> {
    let lo = params.q5_date.raw();
    let hi = params.q5_date.plus_days(365).raw();
    let region_key = crate::tpch::REGIONS
        .iter()
        .position(|&r| r == params.q5_region)
        .expect("region exists") as i64;
    let region_nations: HashSet<i64> = (0..data.nation.nationkey.len())
        .filter(|&i| data.nation.regionkey[i] == region_key)
        .map(|i| data.nation.nationkey[i])
        .collect();
    let order_meta: HashMap<i64, (i32, i64)> = (0..data.orders.len())
        .map(|i| {
            (
                data.orders.orderkey[i],
                (data.orders.orderdate[i], data.orders.custkey[i]),
            )
        })
        .collect();
    let supp_nation: HashMap<i64, i64> = (0..data.supplier.len())
        .map(|i| (data.supplier.suppkey[i], data.supplier.nationkey[i]))
        .collect();
    let cust_nation: HashMap<i64, i64> = (0..data.customer.len())
        .map(|i| (data.customer.custkey[i], data.customer.nationkey[i]))
        .collect();
    let mut revenue: BTreeMap<i64, f64> = BTreeMap::new();
    let li = &data.lineitem;
    for i in 0..li.len() {
        let (odate, custkey) = order_meta[&li.orderkey[i]];
        if odate < lo || odate >= hi {
            continue;
        }
        let snk = supp_nation[&li.suppkey[i]];
        if !region_nations.contains(&snk) || cust_nation[&custkey] != snk {
            continue;
        }
        *revenue.entry(snk).or_insert(0.0) += li.extendedprice[i] * (1.0 - li.discount[i]);
    }
    let mut out: Vec<(String, f64)> = revenue
        .into_iter()
        .map(|(nk, r)| (data.nation.name[nk as usize].clone(), r))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// TPC-H Q10: returned-item reporting, top-20 customers by lost revenue.
pub fn q10(data: &TpchData, params: &ExtParams) -> Vec<Q10Row> {
    let lo = params.q10_date.raw();
    let hi = params.q10_date.plus_days(92).raw();
    let order_meta: HashMap<i64, (i32, i64)> = (0..data.orders.len())
        .map(|i| {
            (
                data.orders.orderkey[i],
                (data.orders.orderdate[i], data.orders.custkey[i]),
            )
        })
        .collect();
    let cust_nation: HashMap<i64, i64> = (0..data.customer.len())
        .map(|i| (data.customer.custkey[i], data.customer.nationkey[i]))
        .collect();
    let li = &data.lineitem;
    let mut revenue: BTreeMap<i64, f64> = BTreeMap::new();
    for i in 0..li.len() {
        if li.returnflag[i] != b'R' {
            continue;
        }
        let (odate, custkey) = order_meta[&li.orderkey[i]];
        if odate >= lo && odate < hi {
            *revenue.entry(custkey).or_insert(0.0) += li.extendedprice[i] * (1.0 - li.discount[i]);
        }
    }
    let mut rows: Vec<Q10Row> = revenue
        .into_iter()
        .map(|(ck, rev)| Q10Row {
            custkey: ck,
            revenue: rev,
            nation: data.nation.name[cust_nation[&ck] as usize].clone(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.revenue
            .total_cmp(&a.revenue)
            .then(a.custkey.cmp(&b.custkey))
    });
    rows.truncate(20);
    rows
}

/// TPC-H Q12: shipping modes and order priority.
pub fn q12(data: &TpchData, params: &ExtParams) -> Vec<(String, u64, u64)> {
    let mode_a = data.shipmodes.code_of(params.q12_modes.0).expect("mode");
    let mode_b = data.shipmodes.code_of(params.q12_modes.1).expect("mode");
    let lo = params.q12_date.raw();
    let hi = params.q12_date.plus_days(365).raw();
    let order_prio: HashMap<i64, u8> = (0..data.orders.len())
        .map(|i| (data.orders.orderkey[i], data.orders.orderpriority[i]))
        .collect();
    let li = &data.lineitem;
    let mut table: std::collections::BTreeMap<u8, (u64, u64)> = Default::default();
    for i in 0..li.len() {
        let mode = li.shipmode[i];
        if mode != mode_a && mode != mode_b {
            continue;
        }
        if li.receiptdate[i] < lo || li.receiptdate[i] >= hi {
            continue;
        }
        if !(li.commitdate[i] < li.receiptdate[i] && li.shipdate[i] < li.commitdate[i]) {
            continue;
        }
        let e = table.entry(mode).or_insert((0, 0));
        if order_prio[&li.orderkey[i]] <= 1 {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    table
        .into_iter()
        .map(|(m, (h, l))| (data.shipmodes.decode(m).to_string(), h, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_results_are_plausible() {
        let data = TpchData::generate(0.002, 42);
        let params = QueryParams::default();
        assert!(q_filter(&data, &params) > 0.0);
        assert!(q6(&data, &params) > 0.0);
        let q3r = q3(&data, &params);
        assert!(!q3r.is_empty() && q3r.len() <= 10);
        let q9r = q9(&data, &params);
        assert!(!q9r.is_empty());
        // Years fall inside the TPC-H window.
        assert!(q9r.iter().all(|r| (1992..=1998).contains(&r.year)));
    }
}
