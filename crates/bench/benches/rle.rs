//! Criterion microbenchmarks of the resident-page-list RLE codec (§6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ddc_os::PageId;
use teleport::ResidentList;

fn contiguous_list(pages: usize, extents: usize) -> Vec<(PageId, bool)> {
    let mut v = Vec::with_capacity(pages);
    let per = pages / extents.max(1);
    for e in 0..extents {
        let base = e as u64 * 1_000_000;
        for i in 0..per as u64 {
            v.push((PageId(base + i), e % 2 == 0));
        }
    }
    v
}

fn fragmented_list(pages: usize) -> Vec<(PageId, bool)> {
    (0..pages as u64)
        .map(|i| (PageId(i * 3), i % 2 == 0))
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rle/encode");
    for (name, list) in [
        ("contiguous_256k", contiguous_list(262_144, 16)),
        ("fragmented_64k", fragmented_list(65_536)),
    ] {
        g.throughput(Throughput::Elements(list.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| black_box(ResidentList::encode(black_box(&list))));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let list = ResidentList::encode(&contiguous_list(262_144, 16));
    let mut g = c.benchmark_group("rle/decode");
    g.throughput(Throughput::Elements(262_144));
    g.bench_function("contiguous_256k", |b| {
        b.iter(|| black_box(list.decode()));
    });
    g.finish();
}

fn bench_compression_stats(c: &mut Criterion) {
    // The fast path of request sizing: encoded size + ratio only.
    let list = contiguous_list(262_144, 16);
    c.bench_function("rle/encode_and_size", |b| {
        b.iter(|| {
            let e = ResidentList::encode(black_box(&list));
            black_box((e.encoded_bytes(), e.compression_ratio()))
        });
    });
}

criterion_group!(benches, bench_encode, bench_decode, bench_compression_stats);
criterion_main!(benches);
