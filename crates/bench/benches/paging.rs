//! Criterion microbenchmarks of the disaggregated OS's paging fast paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ddc_os::{Dos, Pattern};
use ddc_sim::{DdcConfig, PAGE_SIZE};

fn warm_dos(cache_pages: usize, data_pages: usize) -> (Dos, ddc_os::VAddr) {
    let mut dos = Dos::new_disaggregated(DdcConfig {
        compute_cache_bytes: cache_pages * PAGE_SIZE,
        memory_pool_bytes: data_pages * PAGE_SIZE * 2 + (16 << 20),
        ..Default::default()
    });
    let a = dos.alloc(data_pages * PAGE_SIZE);
    for p in 0..data_pages {
        dos.write_bytes(
            a.offset((p * PAGE_SIZE) as u64),
            &7u64.to_le_bytes(),
            Pattern::Seq,
        );
    }
    dos.begin_timing();
    (dos, a)
}

fn bench_cache_hit(c: &mut Criterion) {
    let mut g = c.benchmark_group("paging/hit");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_u64_hot_page", |b| {
        let (mut dos, a) = warm_dos(64, 16); // everything fits
        let _ = dos.read_u64(a, Pattern::Rand);
        b.iter(|| black_box(dos.read_u64(black_box(a), Pattern::Rand)));
    });
    g.finish();
}

fn bench_fault_path(c: &mut Criterion) {
    // Thrashing access pattern: every read misses and evicts.
    let mut g = c.benchmark_group("paging/miss");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_u64_thrash", |b| {
        let (mut dos, a) = warm_dos(2, 64);
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 1) % 64;
            black_box(dos.read_u64(a.offset(p * PAGE_SIZE as u64), Pattern::Rand))
        });
    });
    g.finish();
}

fn bench_sequential_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("paging/seq_scan");
    let pages = 256usize;
    g.throughput(Throughput::Bytes((pages * PAGE_SIZE) as u64));
    g.bench_function("1MB_warm", |b| {
        let (mut dos, a) = warm_dos(512, pages);
        let _ = dos.read_bytes(a, pages * PAGE_SIZE, Pattern::Seq);
        b.iter(|| {
            black_box(
                dos.read_bytes(black_box(a), pages * PAGE_SIZE, Pattern::Seq)
                    .len(),
            )
        });
    });
    g.finish();
}

fn bench_resident_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("paging/resident_list");
    for pages in [256usize, 4096] {
        g.throughput(Throughput::Elements(pages as u64));
        g.bench_function(format!("{pages}_cached_pages"), |b| {
            let (dos, _a) = warm_dos(pages, pages);
            b.iter(|| black_box(dos.resident_list().len()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_hit,
    bench_fault_path,
    bench_sequential_scan,
    bench_resident_list
);
criterion_main!(benches);
