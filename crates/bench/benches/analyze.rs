//! Criterion benchmarks of the static-analysis pass itself: how many
//! source files and rule evaluations per wall-clock second the
//! eleven-rule `ddc-analyze` engine sustains over the real workspace.
//! The single-pass `Scan` reads every file from disk exactly once, so
//! `files` meters the full scan-plus-all-rules pipeline and `rules`
//! the same run denominated in (file × rule) evaluations. Run with
//! `TELEPORT_BENCH_JSON=BENCH_analyze.json cargo bench --bench analyze`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

use ddc_analyze::{analyze_with_stats, AnalyzeConfig, ScanStats, RULES};

/// The workspace root, resolved from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate sits two levels under the workspace root")
        .to_path_buf()
}

/// One full analysis pass over the clean workspace; the finding count
/// is asserted zero so the bench doubles as a smoke check.
fn analyze_once(cfg: &AnalyzeConfig) -> ScanStats {
    let (findings, stats) = analyze_with_stats(cfg).expect("workspace analysis runs");
    assert!(
        findings.is_empty(),
        "bench must run against a clean workspace"
    );
    stats
}

fn bench_analyze_files(c: &mut Criterion) {
    let cfg = AnalyzeConfig::workspace(workspace_root());
    let stats = analyze_once(&cfg);
    assert!(stats.files > 0 && stats.lines > 0);
    let mut g = c.benchmark_group("analyze");
    g.sample_size(10)
        .throughput(Throughput::Elements(stats.files as u64));
    g.bench_function("files", |b| {
        b.iter(|| black_box(analyze_once(&cfg).files));
    });
    g.finish();
}

fn bench_analyze_rules(c: &mut Criterion) {
    let cfg = AnalyzeConfig::workspace(workspace_root());
    let stats = analyze_once(&cfg);
    let evals = (stats.files * RULES.len()) as u64;
    let mut g = c.benchmark_group("analyze");
    g.sample_size(10).throughput(Throughput::Elements(evals));
    g.bench_function("rules", |b| {
        b.iter(|| black_box(analyze_once(&cfg).files));
    });
    g.finish();
}

criterion_group!(benches, bench_analyze_files, bench_analyze_rules);
criterion_main!(benches);
