//! Criterion microbenchmarks of the full `pushdown` syscall path: the
//! real-time cost of simulating steps ❶–❽ of paper Fig 5.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ddc_sim::{DdcConfig, PAGE_SIZE};
use teleport::{Mem, PushdownOpts, Runtime, SyncStrategy};

fn warm_runtime(pages: usize) -> (Runtime, teleport::Region<u64>) {
    let mut rt = Runtime::teleport(DdcConfig {
        compute_cache_bytes: (pages / 4).max(1) * PAGE_SIZE,
        memory_pool_bytes: pages * PAGE_SIZE * 2 + (16 << 20),
        ..Default::default()
    });
    let region = rt.alloc_region::<u64>(pages * PAGE_SIZE / 8);
    let vals: Vec<u64> = (0..region.len() as u64).collect();
    rt.write_range(&region, 0, &vals);
    rt.begin_timing();
    (rt, region)
}

fn bench_noop_pushdown(c: &mut Criterion) {
    c.bench_function("pushdown/noop_call", |b| {
        let (mut rt, _r) = warm_runtime(256);
        b.iter(|| {
            rt.pushdown(PushdownOpts::new(), |_m| black_box(0u64))
                .expect("ok")
        });
    });
}

fn bench_pushdown_with_scan(c: &mut Criterion) {
    c.bench_function("pushdown/scan_64KB", |b| {
        let (mut rt, region) = warm_runtime(256);
        b.iter(|| {
            rt.pushdown(PushdownOpts::new(), |m| {
                let mut buf = Vec::new();
                m.read_range(&region, 0, 8_192, &mut buf);
                black_box(buf.iter().sum::<u64>())
            })
            .expect("ok")
        });
    });
}

fn bench_eager_vs_ondemand_real_cost(c: &mut Criterion) {
    // The *simulator's* cost of the two sync strategies (virtual-time
    // results are covered by `repro fig20`).
    let mut g = c.benchmark_group("pushdown/sync_strategy");
    for (name, sync) in [
        ("on_demand", SyncStrategy::OnDemand),
        ("eager", SyncStrategy::Eager),
    ] {
        g.bench_function(name, |b| {
            let (mut rt, region) = warm_runtime(512);
            // Warm the cache so both strategies have work to do.
            let _ = rt.get(&region, 0, ddc_os::Pattern::Rand);
            b.iter(|| {
                rt.pushdown(PushdownOpts::new().sync(sync), |m| {
                    black_box(m.get(&region, 100, ddc_os::Pattern::Rand))
                })
                .expect("ok")
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_noop_pushdown,
    bench_pushdown_with_scan,
    bench_eager_vs_ondemand_real_cost
);
criterion_main!(benches);
