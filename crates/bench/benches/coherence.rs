//! Criterion microbenchmarks of the coherence protocol implementation:
//! how fast the simulator itself executes protocol transitions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ddc_os::{Dos, Pattern};
use ddc_sim::{DdcConfig, SimDuration, PAGE_SIZE};
use teleport::{CoherenceMode, PushdownSession};

fn make_dos(pages: usize) -> (Dos, ddc_os::VAddr) {
    let mut dos = Dos::new_disaggregated(DdcConfig {
        compute_cache_bytes: pages / 4 * PAGE_SIZE,
        memory_pool_bytes: pages * PAGE_SIZE * 2 + (16 << 20),
        ..Default::default()
    });
    let a = dos.alloc(pages * PAGE_SIZE);
    for p in 0..pages {
        dos.write_bytes(
            a.offset((p * PAGE_SIZE) as u64),
            &1u64.to_le_bytes(),
            Pattern::Seq,
        );
    }
    dos.begin_timing();
    (dos, a)
}

fn bench_mem_access_fast_path(c: &mut Criterion) {
    // Memory-side accesses on already-acquired pages: the hot path of
    // every pushed operator.
    let mut g = c.benchmark_group("coherence/mem_access_held");
    g.throughput(Throughput::Elements(1));
    g.bench_function("read_8B", |b| {
        let (mut dos, a) = make_dos(256);
        let resident = dos.resident_list();
        let mut s = PushdownSession::new(
            CoherenceMode::WriteInvalidate,
            &resident,
            SimDuration::from_micros(10),
        );
        // Acquire once.
        s.mem_access(&mut dos, a, 8, true, Pattern::Rand);
        b.iter(|| {
            s.mem_access(&mut dos, black_box(a), 8, false, Pattern::Rand);
        });
    });
    g.finish();
}

fn bench_invalidation_round_trip(c: &mut Criterion) {
    // A full invalidate: compute holds the page dirty, memory side takes
    // exclusive ownership.
    c.bench_function("coherence/invalidate_dirty_page", |b| {
        b.iter_with_setup(
            || {
                let (mut dos, a) = make_dos(64);
                dos.write_bytes(a, &2u64.to_le_bytes(), Pattern::Rand);
                let resident = dos.resident_list();
                let s = PushdownSession::new(
                    CoherenceMode::WriteInvalidate,
                    &resident,
                    SimDuration::from_micros(10),
                );
                (dos, s, a)
            },
            |(mut dos, mut s, a)| {
                s.mem_access(&mut dos, black_box(a), 8, true, Pattern::Rand);
                black_box(s.stats.round_trips)
            },
        );
    });
}

fn bench_session_setup(c: &mut Criterion) {
    // Building the temporary-context view from a resident list (Fig 8).
    let mut g = c.benchmark_group("coherence/session_setup");
    for pages in [64usize, 1024, 16384] {
        let resident: Vec<(ddc_os::PageId, bool)> = (0..pages as u64)
            .map(|i| (ddc_os::PageId(i), i % 7 == 0))
            .collect();
        g.throughput(Throughput::Elements(pages as u64));
        g.bench_function(format!("{pages}_pages"), |b| {
            b.iter(|| {
                black_box(PushdownSession::new(
                    CoherenceMode::WriteInvalidate,
                    black_box(&resident),
                    SimDuration::from_micros(10),
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mem_access_fast_path,
    bench_invalidation_round_trip,
    bench_session_setup
);
criterion_main!(benches);
