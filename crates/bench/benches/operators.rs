//! Criterion microbenchmarks of the columnar operators running through the
//! metered access layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ddc_sim::DdcConfig;
use memdb::exec::{aggregate, hashjoin, select};
use teleport::{Mem, Runtime};

const N: usize = 100_000;

fn runtime_with_column() -> (Runtime, teleport::Region<i64>, teleport::Region<f64>) {
    let mut rt = Runtime::teleport(DdcConfig {
        compute_cache_bytes: 4 << 20,
        memory_pool_bytes: 256 << 20,
        ..Default::default()
    });
    let keys = rt.alloc_region::<i64>(N);
    let kvals: Vec<i64> = (1..=N as i64).collect();
    rt.write_range(&keys, 0, &kvals);
    let vals = rt.alloc_region::<f64>(N);
    let fvals: Vec<f64> = (0..N).map(|i| i as f64).collect();
    rt.write_range(&vals, 0, &fvals);
    rt.begin_timing();
    (rt, keys, vals)
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators/selection");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("full_scan_100k", |b| {
        let (mut rt, keys, _vals) = runtime_with_column();
        b.iter(|| {
            black_box(select::select_where(&mut rt, &keys, N, None, |v| {
                v % 10 == 0
            }))
        });
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators/aggregation");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("sum_100k", |b| {
        let (mut rt, _keys, vals) = runtime_with_column();
        b.iter(|| black_box(aggregate::sum_f64(&mut rt, &vals, N, None)));
    });
    g.finish();
}

fn bench_hash_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("operators/hashjoin");
    g.bench_function("build_10k", |b| {
        let (mut rt, ..) = runtime_with_column();
        let keys: Vec<i64> = (1..=10_000).collect();
        let rows: Vec<u32> = (0..10_000).collect();
        b.iter(|| {
            black_box(hashjoin::HashIndex::build(
                &mut rt,
                black_box(&keys),
                black_box(&rows),
            ))
        });
    });
    g.bench_function("probe_hit", |b| {
        let (mut rt, ..) = runtime_with_column();
        let keys: Vec<i64> = (1..=10_000).collect();
        let rows: Vec<u32> = (0..10_000).collect();
        let idx = hashjoin::HashIndex::build(&mut rt, &keys, &rows);
        let mut k = 1i64;
        b.iter(|| {
            k = k % 10_000 + 1;
            black_box(idx.probe(&mut rt, black_box(k)))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_selection, bench_aggregation, bench_hash_join);
criterion_main!(benches);
