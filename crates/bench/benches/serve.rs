//! Criterion benchmarks of the multi-tenant serving plane: how many
//! sessions and trace events per *wall-clock* second the simulator
//! sustains while driving a fixed-seed 4-tenant KV mix through admission,
//! DRR fairness, and the pushdown path. This is the first point of the
//! `BENCH_serve.json` perf trajectory (ROADMAP item 3): run with
//! `TELEPORT_BENCH_JSON=BENCH_serve.json cargo bench --bench serve`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ddc_sim::{ArrivalProcess, DdcConfig, QosClass, SimDuration};
use teleport::{AdmissionPolicy, Runtime, ServeConfig, ServePlane, ServeReport};

const SEED: u64 = 0xBE7C4;
const TENANTS: usize = 4;
const SESSIONS: usize = 64;
const KV_KEYS: usize = 16 * 1024;

/// One full fixed-seed serving run: 4 KV tenants (one per QoS rung plus a
/// second guaranteed) × 64 sessions over a warm single-pool rack.
fn serve_once(data: &kvapp::KvData, traced: bool) -> (ServeReport, u64) {
    let mut rt = Runtime::teleport(DdcConfig::with_cache_ratio(data.working_set_bytes(), 0.25));
    if traced {
        rt.enable_tracing();
    }
    let store = kvapp::KvStore::load(&mut rt, data);
    rt.drop_cache();
    rt.begin_timing();
    let mut plane = ServePlane::new(ServeConfig {
        seed: SEED,
        admission: AdmissionPolicy {
            max_queue_depth: 8,
            max_backlog: SimDuration::from_micros(400),
        },
        contexts: None,
    });
    let classes = [
        QosClass::Guaranteed,
        QosClass::Guaranteed,
        QosClass::Burstable,
        QosClass::BestEffort,
    ];
    for (t, &class) in classes.iter().enumerate().take(TENANTS) {
        let ks = kvapp::keys(SEED + t as u64, SESSIONS, data.len());
        plane.tenant(
            format!("kv{t}"),
            class,
            ArrivalProcess::poisson(SimDuration::from_micros(50)),
            SESSIONS,
            move |rt, s| kvapp::get(rt, &store, ks[s as usize]),
        );
    }
    let rep = plane.run(&mut rt);
    let events = rt.trace().len();
    (rep, events)
}

fn bench_serve_sessions(c: &mut Criterion) {
    let data = kvapp::KvData::generate(KV_KEYS, 3);
    let mut g = c.benchmark_group("serve");
    g.sample_size(10)
        .throughput(Throughput::Elements((TENANTS * SESSIONS) as u64));
    g.bench_function("sessions", |b| {
        b.iter(|| {
            let (rep, _) = serve_once(&data, false);
            assert!(rep.ledger_balances());
            black_box(rep.completed())
        });
    });
    g.finish();
}

fn bench_serve_events(c: &mut Criterion) {
    let data = kvapp::KvData::generate(KV_KEYS, 3);
    // The event count of a fixed-seed run is itself fixed: measure it
    // once so the reported rate is (traced events simulated)/second.
    let (_, events) = serve_once(&data, true);
    assert!(events > 0, "a traced serve run must emit events");
    let mut g = c.benchmark_group("serve");
    g.sample_size(10).throughput(Throughput::Elements(events));
    g.bench_function("events", |b| {
        b.iter(|| {
            let (rep, got) = serve_once(&data, true);
            assert_eq!(got, events, "fixed seed must emit a fixed event count");
            black_box(rep.completed())
        });
    });
    g.finish();
}

criterion_group!(serve_benches, bench_serve_sessions, bench_serve_events);
criterion_main!(serve_benches);
